#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by `lowbist --trace`.

Checks (exit 0 = pass, 1 = fail, 2 = usage):

  * the file is valid JSON with a `traceEvents` array;
  * every event is a complete ("X") event with name/pid/tid/ts/dur;
  * timestamps and durations are non-negative and finite;
  * per thread, spans are laminar: any two spans either nest or are
    disjoint — partial overlap means broken RAII scoping;
  * (optional) --expect NAME may be repeated; each named span must appear.

Usage:
  check_trace.py trace.json [--expect sched --expect binding ...]
"""

import argparse
import json
import math
import sys


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--expect", action="append", default=[],
                    help="span name that must appear (repeatable)")
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents array")

    by_tid = {}
    names = set()
    for i, e in enumerate(events):
        for key in ("name", "ph", "pid", "tid", "ts", "dur"):
            if key not in e:
                fail(f"event {i} missing {key!r}: {e}")
        if e["ph"] != "X":
            fail(f"event {i} is not a complete event: ph={e['ph']!r}")
        ts, dur = float(e["ts"]), float(e["dur"])
        if not (math.isfinite(ts) and math.isfinite(dur)):
            fail(f"event {i} has non-finite time: ts={ts} dur={dur}")
        if ts < 0 or dur < 0:
            fail(f"event {i} has negative time: ts={ts} dur={dur}")
        if "args" in e and not isinstance(e["args"], dict):
            fail(f"event {i} args is not an object")
        names.add(e["name"])
        by_tid.setdefault(e["tid"], []).append((ts, ts + dur, e["name"]))

    # Laminarity per thread: sort by (start, -end); a span must close
    # before or with every still-open enclosing span.
    for tid, spans in by_tid.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        for start, end, name in spans:
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                fail(f"tid {tid}: span {name!r} [{start},{end}) partially "
                     f"overlaps {stack[-1][2]!r} [{stack[-1][0]},"
                     f"{stack[-1][1]})")
            stack.append((start, end, name))

    missing = [n for n in args.expect if n not in names]
    if missing:
        fail(f"expected span(s) not found: {', '.join(missing)}; "
             f"saw: {', '.join(sorted(names))}")

    threads = len(by_tid)
    print(f"check_trace: OK: {len(events)} spans across {threads} "
          f"thread(s), names: {', '.join(sorted(names))}")


if __name__ == "__main__":
    main()
