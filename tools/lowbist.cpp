// lowbist — command-line front end to the library.
//
//   lowbist synth <design.dfg> --modules "1+,1*" [options]
//       Synthesize one data path and print the design + BIST report.
//   lowbist compare <design.dfg> --modules "1+,1*" [options]
//       Traditional vs BIST-aware side by side (the Table I experiment).
//   lowbist tables
//       Print the paper's Tables I-III on the built-in benchmarks.
//   lowbist bench <name>
//       Print a built-in benchmark (ex1, ex2, tseng, paulin) in the
//       textual DFG format (pipe into a file to start hacking on it).
//   lowbist schedule <design.dfg> [--fu "2*"]... [--latency N]
//       Schedule an unannotated design (resource-constrained list
//       scheduling, or force-directed when --latency is given) and print
//       it back with @step annotations.
//   lowbist optimize <design.dfg>
//       Run common-subexpression elimination + dead-code removal and
//       print the cleaned design (unscheduled).
//   lowbist batch <jobs.jsonl|-> [-j N] [--metrics out.json] [--cache N]
//       Run a JSONL job manifest (one synthesis job per line, "-" reads
//       the manifest from stdin) over a thread pool with a synthesis
//       cache; stream one JSON result line per job in completion order
//       (see docs/service.md).
//   lowbist serve [--port P] [-j N] [--shards N] [--cache N]
//                 [--max-queue N] [--deadline-ms N] [--cache-dir DIR]
//                 [--cache-budget-mb N]
//       Long-running synthesis server on 127.0.0.1 speaking newline-
//       delimited JSON with the batch job schema; bounded admission
//       queue, per-request deadlines, health/metrics requests, graceful
//       shutdown on SIGINT/SIGTERM (see docs/server.md).
//   lowbist client <host:port> <jobs.jsonl|->
//       Send a job manifest to a running server and print one response
//       line per job.
//   lowbist fuzz [--seed N] [--cases N] [-j N] [--width N] [--fixed-width]
//                [--out DIR] [--no-minimize] [--max-reports N]
//                [--progress N] [--large-shapes]
//       Differential fuzzing: random scheduled DFGs through every binder,
//       checked against simulation/Lemma-2/area/report oracles; failures
//       are delta-debugged to minimal corpus reproducers (docs/fuzzing.md).
//   lowbist fuzz --replay <file.corpus>
//       Re-judge one corpus reproducer with the same oracles.
//   lowbist explore <design.dfg> [--modules "S1;S2;..."] [--binder K[,K]]
//       Design-space sweep (module specs for scheduled designs, --fu
//       resource budgets for unscheduled ones) with a Pareto filter.
//   lowbist metrics <dump.json|-> [--prom]
//       Pretty-print a MetricsRegistry dump, or convert it to Prometheus
//       text exposition with --prom.
//   lowbist version [--json]
//       Print the build identity (version, git describe, compiler,
//       sanitizer preset, build type).
//
// Common options:
//   --modules SPEC     module assignment, e.g. "1+,2*" or "1+,3[-*/&|]"
//                      (default: minimal spec derived from the schedule)
//   --binder KIND      trad | bist | ralloc | syntest | clique | loop
//   --width N          datapath bit width for the area model (default 4)
//   --patterns N       BIST patterns per module for the test plan (default
//                      250)
//   --dot              emit Graphviz of the data path
//   --verilog          emit structural Verilog
//   --plan             fault-simulate and print the full test plan
//   --selftest         run the complete BIST plan through the netlist and
//                      report chip-level fault coverage
//   --testbench        emit a self-checking Verilog testbench
//   --bist-verilog     emit the self-testing RTL (BILBO registers + BIST
//                      controller + golden signature checks)
//   --json             machine-readable report instead of text
//   --vcd              dump a VCD waveform of one functional run (synth)
//   --ctrl-verilog     emit the functional-mode controller FSM
//   --coverage N       pick the pattern budget by target coverage (0-1)
//                      instead of --patterns
//   --decisions        print the binder's decision log
//   --trace FILE       write a Chrome trace_event JSON of the pipeline's
//                      phase spans (load in chrome://tracing / Perfetto)
//   --profile FILE     (synth, batch, explore, serve) run the command under
//                      the span-attributed sampling profiler; folded stacks
//                      go to FILE (flamegraph.pl / speedscope ready) and
//                      the JSON report to FILE.json (docs/observability.md)
//   --profile-hz N     profiler sampling rate per thread (default 199)
//   --slow-ms N        (serve) log a "slow_request" line (with span id) for
//                      requests slower than N ms
//   --trace-events FILE
//                      write the algorithm decision-event stream (PVES
//                      order, ΔSD choices, Case overrides, CBILBO checks,
//                      mux merges, BIST roles) as JSONL
//   --dump-ir STAGE    (synth) stop after STAGE (sched, conflict_graph,
//                      binding, interconnect, bist) and print the IR
//                      snapshot as JSON instead of the report
//   --ir-out FILE      (synth) write the --dump-ir snapshot to FILE
//   --resume-from FILE (synth) restore an IR snapshot ("-" reads stdin)
//                      and continue from its recorded stage; replaces the
//                      design-file argument, and the snapshot's recorded
//                      synthesis options win over --binder/--width
//   --checkpoint FILE  (explore) append finished design points to a JSONL
//                      checkpoint and skip points already recorded there

#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "binding/bist_aware_binder.hpp"
#include "bist/selftest.hpp"
#include "bist/verilog_bist.hpp"
#include "bist/test_length.hpp"
#include "bist/test_plan.hpp"
#include "core/compare.hpp"
#include "core/explorer.hpp"
#include "core/report.hpp"
#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/optimize.hpp"
#include "fuzz/fuzz.hpp"
#include "hybrid/pareto.hpp"
#include "obs/events.hpp"
#include "obs/profiler.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"
#include "graph/conflict.hpp"
#include "passes/pipeline.hpp"
#include "support/version.hpp"
#include "rtl/controller.hpp"
#include "rtl/simulate.hpp"
#include "rtl/testbench.hpp"
#include "rtl/vcd.hpp"
#include "rtl/verilog.hpp"
#include "rtl/verilog_controller.hpp"
#include "sched/force_directed.hpp"
#include "sched/list_sched.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "service/batch.hpp"
#include "service/metrics.hpp"
#include "service/thread_pool.hpp"
#include "support/table.hpp"

namespace {

using namespace lbist;

struct CliOptions {
  std::string command;
  std::string target;
  std::string target2;  // client: manifest path (target is host:port)
  std::optional<std::string> modules;
  std::string binder = "bist";
  int width = 4;
  int patterns = 250;
  bool dot = false;
  bool verilog = false;
  bool plan = false;
  bool selftest = false;
  bool testbench = false;
  bool bist_verilog = false;
  bool json = false;
  bool vcd = false;
  bool ctrl_verilog = false;
  std::optional<double> coverage_target;
  bool decisions = false;
  std::optional<std::string> dump_ir;      // synth: stop after this pass
  std::optional<std::string> ir_out;       // synth: snapshot destination
  std::optional<std::string> resume_from;  // synth: snapshot to restore
  std::optional<std::string> checkpoint;   // explore: JSONL sweep checkpoint
  std::optional<std::string> pareto;       // explore: objective set ("bist")
  std::optional<std::string> trace_path;
  std::optional<std::string> trace_events_path;
  std::optional<std::string> profile_path;
  int profile_hz = 199;
  int slow_ms = 0;
  bool prom = false;
  bool binder_given = false;
  std::vector<std::string> fu;
  std::optional<int> latency;
  int jobs = 1;
  std::size_t cache_capacity = 256;
  std::optional<std::string> metrics_path;
  int port = 0;
  std::size_t max_queue = 64;
  int deadline_ms = 0;
  int shards = 1;
  std::string cache_dir;
  int cache_budget_mb = 256;
  // fuzz
  std::uint64_t fuzz_seed = 1;
  int fuzz_cases = 1000;
  bool fuzz_fixed_width = false;
  bool fuzz_no_minimize = false;
  bool fuzz_large_shapes = false;
  int fuzz_max_reports = 10;
  int fuzz_progress = 0;
  std::optional<std::string> fuzz_out;
  std::optional<std::string> fuzz_replay;
  bool fuzz_inject_binding_bug = false;  // hidden mutation self-test
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  lowbist synth <design.dfg> [--modules SPEC] [--binder KIND]\n"
      "                [--width N] [--patterns N] [--dot] [--verilog]\n"
      "                [--plan] [--decisions] [--trace FILE]\n"
      "                [--trace-events FILE]\n"
      "                [--dump-ir STAGE] [--ir-out FILE]\n"
      "  lowbist synth --resume-from <snap.json|-> [--dump-ir STAGE]\n"
      "  lowbist compare <design.dfg> [--modules SPEC] [--width N]\n"
      "  lowbist tables\n"
      "  lowbist bench <ex1|ex2|tseng|paulin>\n"
      "  lowbist schedule <design.dfg> [--fu \"2*\"]... [--latency N]\n"
      "  lowbist optimize <design.dfg>\n"
      "  lowbist batch <jobs.jsonl|-> [-j N] [--metrics out.json]\n"
      "                [--cache N]            (\"-\" reads stdin)\n"
      "  lowbist serve [--port P] [-j N] [--shards N] [--cache N]\n"
      "                [--max-queue N] [--deadline-ms N] [--slow-ms N]\n"
      "                [--cache-dir DIR] [--cache-budget-mb N]\n"
      "  lowbist client <host:port> <jobs.jsonl|->\n"
      "  lowbist fuzz [--seed N] [--cases N] [-j N] [--width N]\n"
      "               [--fixed-width] [--out DIR] [--no-minimize]\n"
      "               [--max-reports N] [--progress N] [--large-shapes]\n"
      "  lowbist fuzz --replay <file.corpus>\n"
      "  lowbist explore <design.dfg> [--modules \"S1;S2\"] [--fu \"1+,1*\"]...\n"
      "                  [--binder KIND[,KIND]] [-j N] [--width N] [--json]\n"
      "                  [--checkpoint FILE]\n"
      "  lowbist explore <design.dfg> --pareto bist [--patterns N]\n"
      "                  [--binder KIND[,KIND]] [-j N] [--width N] [--json]\n"
      "                  [--metrics FILE]   hybrid-BIST sweep: area x\n"
      "                  coverage x test-length (docs/hybrid-bist.md)\n"
      "  lowbist metrics <dump.json|-> [--prom]\n"
      "  lowbist version [--json]\n"
      "\n"
      "observability (synth, batch, serve, explore):\n"
      "  --trace FILE         Chrome trace_event JSON of pipeline spans\n"
      "  --trace-events FILE  algorithm decision events as JSONL\n"
      "  --profile FILE       span-attributed sampling profile: folded\n"
      "                       stacks to FILE, JSON report to FILE.json\n"
      "  --profile-hz N       sampling rate per thread (default 199)\n";
  std::exit(error.empty() ? 0 : 2);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions opts;
  if (argc < 2) usage("missing command");
  opts.command = argv[1];
  int i = 2;
  if (opts.command == "synth") {
    // The design file is optional here: `synth --resume-from snap.json`
    // carries the design inside the snapshot.  Anything starting with
    // "--" is a flag, not the positional argument.
    if (i < argc && std::string_view(argv[i]).substr(0, 2) != "--") {
      opts.target = argv[i++];
    }
  } else if (opts.command == "compare" || opts.command == "bench" ||
             opts.command == "schedule" || opts.command == "optimize" ||
             opts.command == "batch" || opts.command == "client" ||
             opts.command == "explore" || opts.command == "metrics") {
    if (i >= argc) usage("missing argument for " + opts.command);
    opts.target = argv[i++];
  }
  if (opts.command == "client") {
    if (i >= argc) usage("client needs <host:port> <jobs.jsonl|->");
    opts.target2 = argv[i++];
  }
  auto need_value = [&](const std::string& flag) {
    if (i >= argc) usage("missing value for " + flag);
    return std::string(argv[i++]);
  };
  auto need_int = [&](const std::string& flag) {
    const std::string v = need_value(flag);
    try {
      std::size_t used = 0;
      const int n = std::stoi(v, &used);
      if (used != v.size()) throw std::invalid_argument(v);
      return n;
    } catch (const std::exception&) {
      usage("flag " + flag + " needs an integer, got: " + v);
    }
  };
  auto need_double = [&](const std::string& flag) {
    const std::string v = need_value(flag);
    try {
      std::size_t used = 0;
      const double d = std::stod(v, &used);
      if (used != v.size()) throw std::invalid_argument(v);
      return d;
    } catch (const std::exception&) {
      usage("flag " + flag + " needs a number, got: " + v);
    }
  };
  while (i < argc) {
    const std::string flag = argv[i++];
    if (flag == "--modules") {
      opts.modules = need_value(flag);
    } else if (flag == "--binder") {
      opts.binder = need_value(flag);
      opts.binder_given = true;
    } else if (flag == "--width") {
      opts.width = need_int(flag);
    } else if (flag == "--patterns") {
      opts.patterns = need_int(flag);
    } else if (flag == "--dot") {
      opts.dot = true;
    } else if (flag == "--verilog") {
      opts.verilog = true;
    } else if (flag == "--plan") {
      opts.plan = true;
    } else if (flag == "--selftest") {
      opts.selftest = true;
    } else if (flag == "--testbench") {
      opts.testbench = true;
    } else if (flag == "--bist-verilog") {
      opts.bist_verilog = true;
    } else if (flag == "--json") {
      opts.json = true;
    } else if (flag == "--vcd") {
      opts.vcd = true;
    } else if (flag == "--ctrl-verilog") {
      opts.ctrl_verilog = true;
    } else if (flag == "--coverage") {
      opts.coverage_target = need_double(flag);
    } else if (flag == "--fu") {
      opts.fu.push_back(need_value(flag));
    } else if (flag == "--latency") {
      opts.latency = need_int(flag);
    } else if (flag == "--decisions") {
      opts.decisions = true;
    } else if (flag == "--dump-ir") {
      opts.dump_ir = need_value(flag);
    } else if (flag == "--ir-out") {
      opts.ir_out = need_value(flag);
    } else if (flag == "--resume-from") {
      opts.resume_from = need_value(flag);
    } else if (flag == "--checkpoint") {
      opts.checkpoint = need_value(flag);
    } else if (flag == "--pareto") {
      opts.pareto = need_value(flag);
    } else if (flag == "--trace") {
      opts.trace_path = need_value(flag);
    } else if (flag == "--trace-events") {
      opts.trace_events_path = need_value(flag);
    } else if (flag == "--profile") {
      opts.profile_path = need_value(flag);
    } else if (flag == "--profile-hz") {
      const int n = need_int(flag);
      if (n < 1 || n > 10000) usage("flag --profile-hz needs 1..10000");
      opts.profile_hz = n;
    } else if (flag == "--slow-ms") {
      const int n = need_int(flag);
      if (n < 0) usage("flag --slow-ms needs a non-negative threshold");
      opts.slow_ms = n;
    } else if (flag == "--prom") {
      opts.prom = true;
    } else if (flag == "-j" || flag == "--jobs") {
      opts.jobs = need_int(flag);
    } else if (flag == "--cache") {
      const int n = need_int(flag);
      if (n < 1) usage("flag --cache needs a positive capacity");
      opts.cache_capacity = static_cast<std::size_t>(n);
    } else if (flag == "--metrics") {
      opts.metrics_path = need_value(flag);
    } else if (flag == "--port") {
      const int p = need_int(flag);
      if (p < 0 || p > 65535) usage("flag --port needs 0..65535");
      opts.port = p;
    } else if (flag == "--max-queue") {
      const int n = need_int(flag);
      if (n < 1) usage("flag --max-queue needs a positive bound");
      opts.max_queue = static_cast<std::size_t>(n);
    } else if (flag == "--deadline-ms") {
      const int n = need_int(flag);
      if (n < 0) usage("flag --deadline-ms needs a non-negative value");
      opts.deadline_ms = n;
    } else if (flag == "--shards") {
      const int n = need_int(flag);
      if (n < 1) usage("flag --shards needs a positive count");
      opts.shards = n;
    } else if (flag == "--cache-dir") {
      opts.cache_dir = need_value(flag);
    } else if (flag == "--cache-budget-mb") {
      const int n = need_int(flag);
      if (n < 1) usage("flag --cache-budget-mb needs a positive size");
      opts.cache_budget_mb = n;
    } else if (flag == "--seed") {
      const std::string v = need_value(flag);
      try {
        std::size_t used = 0;
        opts.fuzz_seed = std::stoull(v, &used);
        if (used != v.size()) throw std::invalid_argument(v);
      } catch (const std::exception&) {
        usage("flag --seed needs an unsigned integer, got: " + v);
      }
    } else if (flag == "--cases") {
      const int n = need_int(flag);
      if (n < 1) usage("flag --cases needs a positive count");
      opts.fuzz_cases = n;
    } else if (flag == "--fixed-width") {
      opts.fuzz_fixed_width = true;
    } else if (flag == "--no-minimize") {
      opts.fuzz_no_minimize = true;
    } else if (flag == "--large-shapes") {
      opts.fuzz_large_shapes = true;
    } else if (flag == "--max-reports") {
      const int n = need_int(flag);
      if (n < 0) usage("flag --max-reports needs a non-negative count");
      opts.fuzz_max_reports = n;
    } else if (flag == "--progress") {
      const int n = need_int(flag);
      if (n < 0) usage("flag --progress needs a non-negative interval");
      opts.fuzz_progress = n;
    } else if (flag == "--out") {
      opts.fuzz_out = need_value(flag);
    } else if (flag == "--replay") {
      opts.fuzz_replay = need_value(flag);
    } else if (flag == "--inject-binding-bug") {
      // Intentionally undocumented: the fuzzing self-test (CI asserts the
      // harness catches and minimizes a deliberately broken binding).
      opts.fuzz_inject_binding_bug = true;
    } else if (flag == "--help" || flag == "-h") {
      usage();
    } else {
      usage("unknown flag: " + flag);
    }
  }
  if (opts.profile_path.has_value() && opts.command != "synth" &&
      opts.command != "batch" && opts.command != "explore" &&
      opts.command != "serve") {
    usage("--profile is supported on synth|batch|explore|serve");
  }
  return opts;
}

/// --profile: arms the span-attributed sampling profiler around one
/// command; write() (after the command returns) disarms it and emits the
/// folded stacks to FILE plus the JSON report to FILE.json.
class ProfileScope {
 public:
  explicit ProfileScope(const CliOptions& cli) : cli_(cli) {
    if (!cli_.profile_path.has_value()) return;
    // Pools created later (batch workers, server shards + workers, explorer
    // pools) attach their threads through the thread-start hook; the main
    // thread attaches here.
    ThreadPool::set_thread_start_hook(
        [] { obs::Profiler::attach_current_thread(); });
    obs::Profiler::attach_current_thread();
    obs::ProfilerOptions po;
    po.hz = cli_.profile_hz;
    obs::Profiler::instance().start(po);
    active_ = true;
  }

  void write() {
    if (!active_) return;
    active_ = false;
    obs::Profiler& prof = obs::Profiler::instance();
    prof.stop();
    const obs::ProfileReport rep = prof.collect();
    std::ofstream folded(*cli_.profile_path);
    if (!folded) throw Error("cannot write profile: " + *cli_.profile_path);
    rep.write_folded(folded);
    const std::string jpath = *cli_.profile_path + ".json";
    std::ofstream jout(jpath);
    if (!jout) throw Error("cannot write profile: " + jpath);
    jout << rep.to_json().dump() << "\n";
    std::cerr << "profile: " << rep.samples << " samples @ " << rep.hz
              << " Hz across " << rep.threads << " threads (" << rep.dropped
              << " dropped) -> " << *cli_.profile_path << "\n";
  }

 private:
  const CliOptions& cli_;
  bool active_ = false;
};

/// Observability sinks requested via --trace / --trace-events.  Built
/// up-front, threaded through the command, flushed with write() at the end.
struct ObsSinks {
  std::unique_ptr<TraceRecorder> trace;
  std::unique_ptr<AlgorithmEvents> events;

  static ObsSinks from_cli(const CliOptions& cli,
                           MetricsRegistry* metrics = nullptr) {
    ObsSinks obs;
    if (cli.trace_path.has_value()) {
      obs.trace = std::make_unique<TraceRecorder>();
      obs.trace->set_enabled(true);
    }
    if (cli.trace_events_path.has_value()) {
      obs.events =
          std::make_unique<AlgorithmEvents>(metrics, /*keep_events=*/true);
    }
    return obs;
  }

  void write(const CliOptions& cli) const {
    if (trace != nullptr) {
      std::ofstream out(*cli.trace_path);
      if (!out) throw Error("cannot write trace: " + *cli.trace_path);
      trace->write_chrome(out);
    }
    if (events != nullptr) {
      std::ofstream out(*cli.trace_events_path);
      if (!out) {
        throw Error("cannot write events: " + *cli.trace_events_path);
      }
      events->write_jsonl(out);
    }
  }
};

ParsedDfg load_design(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_dfg(buf.str());
}

BinderKind binder_from_name(const std::string& name) {
  if (name == "trad") return BinderKind::Traditional;
  if (name == "bist") return BinderKind::BistAware;
  if (name == "ralloc") return BinderKind::Ralloc;
  if (name == "syntest") return BinderKind::Syntest;
  if (name == "clique") return BinderKind::CliquePartition;
  if (name == "loop") return BinderKind::LoopAware;
  usage("unknown binder: " + name);
}

std::string read_manifest(const std::string& path);

int cmd_synth(const CliOptions& cli) {
  if (cli.target.empty() && !cli.resume_from.has_value()) {
    usage("synth needs a design file or --resume-from");
  }
  ObsSinks obs = ObsSinks::from_cli(cli);
  const PassPipeline& pipeline = PassPipeline::standard();

  // Build the synthesis state: restored from an IR snapshot, or fresh from
  // the design file.
  std::optional<ParsedDfg> design;  // keeps the live path's DFG alive
  std::optional<SynthState> state;
  if (cli.resume_from.has_value()) {
    if (!cli.target.empty()) {
      usage("--resume-from replaces the design file argument");
    }
    // The snapshot's recorded options win over --binder/--width: resumed
    // passes must agree with the ones that produced the snapshot.
    const Json snap = Json::parse(read_manifest(*cli.resume_from));
    state.emplace(pipeline.restore(snap));
  } else {
    design.emplace(load_design(cli.target));
    if (!design->schedule.has_value()) {
      throw Error("design has no @step annotations; schedule it first");
    }
    auto protos = cli.modules.has_value()
                      ? parse_module_spec(*cli.modules)
                      : minimal_module_spec(design->dfg, *design->schedule);
    SynthesisOptions fresh;
    fresh.binder = binder_from_name(cli.binder);
    fresh.area.bit_width = cli.width;
    state.emplace(design->dfg, *design->schedule, std::move(protos), fresh);
  }
  state->options().trace = obs.trace.get();
  state->options().events = obs.events.get();

  const Dfg& dfg = state->dfg();
  const Schedule& sched = state->sched();
  const SynthesisOptions opts = state->options();

  if (cli.decisions && opts.binder == BinderKind::BistAware) {
    auto lt = compute_lifetimes(dfg, sched, opts.lifetime);
    auto cg = build_conflict_graph(dfg, lt);
    auto mb = ModuleBinding::bind(dfg, sched, state->protos());
    std::vector<std::string> trace;
    auto rb = bind_registers_bist_aware(dfg, cg, mb,
                                        opts.bist_binder, &trace);
    (void)rb;
    std::cout << "--- binder trace ---\n";
    for (const auto& line : trace) std::cout << "  " << line << "\n";
  }

  if (cli.dump_ir.has_value()) {
    // Stop after the named pass and emit the snapshot instead of a report.
    const std::size_t end = pipeline.index_of(*cli.dump_ir) + 1;
    LBIST_CHECK(state->completed <= end,
                "snapshot is already past stage " + *cli.dump_ir);
    pipeline.run(*state, end);
    const std::string text = pipeline.snapshot(*state).dump() + "\n";
    if (cli.ir_out.has_value()) {
      std::ofstream out(*cli.ir_out);
      if (!out) throw Error("cannot write snapshot: " + *cli.ir_out);
      out << text;
    } else {
      std::cout << text;
    }
    obs.write(cli);
    return 0;
  }

  pipeline.run(*state);
  const SynthesisResult result = std::move(state->result);
  auto rtl_span = trace_span(obs.trace.get(), "rtl");
  if (cli.json) {
    std::cout << report_json(dfg, result).dump() << "\n";
  } else {
    std::cout << result.describe(dfg);
  }
  int patterns = cli.patterns;
  if (cli.coverage_target.has_value()) {
    auto budgets = find_test_lengths(result.datapath, cli.width,
                                     *cli.coverage_target);
    patterns = budgets.recommended_patterns;
    std::cout << "pattern budget for " << 100.0 * *cli.coverage_target
              << "% coverage: " << patterns
              << (budgets.all_targets_met ? "" : " (some modules cannot reach the target)")
              << "\n";
  }
  if (cli.plan) {
    TestPlan plan = build_test_plan(result.datapath, result.bist,
                                    patterns, cli.width);
    std::cout << plan.describe(result.datapath);
  }
  if (cli.selftest) {
    auto st = run_self_test(result.datapath, result.bist, patterns,
                            cli.width);
    std::cout << "chip-level self-test: " << st.faults_detected << "/"
              << st.faults_injected << " port faults detected ("
              << fmt_double(100.0 * st.coverage(), 1) << "%)\n";
  }
  if (cli.bist_verilog) {
    auto st = run_self_test(result.datapath, result.bist, cli.patterns,
                            cli.width);
    std::cout << emit_bist_verilog(result.datapath, result.bist, st,
                                   cli.patterns, cli.width);
  }
  if (cli.dot) std::cout << result.datapath.to_dot();
  if (cli.verilog) {
    std::cout << emit_verilog(result.datapath, cli.width);
  }
  if (cli.ctrl_verilog) {
    auto lt = compute_lifetimes(dfg, sched, opts.lifetime);
    auto ctl = Controller::generate(dfg, sched,
                                    result.registers, result.datapath, lt);
    std::cout << emit_controller_verilog(result.datapath, ctl);
  }
  if (cli.vcd) {
    auto lt = compute_lifetimes(dfg, sched, opts.lifetime);
    auto ctl = Controller::generate(dfg, sched,
                                    result.registers, result.datapath, lt);
    IdMap<VarId, std::uint32_t> inputs(dfg.num_vars(), 0);
    std::uint32_t next = 1;
    for (const auto& v : dfg.vars()) {
      if (v.is_input()) inputs[v.id] = next++;
    }
    auto sim = simulate_datapath(dfg, result.datapath, ctl, inputs,
                                 cli.width);
    std::cout << emit_vcd(result.datapath, sim, cli.width);
  }
  if (cli.testbench) {
    auto lt = compute_lifetimes(dfg, sched, opts.lifetime);
    auto ctl = Controller::generate(dfg, sched,
                                    result.registers, result.datapath, lt);
    // Deterministic example stimulus: input i gets value i+1.
    IdMap<VarId, std::uint32_t> inputs(dfg.num_vars(), 0);
    std::uint32_t next = 1;
    for (const auto& v : dfg.vars()) {
      if (v.is_input()) inputs[v.id] = next++;
    }
    auto sim = simulate_datapath(dfg, result.datapath, ctl, inputs,
                                 cli.width);
    LBIST_CHECK(sim.ok(), "internal error: simulation mismatch");
    std::cout << emit_testbench(dfg, result.datapath, ctl, inputs,
                                sim, cli.width);
  }
  rtl_span.finish();
  obs.write(cli);
  return 0;
}

int cmd_optimize(const CliOptions& cli) {
  ParsedDfg design = load_design(cli.target);
  auto cse = eliminate_common_subexpressions(design.dfg);
  auto clean = remove_dead_code(cse.dfg);
  for (const auto& name : cse.removed_ops) {
    std::cerr << "# merged duplicate: " << name << "\n";
  }
  for (const auto& name : clean.removed_ops) {
    std::cerr << "# removed dead op: " << name << "\n";
  }
  std::cout << print_dfg(clean.dfg);
  return 0;
}

int cmd_schedule(const CliOptions& cli) {
  ParsedDfg design = load_design(cli.target);
  if (design.schedule.has_value()) {
    std::cout << print_dfg(design.dfg, &*design.schedule);
    return 0;
  }
  Schedule sched = [&] {
    if (cli.latency.has_value()) {
      return force_directed_schedule(design.dfg, *cli.latency);
    }
    ResourceLimits limits;
    for (const std::string& fu : cli.fu) {
      LBIST_CHECK(fu.size() >= 2, "--fu expects e.g. \"2*\"");
      const int count = std::stoi(fu.substr(0, fu.size() - 1));
      limits[kind_from_symbol(fu.substr(fu.size() - 1))] = count;
    }
    return list_schedule(design.dfg, limits);
  }();
  std::cout << print_dfg(design.dfg, &sched);
  return 0;
}

int cmd_compare(const CliOptions& cli) {
  ParsedDfg design = load_design(cli.target);
  if (!design.schedule.has_value()) {
    throw Error("design has no @step annotations; schedule it first");
  }
  std::string spec;
  if (cli.modules.has_value()) {
    spec = *cli.modules;
  } else {
    for (const auto& p :
         minimal_module_spec(design.dfg, *design.schedule)) {
      if (!spec.empty()) spec += ",";
      spec += "1" + p.label();
    }
  }
  Benchmark bench{cli.target, std::move(design), std::move(spec)};

  AreaModel model;
  model.bit_width = cli.width;
  ComparisonRow row = compare_benchmark(bench, model);
  if (cli.json) {
    std::cout << comparison_json(row).dump() << "\n";
    return 0;
  }
  TextTable t({"arm", "# Reg", "# Mux", "BIST resources", "% BIST area"});
  t.add_row({"traditional", std::to_string(row.traditional.num_registers()),
             std::to_string(row.traditional.num_mux()),
             row.traditional.bist.counts().to_string(),
             fmt_double(row.traditional.overhead_percent)});
  t.add_row({"bist-aware", std::to_string(row.testable.num_registers()),
             std::to_string(row.testable.num_mux()),
             row.testable.bist.counts().to_string(),
             fmt_double(row.testable.overhead_percent)});
  std::cout << t;
  std::cout << "reduction in BIST area: "
            << fmt_double(row.reduction_percent()) << "%\n";
  return 0;
}

int cmd_tables(const CliOptions& cli) {
  AreaModel model;
  model.bit_width = cli.width;
  auto rows = compare_paper_benchmarks(model);
  TextTable t({"DFG", "modules", "#Reg", "#Mux(T)", "%BIST(T)", "#Mux(ours)",
               "%BIST(ours)", "%reduction"});
  t.set_title("Table I reproduction");
  for (const auto& r : rows) {
    t.add_row({r.name, r.module_spec,
               std::to_string(r.testable.num_registers()),
               std::to_string(r.traditional.num_mux()),
               fmt_double(r.traditional.overhead_percent),
               std::to_string(r.testable.num_mux()),
               fmt_double(r.testable.overhead_percent),
               fmt_double(r.reduction_percent())});
  }
  std::cout << t << "\n";
  TextTable t2({"DFG", "traditional", "testable"});
  t2.set_title("Table II reproduction (minimal-area BIST solutions)");
  for (const auto& r : rows) {
    t2.add_row({r.name, r.traditional.bist.counts().to_string(),
                r.testable.bist.counts().to_string()});
  }
  std::cout << t2;
  return 0;
}

Benchmark builtin_benchmark(const std::string& name) {
  if (name == "ex1") return make_ex1();
  if (name == "ex2") return make_ex2();
  if (name == "tseng") return make_tseng1();
  if (name == "paulin") return make_paulin();
  usage("unknown benchmark: " + name);
}

/// Reads a job manifest from a path, or from stdin when the path is "-"
/// (so shell pipelines and the server client can feed jobs directly).
std::string read_manifest(const std::string& path) {
  std::ostringstream buf;
  if (path == "-") {
    buf << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) throw Error("cannot open manifest: " + path);
    buf << in.rdbuf();
  }
  return buf.str();
}

int cmd_batch(const CliOptions& cli) {
  const auto entries = parse_manifest(read_manifest(cli.target));
  if (entries.empty()) throw Error("manifest has no jobs: " + cli.target);

  MetricsRegistry metrics;
  ObsSinks obs = ObsSinks::from_cli(cli, &metrics);
  // The decision counters (binding.*, cbilbo.*, ...) belong in the batch
  // metrics dump whether or not the event stream is exported; without
  // --trace-events the sink stays counters-only and never grows.
  AlgorithmEvents counters_only(&metrics, /*keep_events=*/false);
  BatchOptions opts;
  opts.jobs = cli.jobs;
  opts.cache_capacity = cli.cache_capacity;
  opts.metrics = &metrics;
  opts.trace = obs.trace.get();
  opts.events = obs.events != nullptr ? obs.events.get() : &counters_only;
  const BatchSummary summary = run_batch(entries, opts, std::cout);
  obs.write(cli);

  if (cli.metrics_path.has_value()) {
    std::ofstream mout(*cli.metrics_path);
    if (!mout) throw Error("cannot write metrics: " + *cli.metrics_path);
    // Stamp the dump with the writing build so archived metrics stay
    // attributable; prometheus conversion ignores the extra key.
    mout << metrics.to_json().set("build", build_info_json()).dump() << "\n";
  }
  std::cerr << "batch: " << summary.ok << "/" << summary.total << " ok, "
            << summary.errors << " errors, " << summary.cache_hits
            << " cache hits\n";
  return summary.ok > 0 || summary.total == 0 ? 0 : 1;
}

int cmd_serve(const CliOptions& cli) {
  std::unique_ptr<TraceRecorder> trace;
  if (cli.trace_path.has_value()) {
    trace = std::make_unique<TraceRecorder>();
    trace->set_enabled(true);
  }
  ServerOptions opts;
  opts.port = static_cast<std::uint16_t>(cli.port);
  opts.jobs = cli.jobs;
  opts.cache_capacity = cli.cache_capacity;
  opts.max_queue = cli.max_queue;
  opts.deadline_ms = cli.deadline_ms;
  opts.shards = cli.shards;
  opts.cache_dir = cli.cache_dir;
  opts.cache_budget_bytes =
      static_cast<std::uint64_t>(cli.cache_budget_mb) << 20;
  opts.handle_signals = true;
  opts.log = &std::cerr;
  opts.trace = trace.get();
  // The server exports the trace itself as part of wait()'s graceful
  // drain, so a SIGTERM'd serve writes the file before the final shutdown
  // log instead of depending on this frame still running afterwards.
  if (cli.trace_path.has_value()) opts.trace_path = *cli.trace_path;
  opts.slow_request_ms = cli.slow_ms;
  // The server always counts decision events; keep the event objects only
  // when the user asked for the JSONL export.
  opts.keep_events = cli.trace_events_path.has_value();
  Server server(std::move(opts));
  server.start();
  server.wait();  // until SIGINT/SIGTERM; drains in-flight requests
  if (cli.metrics_path.has_value()) {
    std::ofstream mout(*cli.metrics_path);
    if (!mout) throw Error("cannot write metrics: " + *cli.metrics_path);
    mout << server.metrics().to_json().dump() << "\n";
  }
  if (cli.trace_events_path.has_value()) {
    std::ofstream out(*cli.trace_events_path);
    if (!out) throw Error("cannot write events: " + *cli.trace_events_path);
    server.events().write_jsonl(out);
  }
  return 0;
}

int cmd_client(const CliOptions& cli) {
  std::string host;
  std::uint16_t port = 0;
  parse_host_port(cli.target, &host, &port);
  const std::string manifest = read_manifest(cli.target2);
  const ClientSummary summary = run_client(host, port, manifest, std::cout);
  std::cerr << "client: " << summary.responses << " responses, " << summary.ok
            << " ok, " << summary.errors << " errors\n";
  return summary.ok > 0 || summary.responses == 0 ? 0 : 1;
}

int cmd_fuzz(const CliOptions& cli) {
  if (cli.fuzz_replay.has_value()) {
    std::ifstream in(*cli.fuzz_replay);
    if (!in) throw Error("cannot open corpus file: " + *cli.fuzz_replay);
    std::ostringstream buf;
    buf << in.rdbuf();
    const CorpusEntry entry = parse_corpus(buf.str());
    const OracleVerdict verdict =
        replay_corpus_entry(entry, cli.fuzz_inject_binding_bug);
    if (verdict.ok()) {
      std::cout << "replay: all oracles clean (" << entry.design.dfg.num_ops()
                << " ops, width " << entry.width << ")\n";
      if (entry.oracle != "none") {
        std::cout << "note: recorded failure '" << entry.oracle
                  << "' did NOT reproduce\n";
      }
      return 0;
    }
    for (const auto& f : verdict.failures) {
      std::cout << "replay: " << f.oracle << " FAILED: " << f.detail << "\n";
    }
    return 1;
  }

  FuzzOptions fo;
  fo.seed = cli.fuzz_seed;
  fo.cases = cli.fuzz_cases;
  fo.jobs = cli.jobs;
  fo.width = cli.width;
  fo.vary_width = !cli.fuzz_fixed_width;
  fo.minimize = !cli.fuzz_no_minimize;
  fo.large_shapes = cli.fuzz_large_shapes;
  fo.max_reports = cli.fuzz_max_reports;
  fo.progress_interval = cli.fuzz_progress;
  fo.inject_binding_bug = cli.fuzz_inject_binding_bug;
  if (cli.fuzz_out.has_value()) fo.corpus_dir = *cli.fuzz_out;

  const FuzzSummary summary = run_fuzz(fo, &std::cerr);
  // The build record ties a campaign digest (and its reproducers, which
  // carry the same record as a `#! build` directive) to the binary that
  // produced it.
  std::cout << "fuzz: " << summary.cases << " cases, " << summary.failures
            << " failing, digest 0x" << std::hex << summary.digest
            << std::dec << " [" << build_info_line() << "]\n";
  for (const auto& r : summary.reports) {
    std::cout << "  case " << r.case_index << " seed " << r.case_seed << ": "
              << r.oracle << " (" << r.original_ops << " -> "
              << r.minimized_ops << " ops)"
              << (r.corpus_path.empty() ? "" : " " + r.corpus_path) << "\n";
  }
  return summary.ok() ? 0 : 1;
}

std::vector<std::string> split_list(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::istringstream in(s);
  std::string part;
  while (std::getline(in, part, sep)) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

const char* binder_label(BinderKind kind) {
  switch (kind) {
    case BinderKind::Traditional: return "trad";
    case BinderKind::BistAware: return "bist";
    case BinderKind::Ralloc: return "ralloc";
    case BinderKind::Syntest: return "syntest";
    case BinderKind::CliquePartition: return "clique";
    case BinderKind::LoopAware: return "loop";
  }
  return "?";
}

/// `explore --pareto bist`: the hybrid-BIST sweep grading every
/// (module spec, binder, test configuration) point on BIST area, gate-level
/// fault coverage and total test length at once (docs/hybrid-bist.md).
int cmd_explore_hybrid(const CliOptions& cli, const ParsedDfg& design) {
  if (*cli.pareto != "bist") {
    usage("--pareto supports only 'bist', got: " + *cli.pareto);
  }
  if (!design.schedule.has_value()) {
    throw Error(
        "--pareto bist needs a scheduled design (@step annotations)");
  }
  if (!cli.fu.empty()) {
    throw Error("--pareto bist sweeps module specs, not --fu budgets");
  }
  MetricsRegistry metrics;
  ObsSinks obs = ObsSinks::from_cli(cli, &metrics);

  HybridSweepOptions opts;
  opts.area.bit_width = cli.width;
  opts.patterns = cli.patterns;
  opts.jobs = cli.jobs;
  opts.trace = obs.trace.get();
  opts.metrics = cli.metrics_path.has_value() ? &metrics : nullptr;
  if (cli.binder_given) {
    opts.binders.clear();
    for (const std::string& name : split_list(cli.binder, ',')) {
      opts.binders.push_back(binder_from_name(name));
    }
    if (opts.binders.empty()) usage("--binder gave no binders");
  }

  std::vector<std::string> specs;
  if (cli.modules.has_value()) {
    specs = split_list(*cli.modules, ';');
    if (specs.empty()) usage("--modules gave no specs");
  } else {
    std::string spec;
    for (const auto& p :
         minimal_module_spec(design.dfg, *design.schedule)) {
      if (!spec.empty()) spec += ",";
      spec += "1" + p.label();
    }
    specs.push_back(std::move(spec));
  }

  const std::vector<HybridPoint> points =
      explore_hybrid(design.dfg, *design.schedule, specs, opts);

  if (cli.json) {
    Json out = hybrid_points_json(points);
    out.set("design", Json::string(design.dfg.name()))
        .set("width", Json::number(cli.width))
        .set("patterns", Json::number(cli.patterns));
    std::cout << out.dump() << "\n";
  } else {
    std::cout << describe_hybrid_points(points);
  }
  if (cli.metrics_path.has_value()) {
    std::ofstream mout(*cli.metrics_path);
    if (!mout) throw Error("cannot write metrics: " + *cli.metrics_path);
    mout << metrics.to_json().set("build", build_info_json()).dump() << "\n";
  }
  obs.write(cli);
  return 0;
}

int cmd_explore(const CliOptions& cli) {
  ParsedDfg design = load_design(cli.target);
  if (cli.pareto.has_value()) return cmd_explore_hybrid(cli, design);
  ObsSinks obs = ObsSinks::from_cli(cli);
  ExplorerOptions opts;
  opts.area.bit_width = cli.width;
  opts.jobs = cli.jobs;
  opts.trace = obs.trace.get();
  opts.events = obs.events.get();
  if (cli.checkpoint.has_value()) opts.checkpoint = *cli.checkpoint;
  if (cli.binder_given) {
    opts.binders.clear();
    for (const std::string& name : split_list(cli.binder, ',')) {
      opts.binders.push_back(binder_from_name(name));
    }
    if (opts.binders.empty()) usage("--binder gave no binders");
  }

  std::vector<DesignPoint> points;
  if (design.schedule.has_value()) {
    if (!cli.fu.empty()) {
      throw Error(
          "--fu sweeps unscheduled designs; this one has @step annotations"
          " (use --modules \"S1;S2;...\")");
    }
    std::vector<std::string> specs;
    if (cli.modules.has_value()) {
      specs = split_list(*cli.modules, ';');
      if (specs.empty()) usage("--modules gave no specs");
    } else {
      std::string spec;
      for (const auto& p :
           minimal_module_spec(design.dfg, *design.schedule)) {
        if (!spec.empty()) spec += ",";
        spec += "1" + p.label();
      }
      specs.push_back(std::move(spec));
    }
    points = explore_module_specs(design.dfg, *design.schedule, specs, opts);
  } else {
    std::vector<ResourceLimits> budgets;
    for (const std::string& fu : cli.fu) {
      ResourceLimits limits;
      for (const std::string& part : split_list(fu, ',')) {
        LBIST_CHECK(part.size() >= 2, "--fu expects e.g. \"2*\" or \"1+,2*\"");
        const int count = std::stoi(part.substr(0, part.size() - 1));
        limits[kind_from_symbol(part.substr(part.size() - 1))] = count;
      }
      budgets.push_back(std::move(limits));
    }
    if (budgets.empty()) {
      // Default sweep: 1..3 units of every operation kind the design uses.
      std::set<OpKind> used;
      for (const auto& op : design.dfg.ops()) used.insert(op.kind);
      for (int n = 1; n <= 3; ++n) {
        ResourceLimits limits;
        for (OpKind kind : used) limits[kind] = n;
        budgets.push_back(std::move(limits));
      }
    }
    points = explore_resource_budgets(design.dfg, budgets, opts);
  }

  if (cli.json) {
    const auto front = pareto_front(points);
    Json arr = Json::array();
    for (std::size_t i = 0; i < points.size(); ++i) {
      const DesignPoint& p = points[i];
      const bool on_front =
          std::find(front.begin(), front.end(), i) != front.end();
      arr.push_back(Json::object()
                        .set("label", Json::string(p.label))
                        .set("binder", Json::string(binder_label(p.binder)))
                        .set("latency", Json::number(p.latency))
                        .set("registers", Json::number(p.num_registers))
                        .set("mux", Json::number(p.num_mux))
                        .set("functional_area", Json::number(p.functional_area))
                        .set("bist_extra", Json::number(p.bist_extra))
                        .set("overhead_percent",
                             Json::number(p.overhead_percent))
                        .set("total_area", Json::number(p.total_area()))
                        .set("pareto", Json::boolean(on_front)));
    }
    std::cout << arr.dump() << "\n";
  } else {
    std::cout << describe_points(points);
  }
  obs.write(cli);
  return 0;
}

int cmd_metrics(const CliOptions& cli) {
  const Json dump = Json::parse(read_manifest(cli.target));
  if (cli.prom) {
    std::cout << prometheus_exposition(dump);
  } else {
    std::cout << dump.dump() << "\n";
  }
  return 0;
}

int cmd_version(const CliOptions& cli) {
  if (cli.json) {
    std::cout << build_info_json().dump() << "\n";
  } else {
    std::cout << build_info_string();
  }
  return 0;
}

int cmd_bench(const CliOptions& cli) {
  Benchmark bench = builtin_benchmark(cli.target);
  std::cout << "# module spec: " << bench.module_spec << "\n"
            << print_dfg(bench.design.dfg, &*bench.design.schedule);
  return 0;
}

int run_command(const CliOptions& cli) {
  if (cli.command == "synth") return cmd_synth(cli);
  if (cli.command == "compare") return cmd_compare(cli);
  if (cli.command == "tables") return cmd_tables(cli);
  if (cli.command == "bench") return cmd_bench(cli);
  if (cli.command == "schedule") return cmd_schedule(cli);
  if (cli.command == "optimize") return cmd_optimize(cli);
  if (cli.command == "batch") return cmd_batch(cli);
  if (cli.command == "serve") return cmd_serve(cli);
  if (cli.command == "client") return cmd_client(cli);
  if (cli.command == "fuzz") return cmd_fuzz(cli);
  if (cli.command == "explore") return cmd_explore(cli);
  if (cli.command == "metrics") return cmd_metrics(cli);
  if (cli.command == "version") return cmd_version(cli);
  usage("unknown command: " + cli.command);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliOptions cli = parse_args(argc, argv);
    ProfileScope profile(cli);
    const int rc = run_command(cli);
    profile.write();
    return rc;
  } catch (const lbist::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
