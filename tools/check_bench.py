#!/usr/bin/env python3
"""CI perf-regression gate for BENCH_*.json artifacts.

Compares a freshly measured benchmark artifact against a checked-in
baseline (bench/baselines/) and fails when any shared row's wall-clock
regresses beyond the tolerance:

    tools/check_bench.py --baseline bench/baselines/BENCH_scaling.json \
                         --current build/bench/BENCH_scaling.json \
                         --max-regression 25

Rows are matched by their "name" key.  For each matched pair the timing
metric (first of "wall_ms", "p50_ms" present in both) is compared;
`current > baseline * (1 + max_regression/100)` fails the gate.  Rows
present on only one side are reported but never fail the gate, so the
baseline does not have to be refreshed in the same commit that adds a
scenario.  Speedups are reported too — a large one is a hint that the
baseline is stale and should be refreshed (see docs/performance.md).

Stdlib only; exit code 0 = pass, 1 = regression, 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys

METRIC_KEYS = ("wall_ms", "p50_ms")


def load_rows(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = doc.get("results", [])
    out = {}
    for row in rows:
        name = row.get("name")
        if name is None:
            continue
        if name in out:
            print(f"check_bench: duplicate row '{name}' in {path}",
                  file=sys.stderr)
            sys.exit(2)
        out[name] = row
    return out


def pick_metric(base_row, cur_row):
    for key in METRIC_KEYS:
        if key in base_row and key in cur_row:
            return key
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="checked-in baseline BENCH_*.json")
    ap.add_argument("--current", required=True,
                    help="freshly measured BENCH_*.json")
    ap.add_argument("--max-regression", type=float, default=25.0,
                    help="max allowed wall-clock regression, percent "
                         "(default: 25)")
    args = ap.parse_args()

    base = load_rows(args.baseline)
    cur = load_rows(args.current)

    failures = []
    compared = 0
    for name in sorted(base):
        if name not in cur:
            print(f"  [gone] {name}: in baseline only (not compared)")
            continue
        metric = pick_metric(base[name], cur[name])
        if metric is None:
            print(f"  [skip] {name}: no shared timing metric")
            continue
        b = float(base[name][metric])
        c = float(cur[name][metric])
        if b <= 0:
            print(f"  [skip] {name}: non-positive baseline {metric}={b}")
            continue
        compared += 1
        delta_pct = 100.0 * (c - b) / b
        verdict = "ok"
        if delta_pct > args.max_regression:
            verdict = "FAIL"
            failures.append(name)
        elif delta_pct < -args.max_regression:
            verdict = "faster (stale baseline?)"
        print(f"  [{verdict:>4}] {name}: {metric} {b:.1f} -> {c:.1f} ms "
              f"({delta_pct:+.1f}%)")
    for name in sorted(cur):
        if name not in base:
            print(f"  [new ] {name}: not in baseline (not compared)")

    if compared == 0:
        print("check_bench: no comparable rows — baseline/current mismatch?",
              file=sys.stderr)
        sys.exit(2)
    if failures:
        print(f"check_bench: {len(failures)} row(s) regressed more than "
              f"{args.max_regression:.0f}%: {', '.join(failures)}",
              file=sys.stderr)
        sys.exit(1)
    print(f"check_bench: {compared} row(s) within "
          f"{args.max_regression:.0f}% of baseline")


if __name__ == "__main__":
    main()
