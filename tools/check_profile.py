#!/usr/bin/env python3
"""CI shape check for sampling-profiler artifacts.

Validates the folded-stack export (`--profile FILE`, bench_obs
--profile-ops) and optionally the JSON report written next to it:

    tools/check_profile.py prof.folded --json prof.folded.json \
                           --expect-span binding --expect-span interconnect

Folded file: every non-empty line must be `frames count` where frames is a
non-empty ';'-separated stack (no empty frame) and count a positive
integer.  JSON report: must carry the lowbist-profile-v1 format tag, a
positive sample total, and per-span self shares that sum to <= 1.0 (each
sample has exactly one innermost span, so the shares partition the
samples).  --expect-span NAME (repeatable) fails unless NAME appears in
the span table with self_samples > 0 — the end-to-end proof that span
attribution survived signal delivery, the ring, and symbolization.

Stdlib only; exit code 0 = pass, 1 = check failed, 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys

FORMAT_TAG = "lowbist-profile-v1"


def fail(msg):
    print(f"check_profile: {msg}", file=sys.stderr)
    sys.exit(1)


def check_folded(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"check_profile: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    stacks = 0
    total = 0
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        frames, sep, count = line.rpartition(" ")
        if not sep or not frames:
            fail(f"{path}:{lineno}: not 'frames count': {line!r}")
        if not count.isdigit() or int(count) <= 0:
            fail(f"{path}:{lineno}: count must be a positive integer, "
                 f"got {count!r}")
        if any(not frame for frame in frames.split(";")):
            fail(f"{path}:{lineno}: empty frame in stack {frames!r}")
        stacks += 1
        total += int(count)
    if stacks == 0:
        fail(f"{path}: no stacks (profiled run took no samples?)")
    print(f"  folded: {stacks} unique stacks, {total} samples")
    return total


def check_json(path, expected_spans):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_profile: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("format") != FORMAT_TAG:
        fail(f"{path}: format is {doc.get('format')!r}, want {FORMAT_TAG!r}")
    samples = doc.get("samples", 0)
    if not isinstance(samples, int) or samples <= 0:
        fail(f"{path}: samples must be a positive integer, got {samples!r}")
    spans = {s["name"]: s for s in doc.get("spans", [])}
    self_share_sum = sum(s.get("self_share", 0.0) for s in spans.values())
    if self_share_sum > 1.0 + 1e-9:
        fail(f"{path}: span self shares sum to {self_share_sum:.6f} > 1.0 "
             f"(shares must partition the samples)")
    for name, s in sorted(spans.items()):
        if s.get("self_samples", -1) < 0 or s.get("total_samples", -1) < 0:
            fail(f"{path}: span {name!r} has negative sample counts")
        if s["self_samples"] > s["total_samples"]:
            fail(f"{path}: span {name!r} self {s['self_samples']} > "
                 f"total {s['total_samples']}")
    for name in expected_spans:
        if name not in spans:
            fail(f"{path}: expected span {name!r} missing from span table "
                 f"(have: {', '.join(sorted(spans)) or 'none'})")
        if spans[name]["self_samples"] <= 0:
            fail(f"{path}: expected span {name!r} took no self samples")
    print(f"  json: {samples} samples, {len(spans)} spans, "
          f"self shares sum {self_share_sum:.3f}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("folded", help="folded-stack export to validate")
    ap.add_argument("--json", dest="json_path",
                    help="JSON report written next to the folded export")
    ap.add_argument("--expect-span", action="append", default=[],
                    metavar="NAME",
                    help="fail unless NAME has self samples (repeatable)")
    args = ap.parse_args()

    if args.expect_span and not args.json_path:
        print("check_profile: --expect-span needs --json", file=sys.stderr)
        sys.exit(2)

    check_folded(args.folded)
    if args.json_path:
        check_json(args.json_path, args.expect_span)
    print("check_profile: ok")


if __name__ == "__main__":
    main()
