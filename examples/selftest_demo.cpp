// A manufactured chip testing itself: synthesize the diff-eq data path,
// compute the golden signatures, then "manufacture" chips with various
// defects and run the on-chip test program against each — the pass/fail
// story the BIST area overhead buys.
//
// Run:  ./selftest_demo

#include <iostream>

#include "bist/selftest.hpp"
#include "bist/verilog_bist.hpp"
#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"

int main() {
  using namespace lbist;
  constexpr int kWidth = 8;
  constexpr int kPatterns = 250;

  Benchmark bench = make_paulin();
  SynthesisOptions opts;
  opts.binder = BinderKind::BistAware;
  opts.area.bit_width = kWidth;
  SynthesisResult chip = Synthesizer(opts).run(
      bench.design.dfg, *bench.design.schedule,
      parse_module_spec(bench.module_spec));

  std::cout << "=== the design ===\n" << chip.describe(bench.design.dfg);

  std::cout << "\n=== burning golden signatures into the test ROM ===\n";
  SelfTestResult st =
      run_self_test(chip.datapath, chip.bist, kPatterns, kWidth);
  for (std::size_t m = 0; m < chip.datapath.modules.size(); ++m) {
    std::cout << "  " << chip.datapath.modules[m].name << ":";
    for (std::uint32_t sig : st.golden_signatures[m]) {
      std::cout << " 0x" << std::hex << sig << std::dec;
    }
    std::cout << "\n";
  }

  std::cout << "\n=== production test: " << st.faults_injected
            << " possible port defects, " << st.faults_detected
            << " caught by the self-test ("
            << 100.0 * st.coverage() << "%) ===\n";
  if (!st.escapes.empty()) {
    std::cout << "escapes (aliased or unexcited):\n";
    for (const auto& e : st.escapes) {
      const char* site =
          e.fault.site == StuckFault::Site::LeftPort
              ? "left port"
              : (e.fault.site == StuckFault::Site::RightPort ? "right port"
                                                             : "output");
      std::cout << "  " << chip.datapath.modules[e.module].name << " "
                << site << " bit " << e.fault.bit << " stuck-at-"
                << (e.fault.stuck_one ? 1 : 0) << "\n";
    }
  }

  std::cout << "\n=== the same test, in silicon ===\n";
  const std::string rtl =
      emit_bist_verilog(chip.datapath, chip.bist, st, kPatterns, kWidth);
  // Print the header and controller tail; the full file is long.
  std::cout << rtl.substr(0, rtl.find("module lowbist_cbilbo"))
            << "...\n(" << rtl.size()
            << " bytes of self-testing Verilog total; --bist-verilog in "
               "the CLI dumps it all)\n";
  return 0;
}
