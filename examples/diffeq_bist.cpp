// The Paulin/HAL differential-equation solver end to end: force-directed
// rescheduling check, synthesis with every binder style (traditional,
// BIST-aware, RALLOC-like, SYNTEST-like), BIST solutions, test sessions,
// and a structural Verilog dump of the testable data path.
//
// Run:  ./diffeq_bist

#include <iostream>

#include "bist/sessions.hpp"
#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "rtl/verilog.hpp"
#include "support/table.hpp"

int main() {
  using namespace lbist;

  Benchmark bench = make_paulin();
  const Dfg& dfg = bench.design.dfg;
  const Schedule& sched = *bench.design.schedule;
  const auto protos = parse_module_spec(bench.module_spec);

  std::cout << "=== Paulin differential-equation benchmark ===\n\n";
  std::cout << print_dfg(dfg, &sched) << "\n";

  TextTable table({"binder", "# Reg", "# Mux", "BIST resources",
                   "% BIST area", "test sessions"});
  table.set_title("Binder styles on the diff-eq data path");

  struct Arm {
    const char* label;
    BinderKind kind;
  };
  for (Arm arm : {Arm{"Traditional", BinderKind::Traditional},
                  Arm{"BIST-aware (ours)", BinderKind::BistAware},
                  Arm{"RALLOC-style", BinderKind::Ralloc},
                  Arm{"SYNTEST-style", BinderKind::Syntest}}) {
    SynthesisOptions opts;
    opts.binder = arm.kind;
    SynthesisResult result = Synthesizer(opts).run(dfg, sched, protos);
    auto sessions = schedule_test_sessions(result.datapath, result.bist);
    // The RALLOC/SYNTEST labellings carry no per-module embeddings, so no
    // session plan can be derived for them.
    const bool has_plan = sessions.num_sessions > 0;
    table.add_row({arm.label, std::to_string(result.num_registers()),
                   std::to_string(result.num_mux()),
                   result.bist.counts().to_string(),
                   fmt_double(result.overhead_percent),
                   has_plan ? std::to_string(sessions.num_sessions) : "-"});
  }
  std::cout << table << "\n";

  SynthesisOptions ours;
  ours.binder = BinderKind::BistAware;
  SynthesisResult best = Synthesizer(ours).run(dfg, sched, protos);
  std::cout << best.describe(dfg) << "\n";
  std::cout << "--- structural Verilog (testable data path) ---\n"
            << emit_verilog(best.datapath) << "\n";
  return 0;
}
