// Section III of the paper, replayed step by step on the running example:
// the conflict graph with sharing degrees and max-clique sizes (Fig. 4),
// the structured PVES, every ΔSD coloring decision (the binder's trace),
// the Lemma-2 check, and the final data paths of Fig. 5 with their
// minimal-area BIST solutions.
//
// Run:  ./paper_walkthrough

#include <iostream>

#include "binding/bist_aware_binder.hpp"
#include "binding/cbilbo_check.hpp"
#include "binding/enumerate.hpp"
#include "binding/sharing.hpp"
#include "binding/traditional_binder.hpp"
#include "bist/allocator.hpp"
#include "core/annealed_binder.hpp"
#include "dfg/benchmarks.hpp"
#include "graph/chordal.hpp"
#include "graph/conflict.hpp"
#include "interconnect/build_datapath.hpp"
#include "support/table.hpp"

int main() {
  using namespace lbist;

  Benchmark bench = make_ex1();
  const Dfg& dfg = bench.design.dfg;
  std::cout << "=== the scheduled DFG (paper Fig. 2) ===\n"
            << print_dfg(dfg, &*bench.design.schedule) << "\n";

  auto lt = compute_lifetimes(dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(dfg, lt);
  auto mb = ModuleBinding::bind(dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  SharingAnalysis sa(dfg, mb);

  std::cout << "=== conflict graph with (SD, MCS) — paper Fig. 4 ===\n";
  auto peo = perfect_elimination_order(cg.graph);
  auto mcs = max_clique_through_vertex(cg.graph, *peo);
  TextTable fig4({"var", "lifetime", "SD", "MCS"});
  for (std::size_t v = 0; v < cg.vars.size(); ++v) {
    const auto& iv = lt[cg.vars[v]];
    fig4.add_row({dfg.var(cg.vars[v]).name,
                  "(" + std::to_string(iv.birth) + "," +
                      std::to_string(iv.death) + "]",
                  std::to_string(sa.sd(cg.vars[v])),
                  std::to_string(mcs[v])});
  }
  std::cout << fig4 << "\n";

  std::cout << "=== the binder's decisions (Section III.A.2) ===\n";
  std::vector<std::string> trace;
  auto rb = bind_registers_bist_aware(dfg, cg, mb, {}, &trace);
  for (const auto& line : trace) std::cout << "  " << line << "\n";
  std::cout << "final binding: " << rb.to_string(dfg) << "\n\n";

  std::cout << "=== Lemma 2: forced CBILBOs per binding ===\n";
  auto rb_trad = bind_registers_traditional(dfg, cg, lt);
  std::cout << "  testable binding:    "
            << forced_cbilbos(dfg, mb, rb).size() << " forced CBILBO(s)\n";
  std::cout << "  left-edge binding:   "
            << forced_cbilbos(dfg, mb, rb_trad).size()
            << " forced CBILBO(s) — " << rb_trad.to_string(dfg) << "\n\n";

  std::cout << "=== the resulting data paths (paper Fig. 5) ===\n";
  AreaModel model;
  BistAllocator alloc(model);
  for (auto [label, binding] :
       {std::pair<const char*, const RegisterBinding*>{"testable (5a)", &rb},
        {"traditional (5b)", &rb_trad}}) {
    auto dp = build_datapath(dfg, mb, *binding);
    auto sol = alloc.solve(dp);
    std::cout << "--- " << label << " ---\n"
              << dp.describe() << sol.describe(dp) << "\n";
  }

  std::cout << "=== the whole solution space (the paper's '108') ===\n";
  const std::size_t total = count_bindings_exact(dfg, cg, 3);
  double best = 1e18, worst = 0;
  (void)enumerate_bindings(dfg, cg, 3, [&](const RegisterBinding& b) {
    if (b.num_regs() == 3) {
      const double c = binding_cost(dfg, mb, b, model);
      best = std::min(best, c);
      worst = std::max(worst, c);
    }
    return true;
  });
  std::cout << total << " minimum-register bindings exist for this "
            << "reconstruction (the paper's DFG had 108);\n"
            << "total cost (BIST extra + muxes) spans " << best << ".."
            << worst << " gates — only a subset is testable cheaply,\n"
            << "exactly the point of Section III.\n";
  return 0;
}
