// What the test registers actually do: this example drops to the register
// level and walks through a BIST session by hand — LFSR pattern generation,
// MISR signature compaction, fault detection, the CBILBO's concurrent
// generate+compact behaviour — then builds the full fault-simulated test
// plan for a FIR filter data path synthesized with the BIST-aware binder.
//
// Run:  ./bist_signatures

#include <iomanip>
#include <iostream>

#include "bist/fault_sim.hpp"
#include "bist/test_plan.hpp"
#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "rtl/simulate.hpp"
#include "sched/list_sched.hpp"
#include "support/lfsr.hpp"

int main() {
  using namespace lbist;
  constexpr int kWidth = 8;

  std::cout << "--- 1. A TPG is an LFSR: first 8 patterns of each seed ---\n";
  Lfsr tpg_a(kWidth, 0x5);
  Lfsr tpg_b(kWidth, 0x13);
  for (int i = 0; i < 8; ++i) {
    std::cout << "  pattern " << i << ":  L=0x" << std::hex << std::setw(2)
              << std::setfill('0') << tpg_a.state() << "  R=0x"
              << std::setw(2) << tpg_b.state() << std::dec << "\n";
    tpg_a.step();
    tpg_b.step();
  }
  std::cout << "  (period " << tpg_a.period()
            << "; all non-zero states visited)\n\n";

  std::cout << "--- 2. An SA is a MISR: signatures split good from bad ---\n";
  Misr good(kWidth), bad(kWidth);
  Lfsr l(kWidth, 0x5), r(kWidth, 0x13);
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t y = eval_op(OpKind::Add, l.state(), r.state(),
                                    kWidth);
    good.absorb(y);
    // The faulty adder has output bit 3 stuck at 1.
    bad.absorb(y | (1u << 3));
    l.step();
    r.step();
  }
  std::cout << "  golden signature: 0x" << std::hex << good.signature()
            << "   faulty: 0x" << bad.signature() << std::dec << "  -> "
            << (good.signature() != bad.signature() ? "DETECTED"
                                                    : "missed")
            << "\n\n";

  std::cout << "--- 3. A CBILBO generates and compacts at once ---\n";
  Cbilbo cb(kWidth, 0x5);
  for (int i = 0; i < 50; ++i) {
    // Self-adjacent loop: the module output feeds the register that also
    // drives the module (the situation Lemma 2 characterizes).
    const std::uint32_t y =
        eval_op(OpKind::Mul, cb.pattern(), 0x3, kWidth);
    cb.step(y);
  }
  std::cout << "  signature after 50 concurrent cycles: 0x" << std::hex
            << cb.signature() << std::dec << "\n\n";

  std::cout << "--- 4. Why two DISTINCT TPGs (coverage, 250 patterns) ---\n";
  for (OpKind kind : {OpKind::Sub, OpKind::Xor, OpKind::Lt}) {
    const auto indep =
        simulate_module_bist(ModuleProto{{kind}}, kWidth, 250, true);
    const auto corr =
        simulate_module_bist(ModuleProto{{kind}}, kWidth, 250, false);
    std::cout << "  " << to_string(kind) << ": independent "
              << 100.0 * indep.coverage() << "%  vs  one shared sequence "
              << 100.0 * corr.coverage() << "%\n";
  }

  std::cout << "\n--- 5. Full test plan for a FIR8 data path ---\n";
  Dfg fir = make_fir(8);
  Schedule sched = list_schedule(fir, {{OpKind::Mul, 2}, {OpKind::Add, 2}});
  SynthesisOptions opts;
  opts.binder = BinderKind::BistAware;
  opts.area.bit_width = kWidth;
  SynthesisResult result =
      Synthesizer(opts).run(fir, sched, minimal_module_spec(fir, sched));
  std::cout << result.describe(fir);
  TestPlan plan = build_test_plan(result.datapath, result.bist, 250, kWidth);
  std::cout << plan.describe(result.datapath);
  return 0;
}
