// Quickstart: synthesize the paper's running example (Fig. 2) twice — once
// with traditional area-only binding and once with the BIST-aware binding —
// and compare the minimal-area BIST solutions (the Fig. 5 experiment).
//
// Run:  ./quickstart

#include <iostream>

#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"

int main() {
  using namespace lbist;

  Benchmark bench = make_ex1();
  std::cout << "=== " << bench.name << " (module assignment "
            << bench.module_spec << ") ===\n\n";
  std::cout << "Scheduled DFG:\n"
            << print_dfg(bench.design.dfg, &*bench.design.schedule) << "\n";

  ComparisonRow row = compare_benchmark(bench);

  std::cout << "--- Traditional HLS (minimum coloring, Fig. 5(b)) ---\n"
            << row.traditional.describe(bench.design.dfg) << "\n";
  std::cout << "--- Testable HLS (this paper, Fig. 5(a)) ---\n"
            << row.testable.describe(bench.design.dfg) << "\n";

  std::cout << "BIST area overhead: " << row.traditional.overhead_percent
            << "% -> " << row.testable.overhead_percent << "%  ("
            << row.reduction_percent() << "% reduction)\n";
  return 0;
}
