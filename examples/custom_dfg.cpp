// Building your own design: write a behaviour in the textual DFG format (or
// with the Dfg builder API), schedule it with the resource-constrained list
// scheduler, and synthesize a low-BIST-overhead data path.  Demonstrates
// the full public API surface a downstream user touches.
//
// Run:  ./custom_dfg

#include <iostream>

#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/parse.hpp"
#include "sched/list_sched.hpp"
#include "support/table.hpp"

int main() {
  using namespace lbist;

  // A 4-tap FIR filter built with the programmatic API, scheduled under a
  // 2-multiplier, 1-adder resource budget.
  Dfg fir = make_fir(4);
  Schedule sched = list_schedule(fir, {{OpKind::Mul, 2}, {OpKind::Add, 1}});
  std::cout << "FIR4 scheduled into " << sched.num_steps() << " steps:\n"
            << print_dfg(fir, &sched) << "\n";

  SynthesisOptions opts;
  opts.binder = BinderKind::BistAware;
  auto protos = minimal_module_spec(fir, sched);
  SynthesisResult result = Synthesizer(opts).run(fir, sched, protos);
  std::cout << result.describe(fir) << "\n";

  // The same flow from a textual description: a small polynomial evaluator
  // y = (a*x + b) * x + c (Horner), with x reused across steps.
  auto parsed = parse_dfg(R"(
dfg horner
input a b c x
op mul1 * a x -> t1 @1
op add1 + t1 b -> t2 @2
op mul2 * t2 x -> t3 @3
op add2 + t3 c -> y @4
output y
)");
  const Dfg& dfg = parsed.dfg;
  SynthesisResult horner = Synthesizer(opts).run(
      dfg, *parsed.schedule, parse_module_spec("1+,1*"));
  std::cout << "=== horner ===\n" << horner.describe(dfg);
  std::cout << "DFG in Graphviz form:\n" << dfg.to_dot();
  return 0;
}
