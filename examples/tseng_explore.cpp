// Exploring module-assignment tradeoffs on the Tseng benchmark: the same
// scheduled DFG synthesized under the paper's two module assignments
// (Tseng1 = six single-function units, Tseng2 = one adder + three ALUs) and
// under an automatically derived minimal spec, with the resulting conflict
// graph, I-paths and BIST solutions.
//
// Run:  ./tseng_explore

#include <iostream>

#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"
#include "graph/conflict.hpp"
#include "rtl/ipath.hpp"
#include "support/table.hpp"

int main() {
  using namespace lbist;

  TextTable table({"assignment", "modules", "# Reg", "# Mux",
                   "trad % BIST", "ours % BIST", "reduction %"});
  table.set_title("Tseng benchmark under different module assignments");

  for (Benchmark bench : {make_tseng1(), make_tseng2()}) {
    ComparisonRow row = compare_benchmark(bench);
    table.add_row(
        {bench.name, bench.module_spec,
         std::to_string(row.testable.num_registers()),
         std::to_string(row.testable.num_mux()),
         fmt_double(row.traditional.overhead_percent),
         fmt_double(row.testable.overhead_percent),
         fmt_double(row.reduction_percent())});
  }
  std::cout << table << "\n";

  // Detail view of the ALU variant.
  Benchmark bench = make_tseng2();
  ComparisonRow row = compare_benchmark(bench);
  std::cout << "Tseng2 testable design:\n"
            << row.testable.describe(bench.design.dfg) << "\n";

  // Show the I-path inventory the BIST allocator works with.
  auto paths = simple_ipaths(row.testable.datapath);
  std::cout << "simple I-paths: " << paths.size() << "\n";
  auto transparent = transparent_ipaths(row.testable.datapath);
  std::cout << "transparent (length-2) I-paths through identity modes: "
            << transparent.size() << "\n";
  return 0;
}
