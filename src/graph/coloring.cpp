#include "graph/coloring.hpp"

#include <algorithm>

#include "graph/chordal.hpp"
#include "support/check.hpp"

namespace lbist {

Coloring greedy_color(const UndirectedGraph& g,
                      const std::vector<std::size_t>& order) {
  const std::size_t n = g.num_vertices();
  LBIST_CHECK(order.size() == n, "order must cover every vertex");
  Coloring result;
  result.color.assign(n, SIZE_MAX);
  for (std::size_t v : order) {
    std::vector<bool> used(result.num_colors + 1, false);
    for (std::size_t u : g.neighbors(v)) {
      if (result.color[u] != SIZE_MAX && result.color[u] < used.size()) {
        used[result.color[u]] = true;
      }
    }
    std::size_t c = 0;
    while (c < used.size() && used[c]) ++c;
    result.color[v] = c;
    result.num_colors = std::max(result.num_colors, c + 1);
  }
  return result;
}

bool is_proper_coloring(const UndirectedGraph& g, const Coloring& c) {
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    if (c.color[v] >= c.num_colors) return false;
    for (std::size_t u : g.neighbors(v)) {
      if (c.color[u] == c.color[v]) return false;
    }
  }
  return true;
}

std::size_t chordal_clique_number(const UndirectedGraph& g) {
  auto order = perfect_elimination_order(g);
  LBIST_CHECK(order.has_value(), "graph is not chordal");
  std::size_t best = 0;
  for (const auto& clique : elimination_cliques(g, *order)) {
    best = std::max(best, clique.size());
  }
  return best;
}

}  // namespace lbist
