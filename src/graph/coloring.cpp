#include "graph/coloring.hpp"

#include <algorithm>

#include "graph/chordal.hpp"
#include "support/check.hpp"

namespace lbist {

Coloring greedy_color(const UndirectedGraph& g,
                      const std::vector<std::size_t>& order) {
  const std::size_t n = g.num_vertices();
  LBIST_CHECK(order.size() == n, "order must cover every vertex");
  Coloring result;
  result.color.assign(n, SIZE_MAX);
  // Stamp-marking instead of a fresh vector<bool> per vertex: identical
  // first-free-color choice, no per-step allocation.
  std::vector<std::size_t> used_at;
  std::size_t stamp = 0;
  for (std::size_t v : order) {
    ++stamp;
    used_at.resize(result.num_colors + 1, 0);
    g.row(v).for_each([&](std::size_t u) {
      const std::size_t cu = result.color[u];
      if (cu != SIZE_MAX && cu < used_at.size()) used_at[cu] = stamp;
    });
    std::size_t c = 0;
    while (c < used_at.size() && used_at[c] == stamp) ++c;
    result.color[v] = c;
    result.num_colors = std::max(result.num_colors, c + 1);
  }
  return result;
}

bool is_proper_coloring(const UndirectedGraph& g, const Coloring& c) {
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    if (c.color[v] >= c.num_colors) return false;
    bool clash = false;
    g.row(v).for_each([&](std::size_t u) {
      clash = clash || c.color[u] == c.color[v];
    });
    if (clash) return false;
  }
  return true;
}

std::size_t chordal_clique_number(const UndirectedGraph& g) {
  auto order = perfect_elimination_order(g);
  LBIST_CHECK(order.has_value(), "graph is not chordal");
  std::size_t best = 0;
  for (const auto& clique : elimination_cliques(g, *order)) {
    best = std::max(best, clique.size());
  }
  return best;
}

}  // namespace lbist
