#include "graph/undirected_graph.hpp"

namespace lbist {

UndirectedGraph::UndirectedGraph(std::size_t n) {
  const std::size_t words_per_row = (n + 63) / 64;
  rows_.resize(n);
  words_.assign(n * words_per_row, 0);
  for (std::size_t v = 0; v < n; ++v) {
    rows_[v].offset = v * words_per_row;
    rows_[v].word_lo = 0;
    rows_[v].word_hi = static_cast<std::uint32_t>(words_per_row);
  }
}

UndirectedGraph::UndirectedGraph(
    std::size_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  rows_.resize(n);
  // Pass 1: each row's neighbour word span.
  std::vector<std::uint32_t> lo(n, UINT32_MAX);
  std::vector<std::uint32_t> hi(n, 0);
  auto widen = [&](std::uint32_t v, std::uint32_t nbr) {
    const auto w = nbr / 64;
    lo[v] = std::min(lo[v], w);
    hi[v] = std::max(hi[v], w + 1);
  };
  for (const auto& [a, b] : edges) {
    LBIST_CHECK(a < n && b < n, "vertex out of range");
    LBIST_CHECK(a != b, "self loops not allowed");
    widen(a, b);
    widen(b, a);
  }
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (lo[v] == UINT32_MAX) lo[v] = hi[v] = 0;  // isolated vertex
    rows_[v].offset = total;
    rows_[v].word_lo = lo[v];
    rows_[v].word_hi = hi[v];
    total += hi[v] - lo[v];
  }
  words_.assign(total, 0);
  // Pass 2: set the bits (add_edge dedupes and counts).
  for (const auto& [a, b] : edges) add_edge(a, b);
}

void UndirectedGraph::add_edge(std::size_t a, std::size_t b) {
  LBIST_CHECK(a < rows_.size() && b < rows_.size(), "vertex out of range");
  LBIST_CHECK(a != b, "self loops not allowed");
  const RowMeta& ra = rows_[a];
  const RowMeta& rb = rows_[b];
  const std::size_t wa = b / 64;
  const std::size_t wb = a / 64;
  LBIST_CHECK(wa >= ra.word_lo && wa < ra.word_hi && wb >= rb.word_lo &&
                  wb < rb.word_hi,
              "edge outside packed row windows");
  std::uint64_t& word_a = words_[ra.offset + (wa - ra.word_lo)];
  const std::uint64_t bit_a = std::uint64_t{1} << (b % 64);
  if ((word_a & bit_a) == 0) {
    word_a |= bit_a;
    words_[rb.offset + (wb - rb.word_lo)] |= std::uint64_t{1} << (a % 64);
    ++num_edges_;
  }
}

UndirectedGraph UndirectedGraph::complement() const {
  const std::size_t n = num_vertices();
  UndirectedGraph g(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (!adjacent(a, b)) g.add_edge(a, b);
    }
  }
  return g;
}

}  // namespace lbist
