#include "graph/undirected_graph.hpp"

namespace lbist {

UndirectedGraph::UndirectedGraph(std::size_t n) : rows_(n, DynBitset(n)) {}

void UndirectedGraph::add_edge(std::size_t a, std::size_t b) {
  LBIST_CHECK(a < rows_.size() && b < rows_.size(), "vertex out of range");
  LBIST_CHECK(a != b, "self loops not allowed");
  if (!rows_[a].test(b)) {
    rows_[a].set(b);
    rows_[b].set(a);
    ++num_edges_;
  }
}

UndirectedGraph UndirectedGraph::complement() const {
  const std::size_t n = num_vertices();
  UndirectedGraph g(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (!adjacent(a, b)) g.add_edge(a, b);
    }
  }
  return g;
}

}  // namespace lbist
