#include "graph/bron_kerbosch.hpp"

#include <algorithm>

namespace lbist {

namespace {

struct Search {
  const UndirectedGraph& g;
  std::vector<std::size_t> best;

  void expand(std::vector<std::size_t>& r, DynBitset p, DynBitset x) {
    if (!p.any() && !x.any()) {
      if (r.size() > best.size()) best = r;
      return;
    }
    // Bound: even taking all of P cannot beat the incumbent.
    if (r.size() + p.count() <= best.size()) return;

    // Pivot: vertex of P ∪ X with the most neighbours in P.
    std::size_t pivot = 0;
    std::size_t pivot_degree = 0;
    bool have_pivot = false;
    for (std::size_t v = 0; v < g.num_vertices(); ++v) {
      if (!p.test(v) && !x.test(v)) continue;
      DynBitset np = p;
      g.row(v).and_into(np);
      const std::size_t d = np.count();
      if (!have_pivot || d > pivot_degree) {
        pivot = v;
        pivot_degree = d;
        have_pivot = true;
      }
    }

    // Candidates: P minus the pivot's neighbourhood.
    DynBitset candidates = p;
    if (have_pivot) {
      g.row(pivot).for_each([&](std::size_t v) { candidates.reset(v); });
    }
    for (std::size_t v : candidates.members()) {
      r.push_back(v);
      DynBitset np = p;
      g.row(v).and_into(np);
      DynBitset nx = x;
      g.row(v).and_into(nx);
      expand(r, np, nx);
      r.pop_back();
      p.reset(v);
      x.set(v);
    }
  }
};

}  // namespace

std::vector<std::size_t> max_clique(const UndirectedGraph& g) {
  const std::size_t n = g.num_vertices();
  Search search{g, {}};
  DynBitset p(n), x(n);
  for (std::size_t v = 0; v < n; ++v) p.set(v);
  std::vector<std::size_t> r;
  search.expand(r, p, x);
  std::sort(search.best.begin(), search.best.end());
  return search.best;
}

std::size_t max_clique_size(const UndirectedGraph& g) {
  return max_clique(g).size();
}

}  // namespace lbist
