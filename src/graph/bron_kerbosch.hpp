#pragma once
// Maximum clique for general (non-chordal) graphs — Bron-Kerbosch with
// pivoting.  Chordal graphs get their clique number from the PVES
// machinery; loop-carried allocation units produce non-interval conflict
// graphs, where this gives the exact register-count lower bound the
// loop-aware binder is measured against.

#include <cstddef>
#include <vector>

#include "graph/undirected_graph.hpp"

namespace lbist {

/// Size of a maximum clique (exact; exponential worst case — intended for
/// allocation-sized graphs).
[[nodiscard]] std::size_t max_clique_size(const UndirectedGraph& g);

/// One maximum clique's vertices, sorted.
[[nodiscard]] std::vector<std::size_t> max_clique(const UndirectedGraph& g);

}  // namespace lbist
