#pragma once
// Chordal-graph machinery: simplicial vertices, perfect vertex elimination
// schemes (PVES), elimination cliques.
//
// Interval graphs (the conflict graphs of straight-line scheduled DFGs) are
// chordal, so they admit a PVES; coloring greedily in *reverse* PVES order
// is optimal (Golumbic).  The paper's register binder departs from plain
// reverse-PVES coloring in two ways (Section III.A): the PVES itself is
// chosen by a (sharing-degree, max-clique-size) priority, and colors are
// chosen by test-resource sharing rather than first-fit.  This header
// provides the generic pieces; the priorities live in the binding library.

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/undirected_graph.hpp"

namespace lbist {

/// True if v's not-yet-eliminated neighbourhood induces a clique.
/// `removed` marks eliminated vertices.
[[nodiscard]] bool is_simplicial(const UndirectedGraph& g, std::size_t v,
                                 const DynBitset& removed);

/// Builds a PVES choosing, at every step, the simplicial vertex with the
/// smallest `priority_rank` (ties by vertex index).  Returns the elimination
/// order (first eliminated first), or nullopt if the graph is not chordal.
/// `priority_rank` may be empty, meaning "by vertex index".
[[nodiscard]] std::optional<std::vector<std::size_t>>
perfect_elimination_order(const UndirectedGraph& g,
                          const std::vector<std::size_t>& priority_rank = {});

/// True iff the graph is chordal (has a PVES).
[[nodiscard]] bool is_chordal(const UndirectedGraph& g);

/// The elimination cliques C_i = {order[i]} ∪ (later neighbours of
/// order[i]); every maximal clique of a chordal graph appears among these.
[[nodiscard]] std::vector<std::vector<std::size_t>> elimination_cliques(
    const UndirectedGraph& g, const std::vector<std::size_t>& order);

/// For each vertex v, the size of the largest elimination clique containing
/// v — the paper's MCS(v) (size of a maximum clique through v; exact for
/// chordal graphs).
[[nodiscard]] std::vector<std::size_t> max_clique_through_vertex(
    const UndirectedGraph& g, const std::vector<std::size_t>& order);

}  // namespace lbist
