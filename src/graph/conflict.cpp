#include "graph/conflict.hpp"

#include <algorithm>
#include <utility>

namespace lbist {

VarConflictGraph build_conflict_graph(
    const Dfg& dfg, const IdMap<VarId, LiveInterval>& lifetimes) {
  VarConflictGraph out;
  out.vertex_of.assign(dfg.num_vars(), -1);
  for (const auto& v : dfg.vars()) {
    if (!v.allocatable()) continue;
    out.vertex_of[v.id] = static_cast<int>(out.vars.size());
    out.vars.push_back(v.id);
  }
  const std::size_t n = out.vars.size();

  // Sweep line over births: a pair overlaps iff, when the later-born
  // vertex arrives, the earlier one is still alive (death > birth).  The
  // quadratic pair scan this replaces dominated whole-pipeline time beyond
  // a few thousand variables.
  std::vector<std::uint32_t> by_birth(n);
  for (std::size_t i = 0; i < n; ++i) {
    by_birth[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(by_birth.begin(), by_birth.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return lifetimes[out.vars[a]].birth < lifetimes[out.vars[b]].birth;
            });

  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::vector<std::uint32_t> active;  // sweep front, pruned lazily
  for (const std::uint32_t v : by_birth) {
    const LiveInterval iv = lifetimes[out.vars[v]];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const std::uint32_t u = active[i];
      const LiveInterval iu = lifetimes[out.vars[u]];
      if (iu.death <= iv.birth) continue;  // u expired; drop from the front
      active[keep++] = u;
      // iu.birth <= iv.birth and iu.death > iv.birth: overlap iff v's
      // interval is non-degenerate past u's birth.
      if (iu.birth < iv.death) {
        edges.emplace_back(u, v);
      }
    }
    active.resize(keep);
    active.push_back(v);
  }

  out.graph = UndirectedGraph(n, edges);
  return out;
}

}  // namespace lbist
