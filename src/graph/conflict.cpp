#include "graph/conflict.hpp"

namespace lbist {

VarConflictGraph build_conflict_graph(
    const Dfg& dfg, const IdMap<VarId, LiveInterval>& lifetimes) {
  VarConflictGraph out;
  out.vertex_of.assign(dfg.num_vars(), -1);
  for (const auto& v : dfg.vars()) {
    if (!v.allocatable()) continue;
    out.vertex_of[v.id] = static_cast<int>(out.vars.size());
    out.vars.push_back(v.id);
  }
  out.graph = UndirectedGraph(out.vars.size());
  for (std::size_t a = 0; a < out.vars.size(); ++a) {
    for (std::size_t b = a + 1; b < out.vars.size(); ++b) {
      if (lifetimes[out.vars[a]].overlaps(lifetimes[out.vars[b]])) {
        out.graph.add_edge(a, b);
      }
    }
  }
  return out;
}

}  // namespace lbist
