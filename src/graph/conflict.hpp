#pragma once
// Variable-conflict graph construction (paper Section III: register binding
// is modeled as coloring of the variable conflict graph).

#include <vector>

#include "dfg/dfg.hpp"
#include "dfg/lifetime.hpp"
#include "graph/undirected_graph.hpp"
#include "support/ids.hpp"

namespace lbist {

/// Conflict graph over the *allocatable* variables of a DFG, with the
/// vertex <-> variable correspondence.
struct VarConflictGraph {
  UndirectedGraph graph;
  /// vertex index -> variable.
  std::vector<VarId> vars;
  /// variable -> vertex index, or -1 if the variable is not allocatable.
  IdMap<VarId, int> vertex_of;

  [[nodiscard]] std::size_t vertex(VarId v) const {
    return static_cast<std::size_t>(vertex_of[v]);
  }
};

/// Builds the conflict graph: one vertex per allocatable variable, an edge
/// between variables whose live intervals overlap.
[[nodiscard]] VarConflictGraph build_conflict_graph(
    const Dfg& dfg, const IdMap<VarId, LiveInterval>& lifetimes);

}  // namespace lbist
