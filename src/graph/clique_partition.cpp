#include "graph/clique_partition.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace lbist {

CliquePartition clique_partition(const UndirectedGraph& compat,
                                 const CliqueWeight& weight) {
  const std::size_t n = compat.num_vertices();
  std::vector<std::vector<std::size_t>> groups(n);
  for (std::size_t v = 0; v < n; ++v) groups[v] = {v};
  std::vector<bool> alive(n, true);

  auto mergeable = [&](std::size_t a, std::size_t b) {
    for (std::size_t u : groups[a]) {
      for (std::size_t v : groups[b]) {
        if (!compat.adjacent(u, v)) return false;
      }
    }
    return true;
  };
  auto score = [&](std::size_t a, std::size_t b) {
    double s = 0.0;
    for (std::size_t u : groups[a]) {
      for (std::size_t v : groups[b]) {
        s += weight(u, v);
      }
    }
    return s;
  };

  while (true) {
    bool found = false;
    std::size_t best_a = 0, best_b = 0;
    double best_score = 0.0;
    for (std::size_t a = 0; a < n; ++a) {
      if (!alive[a]) continue;
      for (std::size_t b = a + 1; b < n; ++b) {
        if (!alive[b] || !mergeable(a, b)) continue;
        const double s = score(a, b);
        if (!found || s > best_score) {
          found = true;
          best_score = s;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (!found) break;
    groups[best_a].insert(groups[best_a].end(), groups[best_b].begin(),
                          groups[best_b].end());
    groups[best_b].clear();
    alive[best_b] = false;
  }

  CliquePartition out;
  out.clique_of.assign(n, 0);
  for (std::size_t g = 0; g < n; ++g) {
    if (!alive[g]) continue;
    std::sort(groups[g].begin(), groups[g].end());
    for (std::size_t v : groups[g]) out.clique_of[v] = out.cliques.size();
    out.cliques.push_back(std::move(groups[g]));
  }
  return out;
}

}  // namespace lbist
