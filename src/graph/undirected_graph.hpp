#pragma once
// Dense undirected graph over vertices 0..n-1 with packed uint64 bitset
// adjacency rows.  Serves as the variable-conflict graph (edge =
// overlapping lifetimes) and the input-register compatibility graph of the
// interconnect binder.
//
// Rows live in one contiguous word arena.  Each row only stores the word
// window [word_lo, word_hi) that can contain neighbours: conflict graphs of
// scheduled DFGs are interval graphs whose vertices are roughly
// birth-ordered, so a 100k-vertex graph with local lifetimes packs into a
// few dozen words per row instead of a 1.5 kB full row — the difference
// between ~100 MB and multiple GB of adjacency at the scaling tier's sizes.
//
// Two construction modes:
//   * `UndirectedGraph(n)` — full-window rows, mutable via add_edge (the
//     historical behaviour; right for small/dense graphs and complement()).
//   * `UndirectedGraph(n, edges)` — bulk construction that measures each
//     vertex's neighbour span first and packs windowed rows.  add_edge
//     still works for edges inside both windows (it CHECK-fails outside).
//
// `row(v)` returns a lightweight RowView over the window; it mirrors the
// DynBitset query surface (test/count/intersects/subset_of/members) so the
// call sites read the same either way.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/dyn_bitset.hpp"

namespace lbist {

/// Read-only view of one adjacency row (a bit span over [0, n)).
class RowView {
 public:
  RowView(const std::uint64_t* words, std::size_t word_lo,
          std::size_t word_hi, std::size_t n)
      : words_(words), word_lo_(word_lo), word_hi_(word_hi), n_(n) {}

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t word_lo() const { return word_lo_; }
  [[nodiscard]] std::size_t word_hi() const { return word_hi_; }

  /// Word `w` of the full-length row; zero outside the stored window.
  [[nodiscard]] std::uint64_t word(std::size_t w) const {
    return (w >= word_lo_ && w < word_hi_) ? words_[w - word_lo_] : 0;
  }

  [[nodiscard]] bool test(std::size_t i) const {
    return (word(i / 64) >> (i % 64)) & 1u;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t c = 0;
    for (std::size_t w = word_lo_; w < word_hi_; ++w) {
      c += static_cast<std::size_t>(std::popcount(words_[w - word_lo_]));
    }
    return c;
  }

  [[nodiscard]] bool any() const {
    for (std::size_t w = word_lo_; w < word_hi_; ++w) {
      if (words_[w - word_lo_] != 0) return true;
    }
    return false;
  }

  /// True if the row intersects `mask` (a bitset over the same vertex ids).
  [[nodiscard]] bool intersects(const DynBitset& mask) const {
    const std::size_t hi = std::min(word_hi_, mask.num_words());
    for (std::size_t w = word_lo_; w < hi; ++w) {
      if (words_[w - word_lo_] & mask.word(w)) return true;
    }
    return false;
  }

  [[nodiscard]] bool intersects(const RowView& other) const {
    const std::size_t lo = std::max(word_lo_, other.word_lo_);
    const std::size_t hi = std::min(word_hi_, other.word_hi_);
    for (std::size_t w = lo; w < hi; ++w) {
      if (words_[w - word_lo_] & other.words_[w - other.word_lo_]) return true;
    }
    return false;
  }

  /// True if every neighbour in the row is also in `mask`.
  [[nodiscard]] bool subset_of(const DynBitset& mask) const {
    for (std::size_t w = word_lo_; w < word_hi_; ++w) {
      const std::uint64_t mw = w < mask.num_words() ? mask.word(w) : 0;
      if (words_[w - word_lo_] & ~mw) return false;
    }
    return true;
  }

  /// dst &= row (window-aware: words outside the window clear to zero).
  void and_into(DynBitset& dst) const {
    for (std::size_t w = 0; w < dst.num_words(); ++w) {
      dst.and_word(w, word(w));
    }
  }

  /// dst |= row.
  void or_into(DynBitset& dst) const {
    const std::size_t hi = std::min(word_hi_, dst.num_words());
    for (std::size_t w = word_lo_; w < hi; ++w) {
      dst.or_word(w, words_[w - word_lo_]);
    }
  }

  /// Calls `f(u)` for every neighbour in increasing order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t w = word_lo_; w < word_hi_; ++w) {
      std::uint64_t bits = words_[w - word_lo_];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        f(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  /// Neighbours in increasing order.
  [[nodiscard]] std::vector<std::size_t> members() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for_each([&](std::size_t u) { out.push_back(u); });
    return out;
  }

  /// Full-length DynBitset copy of the row.
  [[nodiscard]] DynBitset to_bitset() const {
    DynBitset out(n_);
    for_each([&](std::size_t u) { out.set(u); });
    return out;
  }

 private:
  const std::uint64_t* words_;  ///< window words, indexed from word_lo_
  std::size_t word_lo_;
  std::size_t word_hi_;
  std::size_t n_;
};

/// Simple undirected graph; no self loops.
class UndirectedGraph {
 public:
  UndirectedGraph() = default;
  /// Full-window (dense-row) graph; add_edge accepts any pair.
  explicit UndirectedGraph(std::size_t n);
  /// Bulk windowed construction from an edge list (pairs may repeat; self
  /// loops are rejected).  Rows only store the words spanned by their
  /// neighbours.
  UndirectedGraph(std::size_t n,
                  const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                      edges);

  [[nodiscard]] std::size_t num_vertices() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// Adds edge {a, b}; idempotent.  Self loops are rejected, and on a
  /// windowed graph both endpoints must fall inside the packed windows.
  void add_edge(std::size_t a, std::size_t b);

  [[nodiscard]] bool adjacent(std::size_t a, std::size_t b) const {
    const RowMeta& ra = rows_[a];
    const std::size_t w = b / 64;
    if (w < ra.word_lo || w >= ra.word_hi) return false;
    return (words_[ra.offset + (w - ra.word_lo)] >> (b % 64)) & 1u;
  }

  /// Adjacency row of `v` as a windowed bit view.
  [[nodiscard]] RowView row(std::size_t v) const {
    const RowMeta& r = rows_[v];
    return RowView(words_.data() + r.offset, r.word_lo, r.word_hi,
                   rows_.size());
  }

  [[nodiscard]] std::size_t degree(std::size_t v) const {
    return row(v).count();
  }

  /// Neighbors of `v` in increasing order.
  [[nodiscard]] std::vector<std::size_t> neighbors(std::size_t v) const {
    return row(v).members();
  }

  /// Total words of packed adjacency storage (diagnostic).
  [[nodiscard]] std::size_t arena_words() const { return words_.size(); }

  /// The complement graph (edges where this graph has none).  Always dense.
  [[nodiscard]] UndirectedGraph complement() const;

 private:
  struct RowMeta {
    std::size_t offset = 0;   ///< first window word in words_
    std::uint32_t word_lo = 0;
    std::uint32_t word_hi = 0;  ///< exclusive
  };

  std::vector<std::uint64_t> words_;  ///< shared packed row arena
  std::vector<RowMeta> rows_;
  std::size_t num_edges_ = 0;
};

}  // namespace lbist
