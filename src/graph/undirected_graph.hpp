#pragma once
// Dense undirected graph over vertices 0..n-1 with bitset adjacency rows.
// Serves as the variable-conflict graph (edge = overlapping lifetimes) and
// the input-register compatibility graph of the interconnect binder.

#include <cstddef>
#include <vector>

#include "support/check.hpp"
#include "support/dyn_bitset.hpp"

namespace lbist {

/// Simple undirected graph; no self loops.
class UndirectedGraph {
 public:
  UndirectedGraph() = default;
  explicit UndirectedGraph(std::size_t n);

  [[nodiscard]] std::size_t num_vertices() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// Adds edge {a, b}; idempotent.  Self loops are rejected.
  void add_edge(std::size_t a, std::size_t b);

  [[nodiscard]] bool adjacent(std::size_t a, std::size_t b) const {
    return rows_[a].test(b);
  }

  /// Adjacency row of `v` as a bitset (useful for clique tests).
  [[nodiscard]] const DynBitset& row(std::size_t v) const { return rows_[v]; }

  [[nodiscard]] std::size_t degree(std::size_t v) const {
    return rows_[v].count();
  }

  /// Neighbors of `v` in increasing order.
  [[nodiscard]] std::vector<std::size_t> neighbors(std::size_t v) const {
    return rows_[v].members();
  }

  /// The complement graph (edges where this graph has none).
  [[nodiscard]] UndirectedGraph complement() const;

 private:
  std::vector<DynBitset> rows_;
  std::size_t num_edges_ = 0;
};

}  // namespace lbist
