#pragma once
// Weighted clique partitioning (Tseng/Siewiorek style) — the classical
// allocation engine of the era's HLS tools and the formulation the paper
// cites for connectivity binding (Pangrle's double clique partition).
//
// Greedy super-node merging: repeatedly merge the two groups joined by the
// highest total edge weight whose union still induces a clique of the
// compatibility graph.  Deterministic (ties broken by lowest indices).

#include <functional>
#include <vector>

#include "graph/undirected_graph.hpp"

namespace lbist {

/// A partition of the vertices into cliques of the compatibility graph.
struct CliquePartition {
  std::vector<std::vector<std::size_t>> cliques;
  /// vertex -> clique index.
  std::vector<std::size_t> clique_of;
};

/// Pairwise merge-affinity; higher is merged earlier.
using CliqueWeight =
    std::function<double(std::size_t, std::size_t)>;

/// Partitions `compat` into cliques.  `weight(u, v)` scores merging the
/// vertices u and v (group scores are summed over cross pairs); merges with
/// negative total score are still taken (fewest-cliques objective), merges
/// that violate compatibility never are.
[[nodiscard]] CliquePartition clique_partition(const UndirectedGraph& compat,
                                               const CliqueWeight& weight);

}  // namespace lbist
