#include "graph/chordal.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace lbist {

bool is_simplicial(const UndirectedGraph& g, std::size_t v,
                   const DynBitset& removed) {
  // Alive neighbourhood of v.
  DynBitset nv = g.row(v);
  for (std::size_t i = 0; i < g.num_vertices(); ++i) {
    if (removed.test(i)) nv.reset(i);
  }
  // Every pair of alive neighbours must be adjacent: (nv \ {u}) ⊆ N(u).
  for (std::size_t u : nv.members()) {
    DynBitset rest = nv;
    rest.reset(u);
    if (!rest.subset_of(g.row(u))) return false;
  }
  return true;
}

std::optional<std::vector<std::size_t>> perfect_elimination_order(
    const UndirectedGraph& g, const std::vector<std::size_t>& priority_rank) {
  const std::size_t n = g.num_vertices();
  LBIST_CHECK(priority_rank.empty() || priority_rank.size() == n,
              "priority_rank must cover every vertex");
  auto rank = [&](std::size_t v) {
    return priority_rank.empty() ? v : priority_rank[v];
  };

  DynBitset removed(n);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (removed.test(v)) continue;
      if (!is_simplicial(g, v, removed)) continue;
      if (best == n || rank(v) < rank(best) ||
          (rank(v) == rank(best) && v < best)) {
        best = v;
      }
    }
    if (best == n) return std::nullopt;  // no simplicial vertex: not chordal
    order.push_back(best);
    removed.set(best);
  }
  return order;
}

bool is_chordal(const UndirectedGraph& g) {
  return perfect_elimination_order(g).has_value();
}

std::vector<std::vector<std::size_t>> elimination_cliques(
    const UndirectedGraph& g, const std::vector<std::size_t>& order) {
  const std::size_t n = g.num_vertices();
  LBIST_CHECK(order.size() == n, "order must cover every vertex");
  DynBitset removed(n);
  std::vector<std::vector<std::size_t>> cliques;
  cliques.reserve(n);
  for (std::size_t v : order) {
    std::vector<std::size_t> clique{v};
    for (std::size_t u : g.neighbors(v)) {
      if (!removed.test(u)) clique.push_back(u);
    }
    std::sort(clique.begin(), clique.end());
    cliques.push_back(std::move(clique));
    removed.set(v);
  }
  return cliques;
}

std::vector<std::size_t> max_clique_through_vertex(
    const UndirectedGraph& g, const std::vector<std::size_t>& order) {
  std::vector<std::size_t> mcs(g.num_vertices(), 0);
  for (const auto& clique : elimination_cliques(g, order)) {
    for (std::size_t v : clique) {
      mcs[v] = std::max(mcs[v], clique.size());
    }
  }
  return mcs;
}

}  // namespace lbist
