#include "graph/chordal.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "support/check.hpp"

namespace lbist {

namespace {

/// Window-local simpliciality check: is N(v) ∩ alive a clique?  `alive` is
/// bit-per-vertex; `scratch` receives the alive neighbourhood words and must
/// be at least the row window long.  On failure `witness` receives a pair of
/// alive, non-adjacent neighbours — the certificate stays valid until one of
/// them is eliminated, so callers can skip rechecks while both live.
bool simplicial_in(const UndirectedGraph& g, std::size_t v,
                   const DynBitset& alive,
                   std::vector<std::uint64_t>& scratch,
                   std::pair<std::size_t, std::size_t>* witness) {
  const RowView row = g.row(v);
  const std::size_t lo = row.word_lo();
  const std::size_t hi = row.word_hi();
  scratch.resize(hi > lo ? hi - lo : 0);
  for (std::size_t w = lo; w < hi; ++w) {
    const std::uint64_t aw = w < alive.num_words() ? alive.word(w) : 0;
    scratch[w - lo] = row.word(w) & aw;
  }
  for (std::size_t w = lo; w < hi; ++w) {
    std::uint64_t bits = scratch[w - lo];
    while (bits != 0) {
      const std::size_t u =
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      // (alive N(v) \ {u}) must be a subset of N(u).
      const RowView row_u = g.row(u);
      for (std::size_t w2 = lo; w2 < hi; ++w2) {
        std::uint64_t bad = scratch[w2 - lo] & ~row_u.word(w2);
        if (w2 == u / 64) bad &= ~(std::uint64_t{1} << (u % 64));
        if (bad != 0) {
          if (witness != nullptr) {
            *witness = {u, w2 * 64 + static_cast<std::size_t>(
                                         std::countr_zero(bad))};
          }
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

bool is_simplicial(const UndirectedGraph& g, std::size_t v,
                   const DynBitset& removed) {
  DynBitset alive(g.num_vertices());
  for (std::size_t w = 0; w < alive.num_words(); ++w) {
    const std::uint64_t rw = w < removed.num_words() ? removed.word(w) : 0;
    alive.or_word(w, ~rw);
  }
  // Mask stray high bits the complement may have introduced in the last
  // word (they would otherwise alias out-of-range "alive" vertices).
  const std::size_t n = g.num_vertices();
  if (n % 64 != 0 && alive.num_words() > 0) {
    alive.and_word(alive.num_words() - 1,
                   (std::uint64_t{1} << (n % 64)) - 1);
  }
  std::vector<std::uint64_t> scratch;
  return simplicial_in(g, v, alive, scratch, nullptr);
}

std::optional<std::vector<std::size_t>> perfect_elimination_order(
    const UndirectedGraph& g, const std::vector<std::size_t>& priority_rank) {
  const std::size_t n = g.num_vertices();
  LBIST_CHECK(priority_rank.empty() || priority_rank.size() == n,
              "priority_rank must cover every vertex");
  auto rank = [&](std::size_t v) {
    return priority_rank.empty() ? v : priority_rank[v];
  };

  // Incremental formulation of the greedy min-rank elimination: once a
  // vertex's alive neighbourhood is a clique it stays one (elimination only
  // shrinks neighbourhoods), so each vertex enters the ready-heap exactly
  // once, and only neighbours of an eliminated vertex can newly qualify.
  // Non-simplicial vertices carry a witness pair of alive non-adjacent
  // neighbours; while both live, the recheck is skipped outright.  This
  // replaces the historical O(n) full rescans per elimination step, which
  // were the dominant cost of large-DFG binding.
  DynBitset alive(n);
  for (std::size_t v = 0; v < n; ++v) alive.set(v);
  std::vector<char> ready(n, 0);
  constexpr std::size_t kNone = SIZE_MAX;
  std::vector<std::pair<std::size_t, std::size_t>> witness(
      n, {kNone, kNone});
  std::vector<std::uint64_t> scratch;

  using HeapItem = std::pair<std::size_t, std::size_t>;  // (rank, vertex)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  for (std::size_t v = 0; v < n; ++v) {
    if (simplicial_in(g, v, alive, scratch, &witness[v])) {
      ready[v] = 1;
      heap.emplace(rank(v), v);
    }
  }

  std::vector<std::size_t> order;
  order.reserve(n);
  while (order.size() < n) {
    if (heap.empty()) return std::nullopt;  // no simplicial vertex: not chordal
    const std::size_t v = heap.top().second;
    heap.pop();
    order.push_back(v);
    alive.reset(v);
    g.row(v).for_each([&](std::size_t u) {
      if (!alive.test(u) || ready[u] != 0) return;
      auto& [wa, wb] = witness[u];
      if (wa != kNone && alive.test(wa) && alive.test(wb)) return;
      if (simplicial_in(g, u, alive, scratch, &witness[u])) {
        ready[u] = 1;
        heap.emplace(rank(u), u);
      }
    });
  }
  return order;
}

bool is_chordal(const UndirectedGraph& g) {
  return perfect_elimination_order(g).has_value();
}

std::vector<std::vector<std::size_t>> elimination_cliques(
    const UndirectedGraph& g, const std::vector<std::size_t>& order) {
  const std::size_t n = g.num_vertices();
  LBIST_CHECK(order.size() == n, "order must cover every vertex");
  DynBitset removed(n);
  std::vector<std::vector<std::size_t>> cliques;
  cliques.reserve(n);
  for (std::size_t v : order) {
    std::vector<std::size_t> clique{v};
    g.row(v).for_each([&](std::size_t u) {
      if (!removed.test(u)) clique.push_back(u);
    });
    std::sort(clique.begin(), clique.end());
    cliques.push_back(std::move(clique));
    removed.set(v);
  }
  return cliques;
}

std::vector<std::size_t> max_clique_through_vertex(
    const UndirectedGraph& g, const std::vector<std::size_t>& order) {
  const std::size_t n = g.num_vertices();
  LBIST_CHECK(order.size() == n, "order must cover every vertex");
  // Streamed version of "max elimination-clique size through v": walking the
  // cliques directly avoids materializing them (they total O(edges) space).
  std::vector<std::size_t> mcs(n, 0);
  DynBitset removed(n);
  for (std::size_t v : order) {
    std::size_t clique_size = 1;
    g.row(v).for_each([&](std::size_t u) {
      if (!removed.test(u)) ++clique_size;
    });
    mcs[v] = std::max(mcs[v], clique_size);
    g.row(v).for_each([&](std::size_t u) {
      if (!removed.test(u)) mcs[u] = std::max(mcs[u], clique_size);
    });
    removed.set(v);
  }
  return mcs;
}

}  // namespace lbist
