#pragma once
// Greedy graph coloring used for register binding.

#include <cstddef>
#include <vector>

#include "graph/undirected_graph.hpp"

namespace lbist {

/// A proper vertex coloring: color[v] in [0, num_colors).
struct Coloring {
  std::vector<std::size_t> color;
  std::size_t num_colors = 0;
};

/// First-fit greedy coloring visiting vertices in `order`.  When `order` is
/// the reverse of a PVES, the result is an optimal coloring for chordal
/// graphs — this is the "traditional HLS" register binder of the paper's
/// comparison arm.
[[nodiscard]] Coloring greedy_color(const UndirectedGraph& g,
                                    const std::vector<std::size_t>& order);

/// Checks that no edge is monochromatic.
[[nodiscard]] bool is_proper_coloring(const UndirectedGraph& g,
                                      const Coloring& c);

/// Size of the largest clique found over elimination orders — for chordal
/// graphs this equals the chromatic number.
[[nodiscard]] std::size_t chordal_clique_number(const UndirectedGraph& g);

}  // namespace lbist
