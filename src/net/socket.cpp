#include "net/socket.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace lbist::net {

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw Error(std::string("fcntl O_NONBLOCK: ") + std::strerror(errno));
  }
}

}  // namespace lbist::net
