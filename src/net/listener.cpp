#include "net/listener.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace lbist::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

Socket open_reserve() {
  // /dev/null is always openable and costs nothing; any fd works as the
  // EMFILE shedding reserve.
  return Socket(::open("/dev/null", O_RDONLY | O_CLOEXEC));
}

}  // namespace

ReuseportListener::ReuseportListener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) fail_errno("socket");
  sock_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
    fail_errno("setsockopt SO_REUSEPORT");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    fail_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, SOMAXCONN) != 0) fail_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    fail_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  reserve_ = open_reserve();
}

ReuseportListener::AcceptStatus ReuseportListener::accept_one(Socket* out) {
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd >= 0) {
    *out = Socket(fd);
    set_nonblocking(fd);
    return AcceptStatus::Accepted;
  }
  switch (errno) {
    case EAGAIN:
#if EAGAIN != EWOULDBLOCK
    case EWOULDBLOCK:
#endif
      return AcceptStatus::WouldBlock;
    case EINTR:
    case ECONNABORTED:
#ifdef EPROTO
    case EPROTO:
#endif
      return AcceptStatus::Retry;
    case EMFILE:
    case ENFILE:
    case ENOBUFS:
    case ENOMEM: {
      // Reserve-fd shedding: free one slot, accept the pending connection
      // and close it immediately so the peer gets a clean close instead of
      // hanging in the backlog, then reacquire the reserve.  The kernel
      // allocates the fd before it looks at the backlog, so the original
      // EMFILE does not prove anything was pending — an EAGAIN here means
      // the backlog is empty and the caller should stop the accept burst
      // instead of shedding in a loop.
      reserve_.close();
      const int shed = ::accept(sock_.fd(), nullptr, nullptr);
      if (shed >= 0) ::close(shed);
      const bool backlog_empty =
          shed < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
      reserve_ = open_reserve();
      return backlog_empty ? AcceptStatus::WouldBlock
                           : AcceptStatus::FdExhausted;
    }
    default:
      fail_errno("accept");
  }
}

}  // namespace lbist::net
