#pragma once
// Minimal epoll event loop for the sharded synthesis server.
//
// One EventLoop per shard thread: the shard registers its SO_REUSEPORT
// listener and every accepted connection (level-triggered, tagged with a
// 64-bit cookie the shard maps back to its connection table), then blocks
// in wait().  Any thread may call wakeup() — worker threads do so after
// queueing a response so the loop flushes it — which is a single eventfd
// write and therefore cheap and async-signal-safe.
//
// The loop itself is intentionally policy-free: it knows nothing about
// sockets, framing or draining.  Shard logic lives in src/server.

#include <cstdint>
#include <functional>
#include <vector>

namespace lbist::net {

class EventLoop {
 public:
  /// Readiness interest / result bits (mirrors EPOLLIN/EPOLLOUT so callers
  /// avoid including <sys/epoll.h> everywhere).
  static constexpr std::uint32_t kRead = 1u;
  static constexpr std::uint32_t kWrite = 4u;

  /// One readiness notification: the registration tag plus what fired.
  struct Ready {
    std::uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    bool hangup = false;  ///< EPOLLHUP / EPOLLERR / EPOLLRDHUP
  };

  EventLoop();   // epoll_create1 + wakeup eventfd; throws Error on failure
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` (level-triggered) with interest `events` (kRead |
  /// kWrite) under `tag`.  Tags must be unique per registered fd.
  void add(int fd, std::uint32_t events, std::uint64_t tag);
  /// Changes the interest set of a registered fd.
  void mod(int fd, std::uint32_t events, std::uint64_t tag);
  /// Deregisters a fd (safe to call for already-closed fds is NOT — call
  /// before closing).
  void del(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever) for readiness.  Fills `out`
  /// with one entry per ready fd; `*woken` reports whether wakeup() fired
  /// (the wakeup counter is drained internally and never appears in
  /// `out`).  Returns the number of entries in `out`.
  int wait(std::vector<Ready>* out, int timeout_ms, bool* woken);

  /// Wakes a concurrent (or future) wait().  Callable from any thread;
  /// multiple calls coalesce.
  void wakeup();

  /// Observability hook, invoked from inside wait() (on the loop thread,
  /// before blocking) with the nanoseconds the caller spent *outside*
  /// wait() since the previous wait() returned — i.e. one loop iteration's
  /// busy time.  The loop stays policy-free; the server turns this into
  /// per-shard iteration-latency histograms.  Not invoked for the first
  /// wait() (no prior iteration to measure).
  void set_iteration_hook(std::function<void(std::uint64_t busy_ns)> hook) {
    iteration_hook_ = std::move(hook);
  }

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd, consumed inside wait()
  std::function<void(std::uint64_t)> iteration_hook_;
  std::uint64_t busy_since_ns_ = 0;  // 0 = no iteration in flight
};

}  // namespace lbist::net
