#pragma once
// Non-blocking framed line I/O for the sharded server.
//
// LineFramer is the read half: an incremental newline-delimited frame
// decoder.  The shard feeds it whatever recv() returned — a frame split
// across any number of reads, or many frames in one read — and pops
// complete lines.  A line larger than the bound throws lbist::Error with
// the same "request line exceeds N bytes" message the thread-per-
// connection server used, so clients see identical protocol errors.
//
// OutboundBuffer is the write half: a bounded pending-bytes queue with
// explicit backpressure.  Workers append response lines; the shard
// flushes with non-blocking send() and arms EPOLLOUT for the remainder.
// append() refuses to grow past the bound — the server treats that as a
// slow reader and disconnects instead of buffering without limit.
// Neither class is thread-safe by itself; the server serializes access
// per connection.

#include <cstddef>
#include <string>
#include <string_view>

#include "support/check.hpp"

namespace lbist::net {

class LineFramer {
 public:
  /// `max_line` bounds buffered bytes per line so one hostile client
  /// cannot balloon server memory.
  explicit LineFramer(std::size_t max_line = 1 << 20)
      : max_line_(max_line) {}

  /// Appends raw bytes from the wire.
  void feed(const char* data, std::size_t n);
  void feed(std::string_view data) { feed(data.data(), data.size()); }

  /// Pops the next complete line (newline stripped, trailing '\r' too).
  /// Returns false when no complete line is buffered yet.  Throws Error
  /// when the buffered partial line exceeds max_line.
  [[nodiscard]] bool next(std::string* out);

  /// Call at end-of-stream: delivers a final unterminated line, if any.
  [[nodiscard]] bool finish(std::string* out);

  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  std::size_t max_line_;
  std::string buffer_;
  std::size_t scanned_ = 0;  ///< prefix already known to hold no '\n'
};

class OutboundBuffer {
 public:
  /// Result of one non-blocking flush attempt.
  enum class Flush {
    Drained,   ///< everything pending was written
    Partial,   ///< the socket buffer filled; arm EPOLLOUT and retry later
    PeerGone,  ///< the peer reset / closed; drop the connection
  };

  /// `limit` bounds pending (unsent) bytes per connection.
  explicit OutboundBuffer(std::size_t limit) : limit_(limit) {}

  /// Queues bytes for sending.  Returns false — WITHOUT queueing — when
  /// pending + data would exceed the bound; the caller should treat the
  /// peer as a slow reader and disconnect.
  [[nodiscard]] bool append(std::string_view data);

  /// Writes as much pending data as the socket accepts (non-blocking;
  /// MSG_NOSIGNAL).  `fd` must be a non-blocking socket.
  [[nodiscard]] Flush flush(int fd);

  [[nodiscard]] bool empty() const { return offset_ == pending_.size(); }
  [[nodiscard]] std::size_t pending() const {
    return pending_.size() - offset_;
  }

 private:
  std::string pending_;
  std::size_t offset_ = 0;  ///< bytes of pending_ already sent
  std::size_t limit_;
};

}  // namespace lbist::net
