#include "net/frame.hpp"

#include <sys/socket.h>

#include <cerrno>

namespace lbist::net {

void LineFramer::feed(const char* data, std::size_t n) {
  buffer_.append(data, n);
}

bool LineFramer::next(std::string* out) {
  const std::size_t nl = buffer_.find('\n', scanned_);
  if (nl == std::string::npos) {
    scanned_ = buffer_.size();
    if (buffer_.size() > max_line_) {
      throw Error("request line exceeds " + std::to_string(max_line_) +
                  " bytes");
    }
    return false;
  }
  out->assign(buffer_, 0, nl);
  buffer_.erase(0, nl + 1);
  scanned_ = 0;
  if (out->size() > max_line_) {
    throw Error("request line exceeds " + std::to_string(max_line_) +
                " bytes");
  }
  if (!out->empty() && out->back() == '\r') out->pop_back();
  return true;
}

bool LineFramer::finish(std::string* out) {
  if (buffer_.empty()) return false;
  *out = std::move(buffer_);
  buffer_.clear();
  scanned_ = 0;
  if (!out->empty() && out->back() == '\r') out->pop_back();
  return true;
}

bool OutboundBuffer::append(std::string_view data) {
  if (pending() + data.size() > limit_) return false;
  // Reclaim the sent prefix before growing, so the buffer's footprint
  // stays proportional to unsent bytes, not to connection lifetime.
  if (offset_ > 0 && (offset_ >= pending_.size() / 2 || pending() == 0)) {
    pending_.erase(0, offset_);
    offset_ = 0;
  }
  pending_.append(data);
  return true;
}

OutboundBuffer::Flush OutboundBuffer::flush(int fd) {
  while (offset_ < pending_.size()) {
    const ssize_t n = ::send(fd, pending_.data() + offset_,
                             pending_.size() - offset_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Flush::Partial;
      return Flush::PeerGone;
    }
    offset_ += static_cast<std::size_t>(n);
  }
  pending_.clear();
  offset_ = 0;
  return Flush::Drained;
}

}  // namespace lbist::net
