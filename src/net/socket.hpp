#pragma once
// Owning POSIX socket fd plus the tiny fd-mode helpers the event-driven
// transport needs.  This is the bottom of the networking stack: the epoll
// loop (net/event_loop.hpp), the SO_REUSEPORT listener (net/listener.hpp)
// and the blocking client-side wrappers (server/net.hpp) all build on it.

#include "support/check.hpp"

namespace lbist::net {

/// Owning file descriptor (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();
  /// Half-closes the read side (unblocks a peer thread stuck in recv).
  void shutdown_read();
  /// Half-closes the write side (signals end-of-requests to the peer).
  void shutdown_write();

 private:
  int fd_ = -1;
};

/// Switches the descriptor into non-blocking mode; throws Error on failure.
void set_nonblocking(int fd);

}  // namespace lbist::net
