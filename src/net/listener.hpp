#pragma once
// Non-blocking SO_REUSEPORT TCP listener for the sharded server.
//
// Every shard binds its own listener to the same 127.0.0.1 port with
// SO_REUSEPORT, so the kernel load-balances incoming connections across
// shards without an accept mutex or a dispatcher thread.
//
// accept_one() never throws for the transient failures an accept loop
// must survive (ISSUE 8 satellite): EAGAIN maps to WouldBlock,
// EINTR/ECONNABORTED/EPROTO to Retry, and descriptor exhaustion
// (EMFILE/ENFILE/ENOBUFS/ENOMEM) to FdExhausted.  For the exhaustion case
// the listener holds a reserve descriptor: it is closed to momentarily
// free a slot, the pending connection is accepted and immediately closed
// (so the peer sees a deterministic close instead of an indefinitely
// clogged backlog), and the reserve is reacquired.  Callers should count
// the event and back off briefly; they must NOT exit their loop.

#include <cstdint>

#include "net/socket.hpp"

namespace lbist::net {

class ReuseportListener {
 public:
  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — bind the first
  /// shard with 0, the rest with the resolved port()).  The listening fd
  /// is non-blocking.  Throws Error on bind/listen failure.
  explicit ReuseportListener(std::uint16_t port);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return sock_.fd(); }

  enum class AcceptStatus {
    Accepted,     ///< *out holds a new non-blocking connection
    WouldBlock,   ///< backlog empty — wait for the next EPOLLIN
    Retry,        ///< transient (EINTR / ECONNABORTED); call again
    FdExhausted,  ///< EMFILE/ENFILE: one pending connection was shed
  };

  /// Accepts one pending connection without blocking.  Only programming
  /// errors (EBADF, EINVAL, ...) throw; every operational failure maps to
  /// a status the accept loop can keep running through.
  [[nodiscard]] AcceptStatus accept_one(Socket* out);

 private:
  Socket sock_;
  Socket reserve_;  ///< sacrificial fd, re-opened after EMFILE shedding
  std::uint16_t port_ = 0;
};

}  // namespace lbist::net
