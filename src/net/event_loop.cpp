#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include "support/check.hpp"

namespace lbist::net {

namespace {

// The wakeup eventfd is registered under a tag no shard connection can
// collide with (connection ids count up from 1).
constexpr std::uint64_t kWakeTag = ~0ULL;

[[noreturn]] void fail_errno(const char* what) {
  throw Error(std::string(what) + ": " + std::strerror(errno));
}

std::uint32_t to_epoll(std::uint32_t events) {
  std::uint32_t e = 0;
  if ((events & EventLoop::kRead) != 0) e |= EPOLLIN;
  if ((events & EventLoop::kWrite) != 0) e |= EPOLLOUT;
  return e;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) fail_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    fail_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    fail_errno("epoll_ctl add wakeup");
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev{};
  ev.events = to_epoll(events);
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    fail_errno("epoll_ctl add");
  }
}

void EventLoop::mod(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev{};
  ev.events = to_epoll(events);
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    fail_errno("epoll_ctl mod");
  }
}

void EventLoop::del(int fd) {
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    fail_errno("epoll_ctl del");
  }
}

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int EventLoop::wait(std::vector<Ready>* out, int timeout_ms, bool* woken) {
  if (iteration_hook_ && busy_since_ns_ != 0) {
    iteration_hook_(steady_now_ns() - busy_since_ns_);
  }
  out->clear();
  *woken = false;
  epoll_event events[64];
  int n = 0;
  do {
    n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) fail_errno("epoll_wait");
  if (iteration_hook_) busy_since_ns_ = steady_now_ns();
  out->reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (events[i].data.u64 == kWakeTag) {
      std::uint64_t counter = 0;
      // Drain the eventfd counter so level-triggered epoll quiets down;
      // coalesced wakeups arrive as one read.
      [[maybe_unused]] const ssize_t r =
          ::read(wake_fd_, &counter, sizeof counter);
      *woken = true;
      continue;
    }
    Ready ready;
    ready.tag = events[i].data.u64;
    ready.readable = (events[i].events & EPOLLIN) != 0;
    ready.writable = (events[i].events & EPOLLOUT) != 0;
    ready.hangup = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
    out->push_back(ready);
  }
  return static_cast<int>(out->size());
}

void EventLoop::wakeup() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

}  // namespace lbist::net
