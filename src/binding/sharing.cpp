#include "binding/sharing.hpp"

namespace lbist {

SharingAnalysis::SharingAnalysis(const Dfg& dfg, const ModuleBinding& mb)
    : num_modules_(mb.num_modules()), masks_(dfg.num_vars()) {
  for (const auto& v : dfg.vars()) {
    DynBitset m(2 * num_modules_);
    for (std::size_t j = 0; j < num_modules_; ++j) {
      const ModuleId mod{static_cast<ModuleId::value_type>(j)};
      if (mb.input_vars(mod).test(v.id.index())) m.set(j);
      if (mb.output_vars(mod).test(v.id.index())) m.set(num_modules_ + j);
    }
    masks_[v.id] = std::move(m);
  }
}

}  // namespace lbist
