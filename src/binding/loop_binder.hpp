#pragma once
// Loop-aware register binding (extension beyond the paper's scope).
//
// The paper restricts itself to straight-line behaviours: "if the data flow
// graph description does not contain mutual exclusion constructs and loops,
// the resulting variable conflict graph is an interval graph".  Real
// datapath loops (the diff-eq solver iterates!) carry values across
// iterations: the loop output x1 must land in the same register as the loop
// input x.  This binder honors such `Dfg::loop_ties()` by binding each tied
// pair as one *allocation unit* whose footprint is the union of the two
// live ranges — the conflict graph over units is no longer interval, so a
// plain greedy coloring replaces the PVES machinery (validity is still
// checked exactly; minimality is not guaranteed, matching the general
// circular-arc coloring situation).
//
// The resulting data paths show why the paper kept loops out: a loop
// register is input *and* output of the modules computing its update, a
// self-adjacency hotspot (see bench_loop).

#include "binding/register_binding.hpp"
#include "dfg/dfg.hpp"
#include "dfg/lifetime.hpp"

namespace lbist {

/// One allocation unit: a loop-tied (carried, init) pair or a single
/// variable.
struct AllocationUnit {
  std::vector<VarId> vars;
};

/// Groups the allocatable variables into units per the DFG's loop ties.
[[nodiscard]] std::vector<AllocationUnit> allocation_units(const Dfg& dfg);

/// Greedy unit binding: units ordered by occupied span (descending),
/// first-fit into registers with exact pairwise overlap checks.
[[nodiscard]] RegisterBinding bind_registers_loop_aware(
    const Dfg& dfg, const IdMap<VarId, LiveInterval>& lifetimes);

}  // namespace lbist
