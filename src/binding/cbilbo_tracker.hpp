#pragma once
// Incremental Lemma-2 bookkeeping for the BIST-aware binder.
//
// The binder needs, at every coloring step and for every candidate
// register, the number of forced CBILBOs the partial binding would have if
// variable v joined register R.  Recomputing `forced_cbilbos()` from
// scratch per candidate is O(modules × registers² × mask words) and
// dominated binding time beyond a few hundred variables.
//
// This tracker exploits two structural facts to answer the same query in
// O(uses of v) time:
//
//   1. Register variable-masks are disjoint (each variable lives in at most
//      one register), so |O_m ∩ mask_x| is a simple per-register counter
//      and "the outputs of m are split across registers X" is equivalent to
//      "every output of m is assigned and exactly the registers in X have a
//      nonzero output count".
//   2. Lemma 2 can therefore fire at most once per module: case (i) needs
//      ONE register holding all outputs, case (ii) exactly TWO.  The
//      per-module forced state is a boolean recomputable in O(1) from the
//      counters, and only modules that have v as an operand or output can
//      change when v is placed.
//
// `current()` and `delta_if_assigned()` match `forced_cbilbos(mb, masks)
// .size()` exactly — the fuzz oracle and binding tests assert this.

#include <cstdint>
#include <utility>
#include <vector>

#include "binding/module_binding.hpp"
#include "dfg/dfg.hpp"
#include "support/dyn_bitset.hpp"
#include "support/ids.hpp"

namespace lbist {

class CbilboTracker {
 public:
  CbilboTracker(const Dfg& dfg, const ModuleBinding& mb);

  /// Registers a new (empty) register; returns its index.
  std::size_t add_register();

  /// Permanently places v in register r, updating the forced count.
  void assign(VarId v, std::size_t r);

  /// Forced-CBILBO count of the current partial binding.
  [[nodiscard]] int current() const { return total_; }

  /// Change of the forced count if v were placed in register r (no
  /// mutation).  `r` may be `num_registers()` to model a fresh register.
  [[nodiscard]] int delta_if_assigned(VarId v, std::size_t r) const;

  [[nodiscard]] std::size_t num_registers() const { return num_regs_; }

 private:
  struct ModuleState {
    /// False when the module can never force a CBILBO (no allocatable
    /// outputs, or some instance has no allocatable operand); such modules
    /// are skipped entirely.
    bool eligible = false;
    bool forced = false;  ///< current Lemma-2 verdict for this module
    std::uint32_t total_out = 0;     ///< |O_m| (allocatable outputs)
    std::uint32_t assigned_out = 0;  ///< outputs already placed
    std::uint32_t tm = 0;            ///< temporal multiplicity
    std::vector<std::uint32_t> outcnt;   ///< per register: |O_m ∩ mask_r|
    std::vector<std::uint32_t> covcnt;   ///< per register: #instances covered
    std::vector<DynBitset> covered;      ///< per register: covered instances
    std::vector<std::uint32_t> outregs;  ///< registers with outcnt >= 1
  };

  /// Lemma-2 verdict from the counters alone.
  [[nodiscard]] static bool forced_now(const ModuleState& s);

  /// The modules v touches (as operand or output), deduplicated.
  void affected_modules(VarId v, std::vector<std::uint32_t>& out) const;

  std::vector<ModuleState> mods_;
  /// Defining module of each variable (as an output), or -1.
  std::vector<std::int32_t> out_module_;
  /// (module, instance) pairs where the variable is an allocatable operand.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> uses_;
  int total_ = 0;
  std::size_t num_regs_ = 0;
  mutable std::vector<std::uint32_t> scratch_mods_;
};

}  // namespace lbist
