#include "binding/register_binding.hpp"

#include <sstream>

#include "support/check.hpp"

namespace lbist {

DynBitset RegisterBinding::var_mask(RegId r, std::size_t num_vars) const {
  DynBitset m(num_vars);
  for (VarId v : regs[r.index()]) m.set(v.index());
  return m;
}

std::vector<DynBitset> RegisterBinding::all_var_masks(
    std::size_t num_vars) const {
  std::vector<DynBitset> out;
  out.reserve(regs.size());
  for (std::size_t r = 0; r < regs.size(); ++r) {
    out.push_back(var_mask(RegId{static_cast<RegId::value_type>(r)},
                           num_vars));
  }
  return out;
}

void RegisterBinding::validate(
    const Dfg& dfg, const IdMap<VarId, LiveInterval>& lifetimes) const {
  for (const auto& v : dfg.vars()) {
    if (v.allocatable()) {
      LBIST_CHECK(reg_of[v.id].valid(),
                  "allocatable variable unassigned: " + v.name);
    } else {
      LBIST_CHECK(!reg_of[v.id].valid(),
                  "non-allocatable variable assigned a register: " + v.name);
    }
  }
  for (const auto& members : regs) {
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        LBIST_CHECK(
            !lifetimes[members[a]].overlaps(lifetimes[members[b]]),
            "conflicting variables share a register: " +
                dfg.var(members[a]).name + " and " + dfg.var(members[b]).name);
      }
    }
  }
}

std::string RegisterBinding::to_string(const Dfg& dfg) const {
  std::ostringstream os;
  for (std::size_t r = 0; r < regs.size(); ++r) {
    if (r > 0) os << ' ';
    os << 'R' << (r + 1) << "={";
    for (std::size_t i = 0; i < regs[r].size(); ++i) {
      if (i > 0) os << ',';
      os << dfg.var(regs[r][i]).name;
    }
    os << '}';
  }
  return os.str();
}

}  // namespace lbist
