#pragma once
// Traditional (testability-oblivious) register binders — the paper's
// comparison arm ("a minimum coloring obtained without regard for
// testability", Fig. 5(b) and the Traditional HLS columns of Table I).
//
// Two classical minimum binders are provided:
//  * `bind_registers_traditional` — the left-edge algorithm (Kurdahi/Parker
//    track assignment): variables sorted by birth time, each packed into
//    the first register free at that time.  This is what DAC-era HLS tools
//    actually used; it chains producers into consumers' registers, which is
//    exactly the behaviour that walks into Lemma-2 CBILBO situations.
//  * `bind_registers_reverse_peo` — greedy first-fit in reverse perfect-
//    elimination order (optimal for chordal graphs, Golumbic); used as an
//    alternative traditional arm and by the merge-case studies.
//
// Both are register-count-minimum on interval conflict graphs.

#include "binding/register_binding.hpp"
#include "dfg/dfg.hpp"
#include "dfg/lifetime.hpp"
#include "graph/conflict.hpp"

namespace lbist {

/// Left-edge minimum binding with no testability consideration.
[[nodiscard]] RegisterBinding bind_registers_traditional(
    const Dfg& dfg, const VarConflictGraph& cg,
    const IdMap<VarId, LiveInterval>& lifetimes);

/// Reverse-PEO first-fit minimum coloring (also testability-oblivious).
/// Throws lbist::Error if the conflict graph is not chordal.
[[nodiscard]] RegisterBinding bind_registers_reverse_peo(
    const Dfg& dfg, const VarConflictGraph& cg);

}  // namespace lbist
