#pragma once
// Exhaustive enumeration of register bindings.
//
// Section III of the paper observes that the minimum-register solution
// space is large ("there are 108 distinct assignments of the variables in E
// to three registers") and that "only a subset of these result in more
// testable data paths".  This module enumerates that space exactly —
// every partition of the conflict-graph vertices into at most `max_regs`
// non-conflicting classes, in restricted-growth (canonical) form so color
// permutations are not double-counted — letting benches histogram the BIST
// overhead over ALL bindings and place the heuristic's pick in the
// distribution (bench_binding_space).
//
// Feasible for small designs only (the count grows like a Bell number);
// `enumerate_bindings` is the ground-truth oracle, not a synthesis path.

#include <cstdint>
#include <functional>

#include "binding/register_binding.hpp"
#include "dfg/dfg.hpp"
#include "graph/conflict.hpp"

namespace lbist {

/// Visits every valid binding with at most `max_regs` registers.  `visit`
/// returns false to stop early.  Returns the number of bindings visited.
[[nodiscard]] std::size_t enumerate_bindings(
    const Dfg& dfg, const VarConflictGraph& cg, std::size_t max_regs,
    const std::function<bool(const RegisterBinding&)>& visit);

/// Convenience: the number of valid bindings using *exactly* `num_regs`
/// registers (the paper's "108" count for its ex1).
[[nodiscard]] std::size_t count_bindings_exact(const Dfg& dfg,
                                               const VarConflictGraph& cg,
                                               std::size_t num_regs);

}  // namespace lbist
