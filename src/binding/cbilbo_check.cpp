#include "binding/cbilbo_check.hpp"

namespace lbist {

namespace {

/// True if `mask` contains at least one operand of every instance of m.
bool covers_every_instance(const ModuleBinding& mb, ModuleId m,
                           const DynBitset& mask) {
  const std::size_t tm = mb.temporal_multiplicity(m);
  for (std::size_t j = 0; j < tm; ++j) {
    const DynBitset& ops = mb.instance_operands(m, j);
    if (!ops.any()) return false;  // instance has no allocatable operand
    if (!ops.intersects(mask)) return false;
  }
  return true;
}

}  // namespace

std::vector<ForcedCbilbo> forced_cbilbos(
    const ModuleBinding& mb, const std::vector<DynBitset>& reg_masks) {
  std::vector<ForcedCbilbo> out;
  for (ModuleId m : mb.all_modules()) {
    const DynBitset& outputs = mb.output_vars(m);
    if (!outputs.any()) continue;  // no register destination to be an SA

    for (std::size_t x = 0; x < reg_masks.size(); ++x) {
      DynBitset xo = reg_masks[x];
      xo &= outputs;
      if (!xo.any()) continue;                       // not an output register
      if (!covers_every_instance(mb, m, reg_masks[x])) continue;

      if (outputs.subset_of(reg_masks[x])) {
        // Case (i): R_x is the sole output register of m.
        out.push_back(ForcedCbilbo{
            RegId{static_cast<RegId::value_type>(x)}, m, 1, RegId::invalid()});
        continue;
      }
      // Case (ii): find a partner R_y completing the outputs; report each
      // unordered pair once (y > x).
      for (std::size_t y = x + 1; y < reg_masks.size(); ++y) {
        DynBitset yo = reg_masks[y];
        yo &= outputs;
        if (!yo.any()) continue;
        DynBitset uni = xo;
        uni |= yo;
        if (!outputs.subset_of(uni)) continue;
        if (!covers_every_instance(mb, m, reg_masks[y])) continue;
        out.push_back(ForcedCbilbo{RegId{static_cast<RegId::value_type>(x)},
                                   m, 2,
                                   RegId{static_cast<RegId::value_type>(y)}});
      }
    }
  }
  return out;
}

std::vector<ForcedCbilbo> forced_cbilbos(const Dfg& dfg,
                                         const ModuleBinding& mb,
                                         const RegisterBinding& rb) {
  return forced_cbilbos(mb, rb.all_var_masks(dfg.num_vars()));
}

}  // namespace lbist
