#pragma once
// Clique-partitioning register binder (extension).
//
// The era's alternative formulation: registers are cliques of the variable
// *compatibility* graph (complement of the conflict graph), merged greedily
// by affinity.  With a sharing-degree affinity this gives a second
// testability-driven binder to compare against the paper's reverse-PVES
// heuristic (see bench_ablation): pairs whose merged register would touch
// many module variable sets — and which share data-path neighbours, keeping
// interconnect down — merge first.
//
// Unlike the PVES binders, clique partitioning does not guarantee the
// minimum register count (it can strand variables), which is exactly why
// the paper builds on a PVES instead; the bench quantifies that too.

#include "binding/module_binding.hpp"
#include "binding/register_binding.hpp"
#include "dfg/dfg.hpp"
#include "graph/conflict.hpp"

namespace lbist {

/// Binds registers by weighted clique partitioning of the compatibility
/// graph with a sharing-degree affinity.
[[nodiscard]] RegisterBinding bind_registers_clique(
    const Dfg& dfg, const VarConflictGraph& cg, const ModuleBinding& mb);

}  // namespace lbist
