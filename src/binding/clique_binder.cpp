#include "binding/clique_binder.hpp"

#include "binding/sharing.hpp"
#include "graph/clique_partition.hpp"

namespace lbist {

RegisterBinding bind_registers_clique(const Dfg& dfg,
                                      const VarConflictGraph& cg,
                                      const ModuleBinding& mb) {
  SharingAnalysis sa(dfg, mb);
  const UndirectedGraph compat = cg.graph.complement();

  auto affinity = [&](std::size_t u, std::size_t v) {
    // Sharing gain of the merged pair, plus a nudge for variables produced
    // or consumed by the same module (saves interconnect).
    DynBitset merged = sa.mask(cg.vars[u]);
    merged |= sa.mask(cg.vars[v]);
    double score = SharingAnalysis::sd_of(merged);

    const Variable& a = dfg.var(cg.vars[u]);
    const Variable& b = dfg.var(cg.vars[v]);
    if (a.def.valid() && b.def.valid() &&
        mb.module_of(a.def) == mb.module_of(b.def)) {
      score += 0.5;
    }
    for (OpId ua : a.uses) {
      for (OpId ub : b.uses) {
        if (mb.module_of(ua) == mb.module_of(ub)) score += 0.25;
      }
    }
    return score;
  };

  const CliquePartition part = clique_partition(compat, affinity);

  RegisterBinding rb;
  rb.reg_of.assign(dfg.num_vars(), RegId::invalid());
  rb.regs.resize(part.cliques.size());
  for (std::size_t r = 0; r < part.cliques.size(); ++r) {
    for (std::size_t v : part.cliques[r]) {
      rb.regs[r].push_back(cg.vars[v]);
      rb.reg_of[cg.vars[v]] = RegId{static_cast<RegId::value_type>(r)};
    }
  }
  return rb;
}

}  // namespace lbist
