#include "binding/enumerate.hpp"

#include <vector>

#include "support/check.hpp"

namespace lbist {

namespace {

struct Enumerator {
  const Dfg& dfg;
  const VarConflictGraph& cg;
  std::size_t max_regs;
  const std::function<bool(const RegisterBinding&)>& visit;

  std::vector<std::vector<std::size_t>> classes;  // vertex indices
  std::size_t visited = 0;
  bool stopped = false;

  bool compatible(const std::vector<std::size_t>& cls, std::size_t v) const {
    for (std::size_t member : cls) {
      if (cg.graph.adjacent(member, v)) return false;
    }
    return true;
  }

  void emit() {
    RegisterBinding rb;
    rb.reg_of.assign(dfg.num_vars(), RegId::invalid());
    rb.regs.resize(classes.size());
    for (std::size_t r = 0; r < classes.size(); ++r) {
      for (std::size_t v : classes[r]) {
        rb.regs[r].push_back(cg.vars[v]);
        rb.reg_of[cg.vars[v]] = RegId{static_cast<RegId::value_type>(r)};
      }
    }
    ++visited;
    if (!visit(rb)) stopped = true;
  }

  void recurse(std::size_t v) {
    if (stopped) return;
    if (v == cg.graph.num_vertices()) {
      emit();
      return;
    }
    // Restricted growth: extend an existing class, or open the next one.
    // Index-based: the recursive call may reallocate `classes`.
    const std::size_t existing = classes.size();
    for (std::size_t c = 0; c < existing; ++c) {
      if (compatible(classes[c], v)) {
        classes[c].push_back(v);
        recurse(v + 1);
        classes[c].pop_back();
        if (stopped) return;
      }
    }
    if (classes.size() < max_regs) {
      classes.push_back({v});
      recurse(v + 1);
      classes.pop_back();
    }
  }
};

}  // namespace

std::size_t enumerate_bindings(
    const Dfg& dfg, const VarConflictGraph& cg, std::size_t max_regs,
    const std::function<bool(const RegisterBinding&)>& visit) {
  LBIST_CHECK(max_regs >= 1, "need at least one register");
  Enumerator e{dfg, cg, max_regs, visit, {}, 0, false};
  e.recurse(0);
  return e.visited;
}

std::size_t count_bindings_exact(const Dfg& dfg, const VarConflictGraph& cg,
                                 std::size_t num_regs) {
  std::size_t exact = 0;
  (void)enumerate_bindings(dfg, cg, num_regs,
                           [&](const RegisterBinding& rb) {
                             if (rb.num_regs() == num_regs) ++exact;
                             return true;
                           });
  return exact;
}

}  // namespace lbist
