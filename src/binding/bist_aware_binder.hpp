#pragma once
// The paper's BIST-aware register binder (Section III.A-B).
//
// Departures from plain minimum coloring, each independently switchable for
// the ablation study:
//
//  1. `sd_ordered_pves`  — the perfect vertex elimination scheme is chosen
//     so that vertices with low (SD, MCS) are eliminated first, i.e. colored
//     *last*; high-sharing variables are colored while flexibility is
//     greatest (Section III.A.1).
//  2. `delta_sd_rule`    — among non-conflicting registers, assign the
//     vertex to the register with the largest sharing-degree increase
//     ΔSD^v(R); ties broken by larger SD(R), then by an interconnect-cost
//     estimate (Section III.A.2).
//  3. `case_overrides`   — Case 1 / Case 2: when another register already
//     holds an output variable (resp. a pair of registers already holds
//     operand variables) of a module of v and has a final sharing degree
//     exceeding SD(R_i, v), prefer it, funnelling each module's test data
//     through the registers most likely to be picked as its SA/TPGs.
//  4. `avoid_cbilbo`     — before committing an assignment, evaluate the
//     Lemma 2 conditions; if the merge would force a CBILBO and another
//     non-conflicting register avoids it, use that register instead.  If
//     every choice forces one, allow the assignment (the paper does not
//     allocate an extra register for this).
//
// The binder relies on a PVES, so like the optimal algorithm it uses the
// minimum number of registers on every benchmark in the paper (and we test
// that property on random designs); optimality is not guaranteed in general.

#include <string>
#include <vector>

#include "binding/module_binding.hpp"
#include "binding/register_binding.hpp"
#include "dfg/dfg.hpp"
#include "graph/conflict.hpp"

namespace lbist {

class AlgorithmEvents;  // obs/events.hpp

/// Feature switches (all on = the paper's algorithm).
struct BistBinderOptions {
  bool sd_ordered_pves = true;
  bool delta_sd_rule = true;
  bool case_overrides = true;
  bool avoid_cbilbo = true;
};

/// Binds registers maximizing test-resource sharing and avoiding forced
/// CBILBOs.  Appends a human-readable decision log to `*trace` if non-null,
/// and emits typed decision events (PVES order, ΔSD candidate sets, Case
/// 1/2 overrides, Lemma-2 checks) to `*events` if non-null.
/// Throws lbist::Error if the conflict graph is not chordal.
[[nodiscard]] RegisterBinding bind_registers_bist_aware(
    const Dfg& dfg, const VarConflictGraph& cg, const ModuleBinding& mb,
    const BistBinderOptions& opts = {},
    std::vector<std::string>* trace = nullptr,
    AlgorithmEvents* events = nullptr);

}  // namespace lbist
