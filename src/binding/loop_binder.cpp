#include "binding/loop_binder.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace lbist {

std::vector<AllocationUnit> allocation_units(const Dfg& dfg) {
  IdMap<VarId, char> tied(dfg.num_vars(), 0);
  std::vector<AllocationUnit> units;
  for (const auto& [carried, init] : dfg.loop_ties()) {
    LBIST_CHECK(dfg.var(carried).allocatable() &&
                    dfg.var(init).allocatable(),
                "loop-tied variables must be allocatable");
    units.push_back(AllocationUnit{{carried, init}});
    tied[carried] = 1;
    tied[init] = 1;
  }
  for (const auto& v : dfg.vars()) {
    if (v.allocatable() && tied[v.id] == 0) {
      units.push_back(AllocationUnit{{v.id}});
    }
  }
  return units;
}

RegisterBinding bind_registers_loop_aware(
    const Dfg& dfg, const IdMap<VarId, LiveInterval>& lifetimes) {
  std::vector<AllocationUnit> units = allocation_units(dfg);

  // Within a unit the members must not overlap (a tie whose carried value
  // is produced before the init value dies cannot share a register even
  // across iterations).
  for (const auto& unit : units) {
    for (std::size_t a = 0; a < unit.vars.size(); ++a) {
      for (std::size_t b = a + 1; b < unit.vars.size(); ++b) {
        LBIST_CHECK(!lifetimes[unit.vars[a]].overlaps(
                        lifetimes[unit.vars[b]]),
                    "loop-tied variables overlap within one iteration: " +
                        dfg.var(unit.vars[a]).name + " and " +
                        dfg.var(unit.vars[b]).name);
      }
    }
  }

  auto units_conflict = [&](const AllocationUnit& x,
                            const AllocationUnit& y) {
    for (VarId a : x.vars) {
      for (VarId b : y.vars) {
        if (lifetimes[a].overlaps(lifetimes[b])) return true;
      }
    }
    return false;
  };
  auto span_of = [&](const AllocationUnit& u) {
    int span = 0;
    for (VarId v : u.vars) {
      span += lifetimes[v].death - lifetimes[v].birth;
    }
    return span;
  };

  // Longest units first (they are the hardest to place), then first fit.
  std::vector<std::size_t> order(units.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return span_of(units[a]) > span_of(units[b]);
                   });

  RegisterBinding rb;
  rb.reg_of.assign(dfg.num_vars(), RegId::invalid());
  std::vector<std::vector<std::size_t>> reg_units;
  for (std::size_t u : order) {
    std::size_t target = reg_units.size();
    for (std::size_t r = 0; r < reg_units.size(); ++r) {
      bool ok = true;
      for (std::size_t member : reg_units[r]) {
        if (units_conflict(units[u], units[member])) {
          ok = false;
          break;
        }
      }
      if (ok) {
        target = r;
        break;
      }
    }
    if (target == reg_units.size()) {
      reg_units.emplace_back();
      rb.regs.emplace_back();
    }
    reg_units[target].push_back(u);
    for (VarId v : units[u].vars) {
      rb.regs[target].push_back(v);
      rb.reg_of[v] = RegId{static_cast<RegId::value_type>(target)};
    }
  }
  return rb;
}

}  // namespace lbist
