#include "binding/traditional_binder.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <set>
#include <utility>

#include "graph/chordal.hpp"
#include "graph/coloring.hpp"
#include "support/check.hpp"

namespace lbist {

RegisterBinding bind_registers_traditional(
    const Dfg& dfg, const VarConflictGraph& cg,
    const IdMap<VarId, LiveInterval>& lifetimes) {
  // Left-edge: sort by birth (ties: death, then id), pack each variable
  // into the first register whose current occupant has already died.
  std::vector<std::size_t> order(cg.vars.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& ia = lifetimes[cg.vars[a]];
    const auto& ib = lifetimes[cg.vars[b]];
    if (ia.birth != ib.birth) return ia.birth < ib.birth;
    if (ia.death != ib.death) return ia.death < ib.death;
    return a < b;
  });

  RegisterBinding rb;
  rb.reg_of.assign(dfg.num_vars(), RegId::invalid());
  // Expiry heap + index-ordered free set instead of a linear register scan:
  // the lowest-indexed free register is exactly what the scan found, in
  // O(log R) per variable instead of O(R).
  std::set<std::size_t> free_regs;
  std::priority_queue<std::pair<int, std::size_t>,
                      std::vector<std::pair<int, std::size_t>>,
                      std::greater<>>
      busy;  // (last death, register)
  for (std::size_t v : order) {
    const auto& iv = lifetimes[cg.vars[v]];
    while (!busy.empty() && busy.top().first <= iv.birth) {
      free_regs.insert(busy.top().second);
      busy.pop();
    }
    std::size_t r;
    if (!free_regs.empty()) {
      r = *free_regs.begin();
      free_regs.erase(free_regs.begin());
    } else {
      r = rb.regs.size();
      rb.regs.emplace_back();
    }
    busy.emplace(iv.death, r);
    rb.regs[r].push_back(cg.vars[v]);
    rb.reg_of[cg.vars[v]] = RegId{static_cast<RegId::value_type>(r)};
  }
  return rb;
}

RegisterBinding bind_registers_reverse_peo(const Dfg& dfg,
                                           const VarConflictGraph& cg) {
  auto peo = perfect_elimination_order(cg.graph);
  LBIST_CHECK(peo.has_value(),
              "conflict graph is not chordal (loops or mutual exclusion in "
              "the DFG?)");
  std::vector<std::size_t> order(peo->rbegin(), peo->rend());
  Coloring coloring = greedy_color(cg.graph, order);

  RegisterBinding rb;
  rb.reg_of.assign(dfg.num_vars(), RegId::invalid());
  rb.regs.resize(coloring.num_colors);
  for (std::size_t v : order) {
    const VarId var = cg.vars[v];
    const RegId reg{static_cast<RegId::value_type>(coloring.color[v])};
    rb.regs[reg.index()].push_back(var);
    rb.reg_of[var] = reg;
  }
  return rb;
}

}  // namespace lbist
