#pragma once
// Exact CBILBO conditions (Section III.B, Lemmas 1 and 2).
//
// A register must be a CBILBO only if it acts as TPG and SA *for the same
// module* in every possible BIST embedding of the (minimum-interconnect)
// data path.  Lemma 2 characterizes this purely in terms of the register
// binding:
//
//   Case (i):  R_x holds ALL output variables of module M_k and holds at
//              least one operand of EVERY instance of M_k.
//   Case (ii): the outputs of M_k are split across exactly two registers
//              R_x and R_y, and BOTH hold at least one operand of every
//              instance of M_k (symmetric — either one can be the CBILBO).
//
// Lemma 1 (|OR_k| <= 2 whenever a CBILBO is forced) is implied: three or
// more output registers always leave a non-TPG SA choice.
//
// The checker works on register variable-masks so the BIST-aware binder can
// query it incrementally on partial bindings.

#include <vector>

#include "binding/module_binding.hpp"
#include "binding/register_binding.hpp"
#include "dfg/dfg.hpp"
#include "support/dyn_bitset.hpp"
#include "support/ids.hpp"

namespace lbist {

/// One forced CBILBO occurrence.
struct ForcedCbilbo {
  RegId reg;           ///< the register forced to be a CBILBO
  ModuleId module;     ///< the module whose test forces it
  int lemma_case = 0;  ///< 1 or 2 (which case of Lemma 2 fired)
  RegId partner;       ///< the R_y of case (ii); invalid for case (i)
};

/// Evaluates Lemma 2 over a (possibly partial) binding given as one
/// variable-mask per register.  Returns every (register, module) pair where
/// the conditions hold.  A case-(ii) pair is reported once, as the
/// lower-indexed register with `partner` set.
[[nodiscard]] std::vector<ForcedCbilbo> forced_cbilbos(
    const ModuleBinding& mb, const std::vector<DynBitset>& reg_masks);

/// Convenience overload for a complete RegisterBinding.
[[nodiscard]] std::vector<ForcedCbilbo> forced_cbilbos(
    const Dfg& dfg, const ModuleBinding& mb, const RegisterBinding& rb);

}  // namespace lbist
