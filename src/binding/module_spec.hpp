#pragma once
// Module specification mini-language.
//
// The paper's experiments pin the module assignment per benchmark (column 2
// of Table I, e.g. "1+, 3 ALUs").  A spec is a comma-separated list of
// groups; each group is an optional count followed by either a single
// operator symbol or a bracketed symbol set (an ALU):
//
//   "1+,1*"          one adder, one multiplier
//   "1/,2*,2+,1&"    six single-function modules
//   "1+,3[-*/&|]"    one adder and three five-function ALUs
//
// Operator symbols are those of dfg.hpp (`symbol(OpKind)`).

#include <string>
#include <string_view>
#include <vector>

#include "dfg/dfg.hpp"

namespace lbist {

/// A functional-unit type: the operator kinds one hardware module supports.
struct ModuleProto {
  std::vector<OpKind> supports;

  [[nodiscard]] bool supports_kind(OpKind k) const {
    for (OpKind s : supports) {
      if (s == k) return true;
    }
    return false;
  }
  /// Display label, e.g. "+" or "[-*/&|]".
  [[nodiscard]] std::string label() const;
};

/// Parses a spec string into one ModuleProto per physical module.
/// Throws lbist::Error on malformed specs.
[[nodiscard]] std::vector<ModuleProto> parse_module_spec(std::string_view s);

/// The cheapest single-function spec able to schedule `dfg`: per operator
/// kind, as many modules as the busiest step requires.
[[nodiscard]] std::vector<ModuleProto> minimal_module_spec(
    const Dfg& dfg, const class Schedule& sched);

}  // namespace lbist
