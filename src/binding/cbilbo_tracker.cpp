#include "binding/cbilbo_tracker.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace lbist {

CbilboTracker::CbilboTracker(const Dfg& dfg, const ModuleBinding& mb) {
  const std::size_t m_count = mb.num_modules();
  mods_.resize(m_count);
  out_module_.assign(dfg.num_vars(), -1);
  uses_.resize(dfg.num_vars());

  for (std::size_t mi = 0; mi < m_count; ++mi) {
    const ModuleId m{static_cast<ModuleId::value_type>(mi)};
    ModuleState& s = mods_[mi];
    s.tm = static_cast<std::uint32_t>(mb.temporal_multiplicity(m));
    s.total_out = static_cast<std::uint32_t>(mb.output_vars(m).count());

    bool instances_coverable = true;
    for (std::uint32_t j = 0; j < s.tm; ++j) {
      if (!mb.instance_operands(m, j).any()) {
        instances_coverable = false;
        break;
      }
    }
    s.eligible = s.total_out >= 1 && instances_coverable;
    if (!s.eligible) continue;

    mb.output_vars(m).for_each_set_bit([&](std::size_t v) {
      out_module_[v] = static_cast<std::int32_t>(mi);
    });
    for (std::uint32_t j = 0; j < s.tm; ++j) {
      mb.instance_operands(m, j).for_each_set_bit([&](std::size_t v) {
        uses_[v].emplace_back(static_cast<std::uint32_t>(mi), j);
      });
    }
  }
}

std::size_t CbilboTracker::add_register() {
  for (ModuleState& s : mods_) {
    if (!s.eligible) continue;
    s.outcnt.push_back(0);
    s.covcnt.push_back(0);
    s.covered.emplace_back(s.tm);
  }
  return num_regs_++;
}

bool CbilboTracker::forced_now(const ModuleState& s) {
  if (!s.eligible || s.assigned_out != s.total_out) return false;
  if (s.outregs.size() == 1) {
    return s.covcnt[s.outregs[0]] == s.tm;
  }
  if (s.outregs.size() == 2) {
    return s.covcnt[s.outregs[0]] == s.tm && s.covcnt[s.outregs[1]] == s.tm;
  }
  return false;
}

void CbilboTracker::affected_modules(VarId v,
                                     std::vector<std::uint32_t>& out) const {
  out.clear();
  if (out_module_[v.index()] >= 0) {
    out.push_back(static_cast<std::uint32_t>(out_module_[v.index()]));
  }
  for (const auto& [m, j] : uses_[v.index()]) {
    if (std::find(out.begin(), out.end(), m) == out.end()) out.push_back(m);
  }
}

int CbilboTracker::delta_if_assigned(VarId v, std::size_t r) const {
  affected_modules(v, scratch_mods_);
  int delta = 0;
  for (const std::uint32_t mi : scratch_mods_) {
    const ModuleState& s = mods_[mi];
    if (!s.eligible) continue;

    const bool is_out = out_module_[v.index()] == static_cast<std::int32_t>(mi);
    const std::uint32_t hyp_assigned = s.assigned_out + (is_out ? 1 : 0);
    bool hyp = false;
    if (hyp_assigned == s.total_out) {
      const std::uint32_t outcnt_r =
          r < s.outcnt.size() ? s.outcnt[r] : 0;
      const bool r_joins = is_out && outcnt_r == 0;
      const std::size_t out_count = s.outregs.size() + (r_joins ? 1 : 0);
      if (out_count >= 1 && out_count <= 2) {
        // #instances of m newly covered at r by v's operands.
        std::uint32_t newly = 0;
        for (const auto& [m2, j] : uses_[v.index()]) {
          if (m2 != mi) continue;
          if (r >= s.covered.size() || !s.covered[r].test(j)) ++newly;
        }
        auto covers = [&](std::uint32_t x) {
          const std::uint32_t base = x < s.covcnt.size() ? s.covcnt[x] : 0;
          const std::uint32_t extra = x == r ? newly : 0;
          return base + extra == s.tm;
        };
        hyp = true;
        for (const std::uint32_t x : s.outregs) hyp = hyp && covers(x);
        if (r_joins) hyp = hyp && covers(static_cast<std::uint32_t>(r));
      }
    }
    delta += (hyp ? 1 : 0) - (s.forced ? 1 : 0);
  }
  return delta;
}

void CbilboTracker::assign(VarId v, std::size_t r) {
  LBIST_CHECK(r < num_regs_, "CbilboTracker: register not announced");
  affected_modules(v, scratch_mods_);
  for (const std::uint32_t mi : scratch_mods_) {
    ModuleState& s = mods_[mi];
    if (!s.eligible) continue;
    total_ -= s.forced ? 1 : 0;

    if (out_module_[v.index()] == static_cast<std::int32_t>(mi)) {
      ++s.assigned_out;
      if (s.outcnt[r]++ == 0) {
        s.outregs.push_back(static_cast<std::uint32_t>(r));
      }
    }
    for (const auto& [m2, j] : uses_[v.index()]) {
      if (m2 != mi) continue;
      if (!s.covered[r].test(j)) {
        s.covered[r].set(j);
        ++s.covcnt[r];
      }
    }

    s.forced = forced_now(s);
    total_ += s.forced ? 1 : 0;
  }
}

}  // namespace lbist
