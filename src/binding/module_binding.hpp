#pragma once
// Module (functional unit) binding — σ : V -> M of Section III.
//
// The paper binds modules before registers, with no testability
// consideration ("existing algorithms that optimize area are used"), and all
// its experiments *pin* the module assignment.  This binder takes a list of
// module prototypes (from module_spec.hpp) and deterministically assigns
// every operation to a compatible module that is free in its control step,
// via per-step bipartite matching, preferring to pack operations of one
// kind onto the same module (temporal multiplicity).
//
// It also materializes the derived sets the register binder consumes:
// the input/output variable sets I_M / O_M (Definition 3), the per-instance
// operand sets I^j_M used by the CBILBO conditions (Lemma 2), and the
// temporal multiplicity TM(M) (Definition 2).

#include <string>
#include <vector>

#include "binding/module_spec.hpp"
#include "dfg/dfg.hpp"
#include "dfg/schedule.hpp"
#include "support/dyn_bitset.hpp"
#include "support/ids.hpp"

namespace lbist {

/// The result of module binding plus all derived variable-set views.
class ModuleBinding {
 public:
  /// Binds every operation onto `protos`; throws lbist::Error if the
  /// prototypes cannot cover some step's operations.
  static ModuleBinding bind(const Dfg& dfg, const Schedule& sched,
                            std::vector<ModuleProto> protos);

  /// Rebuilds a binding from a stored assignment σ (as produced by
  /// bind(); used by the pass-pipeline snapshot restore).  Instances are
  /// recovered in schedule order and every derived variable set is
  /// recomputed; throws lbist::Error if the assignment is inconsistent
  /// with the design or prototypes (unknown module, unsupported kind,
  /// two operations on one module in the same step).
  static ModuleBinding restore(const Dfg& dfg, const Schedule& sched,
                               std::vector<ModuleProto> protos,
                               const IdMap<OpId, ModuleId>& module_of);

  [[nodiscard]] std::size_t num_modules() const { return protos_.size(); }
  [[nodiscard]] const ModuleProto& proto(ModuleId m) const {
    return protos_[m.index()];
  }
  [[nodiscard]] ModuleId module_of(OpId op) const { return module_of_[op]; }

  /// Instances of module m (operations mapped onto it), in schedule order.
  [[nodiscard]] const std::vector<OpId>& instances(ModuleId m) const {
    return instances_[m.index()];
  }
  /// Temporal multiplicity TM(m) = |instances(m)| (Definition 2).
  [[nodiscard]] std::size_t temporal_multiplicity(ModuleId m) const {
    return instances_[m.index()].size();
  }

  /// I_M: every operand variable of every instance of m (Definition 3),
  /// restricted to register-allocatable variables, as a bitset over VarId.
  [[nodiscard]] const DynBitset& input_vars(ModuleId m) const {
    return input_vars_[m.index()];
  }
  /// O_M: every result variable of every instance of m, restricted to
  /// register-allocatable variables.
  [[nodiscard]] const DynBitset& output_vars(ModuleId m) const {
    return output_vars_[m.index()];
  }
  /// I^j_M: allocatable operands of instance j of module m (Lemma 2 input).
  [[nodiscard]] const DynBitset& instance_operands(ModuleId m,
                                                   std::size_t j) const {
    return instance_operands_[m.index()][j];
  }

  /// Display name for module m, e.g. "M1(+)".
  [[nodiscard]] std::string module_name(ModuleId m) const;

  [[nodiscard]] std::vector<ModuleId> all_modules() const;

 private:
  /// Fills input_vars_/output_vars_/instance_operands_ from the instance
  /// lists (shared tail of bind() and restore()).
  void build_derived_sets(const Dfg& dfg);

  std::vector<ModuleProto> protos_;
  IdMap<OpId, ModuleId> module_of_;
  std::vector<std::vector<OpId>> instances_;
  std::vector<DynBitset> input_vars_;
  std::vector<DynBitset> output_vars_;
  std::vector<std::vector<DynBitset>> instance_operands_;
};

}  // namespace lbist
