#include "binding/module_binding.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace lbist {

namespace {

/// Kuhn's augmenting-path matching: op index -> module index.
/// `compatible[o]` lists the modules op o may use, in preference order.
bool try_augment(std::size_t o,
                 const std::vector<std::vector<std::size_t>>& compatible,
                 std::vector<bool>& visited,
                 std::vector<std::size_t>& module_taken_by) {
  for (std::size_t m : compatible[o]) {
    if (visited[m]) continue;
    visited[m] = true;
    if (module_taken_by[m] == SIZE_MAX ||
        try_augment(module_taken_by[m], compatible, visited,
                    module_taken_by)) {
      module_taken_by[m] = o;
      return true;
    }
  }
  return false;
}

}  // namespace

ModuleBinding ModuleBinding::bind(const Dfg& dfg, const Schedule& sched,
                                  std::vector<ModuleProto> protos) {
  ModuleBinding b;
  b.protos_ = std::move(protos);
  b.module_of_.assign(dfg.num_ops(), ModuleId::invalid());
  b.instances_.resize(b.protos_.size());

  // Count of instances per (module, kind), used to prefer packing same-kind
  // operations onto the same module across steps.
  std::vector<std::vector<int>> kind_count(
      b.protos_.size(), std::vector<int>(16, 0));

  for (int step = 1; step <= sched.num_steps(); ++step) {
    std::vector<OpId> ops = sched.ops_in_step(dfg, step);
    if (ops.empty()) continue;

    std::vector<std::vector<std::size_t>> compatible(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const OpKind kind = dfg.op(ops[i]).kind;
      for (std::size_t m = 0; m < b.protos_.size(); ++m) {
        if (b.protos_[m].supports_kind(kind)) compatible[i].push_back(m);
      }
      // Prefer specialized units over general ALUs, then balance load so
      // every provisioned module is actually used (the paper's pinned
      // assignments, e.g. "2+", intend one instance per adder), and among
      // equally-loaded ALUs prefer one already executing this kind (fewer
      // distinct functions per ALU).
      std::stable_sort(
          compatible[i].begin(), compatible[i].end(),
          [&](std::size_t x, std::size_t y) {
            if (b.protos_[x].supports.size() != b.protos_[y].supports.size()) {
              return b.protos_[x].supports.size() <
                     b.protos_[y].supports.size();
            }
            if (b.instances_[x].size() != b.instances_[y].size()) {
              return b.instances_[x].size() < b.instances_[y].size();
            }
            const int cx = kind_count[x][static_cast<std::size_t>(kind)];
            const int cy = kind_count[y][static_cast<std::size_t>(kind)];
            return cx > cy;
          });
      LBIST_CHECK(!compatible[i].empty(),
                  "no module supports operation " + dfg.op(ops[i]).name);
    }

    std::vector<std::size_t> module_taken_by(b.protos_.size(), SIZE_MAX);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      std::vector<bool> visited(b.protos_.size(), false);
      LBIST_CHECK(try_augment(i, compatible, visited, module_taken_by),
                  "module spec cannot execute step " + std::to_string(step) +
                      " (operation " + dfg.op(ops[i]).name + " unplaced)");
    }
    for (std::size_t m = 0; m < b.protos_.size(); ++m) {
      if (module_taken_by[m] == SIZE_MAX) continue;
      const OpId op = ops[module_taken_by[m]];
      b.module_of_[op] = ModuleId{static_cast<ModuleId::value_type>(m)};
      b.instances_[m].push_back(op);
      ++kind_count[m][static_cast<std::size_t>(dfg.op(op).kind)];
    }
  }

  b.build_derived_sets(dfg);
  return b;
}

ModuleBinding ModuleBinding::restore(const Dfg& dfg, const Schedule& sched,
                                     std::vector<ModuleProto> protos,
                                     const IdMap<OpId, ModuleId>& module_of) {
  ModuleBinding b;
  b.protos_ = std::move(protos);
  LBIST_CHECK(module_of.size() == dfg.num_ops(),
              "module assignment does not cover the design");
  b.module_of_.assign(dfg.num_ops(), ModuleId::invalid());
  b.instances_.resize(b.protos_.size());

  // Walking steps in order and ops in id order within a step reproduces
  // bind()'s per-module instance order exactly: a module executes at most
  // one operation per step, so both traversals append in step order.
  std::vector<char> taken(b.protos_.size());
  for (int step = 1; step <= sched.num_steps(); ++step) {
    std::fill(taken.begin(), taken.end(), 0);
    for (OpId op : sched.ops_in_step(dfg, step)) {
      const ModuleId m = module_of[op];
      LBIST_CHECK(m.valid() && m.index() < b.protos_.size(),
                  "operation " + dfg.op(op).name +
                      " assigned to an unknown module");
      LBIST_CHECK(b.protos_[m.index()].supports_kind(dfg.op(op).kind),
                  "module cannot execute operation " + dfg.op(op).name);
      LBIST_CHECK(taken[m.index()] == 0,
                  "two operations on one module in step " +
                      std::to_string(step));
      taken[m.index()] = 1;
      b.module_of_[op] = m;
      b.instances_[m.index()].push_back(op);
    }
  }
  b.build_derived_sets(dfg);
  return b;
}

void ModuleBinding::build_derived_sets(const Dfg& dfg) {
  // Derived variable sets over allocatable variables.
  auto allocatable = [&](VarId v) { return dfg.var(v).allocatable(); };
  input_vars_.assign(protos_.size(), DynBitset(dfg.num_vars()));
  output_vars_.assign(protos_.size(), DynBitset(dfg.num_vars()));
  instance_operands_.assign(protos_.size(), {});
  for (std::size_t m = 0; m < protos_.size(); ++m) {
    for (OpId opid : instances_[m]) {
      const Operation& op = dfg.op(opid);
      DynBitset operands(dfg.num_vars());
      for (VarId v : {op.lhs, op.rhs}) {
        if (allocatable(v)) {
          input_vars_[m].set(v.index());
          operands.set(v.index());
        }
      }
      if (allocatable(op.result)) {
        output_vars_[m].set(op.result.index());
      }
      instance_operands_[m].push_back(std::move(operands));
    }
  }
}

std::string ModuleBinding::module_name(ModuleId m) const {
  return "M" + std::to_string(m.value() + 1) + "(" +
         protos_[m.index()].label() + ")";
}

std::vector<ModuleId> ModuleBinding::all_modules() const {
  std::vector<ModuleId> out;
  out.reserve(protos_.size());
  for (std::size_t m = 0; m < protos_.size(); ++m) {
    out.push_back(ModuleId{static_cast<ModuleId::value_type>(m)});
  }
  return out;
}

}  // namespace lbist
