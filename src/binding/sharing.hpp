#pragma once
// Sharing degrees (Definitions 4 and 5 of the paper).
//
// SD(v) counts the distinct module input-variable sets and output-variable
// sets containing variable v; SD(R) is the same over the union of a
// register's variables.  Both are represented as bitmasks with one bit per
// (module, direction) pair, so SD(R ∪ {v}) and the increase ΔSD^v(R) are
// word-parallel OR/popcount operations:
//
//   SD(R, v)   = |mask(R) | mask(v)|
//   ΔSD^v(R)   = SD(R, v) - SD(R)
//
// which is exactly the paper's
//   SD(R, v) = SD(R) + SD(v) - Σ_j (X_j^R X_j^v + Y_j^R Y_j^v).

#include "binding/module_binding.hpp"
#include "dfg/dfg.hpp"
#include "support/dyn_bitset.hpp"
#include "support/ids.hpp"

namespace lbist {

/// Precomputed per-variable sharing masks for a fixed module binding.
class SharingAnalysis {
 public:
  SharingAnalysis(const Dfg& dfg, const ModuleBinding& mb);

  /// Mask of variable v: bit j set iff v ∈ I_Mj, bit (m+j) iff v ∈ O_Mj.
  [[nodiscard]] const DynBitset& mask(VarId v) const {
    return masks_[v];
  }

  /// SD(v), Definition 4.
  [[nodiscard]] int sd(VarId v) const {
    return static_cast<int>(masks_[v].count());
  }

  /// SD of an arbitrary mask (e.g. a register's accumulated mask).
  [[nodiscard]] static int sd_of(const DynBitset& m) {
    return static_cast<int>(m.count());
  }

  /// An empty mask of the right width, for seeding register masks.
  [[nodiscard]] DynBitset empty_mask() const {
    return DynBitset(2 * num_modules_);
  }

  [[nodiscard]] std::size_t num_modules() const { return num_modules_; }

 private:
  std::size_t num_modules_ = 0;
  IdMap<VarId, DynBitset> masks_;
};

}  // namespace lbist
