#include "binding/module_spec.hpp"

#include <algorithm>
#include <map>

#include "dfg/schedule.hpp"
#include "support/check.hpp"

namespace lbist {

std::string ModuleProto::label() const {
  if (supports.size() == 1) return std::string(symbol(supports[0]));
  std::string out = "[";
  for (OpKind k : supports) out += symbol(k);
  out += "]";
  return out;
}

std::vector<ModuleProto> parse_module_spec(std::string_view s) {
  std::vector<ModuleProto> protos;
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  };
  while (true) {
    skip_ws();
    LBIST_CHECK(i < s.size(), "empty module group in spec: " +
                                  std::string(s));
    // Optional count.
    int count = 0;
    bool has_count = false;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
      count = count * 10 + (s[i] - '0');
      has_count = true;
      ++i;
    }
    if (!has_count) count = 1;
    LBIST_CHECK(count >= 1, "module count must be positive in: " +
                                std::string(s));
    skip_ws();
    // Single symbol or bracketed ALU set.
    ModuleProto proto;
    LBIST_CHECK(i < s.size(), "missing operator in spec: " + std::string(s));
    if (s[i] == '[') {
      ++i;
      while (i < s.size() && s[i] != ']') {
        proto.supports.push_back(kind_from_symbol(s.substr(i, 1)));
        ++i;
      }
      LBIST_CHECK(i < s.size(), "unterminated '[' in spec: " +
                                    std::string(s));
      ++i;  // consume ']'
      LBIST_CHECK(!proto.supports.empty(),
                  "empty ALU set in spec: " + std::string(s));
    } else {
      proto.supports.push_back(kind_from_symbol(s.substr(i, 1)));
      ++i;
    }
    for (int c = 0; c < count; ++c) protos.push_back(proto);
    skip_ws();
    if (i >= s.size()) break;
    LBIST_CHECK(s[i] == ',', "expected ',' in spec: " + std::string(s));
    ++i;
  }
  return protos;
}

std::vector<ModuleProto> minimal_module_spec(const Dfg& dfg,
                                             const Schedule& sched) {
  std::map<OpKind, std::map<int, int>> per_kind_step;
  for (const auto& op : dfg.ops()) {
    ++per_kind_step[op.kind][sched.step(op.id)];
  }
  std::vector<ModuleProto> protos;
  for (const auto& [kind, steps] : per_kind_step) {
    int needed = 0;
    for (const auto& [step, n] : steps) needed = std::max(needed, n);
    for (int c = 0; c < needed; ++c) {
      protos.push_back(ModuleProto{{kind}});
    }
  }
  return protos;
}

}  // namespace lbist
