#include "binding/bist_aware_binder.hpp"

#include <algorithm>
#include <optional>
#include <numeric>
#include <span>
#include <sstream>

#include "binding/cbilbo_check.hpp"
#include "binding/cbilbo_tracker.hpp"
#include "binding/sharing.hpp"
#include "graph/chordal.hpp"
#include "obs/events.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"

namespace lbist {

namespace {

/// Incremental register state kept by the binder.
struct RegState {
  std::vector<std::size_t> members;  ///< conflict-graph vertices
  DynBitset member_vertices;         ///< same, as a bitset over vertices
  DynBitset var_mask;                ///< members as a bitset over VarId
  DynBitset share_mask;              ///< union of member sharing masks
  DynBitset src_modules;             ///< modules (+external) writing into it
  DynBitset dst_modules;             ///< modules reading from it
  int sd = 0;                        ///< SD(share_mask), cached
};

/// Per-variable connectivity footprint used by the interconnect tie-break.
struct VarFootprint {
  DynBitset src;  ///< defining module, or the external-input pseudo-module
  DynBitset dst;  ///< consuming modules
};

/// Estimated new interconnect endpoints if v joins R: sources and
/// destinations of v that R does not already have (Section IV's merge-case
/// reasoning, used only to break ties).
int interconnect_cost(const RegState& reg, const VarFootprint& fp) {
  return static_cast<int>(fp.src.count_and_not(reg.src_modules) +
                          fp.dst.count_and_not(reg.dst_modules));
}

}  // namespace

RegisterBinding bind_registers_bist_aware(const Dfg& dfg,
                                          const VarConflictGraph& cg,
                                          const ModuleBinding& mb,
                                          const BistBinderOptions& opts,
                                          std::vector<std::string>* trace,
                                          AlgorithmEvents* events) {
  const std::size_t n = cg.graph.num_vertices();
  SharingAnalysis sa(dfg, mb);
  const std::size_t m = sa.num_modules();

  auto say = [&](const std::string& line) {
    if (trace != nullptr) trace->push_back(line);
  };

  // --- 1. Structured PVES (Section III.A.1) -------------------------------
  // Per-vertex SD is popcount of a static mask; hoist it out of the sort
  // comparator (it used to be recomputed O(n log n) times).
  std::vector<int> sd_vtx(n);
  for (std::size_t v = 0; v < n; ++v) sd_vtx[v] = sa.sd(cg.vars[v]);

  std::vector<std::size_t> rank(n);
  {
    std::vector<std::size_t> by_priority(n);
    std::iota(by_priority.begin(), by_priority.end(), std::size_t{0});
    if (opts.sd_ordered_pves) {
      auto base_peo = perfect_elimination_order(cg.graph);
      LBIST_CHECK(base_peo.has_value(), "conflict graph is not chordal");
      auto mcs = max_clique_through_vertex(cg.graph, *base_peo);
      std::stable_sort(by_priority.begin(), by_priority.end(),
                       [&](std::size_t a, std::size_t b) {
                         if (sd_vtx[a] != sd_vtx[b]) {
                           return sd_vtx[a] < sd_vtx[b];
                         }
                         return mcs[a] < mcs[b];
                       });
      if (events != nullptr) {
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t v = by_priority[i];
          events->pves_rank(dfg.var(cg.vars[v]).name, sd_vtx[v], mcs[v], i);
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) rank[by_priority[i]] = i;
  }
  auto peo = perfect_elimination_order(cg.graph, rank);
  LBIST_CHECK(peo.has_value(), "conflict graph is not chordal");
  std::vector<std::size_t> color_order(peo->rbegin(), peo->rend());

  // --- per-variable connectivity footprints --------------------------------
  std::vector<VarFootprint> fp(n, VarFootprint{DynBitset(m + 1),
                                               DynBitset(m + 1)});
  for (std::size_t v = 0; v < n; ++v) {
    const Variable& var = dfg.var(cg.vars[v]);
    if (var.def.valid()) {
      fp[v].src.set(mb.module_of(var.def).index());
    } else {
      fp[v].src.set(m);  // external input
    }
    for (OpId use : var.uses) fp[v].dst.set(mb.module_of(use).index());
  }

  // --- 2. Coloring in reverse PVES order (Section III.A.2, III.B) ---------
  std::vector<RegState> regs;
  std::optional<CbilboTracker> tracker;
  if (opts.avoid_cbilbo) tracker.emplace(dfg, mb);
  auto reg_masks = [&] {
    std::vector<DynBitset> out;
    out.reserve(regs.size());
    for (const auto& r : regs) out.push_back(r.var_mask);
    return out;
  };

  auto assign = [&](std::size_t v, std::size_t r) {
    RegState& reg = regs[r];
    reg.members.push_back(v);
    reg.member_vertices.set(v);
    reg.var_mask.set(cg.vars[v].index());
    reg.sd +=
        static_cast<int>(sa.mask(cg.vars[v]).count_and_not(reg.share_mask));
    reg.share_mask |= sa.mask(cg.vars[v]);
    reg.src_modules |= fp[v].src;
    reg.dst_modules |= fp[v].dst;
    if (tracker.has_value()) tracker->assign(cg.vars[v], r);
  };

  // Per-step scratch, arena-backed and register-indexed: ΔSD, tie-break
  // interconnect cost, feasibility.  A register count never exceeds n.
  Arena arena;
  std::span<int> dsd = arena.alloc_zeroed<int>(n);
  std::span<int> icost = arena.alloc_zeroed<int>(n);
  std::vector<std::size_t> feasible;
  feasible.reserve(n);

  for (std::size_t v : color_order) {
    const VarId var = cg.vars[v];
    const DynBitset& vmask = sa.mask(var);

    // Non-conflicting registers.
    feasible.clear();
    const RowView row = cg.graph.row(v);
    for (std::size_t r = 0; r < regs.size(); ++r) {
      if (!row.intersects(regs[r].member_vertices)) {
        feasible.push_back(r);
      }
    }
    if (feasible.empty()) {
      RegState fresh{{},
                     DynBitset(n),
                     DynBitset(dfg.num_vars()),
                     sa.empty_mask(),
                     DynBitset(m + 1),
                     DynBitset(m + 1),
                     0};
      regs.push_back(std::move(fresh));
      if (tracker.has_value()) tracker->add_register();
      assign(v, regs.size() - 1);
      say("assign " + dfg.var(var).name + " -> R" +
          std::to_string(regs.size()) + " (new register)");
      if (events != nullptr) {
        events->assign(dfg.var(var).name, regs.size() - 1, sd_vtx[v],
                       /*new_register=*/true, {});
      }
      continue;
    }

    // ΔSD and tie-break cost for each feasible register.  ΔSD is the
    // word-parallel |mask(v) \ share_mask(R)| — no merged mask is built,
    // and SD(R) itself is cached on the register.
    for (std::size_t r : feasible) {
      dsd[r] = static_cast<int>(vmask.count_and_not(regs[r].share_mask));
      icost[r] = interconnect_cost(regs[r], fp[v]);
    }
    // Preference: larger ΔSD, then larger SD(R), then cheaper interconnect,
    // then lower index.
    auto better = [&](std::size_t a, std::size_t b) {
      if (dsd[a] != dsd[b]) return dsd[a] > dsd[b];
      if (regs[a].sd != regs[b].sd) return regs[a].sd > regs[b].sd;
      if (icost[a] != icost[b]) return icost[a] < icost[b];
      return a < b;
    };

    std::size_t chosen;
    if (!opts.delta_sd_rule) {
      chosen = feasible.front();  // first fit (ablation arm)
    } else {
      const std::size_t r_i =
          *std::min_element(feasible.begin(), feasible.end(),
                            [&](std::size_t a, std::size_t b) {
                              return better(a, b);
                            });
      chosen = r_i;

      if (opts.case_overrides) {
        // Candidate overrides per Cases 1 and 2 of Section III.A.2.
        std::vector<std::size_t> candidates;
        std::vector<std::size_t> case1_cands;
        const int threshold = regs[r_i].sd + dsd[r_i];
        // Case 1: v is an output variable of module j and some feasible
        // register already holds an output variable of j with
        // SD(R_l) > SD(R_i, v).
        for (std::size_t j = 0; j < m; ++j) {
          if (!vmask.test(m + j)) continue;
          for (std::size_t r : feasible) {
            if (r == r_i) continue;
            if (regs[r].share_mask.test(m + j) && regs[r].sd > threshold) {
              candidates.push_back(r);
              case1_cands.push_back(r);
            }
          }
        }
        // Case 2: v is an input variable of module j; operators are binary,
        // so the override needs TWO feasible registers already holding
        // input variables of j with SD above the threshold.
        for (std::size_t j = 0; j < m; ++j) {
          if (!vmask.test(j)) continue;
          std::vector<std::size_t> holders;
          for (std::size_t r : feasible) {
            if (r == r_i) continue;
            if (regs[r].share_mask.test(j) && regs[r].sd > threshold) {
              holders.push_back(r);
            }
          }
          if (holders.size() >= 2) {
            candidates.insert(candidates.end(), holders.begin(),
                              holders.end());
          }
        }
        if (!candidates.empty()) {
          std::sort(candidates.begin(), candidates.end());
          candidates.erase(
              std::unique(candidates.begin(), candidates.end()),
              candidates.end());
          chosen = *std::min_element(candidates.begin(), candidates.end(),
                                     [&](std::size_t a, std::size_t b) {
                                       return better(a, b);
                                     });
          if (chosen != r_i) {
            say("case override: " + dfg.var(var).name + " prefers R" +
                std::to_string(chosen + 1) + " over R" +
                std::to_string(r_i + 1));
            if (events != nullptr) {
              const bool from_case1 =
                  std::find(case1_cands.begin(), case1_cands.end(), chosen) !=
                  case1_cands.end();
              events->case_override(from_case1 ? 1 : 2, dfg.var(var).name,
                                    r_i, chosen);
            }
          }
        }
      }
    }

    // --- 3. CBILBO avoidance (Section III.B, Lemma 2) ----------------------
    // The tracker answers "would placing v here force a new CBILBO?" in
    // O(uses of v), replacing a full forced_cbilbos() recomputation per
    // candidate register.
    if (opts.avoid_cbilbo) {
      const bool would_force = tracker->delta_if_assigned(var, chosen) > 0;
      if (events != nullptr) {
        events->cbilbo_checked(dfg.var(var).name, chosen, would_force);
      }
      if (would_force) {
        std::vector<std::size_t> ordered = feasible;
        std::sort(ordered.begin(), ordered.end(),
                  [&](std::size_t a, std::size_t b) { return better(a, b); });
        for (std::size_t r : ordered) {
          if (r == chosen) continue;
          if (tracker->delta_if_assigned(var, r) <= 0) {
            say("CBILBO avoidance: " + dfg.var(var).name + " moved to R" +
                std::to_string(r + 1) + " (R" + std::to_string(chosen + 1) +
                " would force a CBILBO)");
            if (events != nullptr) {
              events->cbilbo_avoided(dfg.var(var).name, chosen, r);
            }
            chosen = r;
            break;
          }
        }
        // If no alternative avoids it, keep `chosen` — the paper allows the
        // assignment rather than allocating an extra register.
      }
    }

    const int gained = dsd[chosen];
    assign(v, chosen);
    say("assign " + dfg.var(var).name + " -> R" + std::to_string(chosen + 1) +
        " (dSD=" + std::to_string(gained) + ")");
    if (events != nullptr) {
      std::vector<SdCandidate> cands;
      cands.reserve(feasible.size());
      for (std::size_t r : feasible) {
        cands.push_back(SdCandidate{r, dsd[r]});
      }
      events->assign(dfg.var(var).name, chosen, gained,
                     /*new_register=*/false, cands);
    }
  }

  // Report the CBILBOs the final binding could not avoid (Lemma 2 on the
  // finished register contents) so cbilbo.forced mirrors what the BIST
  // allocator will be confronted with.
  if (events != nullptr) {
    for (const ForcedCbilbo& f : forced_cbilbos(mb, reg_masks())) {
      events->cbilbo_forced(f.reg.index(), f.module.index(), f.lemma_case);
    }
  }

  // --- materialize ----------------------------------------------------------
  RegisterBinding rb;
  rb.reg_of.assign(dfg.num_vars(), RegId::invalid());
  rb.regs.resize(regs.size());
  for (std::size_t r = 0; r < regs.size(); ++r) {
    for (std::size_t v : regs[r].members) {
      rb.regs[r].push_back(cg.vars[v]);
      rb.reg_of[cg.vars[v]] = RegId{static_cast<RegId::value_type>(r)};
    }
  }
  return rb;
}

}  // namespace lbist
