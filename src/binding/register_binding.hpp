#pragma once
// Register binding Π_R — a partition of the allocatable variables into
// registers such that no register holds two conflicting variables.

#include <string>
#include <vector>

#include "dfg/dfg.hpp"
#include "dfg/lifetime.hpp"
#include "support/dyn_bitset.hpp"
#include "support/ids.hpp"

namespace lbist {

/// A complete register binding.
struct RegisterBinding {
  /// register -> variables assigned to it (in assignment order).
  std::vector<std::vector<VarId>> regs;
  /// variable -> register; invalid for non-allocatable variables.
  IdMap<VarId, RegId> reg_of;

  [[nodiscard]] std::size_t num_regs() const { return regs.size(); }

  /// Bitset over VarId of the variables in register r.
  [[nodiscard]] DynBitset var_mask(RegId r, std::size_t num_vars) const;

  /// All registers' variable masks (index = register).
  [[nodiscard]] std::vector<DynBitset> all_var_masks(
      std::size_t num_vars) const;

  /// Throws lbist::Error if two variables in one register conflict or some
  /// allocatable variable is unassigned.
  void validate(const Dfg& dfg,
                const IdMap<VarId, LiveInterval>& lifetimes) const;

  /// "R1={c,f,a} R2={d,g,b,h} R3={e}"
  [[nodiscard]] std::string to_string(const Dfg& dfg) const;
};

}  // namespace lbist
