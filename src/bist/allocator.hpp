#pragma once
// BIST test-resource allocation — the BITS stand-in (see DESIGN.md §2).
//
// Given a data path, choose one BIST embedding per module (TPG pair + SA)
// so that the total extra area of converting registers to test registers is
// minimal.  Modules need not be tested in the same session, so a register
// may be TPG for one module and SA for another (a BILBO, role TpgSa); only
// a register that is TPG and SA *for the same module* must be a CBILBO.
//
// `solve` runs a per-module branch-and-bound dynamic program over register
// role-state vectors (3 bits per register: tpg, sa, cbilbo).  A greedy
// completion seeds the incumbent; since role flags only accumulate and the
// area model is (normally) monotone in them, a partial state's own area is
// an admissible lower bound and strictly-worse states are cut without
// losing exactness.  If the surviving frontier still exceeds a cap — or
// the design has more registers than `exact_max_regs`, which makes every
// DP state itself large — the allocator falls back to the greedy solver,
// which streams the embedding space without materializing it.  Objective
// is lexicographic: minimal extra area, then fewest CBILBOs, then fewest
// modified registers.

#include <optional>
#include <string>
#include <vector>

#include "bist/area_model.hpp"
#include "bist/roles.hpp"
#include "rtl/datapath.hpp"
#include "rtl/ipath.hpp"

namespace lbist {

class AlgorithmEvents;  // obs/events.hpp

/// Per-role counts of a solution (the columns of Tables II and III).
struct RoleCounts {
  int tpg = 0;
  int sa = 0;
  int tpg_sa = 0;  ///< BILBOs
  int cbilbo = 0;

  [[nodiscard]] int modified() const { return tpg + sa + tpg_sa + cbilbo; }
  [[nodiscard]] std::string to_string() const;
};

/// A complete BIST resource allocation.
struct BistSolution {
  /// Final role of every register (index space of Datapath::registers).
  std::vector<BistRole> roles;
  /// Chosen embedding per module, in module order; nullopt for untestable
  /// modules.
  std::vector<std::optional<BistEmbedding>> embeddings;
  /// Modules with no feasible embedding (e.g. one register feeds both
  /// input ports).
  std::vector<std::size_t> untestable_modules;
  /// Total extra gates of the register conversions.
  double extra_area = 0.0;
  /// True when produced by the exact DP; false for greedy (including the
  /// frontier-cap fallback, where a larger embedding space can paradoxically
  /// yield a worse solution).
  bool exact = true;

  [[nodiscard]] RoleCounts counts() const;
  /// Overhead as percentage of functional area (the paper's "% BIST area").
  [[nodiscard]] double overhead_percent(const Datapath& dp,
                                        const AreaModel& model) const;
  [[nodiscard]] std::string describe(const Datapath& dp) const;
};

/// Minimal-area BIST allocation.
class BistAllocator {
 public:
  explicit BistAllocator(AreaModel model) : model_(model) {}

  /// Exact branch-and-bound solver; falls back to greedy beyond
  /// `max_frontier` surviving states or `exact_max_regs` registers.
  [[nodiscard]] BistSolution solve(const Datapath& dp) const;

  /// Greedy: modules in order, each takes its locally cheapest embedding.
  /// Streams the embedding space (nothing materialized) so it stays flat
  /// in memory at any design size.
  [[nodiscard]] BistSolution solve_greedy(const Datapath& dp) const;

  /// Frontier cap for the exact DP (states per module level).
  std::size_t max_frontier = 500000;

  /// Register-count cap for the exact DP.  Each DP state is one role byte
  /// per register, so frontier memory and hashing cost scale with the
  /// register count; past this many registers the search would burn
  /// seconds and gigabytes before the inevitable `max_frontier` bail, so
  /// `solve` goes straight to the streaming greedy allocator instead.
  /// Paper benchmarks and fuzz shapes sit far below this cap.
  std::size_t exact_max_regs = 192;

  /// Also consider TPG paths through modules held in an identity mode
  /// (extension; widens the embedding space at zero area cost — see
  /// rtl/ipath.hpp and bench_transparency).
  bool use_transparent_paths = false;

  /// Among area-minimal solutions, prefer the one needing the fewest test
  /// sessions (shorter total test time).  Evaluates the session count of
  /// every area-optimal final state, so leave off for very large designs.
  bool minimize_sessions = false;

  /// If non-null, receives per-register role assignments and greedy-fallback
  /// notifications (obs/events.hpp).  Borrowed, not owned.
  AlgorithmEvents* events = nullptr;

 private:
  /// Greedy scan streaming embeddings straight off the datapath (nothing
  /// is materialized, so it is safe at any scale); `emit_events` may be
  /// null (used when the greedy pass only seeds the branch-and-bound
  /// incumbent).
  [[nodiscard]] BistSolution solve_greedy_impl(
      const Datapath& dp, AlgorithmEvents* emit_events) const;

  AreaModel model_;
};

}  // namespace lbist
