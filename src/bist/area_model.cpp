#include "bist/area_model.hpp"

#include <algorithm>

namespace lbist {

double AreaModel::mux_area(std::size_t k_inputs) const {
  if (k_inputs <= 1) return 0.0;
  return static_cast<double>(k_inputs - 1) * mux_gates_per_bit * bit_width;
}

double AreaModel::module_area(const ModuleProto& proto) const {
  const double n = bit_width;
  auto kind_area = [&](OpKind k) {
    switch (k) {
      case OpKind::Add: return add_gates_per_bit * n;
      case OpKind::Sub: return sub_gates_per_bit * n;
      case OpKind::Mul: return mul_gates_per_bit2 * n * n;
      case OpKind::Div: return div_gates_per_bit2 * n * n;
      case OpKind::And:
      case OpKind::Or:
      case OpKind::Xor: return logic_gates_per_bit * n;
      case OpKind::Lt:
      case OpKind::Gt: return cmp_gates_per_bit * n;
    }
    return 0.0;
  };
  double largest = 0.0;
  double total_rest = 0.0;
  for (OpKind k : proto.supports) {
    const double a = kind_area(k);
    if (a > largest) {
      total_rest += largest;
      largest = a;
    } else {
      total_rest += a;
    }
  }
  return largest + alu_extra_kind_factor * total_rest;
}

double AreaModel::role_extra(BistRole role) const {
  const double n = bit_width;
  switch (role) {
    case BistRole::None: return 0.0;
    case BistRole::Tpg: return tpg_extra_per_bit * n;
    case BistRole::Sa: return sa_extra_per_bit * n;
    case BistRole::TpgSa: return bilbo_extra_per_bit * n;
    case BistRole::Cbilbo: return cbilbo_extra_per_bit * n;
  }
  return 0.0;
}

double AreaModel::functional_area(const Datapath& dp) const {
  double area = 0.0;
  for (const auto& reg : dp.registers) {
    area += register_area();
    area += mux_area(reg.source_modules.size() +
                     (reg.external_source ? 1u : 0u));
  }
  for (const auto& mod : dp.modules) {
    area += module_area(mod.proto);
    area += mux_area(mod.left_sources.size());
    area += mux_area(mod.right_sources.size());
  }
  return area;
}

}  // namespace lbist
