#pragma once
// BIST fault simulation — validates that the allocated test resources
// actually test the functional modules.
//
// Fault model: single stuck-at faults on the module port bits (every bit of
// the left operand, right operand and output, stuck at 0 and at 1).  This
// boundary model is implementation-independent, matching the paper's
// premise that "the mapping of registers to TPGs and SAs is independent of
// the function and the gate-level implementation of the operator modules".
//
// A module test session is simulated exactly as the hardware would run it:
// maximal-length LFSRs (the TPG registers) drive the two input ports, the
// module computes, and a MISR (the SA register) compacts the responses.  A
// fault is detected when the faulty signature differs from the golden one.
// The same machinery demonstrates *why* the methodology insists on two
// distinct TPGs: driving both ports from one pattern sequence leaves
// operand-correlation faults undetected (see bench_fault_coverage).

#include <vector>

#include "binding/module_spec.hpp"
#include "bist/allocator.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

/// A single stuck-at fault on a module port bit.
struct StuckFault {
  enum class Site { LeftPort, RightPort, Output };
  Site site = Site::LeftPort;
  int bit = 0;
  bool stuck_one = false;
};

/// All 6*width port faults of a module.
[[nodiscard]] std::vector<StuckFault> enumerate_port_faults(int width);

/// Outcome of fault-simulating one module's BIST session(s).
struct CoverageResult {
  int total = 0;
  int detected = 0;

  [[nodiscard]] double coverage() const {
    return total == 0 ? 1.0 : static_cast<double>(detected) / total;
  }
};

/// Simulates pseudo-random testing of a module implementing `proto` (each
/// supported function gets its own `patterns`-long session into the MISR;
/// sessions are capped at one TPG period — repeating the maximal-length
/// sequence cancels error signatures out of the linear MISR).
/// With `independent_tpgs` false, one LFSR sequence drives both ports —
/// the degenerate configuration the embedding rule tpg_left != tpg_right
/// exists to prevent.
[[nodiscard]] CoverageResult simulate_module_bist(const ModuleProto& proto,
                                                  int width, int patterns,
                                                  bool independent_tpgs =
                                                      true);

}  // namespace lbist
