#pragma once
// Full BIST test plan: the allocator's embeddings + the session schedule +
// fault-simulated coverage, assembled into the self-test program a chip
// would run.  (Extension beyond the paper, which stops at resource
// selection; this is what the USC BITS back end produced downstream.)

#include <string>
#include <vector>

#include "bist/allocator.hpp"
#include "bist/fault_sim.hpp"
#include "bist/sessions.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

/// One module's slice of the plan.
struct ModuleTestReport {
  std::size_t module = 0;
  int session = -1;  ///< -1 when the module is untestable
  BistEmbedding embedding;
  int patterns = 0;
  CoverageResult coverage;
};

/// The assembled plan.
struct TestPlan {
  std::vector<ModuleTestReport> modules;
  int num_sessions = 0;
  /// Test application time in clocks: sessions run sequentially, modules
  /// within a session concurrently.
  int total_clocks = 0;
  double min_coverage = 1.0;
  double avg_coverage = 1.0;

  [[nodiscard]] std::string describe(const Datapath& dp) const;
};

/// Builds the plan for an allocated data path: schedules sessions, then
/// fault-simulates every testable module for `patterns_per_module` clocks.
[[nodiscard]] TestPlan build_test_plan(const Datapath& dp,
                                       const BistSolution& solution,
                                       int patterns_per_module, int width);

}  // namespace lbist
