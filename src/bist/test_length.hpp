#pragma once
// Coverage-driven test-length selection.
//
// The paper fixes the BIST style; how *long* each session must run is a
// test-engineering decision: more patterns catch more faults until the
// TPG period exhausts the sequence.  This utility searches (galloping +
// binary search over the fault simulator) for the smallest pattern count
// reaching a target port-fault coverage for a module, and for a whole
// data path, giving the test plan a principled per-session budget.

#include "bist/fault_sim.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

/// Smallest pattern count whose coverage reaches `target` (0..1], or the
/// TPG period if the target is unreachable (check the returned coverage).
struct TestLength {
  int patterns = 0;
  CoverageResult coverage;
  bool target_met = false;
};

[[nodiscard]] TestLength find_test_length(const ModuleProto& proto,
                                          int width, double target);

/// Per-module budgets for a data path; the plan budget is the maximum
/// (sessions run whole).
struct DatapathTestLength {
  std::vector<TestLength> per_module;
  int recommended_patterns = 0;  ///< max over testable modules
  bool all_targets_met = true;
};

[[nodiscard]] DatapathTestLength find_test_lengths(const Datapath& dp,
                                                   int width, double target);

}  // namespace lbist
