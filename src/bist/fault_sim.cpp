#include "bist/fault_sim.hpp"

#include <algorithm>

#include "rtl/simulate.hpp"
#include "support/lfsr.hpp"

namespace lbist {

std::vector<StuckFault> enumerate_port_faults(int width) {
  std::vector<StuckFault> faults;
  for (StuckFault::Site site : {StuckFault::Site::LeftPort,
                                StuckFault::Site::RightPort,
                                StuckFault::Site::Output}) {
    for (int bit = 0; bit < width; ++bit) {
      for (bool stuck_one : {false, true}) {
        faults.push_back(StuckFault{site, bit, stuck_one});
      }
    }
  }
  return faults;
}

namespace {

std::uint32_t inject(std::uint32_t value, int bit, bool stuck_one) {
  const std::uint32_t mask = std::uint32_t{1} << bit;
  return stuck_one ? (value | mask) : (value & ~mask);
}

/// Signature of one `patterns`-long session of `kind` with the fault
/// applied (pass nullptr for the golden run).
std::uint32_t session_signature(OpKind kind, int width, int patterns,
                                bool independent_tpgs,
                                const StuckFault* fault) {
  // Distinct non-zero seeds; with shared sequences the right port replays
  // the left port's stream exactly.
  Lfsr tpg_left(width, 0x5);
  Lfsr tpg_right(width, independent_tpgs ? 0x13 : 0x5);
  Misr sa(width);
  for (int p = 0; p < patterns; ++p) {
    std::uint32_t a = tpg_left.state();
    std::uint32_t b = independent_tpgs ? tpg_right.state() : a;
    if (fault != nullptr && fault->site == StuckFault::Site::LeftPort) {
      a = inject(a, fault->bit, fault->stuck_one);
    }
    if (fault != nullptr && fault->site == StuckFault::Site::RightPort) {
      b = inject(b, fault->bit, fault->stuck_one);
    }
    std::uint32_t y = eval_op(kind, a, b, width);
    if (fault != nullptr && fault->site == StuckFault::Site::Output) {
      y = inject(y, fault->bit, fault->stuck_one);
    }
    sa.absorb(y);
    tpg_left.step();
    tpg_right.step();
  }
  return sa.signature();
}

}  // namespace

CoverageResult simulate_module_bist(const ModuleProto& proto, int width,
                                    int patterns, bool independent_tpgs) {
  // Cap the session at one TPG period: beyond it the LFSR replays the same
  // patterns, and — the MISR being linear over GF(2) — an error sequence
  // absorbed an even number of times cancels out of the signature entirely.
  // Real BIST schedules never run past the generator period for the same
  // reason.
  const std::uint64_t period = (std::uint64_t{1} << width) - 1;
  if (static_cast<std::uint64_t>(patterns) > period) {
    patterns = static_cast<int>(period);  // width >= 31 never caps
  }

  CoverageResult result;
  std::vector<std::uint32_t> golden;
  golden.reserve(proto.supports.size());
  for (OpKind kind : proto.supports) {
    golden.push_back(
        session_signature(kind, width, patterns, independent_tpgs, nullptr));
  }
  for (const StuckFault& fault : enumerate_port_faults(width)) {
    ++result.total;
    for (std::size_t k = 0; k < proto.supports.size(); ++k) {
      const std::uint32_t sig = session_signature(
          proto.supports[k], width, patterns, independent_tpgs, &fault);
      if (sig != golden[k]) {
        ++result.detected;
        break;
      }
    }
  }
  return result;
}

}  // namespace lbist
