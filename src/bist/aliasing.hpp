#pragma once
// MISR aliasing analysis: the probability that a faulty response stream
// compacts to the fault-free signature (an "escape").  For a k-bit MISR
// with a primitive polynomial and long random error streams the asymptotic
// escape probability is 2^-k; this module provides both the analytic value
// and a Monte-Carlo measurement, and backs the test-length/width guidance
// in the test-plan report.

#include <cstdint>

namespace lbist {

/// Asymptotic aliasing probability of a `width`-bit MISR.
[[nodiscard]] double misr_aliasing_asymptotic(int width);

/// Monte-Carlo estimate: fraction of `trials` random non-zero error
/// streams of length `patterns` that alias to the error-free signature.
struct AliasingEstimate {
  double probability = 0.0;
  int trials = 0;
  int aliases = 0;
};
[[nodiscard]] AliasingEstimate misr_aliasing_empirical(int width,
                                                       int patterns,
                                                       int trials,
                                                       std::uint64_t seed);

/// Smallest MISR width whose asymptotic escape probability is below
/// `target` (e.g. 1e-3 -> 10 bits).
[[nodiscard]] int misr_width_for_escape_probability(double target);

}  // namespace lbist
