#include "bist/verilog_bist.hpp"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "bist/sessions.hpp"
#include "support/check.hpp"
#include "support/lfsr.hpp"

namespace lbist {

namespace {

std::string ident(std::string s) {
  for (char& c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_')) {
      c = '_';
    }
  }
  return s;
}

std::string verilog_op(OpKind k) {
  switch (k) {
    case OpKind::Add: return "+";
    case OpKind::Sub: return "-";
    case OpKind::Mul: return "*";
    case OpKind::Div: return "/";
    case OpKind::And: return "&";
    case OpKind::Or: return "|";
    case OpKind::Xor: return "^";
    case OpKind::Lt: return "<";
    case OpKind::Gt: return ">";
  }
  return "+";
}

/// Per-register seed mirroring bist/selftest.cpp.
std::uint32_t seed_for(std::size_t reg, int width) {
  const std::uint32_t mask =
      width == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << width) - 1);
  const std::uint32_t seed =
      (0x9E3779B9u * (static_cast<std::uint32_t>(reg) + 1)) & mask;
  return seed == 0 ? 1 : seed;
}

/// One sub-session of the emitted controller: the modules tested together
/// with one function slot each.
struct SubSession {
  struct ActiveModule {
    std::size_t module;
    OpKind kind;
    std::uint32_t golden;
  };
  std::vector<ActiveModule> active;
};

constexpr const char* kBilboPrimitive = R"(
// 4-mode test register: NORMAL load, HOLD, pseudo-random generation (LFSR),
// signature analysis (MISR), plus the two INIT modes that preset the
// corresponding seed.
module lowbist_bilbo #(
  parameter WIDTH = 8,
  parameter TAPS = 8'hB8,
  parameter SEED = 8'h05
) (
  input  wire             clk,
  input  wire [2:0]       mode,   // 0 normal, 1 hold, 2 tpg, 3 sa,
                                  // 4 init-tpg, 5 init-sa
  input  wire [WIDTH-1:0] d,      // functional / response input
  output reg  [WIDTH-1:0] q
);
  wire fb = ^(q & TAPS[WIDTH-1:0]);
  always @(posedge clk) begin
    case (mode)
      3'd0: q <= d;
      3'd1: q <= q;
      3'd2: q <= {q[WIDTH-2:0], fb};            // LFSR step
      3'd3: q <= {q[WIDTH-2:0], fb} ^ d;        // MISR compaction
      3'd4: q <= SEED[WIDTH-1:0];
      3'd5: q <= {WIDTH{1'b0}};
      default: q <= q;
    endcase
  end
endmodule
)";

constexpr const char* kCbilboPrimitive = R"(
// Concurrent BILBO: independent generator and compactor halves, so the
// register can stimulate and observe the same module in the same clock —
// at roughly twice the area of a plain register.
module lowbist_cbilbo #(
  parameter WIDTH = 8,
  parameter TAPS = 8'hB8,
  parameter SEED = 8'h05
) (
  input  wire             clk,
  input  wire [2:0]       mode,   // 0 normal, 1 hold, 2 test, 4 init
  input  wire [WIDTH-1:0] d,
  output reg  [WIDTH-1:0] q,        // functional value / signature
  output reg  [WIDTH-1:0] pattern   // generator half
);
  wire fbq = ^(q & TAPS[WIDTH-1:0]);
  wire fbp = ^(pattern & TAPS[WIDTH-1:0]);
  always @(posedge clk) begin
    case (mode)
      3'd0: begin q <= d; pattern <= pattern; end
      3'd2: begin
        q <= {q[WIDTH-2:0], fbq} ^ d;              // compact
        pattern <= {pattern[WIDTH-2:0], fbp};      // and generate
      end
      3'd4: begin q <= {WIDTH{1'b0}}; pattern <= SEED[WIDTH-1:0]; end
      default: begin q <= q; pattern <= pattern; end
    endcase
  end
endmodule
)";

}  // namespace

std::string emit_bist_verilog(const Datapath& dp,
                              const BistSolution& solution,
                              const SelfTestResult& golden, int patterns,
                              int width) {
  for (const auto& e : solution.embeddings) {
    LBIST_CHECK(!e.has_value() || !e->uses_transparency(),
                "transparency-extended plans are not emittable; use the C++ "
                "self-test engine");
  }
  const std::uint64_t period = (std::uint64_t{1} << width) - 1;
  if (static_cast<std::uint64_t>(patterns) > period) {
    patterns = static_cast<int>(period);
  }

  // Rebuild the sub-session table exactly as the self-test engine ran it.
  const TestSessionPlan sessions = schedule_test_sessions(dp, solution);
  std::vector<SubSession> subs;
  std::vector<std::size_t> golden_cursor(dp.modules.size(), 0);
  for (int s = 0; s < sessions.num_sessions; ++s) {
    std::size_t max_kinds = 0;
    for (std::size_t m = 0; m < dp.modules.size(); ++m) {
      if (sessions.session_of[m] == s) {
        max_kinds =
            std::max(max_kinds, dp.modules[m].proto.supports.size());
      }
    }
    for (std::size_t slot = 0; slot < max_kinds; ++slot) {
      SubSession sub;
      for (std::size_t m = 0; m < dp.modules.size(); ++m) {
        if (sessions.session_of[m] != s) continue;
        if (slot >= dp.modules[m].proto.supports.size()) continue;
        sub.active.push_back(SubSession::ActiveModule{
            m, dp.modules[m].proto.supports[slot],
            golden.golden_signatures[m][golden_cursor[m]++]});
      }
      subs.push_back(std::move(sub));
    }
  }

  std::ostringstream os;
  os << "// Self-testing data path generated by lowbist from '" << dp.name
     << "'\n";
  os << kBilboPrimitive << kCbilboPrimitive;

  const std::string top = ident(dp.name) + "_bist";
  os << "\nmodule " << top << " (\n";
  os << "  input  wire clk,\n  input  wire rst,\n";
  os << "  input  wire bist_run,\n";
  os << "  output reg  bist_done,\n  output reg  bist_pass,\n";
  // Functional ports (normal mode): loads, enables, selects, outputs.
  std::vector<std::string> ports;
  for (std::size_t r = 0; r < dp.registers.size(); ++r) {
    const auto& reg = dp.registers[r];
    const std::string rn = ident(reg.name);
    if (reg.external_source || reg.dedicated_input) {
      ports.push_back("  input  wire [" + std::to_string(width - 1) +
                      ":0] load_" + rn);
    }
    ports.push_back("  input  wire en_" + rn);
    ports.push_back("  input  wire [3:0] sel_" + rn);
    if (reg.drives_output) {
      ports.push_back("  output wire [" + std::to_string(width - 1) +
                      ":0] out_" + rn);
    }
  }
  for (const auto& mod : dp.modules) {
    const std::string mn = ident(mod.name);
    ports.push_back("  input  wire [3:0] sel_" + mn + "_l");
    ports.push_back("  input  wire [3:0] sel_" + mn + "_r");
    if (mod.proto.supports.size() > 1) {
      ports.push_back("  input  wire [3:0] op_" + mn);
    }
  }
  for (std::size_t i = 0; i < ports.size(); ++i) {
    os << ports[i] << (i + 1 < ports.size() ? ",\n" : "\n");
  }
  os << ");\n\n";

  // BIST controller state.
  const std::size_t n_subs = subs.size();
  os << "  // ---- BIST controller ------------------------------------\n";
  os << "  localparam PATTERNS = " << patterns << ";\n";
  os << "  localparam N_SUBS = " << n_subs << ";\n";
  os << "  reg [15:0] cycle;\n";
  os << "  reg [7:0]  sub;\n";
  os << "  reg        running;\n";
  os << "  wire init_cycle = running && (cycle == 16'd0);\n";
  os << "  wire test_cycle = running && (cycle >= 16'd1) && (cycle <= "
        "PATTERNS);\n";
  os << "  wire check_cycle = running && (cycle == PATTERNS + 16'd1);\n\n";

  // Register roles per sub-session (mode tables).
  const std::uint32_t taps = primitive_taps(width);
  for (std::size_t r = 0; r < dp.registers.size(); ++r) {
    const std::string rn = ident(dp.registers[r].name);
    os << "  reg [2:0] bist_mode_" << rn << ";\n";
  }
  os << "\n  always @(*) begin\n";
  for (std::size_t r = 0; r < dp.registers.size(); ++r) {
    os << "    bist_mode_" << ident(dp.registers[r].name) << " = 3'd1;\n";
  }
  os << "    case (sub)\n";
  for (std::size_t si = 0; si < subs.size(); ++si) {
    os << "      8'd" << si << ": begin\n";
    // Roles this sub-session.
    std::map<std::size_t, char> role;  // 'g' tpg, 's' sa, 'c' cbilbo
    for (const auto& am : subs[si].active) {
      const BistEmbedding& e = *solution.embeddings[am.module];
      role[e.tpg_left] = role.count(e.tpg_left) ? role[e.tpg_left] : 'g';
      role[e.tpg_right] = role.count(e.tpg_right) ? role[e.tpg_right] : 'g';
      if (e.sa.has_value()) {
        role[*e.sa] = e.needs_cbilbo() ? 'c' : 's';
      }
    }
    for (const auto& [r, kind] : role) {
      const std::string rn = ident(dp.registers[r].name);
      os << "        bist_mode_" << rn << " = init_cycle ? "
         << (kind == 'g' ? "3'd4" : (kind == 's' ? "3'd5" : "3'd4"))
         << " : " << (kind == 'g' ? "3'd2" : (kind == 's' ? "3'd3" : "3'd2"))
         << ";\n";
    }
    os << "      end\n";
  }
  os << "      default: ;\n    endcase\n  end\n\n";

  // Register instances: CBILBO where the solution demands, BILBO elsewhere.
  os << "  // ---- registers -------------------------------------------\n";
  for (std::size_t r = 0; r < dp.registers.size(); ++r) {
    const auto& reg = dp.registers[r];
    const std::string rn = ident(reg.name);
    os << "  wire [" << width - 1 << ":0] " << rn << "_d;\n";
    os << "  wire [" << width - 1 << ":0] " << rn << "_q;\n";
    os << "  wire [2:0] mode_" << rn << " = bist_run ? bist_mode_" << rn
       << " : (en_" << rn << " ? 3'd0 : 3'd1);\n";
    if (solution.roles[r] == BistRole::Cbilbo) {
      os << "  wire [" << width - 1 << ":0] " << rn << "_pat;\n";
      os << "  lowbist_cbilbo #(.WIDTH(" << width << "), .TAPS(" << width
         << "'h" << std::hex << taps << std::dec << "), .SEED(" << width
         << "'h" << std::hex << seed_for(r, width) << std::dec << ")) u_"
         << rn << " (.clk(clk), .mode(mode_" << rn << "), .d(" << rn
         << "_d), .q(" << rn << "_q), .pattern(" << rn << "_pat));\n";
    } else {
      os << "  lowbist_bilbo #(.WIDTH(" << width << "), .TAPS(" << width
         << "'h" << std::hex << taps << std::dec << "), .SEED(" << width
         << "'h" << std::hex << seed_for(r, width) << std::dec << ")) u_"
         << rn << " (.clk(clk), .mode(mode_" << rn << "), .d(" << rn
         << "_d), .q(" << rn << "_q));\n";
    }
    if (reg.drives_output) os << "  assign out_" << rn << " = " << rn
                              << "_q;\n";
  }
  os << "\n";

  // Pattern tap per register (CBILBOs stimulate from the generator half).
  for (std::size_t r = 0; r < dp.registers.size(); ++r) {
    const std::string rn = ident(dp.registers[r].name);
    os << "  wire [" << width - 1 << ":0] " << rn << "_src = "
       << (solution.roles[r] == BistRole::Cbilbo
               ? ("bist_run ? " + rn + "_pat : " + rn + "_q")
               : (rn + "_q"))
       << ";\n";
  }
  os << "\n";

  // Test-mode port selects: index of the embedding TPG in the port list.
  os << "  // ---- functional units and port muxes ---------------------\n";
  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    const DpModule& mod = dp.modules[m];
    const std::string mn = ident(mod.name);
    auto emit_port = [&](const char* suffix,
                         const std::set<std::size_t>& sources,
                         std::size_t tpg_reg_for_test) {
      std::vector<std::size_t> srcs(sources.begin(), sources.end());
      int test_sel = 0;
      for (std::size_t i = 0; i < srcs.size(); ++i) {
        if (srcs[i] == tpg_reg_for_test) test_sel = static_cast<int>(i);
      }
      os << "  wire [3:0] " << mn << "_" << suffix
         << "_sel = bist_run ? 4'd" << test_sel << " : sel_" << mn << "_"
         << suffix << ";\n";
      os << "  wire [" << width - 1 << ":0] " << mn << "_" << suffix
         << " = ";
      for (std::size_t i = 0; i + 1 < srcs.size(); ++i) {
        os << "(" << mn << "_" << suffix << "_sel == " << i << ") ? "
           << ident(dp.registers[srcs[i]].name) << "_src : ";
      }
      os << ident(dp.registers[srcs.back()].name) << "_src;\n";
    };
    const bool testable = solution.embeddings[m].has_value();
    emit_port("l", mod.left_sources,
              testable ? solution.embeddings[m]->tpg_left
                       : *mod.left_sources.begin());
    emit_port("r", mod.right_sources,
              testable ? solution.embeddings[m]->tpg_right
                       : *mod.right_sources.begin());

    if (mod.proto.supports.size() == 1) {
      os << "  wire [" << width - 1 << ":0] " << mn << "_y = " << mn
         << "_l " << verilog_op(mod.proto.supports[0]) << " " << mn
         << "_r;\n";
    } else {
      // In test mode the controller sequences the function slots.
      os << "  reg [3:0] " << mn << "_op_test;\n";
      os << "  always @(*) begin\n    " << mn << "_op_test = 4'd0;\n"
         << "    case (sub)\n";
      for (std::size_t si = 0; si < subs.size(); ++si) {
        for (const auto& am : subs[si].active) {
          if (am.module != m) continue;
          for (std::size_t k = 0; k < mod.proto.supports.size(); ++k) {
            if (mod.proto.supports[k] == am.kind) {
              os << "      8'd" << si << ": " << mn << "_op_test = 4'd" << k
                 << ";\n";
            }
          }
        }
      }
      os << "      default: ;\n    endcase\n  end\n";
      os << "  wire [3:0] " << mn << "_op = bist_run ? " << mn
         << "_op_test : op_" << mn << ";\n";
      os << "  reg [" << width - 1 << ":0] " << mn << "_y_r;\n";
      os << "  always @(*) begin\n    case (" << mn << "_op)\n";
      for (std::size_t k = 0; k < mod.proto.supports.size(); ++k) {
        os << "      4'd" << k << ": " << mn << "_y_r = " << mn << "_l "
           << verilog_op(mod.proto.supports[k]) << " " << mn << "_r;\n";
      }
      os << "      default: " << mn << "_y_r = {" << width << "{1'b0}};\n";
      os << "    endcase\n  end\n";
      os << "  wire [" << width - 1 << ":0] " << mn << "_y = " << mn
         << "_y_r;\n";
    }
  }
  os << "\n";

  // Register data inputs: functional mux, overridden by the module under
  // observation in test mode.
  os << "  // ---- register input muxes --------------------------------\n";
  for (std::size_t r = 0; r < dp.registers.size(); ++r) {
    const auto& reg = dp.registers[r];
    const std::string rn = ident(reg.name);
    std::vector<std::string> inputs;
    for (std::size_t msrc : reg.source_modules) {
      inputs.push_back(ident(dp.modules[msrc].name) + "_y");
    }
    if (reg.external_source || reg.dedicated_input) {
      inputs.push_back("load_" + rn);
    }
    if (inputs.empty()) inputs.push_back(rn + "_q");
    // In test mode an SA register compacts the module the current
    // sub-session assigns to it.
    std::ostringstream test_d;
    bool has_test_source = false;
    for (std::size_t si = 0; si < subs.size() && !has_test_source; ++si) {
      for (const auto& am : subs[si].active) {
        const auto& e = *solution.embeddings[am.module];
        if (e.sa.has_value() && *e.sa == r) has_test_source = true;
      }
    }
    if (has_test_source) {
      os << "  reg [" << width - 1 << ":0] " << rn << "_test_d;\n";
      os << "  always @(*) begin\n    " << rn << "_test_d = {" << width
         << "{1'b0}};\n    case (sub)\n";
      for (std::size_t si = 0; si < subs.size(); ++si) {
        for (const auto& am : subs[si].active) {
          const auto& e = *solution.embeddings[am.module];
          if (e.sa.has_value() && *e.sa == r) {
            os << "      8'd" << si << ": " << rn << "_test_d = "
               << ident(dp.modules[am.module].name) << "_y;\n";
          }
        }
      }
      os << "      default: ;\n    endcase\n  end\n";
    }
    os << "  assign " << rn << "_d = ";
    if (has_test_source) os << "bist_run ? " << rn << "_test_d : ";
    os << "(";
    for (std::size_t i = 0; i + 1 < inputs.size(); ++i) {
      os << "(sel_" << rn << " == " << i << ") ? " << inputs[i] << " : ";
    }
    os << inputs.back() << ");\n";
  }
  os << "\n";

  // Controller FSM with golden-signature comparison.
  os << "  // ---- sequencing and signature check ----------------------\n";
  os << "  always @(posedge clk) begin\n";
  os << "    if (rst || !bist_run) begin\n";
  os << "      cycle <= 16'd0; sub <= 8'd0; running <= bist_run;\n";
  os << "      bist_done <= 1'b0; bist_pass <= 1'b1;\n";
  os << "    end else if (running) begin\n";
  os << "      if (check_cycle) begin\n";
  os << "        case (sub)\n";
  for (std::size_t si = 0; si < subs.size(); ++si) {
    os << "          8'd" << si << ": begin\n";
    for (const auto& am : subs[si].active) {
      const auto& e = *solution.embeddings[am.module];
      if (!e.sa.has_value()) continue;
      os << "            if (" << ident(dp.registers[*e.sa].name)
         << "_q !== " << width << "'h" << std::hex << am.golden << std::dec
         << ") bist_pass <= 1'b0;\n";
    }
    os << "          end\n";
  }
  os << "          default: ;\n        endcase\n";
  os << "        cycle <= 16'd0;\n";
  os << "        if (sub + 8'd1 == N_SUBS) begin\n";
  os << "          running <= 1'b0; bist_done <= 1'b1;\n";
  os << "        end else begin\n";
  os << "          sub <= sub + 8'd1;\n";
  os << "        end\n";
  os << "      end else begin\n";
  os << "        cycle <= cycle + 16'd1;\n";
  os << "      end\n";
  os << "    end\n";
  os << "  end\n";
  os << "endmodule\n";
  return os.str();
}

}  // namespace lbist
