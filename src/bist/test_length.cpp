#include "bist/test_length.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace lbist {

TestLength find_test_length(const ModuleProto& proto, int width,
                            double target) {
  LBIST_CHECK(target > 0.0 && target <= 1.0, "target must be in (0, 1]");
  const std::uint64_t period64 = (std::uint64_t{1} << width) - 1;
  const int period = period64 > 1000000 ? 1000000
                                        : static_cast<int>(period64);

  auto coverage_at = [&](int patterns) {
    return simulate_module_bist(proto, width, patterns);
  };

  // Galloping phase: find an upper bound meeting the target.
  int hi = 8;
  CoverageResult hi_cov = coverage_at(hi);
  while (hi_cov.coverage() < target && hi < period) {
    hi = std::min(hi * 2, period);
    hi_cov = coverage_at(hi);
  }
  if (hi_cov.coverage() < target) {
    // Unreachable within one period (redundant faults, aliasing).
    return TestLength{hi, hi_cov, false};
  }

  // Binary search for the smallest count still meeting the target.
  // Coverage is not strictly monotone (aliasing), so the result is the
  // smallest *found* count, verified by a final simulation.
  int lo = hi / 2;
  while (lo + 1 < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (coverage_at(mid).coverage() >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return TestLength{hi, coverage_at(hi), true};
}

DatapathTestLength find_test_lengths(const Datapath& dp, int width,
                                     double target) {
  DatapathTestLength out;
  for (const auto& mod : dp.modules) {
    out.per_module.push_back(find_test_length(mod.proto, width, target));
    const TestLength& tl = out.per_module.back();
    out.recommended_patterns = std::max(out.recommended_patterns,
                                        tl.patterns);
    out.all_targets_met = out.all_targets_met && tl.target_met;
  }
  return out;
}

}  // namespace lbist
