#include "bist/sessions.hpp"

#include <algorithm>

namespace lbist {

TestSessionPlan schedule_test_sessions(const Datapath& dp,
                                       const BistSolution& solution) {
  const std::size_t n = dp.modules.size();
  TestSessionPlan plan;
  plan.session_of.assign(n, -1);

  auto conflicts = [&](std::size_t a, std::size_t b) {
    const auto& ea = solution.embeddings[a];
    const auto& eb = solution.embeddings[b];
    if (!ea.has_value() || !eb.has_value()) return false;
    auto uses = [](const BistEmbedding& e, std::size_t reg) {
      return e.tpg_left == reg || e.tpg_right == reg ||
             (e.sa.has_value() && *e.sa == reg) ||
             (e.left_via.has_value() && *e.left_via == reg) ||
             (e.right_via.has_value() && *e.right_via == reg);
    };
    // SA registers compact exactly one module's responses at a time, and a
    // register shuttling a transparent pattern stream (via) is equally
    // spoken for.
    for (auto sa_like : {ea->sa, ea->left_via, ea->right_via}) {
      if (sa_like.has_value() && uses(*eb, *sa_like)) return true;
    }
    for (auto sa_like : {eb->sa, eb->left_via, eb->right_via}) {
      if (sa_like.has_value() && uses(*ea, *sa_like)) return true;
    }
    // A module serving as a transparent wire cannot be under test itself.
    for (auto through : {ea->left_through, ea->right_through}) {
      if (through.has_value() && *through == b) return true;
    }
    for (auto through : {eb->left_through, eb->right_through}) {
      if (through.has_value() && *through == a) return true;
    }
    return false;
  };

  for (std::size_t m = 0; m < n; ++m) {
    if (!solution.embeddings[m].has_value()) continue;
    std::vector<bool> used(static_cast<std::size_t>(plan.num_sessions) + 1,
                           false);
    for (std::size_t other = 0; other < m; ++other) {
      if (plan.session_of[other] >= 0 && conflicts(m, other)) {
        used[static_cast<std::size_t>(plan.session_of[other])] = true;
      }
    }
    int s = 0;
    while (used[static_cast<std::size_t>(s)]) ++s;
    plan.session_of[m] = s;
    plan.num_sessions = std::max(plan.num_sessions, s + 1);
  }
  return plan;
}

}  // namespace lbist
