#include "bist/test_plan.hpp"

#include <algorithm>
#include <sstream>

namespace lbist {

TestPlan build_test_plan(const Datapath& dp, const BistSolution& solution,
                         int patterns_per_module, int width) {
  TestPlan plan;
  const TestSessionPlan sessions = schedule_test_sessions(dp, solution);
  plan.num_sessions = sessions.num_sessions;

  double coverage_sum = 0.0;
  int covered_modules = 0;
  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    if (!solution.embeddings[m].has_value()) {
      continue;  // untestable — surfaced via BistSolution already
    }
    ModuleTestReport report;
    report.module = m;
    report.session = sessions.session_of[m];
    report.embedding = *solution.embeddings[m];
    report.patterns = patterns_per_module;
    const std::uint64_t period = (std::uint64_t{1} << width) - 1;
    if (static_cast<std::uint64_t>(report.patterns) > period) {
      report.patterns = static_cast<int>(period);
    }
    report.coverage =
        simulate_module_bist(dp.modules[m].proto, width, patterns_per_module);
    coverage_sum += report.coverage.coverage();
    plan.min_coverage =
        std::min(plan.min_coverage, report.coverage.coverage());
    ++covered_modules;
    plan.modules.push_back(report);
  }
  plan.avg_coverage =
      covered_modules == 0 ? 1.0 : coverage_sum / covered_modules;
  // Sessions run back to back; within a session everything runs at once,
  // so a session takes one module's (period-capped) pattern budget.
  int effective = patterns_per_module;
  const std::uint64_t period = (std::uint64_t{1} << width) - 1;
  if (static_cast<std::uint64_t>(effective) > period) {
    effective = static_cast<int>(period);
  }
  plan.total_clocks = plan.num_sessions * effective;
  return plan;
}

std::string TestPlan::describe(const Datapath& dp) const {
  std::ostringstream os;
  os << "test plan: " << num_sessions << " session(s), " << total_clocks
     << " clocks, min coverage " << 100.0 * min_coverage << "%, avg "
     << 100.0 * avg_coverage << "%\n";
  for (const auto& m : modules) {
    os << "  session " << m.session << ": " << dp.modules[m.module].name
       << "  TPG={" << dp.registers[m.embedding.tpg_left].name << ","
       << dp.registers[m.embedding.tpg_right].name << "}  SA="
       << (m.embedding.sa.has_value()
               ? dp.registers[*m.embedding.sa].name
               : std::string("<primary output>"))
       << (m.embedding.needs_cbilbo() ? " (CBILBO)" : "") << "  coverage "
       << 100.0 * m.coverage.coverage() << "% (" << m.coverage.detected
       << "/" << m.coverage.total << ")\n";
  }
  return os.str();
}

}  // namespace lbist
