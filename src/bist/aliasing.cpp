#include "bist/aliasing.hpp"

#include <random>

#include "support/check.hpp"
#include "support/lfsr.hpp"

namespace lbist {

double misr_aliasing_asymptotic(int width) {
  return 1.0 / static_cast<double>(std::uint64_t{1} << width);
}

AliasingEstimate misr_aliasing_empirical(int width, int patterns, int trials,
                                         std::uint64_t seed) {
  LBIST_CHECK(patterns > 0 && trials > 0, "need positive patterns/trials");
  std::mt19937_64 rng(seed);
  const std::uint32_t mask =
      width == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << width) - 1);
  std::uniform_int_distribution<std::uint32_t> word(0, mask);
  std::uniform_int_distribution<int> position(0, patterns - 1);

  AliasingEstimate est;
  est.trials = trials;
  for (int t = 0; t < trials; ++t) {
    // A random response stream and a random non-empty error overlay.
    Misr good(width), bad(width);
    // Guarantee at least one corrupted word so "no error" never counts.
    const int forced_error = position(rng);
    for (int p = 0; p < patterns; ++p) {
      const std::uint32_t w = word(rng);
      std::uint32_t e = (word(rng) & word(rng) & word(rng));  // sparse-ish
      if (p == forced_error && e == 0) e = 1;
      good.absorb(w);
      bad.absorb(w ^ e);
    }
    if (good.signature() == bad.signature()) ++est.aliases;
  }
  est.probability = static_cast<double>(est.aliases) / trials;
  return est;
}

int misr_width_for_escape_probability(double target) {
  LBIST_CHECK(target > 0.0 && target < 1.0, "target must be in (0, 1)");
  int width = 2;
  while (width < 32 && misr_aliasing_asymptotic(width) >= target) ++width;
  return width;
}

}  // namespace lbist
