#include "bist/allocator.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <unordered_map>

#include "bist/sessions.hpp"
#include "obs/events.hpp"
#include "support/check.hpp"

namespace lbist {

namespace {

using StateKey = std::string;  // one byte of RoleFlags per register

StateKey apply_embedding(const StateKey& state, const BistEmbedding& e) {
  StateKey next = state;
  auto set_flags = [&](std::size_t reg, bool tpg, bool sa) {
    RoleFlags f = RoleFlags::decode(static_cast<std::uint8_t>(next[reg]));
    f.tpg = f.tpg || tpg;
    f.sa = f.sa || sa;
    next[reg] = static_cast<char>(f.encode());
  };
  set_flags(e.tpg_left, true, false);
  set_flags(e.tpg_right, true, false);
  if (e.sa.has_value()) {
    if (e.needs_cbilbo()) {
      RoleFlags f = RoleFlags::decode(static_cast<std::uint8_t>(next[*e.sa]));
      f.tpg = true;
      f.sa = true;
      f.cbilbo = true;
      next[*e.sa] = static_cast<char>(f.encode());
    } else {
      set_flags(*e.sa, false, true);
    }
  }
  return next;
}

/// (extra_area, #cbilbo, #modified): the lexicographic objective.
std::tuple<double, int, int> cost_of(const StateKey& state,
                                     const AreaModel& model) {
  double area = 0.0;
  int cbilbos = 0;
  int modified = 0;
  for (char c : state) {
    const BistRole role =
        RoleFlags::decode(static_cast<std::uint8_t>(c)).role();
    area += model.role_extra(role);
    if (role == BistRole::Cbilbo) ++cbilbos;
    if (role != BistRole::None) ++modified;
  }
  return {area, cbilbos, modified};
}

std::vector<BistRole> roles_of(const StateKey& state) {
  std::vector<BistRole> roles;
  roles.reserve(state.size());
  for (char c : state) {
    roles.push_back(RoleFlags::decode(static_cast<std::uint8_t>(c)).role());
  }
  return roles;
}

}  // namespace

RoleCounts BistSolution::counts() const {
  RoleCounts c;
  for (BistRole r : roles) {
    switch (r) {
      case BistRole::None: break;
      case BistRole::Tpg: ++c.tpg; break;
      case BistRole::Sa: ++c.sa; break;
      case BistRole::TpgSa: ++c.tpg_sa; break;
      case BistRole::Cbilbo: ++c.cbilbo; break;
    }
  }
  return c;
}

std::string RoleCounts::to_string() const {
  std::ostringstream os;
  bool first = true;
  auto item = [&](int n, const char* label) {
    if (n == 0) return;
    if (!first) os << ", ";
    os << n << " " << label;
    first = false;
  };
  item(cbilbo, "CBILBO");
  item(tpg_sa, "TPG/SA");
  item(tpg, "TPG");
  item(sa, "SA");
  if (first) os << "none";
  return os.str();
}

double BistSolution::overhead_percent(const Datapath& dp,
                                      const AreaModel& model) const {
  return 100.0 * extra_area / model.functional_area(dp);
}

std::string BistSolution::describe(const Datapath& dp) const {
  std::ostringstream os;
  os << "BIST solution: " << counts().to_string() << " (extra "
     << extra_area << " gates)\n";
  for (std::size_t r = 0; r < roles.size(); ++r) {
    if (roles[r] == BistRole::None) continue;
    os << "  " << dp.registers[r].name << " -> " << to_string(roles[r])
       << "\n";
  }
  for (std::size_t m : untestable_modules) {
    os << "  ! module " << dp.modules[m].name
       << " has no feasible BIST embedding\n";
  }
  return os.str();
}

namespace {

/// Reports the final per-register role assignment (modified registers only).
void emit_role_events(AlgorithmEvents* events,
                      const std::vector<BistRole>& roles) {
  if (events == nullptr) return;
  for (std::size_t r = 0; r < roles.size(); ++r) {
    if (roles[r] != BistRole::None) events->bist_role(r, to_string(roles[r]));
  }
}

}  // namespace

BistSolution BistAllocator::solve(const Datapath& dp) const {
  const std::size_t nregs = dp.registers.size();

  // Pre-enumerate embeddings; record untestable modules.
  std::vector<std::vector<BistEmbedding>> embeddings;
  std::vector<std::size_t> untestable;
  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    embeddings.push_back(use_transparent_paths
                             ? enumerate_embeddings_extended(dp, m)
                             : enumerate_embeddings(dp, m));
    if (embeddings.back().empty()) untestable.push_back(m);
  }

  struct Entry {
    StateKey state;
    std::size_t parent = 0;                 // index into previous level
    std::optional<BistEmbedding> chosen;    // embedding taken at this level
  };
  std::vector<std::vector<Entry>> levels;
  levels.push_back({Entry{StateKey(nregs, '\0'), 0, std::nullopt}});

  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    const auto& prev = levels.back();
    std::vector<Entry> next;
    std::unordered_map<StateKey, std::size_t> seen;
    if (embeddings[m].empty()) {
      // Untestable module: states pass through unchanged.
      for (std::size_t p = 0; p < prev.size(); ++p) {
        if (seen.emplace(prev[p].state, next.size()).second) {
          next.push_back(Entry{prev[p].state, p, std::nullopt});
        }
      }
    } else {
      for (std::size_t p = 0; p < prev.size(); ++p) {
        for (const BistEmbedding& e : embeddings[m]) {
          StateKey s = apply_embedding(prev[p].state, e);
          if (seen.emplace(s, next.size()).second) {
            next.push_back(Entry{std::move(s), p, e});
            // Bail out *during* construction — a single level can exhaust
            // memory long before it completes on large designs.
            if (next.size() > max_frontier) {
              if (events != nullptr) events->bist_greedy_fallback();
              return solve_greedy(dp);
            }
          }
        }
      }
    }
    levels.push_back(std::move(next));
  }

  // Pick the best final state.
  const auto& final_level = levels.back();
  LBIST_CHECK(!final_level.empty(), "BIST allocator reached no state");
  std::size_t best = 0;
  auto best_cost = cost_of(final_level[0].state, model_);
  for (std::size_t i = 1; i < final_level.size(); ++i) {
    auto c = cost_of(final_level[i].state, model_);
    if (c < best_cost) {
      best_cost = c;
      best = i;
    }
  }

  auto reconstruct = [&](std::size_t final_index) {
    BistSolution sol;
    sol.roles = roles_of(final_level[final_index].state);
    sol.extra_area = std::get<0>(cost_of(final_level[final_index].state,
                                         model_));
    sol.untestable_modules = untestable;
    sol.embeddings.assign(dp.modules.size(), std::nullopt);
    std::size_t idx = final_index;
    for (std::size_t level = levels.size() - 1; level >= 1; --level) {
      const Entry& e = levels[level][idx];
      sol.embeddings[level - 1] = e.chosen;
      idx = e.parent;
    }
    return sol;
  };

  if (!minimize_sessions) {
    BistSolution sol = reconstruct(best);
    emit_role_events(events, sol.roles);
    return sol;
  }

  // Among cost-optimal states, pick the solution with the fewest test
  // sessions (total test time).
  BistSolution best_sol = reconstruct(best);
  int best_sessions =
      schedule_test_sessions(dp, best_sol).num_sessions;
  for (std::size_t i = 0; i < final_level.size(); ++i) {
    if (i == best || cost_of(final_level[i].state, model_) != best_cost) {
      continue;
    }
    BistSolution candidate = reconstruct(i);
    const int sessions =
        schedule_test_sessions(dp, candidate).num_sessions;
    if (sessions < best_sessions) {
      best_sessions = sessions;
      best_sol = std::move(candidate);
    }
  }
  emit_role_events(events, best_sol.roles);
  return best_sol;
}

BistSolution BistAllocator::solve_greedy(const Datapath& dp) const {
  const std::size_t nregs = dp.registers.size();
  StateKey state(nregs, '\0');

  BistSolution sol;
  sol.exact = false;
  sol.embeddings.assign(dp.modules.size(), std::nullopt);
  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    auto embeddings = use_transparent_paths
                          ? enumerate_embeddings_extended(dp, m)
                          : enumerate_embeddings(dp, m);
    if (embeddings.empty()) {
      sol.untestable_modules.push_back(m);
      continue;
    }
    StateKey best_state;
    std::optional<BistEmbedding> best_emb;
    std::tuple<double, int, int> best_cost{0, 0, 0};
    for (const BistEmbedding& e : embeddings) {
      StateKey s = apply_embedding(state, e);
      auto c = cost_of(s, model_);
      if (!best_emb.has_value() || c < best_cost) {
        best_cost = c;
        best_state = std::move(s);
        best_emb = e;
      }
    }
    state = std::move(best_state);
    sol.embeddings[m] = best_emb;
  }
  sol.roles = roles_of(state);
  sol.extra_area = std::get<0>(cost_of(state, model_));
  emit_role_events(events, sol.roles);
  return sol;
}

}  // namespace lbist
