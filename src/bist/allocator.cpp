#include "bist/allocator.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <unordered_map>

#include "bist/sessions.hpp"
#include "obs/events.hpp"
#include "support/check.hpp"

namespace lbist {

namespace {

using StateKey = std::string;  // one byte of RoleFlags per register

StateKey apply_embedding(const StateKey& state, const BistEmbedding& e) {
  StateKey next = state;
  auto set_flags = [&](std::size_t reg, bool tpg, bool sa) {
    RoleFlags f = RoleFlags::decode(static_cast<std::uint8_t>(next[reg]));
    f.tpg = f.tpg || tpg;
    f.sa = f.sa || sa;
    next[reg] = static_cast<char>(f.encode());
  };
  set_flags(e.tpg_left, true, false);
  set_flags(e.tpg_right, true, false);
  if (e.sa.has_value()) {
    if (e.needs_cbilbo()) {
      RoleFlags f = RoleFlags::decode(static_cast<std::uint8_t>(next[*e.sa]));
      f.tpg = true;
      f.sa = true;
      f.cbilbo = true;
      next[*e.sa] = static_cast<char>(f.encode());
    } else {
      set_flags(*e.sa, false, true);
    }
  }
  return next;
}

double role_extra_of(char c, const AreaModel& model) {
  return model.role_extra(
      RoleFlags::decode(static_cast<std::uint8_t>(c)).role());
}

/// Area change from `prev` to `next` where `next = apply_embedding(prev,
/// e)`: only the (up to three) registers e touches can differ.
double area_delta(const StateKey& prev, const StateKey& next,
                  const BistEmbedding& e, const AreaModel& model) {
  double delta = 0.0;
  auto touch = [&](std::size_t reg) {
    if (prev[reg] != next[reg]) {
      delta += role_extra_of(next[reg], model) -
               role_extra_of(prev[reg], model);
    }
  };
  // Deduplicate: an embedding may reuse one register for several roles, and
  // counting its change twice would corrupt the incremental area.
  std::size_t touched[3];
  std::size_t count = 0;
  auto add_unique = [&](std::size_t reg) {
    for (std::size_t i = 0; i < count; ++i) {
      if (touched[i] == reg) return;
    }
    touched[count++] = reg;
  };
  add_unique(e.tpg_left);
  add_unique(e.tpg_right);
  if (e.sa.has_value()) add_unique(*e.sa);
  for (std::size_t i = 0; i < count; ++i) touch(touched[i]);
  return delta;
}

/// Objective change `cost_of(apply_embedding(state, e)) -
/// cost_of(state)`, computed from the (up to three) touched registers
/// without copying the state.  All three components are non-negative
/// whenever the model is flag-monotone (flags only accumulate), and role
/// extras are small multiples of the bit width, so comparing deltas is
/// exactly equivalent to comparing the absolute tuples.
std::tuple<double, int, int> delta_of(const StateKey& state,
                                      const BistEmbedding& e,
                                      const AreaModel& model) {
  std::size_t touched[3];
  std::size_t count = 0;
  auto add_unique = [&](std::size_t reg) {
    for (std::size_t i = 0; i < count; ++i) {
      if (touched[i] == reg) return;
    }
    touched[count++] = reg;
  };
  add_unique(e.tpg_left);
  add_unique(e.tpg_right);
  if (e.sa.has_value()) add_unique(*e.sa);

  double area = 0.0;
  int cbilbos = 0;
  int modified = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t reg = touched[i];
    RoleFlags f = RoleFlags::decode(static_cast<std::uint8_t>(state[reg]));
    RoleFlags next = f;
    if (reg == e.tpg_left || reg == e.tpg_right) next.tpg = true;
    if (e.sa.has_value() && reg == *e.sa) {
      next.sa = true;
      if (e.needs_cbilbo()) {
        next.tpg = true;
        next.cbilbo = true;
      }
    }
    const BistRole before = f.role();
    const BistRole after = next.role();
    if (before == after) continue;
    area += model.role_extra(after) - model.role_extra(before);
    cbilbos += (after == BistRole::Cbilbo ? 1 : 0) -
               (before == BistRole::Cbilbo ? 1 : 0);
    modified += (after != BistRole::None ? 1 : 0) -
                (before != BistRole::None ? 1 : 0);
  }
  return {area, cbilbos, modified};
}

/// (extra_area, #cbilbo, #modified): the lexicographic objective.
std::tuple<double, int, int> cost_of(const StateKey& state,
                                     const AreaModel& model) {
  double area = 0.0;
  int cbilbos = 0;
  int modified = 0;
  for (char c : state) {
    const BistRole role =
        RoleFlags::decode(static_cast<std::uint8_t>(c)).role();
    area += model.role_extra(role);
    if (role == BistRole::Cbilbo) ++cbilbos;
    if (role != BistRole::None) ++modified;
  }
  return {area, cbilbos, modified};
}

/// True if adding role flags never decreases `role_extra` — the property
/// that makes a state's own area an admissible bound on every completion.
/// Holds for the default model (None <= Tpg/Sa <= TpgSa <= Cbilbo) but a
/// custom AreaModel may break it, in which case pruning is disabled.
bool area_flag_monotone(const AreaModel& model) {
  const double none = model.role_extra(BistRole::None);
  const double tpg = model.role_extra(BistRole::Tpg);
  const double sa = model.role_extra(BistRole::Sa);
  const double bilbo = model.role_extra(BistRole::TpgSa);
  const double cbilbo = model.role_extra(BistRole::Cbilbo);
  return none <= tpg && none <= sa && tpg <= bilbo && sa <= bilbo &&
         bilbo <= cbilbo;
}

std::vector<BistRole> roles_of(const StateKey& state) {
  std::vector<BistRole> roles;
  roles.reserve(state.size());
  for (char c : state) {
    roles.push_back(RoleFlags::decode(static_cast<std::uint8_t>(c)).role());
  }
  return roles;
}

}  // namespace

RoleCounts BistSolution::counts() const {
  RoleCounts c;
  for (BistRole r : roles) {
    switch (r) {
      case BistRole::None: break;
      case BistRole::Tpg: ++c.tpg; break;
      case BistRole::Sa: ++c.sa; break;
      case BistRole::TpgSa: ++c.tpg_sa; break;
      case BistRole::Cbilbo: ++c.cbilbo; break;
    }
  }
  return c;
}

std::string RoleCounts::to_string() const {
  std::ostringstream os;
  bool first = true;
  auto item = [&](int n, const char* label) {
    if (n == 0) return;
    if (!first) os << ", ";
    os << n << " " << label;
    first = false;
  };
  item(cbilbo, "CBILBO");
  item(tpg_sa, "TPG/SA");
  item(tpg, "TPG");
  item(sa, "SA");
  if (first) os << "none";
  return os.str();
}

double BistSolution::overhead_percent(const Datapath& dp,
                                      const AreaModel& model) const {
  return 100.0 * extra_area / model.functional_area(dp);
}

std::string BistSolution::describe(const Datapath& dp) const {
  std::ostringstream os;
  os << "BIST solution: " << counts().to_string() << " (extra "
     << extra_area << " gates)\n";
  for (std::size_t r = 0; r < roles.size(); ++r) {
    if (roles[r] == BistRole::None) continue;
    os << "  " << dp.registers[r].name << " -> " << to_string(roles[r])
       << "\n";
  }
  for (std::size_t m : untestable_modules) {
    os << "  ! module " << dp.modules[m].name
       << " has no feasible BIST embedding\n";
  }
  return os.str();
}

namespace {

/// Reports the final per-register role assignment (modified registers only).
void emit_role_events(AlgorithmEvents* events,
                      const std::vector<BistRole>& roles) {
  if (events == nullptr) return;
  for (std::size_t r = 0; r < roles.size(); ++r) {
    if (roles[r] != BistRole::None) events->bist_role(r, to_string(roles[r]));
  }
}

}  // namespace

BistSolution BistAllocator::solve(const Datapath& dp) const {
  const std::size_t nregs = dp.registers.size();

  // DP states are one role byte per register and embedding lists are the
  // cross product of port fan-ins, so past a few hundred registers the
  // exact search would burn gigabytes before the inevitable frontier
  // bail.  Go straight to the streaming greedy allocator instead.
  if (nregs > exact_max_regs) {
    if (events != nullptr) events->bist_greedy_fallback();
    return solve_greedy_impl(dp, events);
  }

  // Pre-enumerate embeddings; record untestable modules.
  std::vector<std::vector<BistEmbedding>> embeddings;
  std::vector<std::size_t> untestable;
  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    embeddings.push_back(use_transparent_paths
                             ? enumerate_embeddings_extended(dp, m)
                             : enumerate_embeddings(dp, m));
    if (embeddings.back().empty()) untestable.push_back(m);
  }

  // Branch and bound: the greedy completion seeds the incumbent, and —
  // because role flags only accumulate and the area model is (normally)
  // monotone in them — a partial state's own area is an admissible lower
  // bound on every completion.  Any state on a path to an area-optimal
  // final state therefore survives the strict cut, so the search stays
  // exact while the frontier collapses to near-optimal states only.
  const bool prune = area_flag_monotone(model_);
  double incumbent = 0.0;
  if (prune) {
    const BistSolution greedy = solve_greedy_impl(dp, nullptr);
    incumbent = greedy.extra_area;
  }
  constexpr double kAreaSlack = 1e-6;  // guards incremental-sum rounding

  struct Entry {
    StateKey state;
    std::size_t parent = 0;                 // index into previous level
    std::optional<BistEmbedding> chosen;    // embedding taken at this level
    double area = 0.0;                      // incremental cost_of area term
  };
  std::vector<std::vector<Entry>> levels;
  levels.push_back({Entry{StateKey(nregs, '\0'), 0, std::nullopt, 0.0}});

  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    const auto& prev = levels.back();
    std::vector<Entry> next;
    std::unordered_map<StateKey, std::size_t> seen;
    if (embeddings[m].empty()) {
      // Untestable module: states pass through unchanged.
      for (std::size_t p = 0; p < prev.size(); ++p) {
        if (seen.emplace(prev[p].state, next.size()).second) {
          next.push_back(Entry{prev[p].state, p, std::nullopt, prev[p].area});
        }
      }
    } else {
      for (std::size_t p = 0; p < prev.size(); ++p) {
        for (const BistEmbedding& e : embeddings[m]) {
          StateKey s = apply_embedding(prev[p].state, e);
          const double area =
              prev[p].area + area_delta(prev[p].state, s, e, model_);
          // Admissible cut: completions only add flags, so `area` already
          // bounds every descendant.  States matching the incumbent stay —
          // they may win on the CBILBO/modified tie-break.
          if (prune && area > incumbent + kAreaSlack) continue;
          if (seen.emplace(s, next.size()).second) {
            next.push_back(Entry{std::move(s), p, e, area});
            // Bail out *during* construction — a single level can exhaust
            // memory long before it completes on large designs.
            if (next.size() > max_frontier) {
              if (events != nullptr) events->bist_greedy_fallback();
              return solve_greedy_impl(dp, events);
            }
          }
        }
      }
    }
    levels.push_back(std::move(next));
  }

  // Pick the best final state.
  const auto& final_level = levels.back();
  LBIST_CHECK(!final_level.empty(), "BIST allocator reached no state");
  std::size_t best = 0;
  auto best_cost = cost_of(final_level[0].state, model_);
  for (std::size_t i = 1; i < final_level.size(); ++i) {
    auto c = cost_of(final_level[i].state, model_);
    if (c < best_cost) {
      best_cost = c;
      best = i;
    }
  }

  auto reconstruct = [&](std::size_t final_index) {
    BistSolution sol;
    sol.roles = roles_of(final_level[final_index].state);
    sol.extra_area = std::get<0>(cost_of(final_level[final_index].state,
                                         model_));
    sol.untestable_modules = untestable;
    sol.embeddings.assign(dp.modules.size(), std::nullopt);
    std::size_t idx = final_index;
    for (std::size_t level = levels.size() - 1; level >= 1; --level) {
      const Entry& e = levels[level][idx];
      sol.embeddings[level - 1] = e.chosen;
      idx = e.parent;
    }
    return sol;
  };

  if (!minimize_sessions) {
    BistSolution sol = reconstruct(best);
    emit_role_events(events, sol.roles);
    return sol;
  }

  // Among cost-optimal states, pick the solution with the fewest test
  // sessions (total test time).
  BistSolution best_sol = reconstruct(best);
  int best_sessions =
      schedule_test_sessions(dp, best_sol).num_sessions;
  for (std::size_t i = 0; i < final_level.size(); ++i) {
    if (i == best || cost_of(final_level[i].state, model_) != best_cost) {
      continue;
    }
    BistSolution candidate = reconstruct(i);
    const int sessions =
        schedule_test_sessions(dp, candidate).num_sessions;
    if (sessions < best_sessions) {
      best_sessions = sessions;
      best_sol = std::move(candidate);
    }
  }
  emit_role_events(events, best_sol.roles);
  return best_sol;
}

BistSolution BistAllocator::solve_greedy(const Datapath& dp) const {
  return solve_greedy_impl(dp, events);
}

BistSolution BistAllocator::solve_greedy_impl(
    const Datapath& dp, AlgorithmEvents* emit_events) const {
  const std::size_t nregs = dp.registers.size();
  StateKey state(nregs, '\0');

  // A zero marginal cost cannot be beaten when role flags only accumulate
  // and the model is flag-monotone (every delta component is then >= 0),
  // so the scan of a module may stop at the first such embedding.
  const bool can_cut = area_flag_monotone(model_);
  constexpr std::tuple<double, int, int> kZero{0.0, 0, 0};

  BistSolution sol;
  sol.exact = false;
  sol.embeddings.assign(dp.modules.size(), std::nullopt);
  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    std::optional<BistEmbedding> best_emb;
    std::tuple<double, int, int> best_delta{0, 0, 0};
    auto scan = [&](const BistEmbedding& e) {
      const auto d = delta_of(state, e, model_);
      if (!best_emb.has_value() || d < best_delta) {
        best_delta = d;
        best_emb = e;
      }
      return !(can_cut && best_delta == kZero);
    };
    if (use_transparent_paths) {
      for_each_embedding_extended(dp, m, scan);
    } else {
      for_each_embedding(dp, m, scan);
    }
    if (!best_emb.has_value()) {
      sol.untestable_modules.push_back(m);
      continue;
    }
    state = apply_embedding(state, *best_emb);
    sol.embeddings[m] = best_emb;
  }
  sol.roles = roles_of(state);
  sol.extra_area = std::get<0>(cost_of(state, model_));
  emit_role_events(emit_events, sol.roles);
  return sol;
}

}  // namespace lbist
