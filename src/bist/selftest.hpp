#pragma once
// Chip-level self-test execution — "the chip has the capability to test
// itself", actually run.
//
// Unlike bist/fault_sim.hpp (which grades one module's TPG/SA setup in
// isolation), this engine executes the *complete* test plan on the
// structural data path: session by session, the registers selected by the
// allocator are reconfigured into their roles (TPG registers become LFSRs,
// SA registers MISRs, CBILBOs both at once), patterns flow through the
// real port multiplexers to every module under test concurrently, and each
// module's signature is compacted by its own SA.  Faults are injected at
// module ports and detection is judged exactly as on silicon: some
// signature differs from the fault-free reference.
//
// This closes the last gap between "the allocator said these registers
// suffice" and "running the self-test program detects the faults": the
// engine only reads patterns through connections that exist in the
// netlist, so a bogus embedding (TPG not connected to the port it is
// supposed to drive) throws.

#include <optional>
#include <string>
#include <vector>

#include "bist/allocator.hpp"
#include "bist/fault_sim.hpp"
#include "bist/sessions.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

/// A fault localized to one module's ports.
struct ModuleFault {
  std::size_t module = 0;
  StuckFault fault;
};

/// Outcome of one full self-test run.
struct SelfTestResult {
  /// Per-module fault-free signatures, one per supported function
  /// (reference values a tester would store in ROM).
  std::vector<std::vector<std::uint32_t>> golden_signatures;
  int faults_injected = 0;
  int faults_detected = 0;
  /// Faults whose injection left every signature untouched.
  std::vector<ModuleFault> escapes;

  [[nodiscard]] double coverage() const {
    return faults_injected == 0
               ? 1.0
               : static_cast<double>(faults_detected) / faults_injected;
  }
};

/// Executes the plan fault-free and then once per port fault of every
/// testable module.  `patterns` is capped at the TPG period.  Throws
/// lbist::Error if an embedding references a connection the netlist does
/// not have.
[[nodiscard]] SelfTestResult run_self_test(const Datapath& dp,
                                           const BistSolution& solution,
                                           int patterns, int width);

}  // namespace lbist
