#pragma once
// Test-session scheduling (extension; the paper only notes that modules
// need not be tested in one session).
//
// Two modules can share a test session unless a register's duties clash:
// an SA/CBILBO compacts exactly one module's responses at a time, so a
// register acting as SA for module A conflicts with any use (SA or TPG with
// reseeding) of the same register by module B in the same session.  A
// register acting as TPG only can drive any number of modules at once.
// Minimal session count is computed by greedy coloring of the module
// conflict graph (exact for the small designs here is not needed; the count
// is reported, not optimized over).

#include <vector>

#include "bist/allocator.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

/// A partition of testable modules into concurrent test sessions.
struct TestSessionPlan {
  /// session index per module; -1 for untestable modules.
  std::vector<int> session_of;
  int num_sessions = 0;
};

/// Schedules the modules of `dp` under the chosen `solution` embeddings.
[[nodiscard]] TestSessionPlan schedule_test_sessions(
    const Datapath& dp, const BistSolution& solution);

}  // namespace lbist
