#pragma once
// Gate-equivalent area model.
//
// Stand-in for the USC BITS register library (see DESIGN.md §2): the paper
// reports BIST overhead as a percentage of the functional gate count, so
// only the *ratios* between register, test-register and functional-unit
// areas matter for reproducing the comparison shape.  Defaults follow
// common gate-equivalent estimates of the era: a D-FF ≈ 6 gates, a 2:1 mux
// slice ≈ 3 gates, ripple adder ≈ 10 gates/bit, array multiplier ≈ 9 n²,
// and — per the paper's Section II — a CBILBO approximately doubles the
// register (extra ≈ 6 gates/bit), while single-mode LFSR/MISR conversions
// are much cheaper.

#include "binding/module_spec.hpp"
#include "bist/roles.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

/// Parameterized gate-equivalent areas; all figures are "gate equivalents".
struct AreaModel {
  /// Default word width.  4 bits calibrates the functional/test-register
  /// area ratio to the paper's reported overhead range (10-18% for the
  /// traditional designs of Table I); widen for wider datapaths — the
  /// comparisons in this library only ever use one model for both arms.
  int bit_width = 4;

  // Storage and steering, per bit.
  double reg_gates_per_bit = 6.0;
  double mux_gates_per_bit = 3.0;  ///< per 2:1 mux slice

  // BIST conversion extras, per bit.
  double tpg_extra_per_bit = 2.5;     ///< register -> LFSR
  double sa_extra_per_bit = 2.5;      ///< register -> MISR
  double bilbo_extra_per_bit = 4.0;   ///< register -> BILBO (TPG/SA modes)
  double cbilbo_extra_per_bit = 6.0;  ///< register -> CBILBO (~2x register)

  // Functional units: linear kinds are gates/bit; mul/div are gates/bit².
  double add_gates_per_bit = 10.0;
  double sub_gates_per_bit = 11.0;
  double logic_gates_per_bit = 1.5;  ///< and/or/xor
  double cmp_gates_per_bit = 7.0;    ///< lt/gt
  double mul_gates_per_bit2 = 9.0;
  double div_gates_per_bit2 = 12.0;
  /// A multi-function ALU costs its most expensive kind plus this fraction
  /// of each additional kind's stand-alone area (shared-datapath discount).
  double alu_extra_kind_factor = 0.3;

  [[nodiscard]] double register_area() const {
    return reg_gates_per_bit * bit_width;
  }
  /// Area of a k-input mux = (k-1) 2:1 slices per bit.
  [[nodiscard]] double mux_area(std::size_t k_inputs) const;
  [[nodiscard]] double module_area(const ModuleProto& proto) const;
  /// Extra gates to convert one register to the given role.
  [[nodiscard]] double role_extra(BistRole role) const;

  /// Total functional (pre-BIST) area of a data path: registers (including
  /// dedicated input registers), functional units and all muxes.
  [[nodiscard]] double functional_area(const Datapath& dp) const;
};

}  // namespace lbist
