#pragma once
// Self-testing RTL emission — the end product of the whole flow: the data
// path with its selected registers replaced by BILBO/CBILBO test registers,
// plus an on-chip BIST controller that sequences the test sessions, applies
// the pattern budget, compares every signature analyzer against a golden
// ROM (computed by the C++ self-test engine) and raises pass/fail.
//
// Emitted modules:
//   lowbist_bilbo   — 4-mode register: NORMAL (load), HOLD, TPG (LFSR),
//                     SA (MISR); parameterized width and taps.
//   lowbist_cbilbo  — concurrent BILBO: generator and compactor halves.
//   <name>_bist     — the data path with test registers and a `bist_run`
//                     port; functional behaviour is preserved when
//                     bist_run = 0.
//
// Transparency-extended solutions are rejected (their session sequencing
// needs per-path identity constants; run those plans in the C++ engine).

#include <string>

#include "bist/selftest.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

/// Emits the complete self-testing design.  `golden` must come from
/// run_self_test on the same (dp, solution, patterns, width).
[[nodiscard]] std::string emit_bist_verilog(const Datapath& dp,
                                            const BistSolution& solution,
                                            const SelfTestResult& golden,
                                            int patterns, int width);

}  // namespace lbist
