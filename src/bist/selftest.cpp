#include "bist/selftest.hpp"

#include <algorithm>

#include "rtl/simulate.hpp"
#include "support/check.hpp"
#include "support/lfsr.hpp"

namespace lbist {

namespace {

/// Per-register seed: distinct, non-zero, deterministic.
std::uint32_t seed_for(std::size_t reg, int width) {
  const std::uint32_t mask =
      width == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << width) - 1);
  const std::uint32_t seed = (0x9E3779B9u * (static_cast<std::uint32_t>(reg)
                                             + 1)) & mask;
  return seed == 0 ? 1 : seed;
}

std::uint32_t inject(std::uint32_t value, const StuckFault& fault) {
  const std::uint32_t mask = std::uint32_t{1} << fault.bit;
  return fault.stuck_one ? (value | mask) : (value & ~mask);
}

/// Signatures of every (module, function) pair for one full plan run.
std::vector<std::vector<std::uint32_t>> run_plan(
    const Datapath& dp, const BistSolution& solution,
    const TestSessionPlan& sessions, int patterns, int width,
    const ModuleFault* fault) {
  std::vector<std::vector<std::uint32_t>> signatures(dp.modules.size());

  for (int session = 0; session < sessions.num_sessions; ++session) {
    // Modules under test this session.
    std::vector<std::size_t> active;
    for (std::size_t m = 0; m < dp.modules.size(); ++m) {
      if (sessions.session_of[m] == session) active.push_back(m);
    }
    // The widest function set among active modules decides how many
    // per-function sub-sessions this session needs.
    std::size_t max_kinds = 0;
    for (std::size_t m : active) {
      max_kinds = std::max(max_kinds, dp.modules[m].proto.supports.size());
    }

    for (std::size_t kind_slot = 0; kind_slot < max_kinds; ++kind_slot) {
      // Reconfigure registers: one LFSR per TPG duty, one MISR per SA duty.
      // (A CBILBO's generator and compactor halves are independent, which
      // is precisely why it can do both at once.)
      std::vector<std::optional<Lfsr>> generators(dp.registers.size());
      std::vector<std::optional<Misr>> compactors(dp.registers.size());
      for (std::size_t m : active) {
        const BistEmbedding& e = *solution.embeddings[m];
        const DpModule& mod = dp.modules[m];
        auto check_tpg_path = [&](std::size_t tpg,
                                  const std::optional<std::size_t>& through,
                                  const std::optional<std::size_t>& via,
                                  const std::set<std::size_t>& sources,
                                  const char* port) {
          if (!through.has_value()) {
            LBIST_CHECK(sources.count(tpg) > 0,
                        "TPG " + dp.registers[tpg].name +
                            " is not connected to the " + port + " port of " +
                            mod.name);
            return;
          }
          // Transparent path: tpg -> through(identity) -> via -> port.
          const DpModule& wire = dp.modules[*through];
          LBIST_CHECK(via.has_value() && sources.count(*via) > 0,
                      "transparent path via-register does not feed the " +
                          std::string(port) + " port of " + mod.name);
          LBIST_CHECK(wire.left_sources.count(tpg) > 0 ||
                          wire.right_sources.count(tpg) > 0,
                      "TPG does not feed the transparent module " +
                          wire.name);
          LBIST_CHECK(wire.dest_registers.count(*via) > 0,
                      "transparent module " + wire.name +
                          " does not write the via register");
        };
        check_tpg_path(e.tpg_left, e.left_through, e.left_via,
                       mod.left_sources, "left");
        check_tpg_path(e.tpg_right, e.right_through, e.right_via,
                       mod.right_sources, "right");
        if (e.sa.has_value()) {
          LBIST_CHECK(mod.dest_registers.count(*e.sa) > 0,
                      "SA " + dp.registers[*e.sa].name +
                          " is not written by " + mod.name);
        }
        for (std::size_t tpg : {e.tpg_left, e.tpg_right}) {
          if (!generators[tpg].has_value()) {
            generators[tpg].emplace(width, seed_for(tpg, width));
          }
        }
        if (e.sa.has_value() && !compactors[*e.sa].has_value()) {
          compactors[*e.sa].emplace(width);
        }
      }

      // Transparent paths deliver the generator's stream one clock late
      // (through the identity module into the via register); track the
      // previous state per generator, with via registers reset to zero.
      std::vector<std::uint32_t> delayed(dp.registers.size(), 0);

      for (int p = 0; p < patterns; ++p) {
        // All modules sample the generator states of this clock...
        std::vector<std::uint32_t> responses(dp.modules.size(), 0);
        for (std::size_t m : active) {
          const DpModule& mod = dp.modules[m];
          if (kind_slot >= mod.proto.supports.size()) continue;
          const OpKind kind = mod.proto.supports[kind_slot];
          const BistEmbedding& e = *solution.embeddings[m];
          std::uint32_t a = e.left_via.has_value()
                                ? delayed[e.tpg_left]
                                : generators[e.tpg_left]->state();
          std::uint32_t b = e.right_via.has_value()
                                ? delayed[e.tpg_right]
                                : generators[e.tpg_right]->state();
          if (fault != nullptr && fault->module == m) {
            if (fault->fault.site == StuckFault::Site::LeftPort) {
              a = inject(a, fault->fault);
            }
            if (fault->fault.site == StuckFault::Site::RightPort) {
              b = inject(b, fault->fault);
            }
          }
          std::uint32_t y = eval_op(kind, a, b, width);
          if (fault != nullptr && fault->module == m &&
              fault->fault.site == StuckFault::Site::Output) {
            y = inject(y, fault->fault);
          }
          responses[m] = y;
        }
        // ...then every test register clocks once.
        for (std::size_t m : active) {
          const DpModule& mod = dp.modules[m];
          if (kind_slot >= mod.proto.supports.size()) continue;
          const BistEmbedding& e = *solution.embeddings[m];
          if (e.sa.has_value()) compactors[*e.sa]->absorb(responses[m]);
        }
        for (std::size_t r = 0; r < generators.size(); ++r) {
          if (generators[r].has_value()) {
            delayed[r] = generators[r]->state();
            generators[r]->step();
          }
        }
      }

      // Read out the signatures of this sub-session.
      for (std::size_t m : active) {
        const DpModule& mod = dp.modules[m];
        if (kind_slot >= mod.proto.supports.size()) continue;
        const BistEmbedding& e = *solution.embeddings[m];
        signatures[m].push_back(
            e.sa.has_value() ? compactors[*e.sa]->signature() : 0);
      }
    }
  }
  return signatures;
}

}  // namespace

SelfTestResult run_self_test(const Datapath& dp,
                             const BistSolution& solution, int patterns,
                             int width) {
  const std::uint64_t period = (std::uint64_t{1} << width) - 1;
  if (static_cast<std::uint64_t>(patterns) > period) {
    patterns = static_cast<int>(period);
  }

  const TestSessionPlan sessions = schedule_test_sessions(dp, solution);

  SelfTestResult result;
  result.golden_signatures =
      run_plan(dp, solution, sessions, patterns, width, nullptr);

  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    if (!solution.embeddings[m].has_value()) continue;
    for (const StuckFault& f : enumerate_port_faults(width)) {
      ModuleFault mf{m, f};
      ++result.faults_injected;
      const auto faulty =
          run_plan(dp, solution, sessions, patterns, width, &mf);
      if (faulty[m] != result.golden_signatures[m]) {
        ++result.faults_detected;
      } else {
        result.escapes.push_back(mf);
      }
    }
  }
  return result;
}

}  // namespace lbist
