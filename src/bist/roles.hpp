#pragma once
// Test-resource roles a register can take in the BIST version of a design.
//
// The lattice (by area): None < Tpg, Sa < TpgSa < Cbilbo.
//  * Tpg    — reconfigured as a pseudo-random test pattern generator (LFSR).
//  * Sa     — reconfigured as a signature analyzer (MISR).
//  * TpgSa  — a BILBO: TPG for some module(s) and SA for others, in
//             different test sessions.
//  * Cbilbo — concurrent BILBO: TPG and SA at the same time for the same
//             module (Wang/McCluskey); costs about twice a plain register.

#include <cstdint>

namespace lbist {

enum class BistRole : std::uint8_t {
  None = 0,
  Tpg = 1,
  Sa = 2,
  TpgSa = 3,
  Cbilbo = 4,
};

/// Flag-based accumulation of a register's duties across module embeddings.
struct RoleFlags {
  bool tpg = false;
  bool sa = false;
  bool cbilbo = false;  // TPG and SA for the same module

  [[nodiscard]] BistRole role() const {
    if (cbilbo) return BistRole::Cbilbo;
    if (tpg && sa) return BistRole::TpgSa;
    if (tpg) return BistRole::Tpg;
    if (sa) return BistRole::Sa;
    return BistRole::None;
  }

  /// 3-bit encoding used by the exact allocator's state vectors.
  [[nodiscard]] std::uint8_t encode() const {
    return static_cast<std::uint8_t>((tpg ? 1 : 0) | (sa ? 2 : 0) |
                                     (cbilbo ? 4 : 0));
  }
  [[nodiscard]] static RoleFlags decode(std::uint8_t bits) {
    return RoleFlags{(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
  }
};

[[nodiscard]] constexpr const char* to_string(BistRole r) {
  switch (r) {
    case BistRole::None: return "-";
    case BistRole::Tpg: return "TPG";
    case BistRole::Sa: return "SA";
    case BistRole::TpgSa: return "TPG/SA";
    case BistRole::Cbilbo: return "CBILBO";
  }
  return "?";
}

}  // namespace lbist
