#pragma once
// Variable lifetime analysis over a scheduled DFG.
//
// Convention (documented in DESIGN.md §5): a variable defined at control
// step s is written into its register at the *end* of s; it is live over the
// half-open interval (birth, death] where
//
//   birth(v) = S(def(v))                for operation results,
//   birth(v) = min over uses S(u) - 1   for primary inputs (the input is
//                                       loaded just before its first use —
//                                       "lazy" arrival, the usual assumption
//                                       in DAC-era allocation papers),
//   death(v) = max over uses S(u), and at least birth+1,
//   death(v) = num_steps + 1            for primary outputs (held until the
//                                       behaviour completes).
//
// Two variables conflict (need distinct registers) iff their intervals
// overlap: u.birth < v.death && v.birth < u.death.  With straight-line
// scheduled DFGs this produces an interval (hence chordal) conflict graph,
// the property Section III of the paper relies on.

#include <vector>

#include "dfg/dfg.hpp"
#include "dfg/schedule.hpp"
#include "support/ids.hpp"

namespace lbist {

/// Live range (birth, death] in control-step units.
struct LiveInterval {
  int birth = 0;
  int death = 0;

  /// True if the two half-open intervals intersect.
  [[nodiscard]] bool overlaps(const LiveInterval& other) const {
    return birth < other.death && other.birth < death;
  }
};

/// Options controlling lifetime computation.
struct LifetimeOptions {
  /// If true, primary outputs stay live until one step past the schedule
  /// end; if false they are held for one step past their definition (or
  /// until their last internal use).
  bool hold_outputs_to_end = true;
};

/// Computes live intervals for every variable.  Control-only and
/// port-resident variables still get intervals (used for reporting), but
/// callers building conflict graphs should skip non-`allocatable()` ones.
[[nodiscard]] IdMap<VarId, LiveInterval> compute_lifetimes(
    const Dfg& dfg, const Schedule& sched, const LifetimeOptions& opts = {});

/// Maximum number of simultaneously-live allocatable variables — a lower
/// bound (and, for interval graphs, the exact minimum) on register count.
[[nodiscard]] int max_live(const Dfg& dfg,
                           const IdMap<VarId, LiveInterval>& lifetimes);

}  // namespace lbist
