#include "dfg/parse.hpp"

#include <sstream>
#include <vector>

#include "support/check.hpp"

namespace lbist {

namespace {

struct PendingOp {
  std::string name;
  std::string sym;
  std::string lhs, rhs, result;
  std::optional<int> step;
  int line = 0;
};

[[noreturn]] void parse_fail(int line, const std::string& msg) {
  throw Error("dfg parse error at line " + std::to_string(line) + ": " + msg);
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> toks;
  std::string t;
  while (is >> t) {
    if (t.front() == '#') break;  // rest of line is a comment
    toks.push_back(t);
  }
  return toks;
}

}  // namespace

ParsedDfg parse_dfg(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;

  std::string dfg_name = "unnamed";
  std::vector<std::pair<std::string, bool>> inputs;  // name, port_resident
  std::vector<PendingOp> pending;
  std::vector<std::pair<std::string, int>> outputs;   // name, line
  std::vector<std::pair<std::string, int>> controls;  // name, line
  std::vector<std::tuple<std::string, std::string, int>> carries;

  while (std::getline(in, line)) {
    ++lineno;
    auto toks = tokens_of(line);
    if (toks.empty()) continue;
    const std::string& kw = toks[0];
    if (kw == "dfg") {
      if (toks.size() != 2) parse_fail(lineno, "expected: dfg <name>");
      dfg_name = toks[1];
    } else if (kw == "input" || kw == "portinput") {
      if (toks.size() < 2) parse_fail(lineno, "expected at least one name");
      for (std::size_t i = 1; i < toks.size(); ++i) {
        inputs.emplace_back(toks[i], kw == "portinput");
      }
    } else if (kw == "op") {
      // op <name> <sym> <lhs> <rhs> -> <result> [@step]
      if (toks.size() < 7 || toks[5] != "->") {
        parse_fail(lineno, "expected: op <name> <sym> <lhs> <rhs> -> <result> "
                           "[@step]");
      }
      PendingOp p;
      p.name = toks[1];
      p.sym = toks[2];
      p.lhs = toks[3];
      p.rhs = toks[4];
      p.result = toks[6];
      p.line = lineno;
      if (toks.size() >= 8) {
        if (toks[7].size() < 2 || toks[7][0] != '@') {
          parse_fail(lineno, "expected @<step>, got: " + toks[7]);
        }
        try {
          p.step = std::stoi(toks[7].substr(1));
        } catch (const std::exception&) {
          parse_fail(lineno, "bad step number: " + toks[7]);
        }
      }
      pending.push_back(std::move(p));
    } else if (kw == "output") {
      for (std::size_t i = 1; i < toks.size(); ++i) {
        outputs.emplace_back(toks[i], lineno);
      }
    } else if (kw == "control") {
      for (std::size_t i = 1; i < toks.size(); ++i) {
        controls.emplace_back(toks[i], lineno);
      }
    } else if (kw == "carry") {
      if (toks.size() != 3) {
        parse_fail(lineno, "expected: carry <carried-output> <init-input>");
      }
      carries.emplace_back(toks[1], toks[2], lineno);
    } else {
      parse_fail(lineno, "unknown directive: " + kw);
    }
  }

  Dfg dfg(dfg_name);
  for (const auto& [iname, port] : inputs) dfg.add_input(iname, port);
  for (const auto& p : pending) {
    auto lhs = dfg.find_var(p.lhs);
    auto rhs = dfg.find_var(p.rhs);
    if (!lhs) parse_fail(p.line, "unknown operand: " + p.lhs);
    if (!rhs) parse_fail(p.line, "unknown operand: " + p.rhs);
    dfg.add_op(kind_from_symbol(p.sym), *lhs, *rhs, p.result, p.name);
  }
  for (const auto& [oname, l] : outputs) {
    auto v = dfg.find_var(oname);
    if (!v) parse_fail(l, "unknown output variable: " + oname);
    dfg.mark_output(*v);
  }
  for (const auto& [cname, l] : controls) {
    auto v = dfg.find_var(cname);
    if (!v) parse_fail(l, "unknown control variable: " + cname);
    dfg.mark_control_only(*v);
  }
  for (const auto& [out_name, in_name, l] : carries) {
    auto out = dfg.find_var(out_name);
    auto in = dfg.find_var(in_name);
    if (!out) parse_fail(l, "unknown carried variable: " + out_name);
    if (!in) parse_fail(l, "unknown init variable: " + in_name);
    dfg.tie_loop(*out, *in);
  }
  dfg.validate();

  std::size_t with_step = 0;
  for (const auto& p : pending) with_step += p.step.has_value() ? 1u : 0u;
  std::optional<Schedule> sched;
  if (with_step == pending.size() && !pending.empty()) {
    IdMap<OpId, int> steps(dfg.num_ops());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      steps[OpId{static_cast<OpId::value_type>(i)}] = *pending[i].step;
    }
    sched.emplace(dfg, std::move(steps));
  } else if (with_step != 0) {
    throw Error("dfg parse error: @step given for some but not all ops");
  }

  return ParsedDfg{std::move(dfg), std::move(sched)};
}

std::string print_dfg(const Dfg& dfg, const Schedule* sched) {
  std::ostringstream os;
  os << "dfg " << dfg.name() << "\n";
  std::string inputs, portinputs;
  for (const auto& v : dfg.vars()) {
    if (!v.is_input()) continue;
    (v.port_resident ? portinputs : inputs) += " " + v.name;
  }
  if (!inputs.empty()) os << "input" << inputs << "\n";
  if (!portinputs.empty()) os << "portinput" << portinputs << "\n";
  for (const auto& op : dfg.ops()) {
    os << "op " << op.name << " " << symbol(op.kind) << " "
       << dfg.var(op.lhs).name << " " << dfg.var(op.rhs).name << " -> "
       << dfg.var(op.result).name;
    if (sched != nullptr) os << " @" << sched->step(op.id);
    os << "\n";
  }
  std::string outs, ctrls;
  for (const auto& v : dfg.vars()) {
    if (v.is_output) outs += " " + v.name;
    if (v.control_only) ctrls += " " + v.name;
  }
  if (!outs.empty()) os << "output" << outs << "\n";
  if (!ctrls.empty()) os << "control" << ctrls << "\n";
  for (const auto& [carried, init] : dfg.loop_ties()) {
    os << "carry " << dfg.var(carried).name << " " << dfg.var(init).name
       << "\n";
  }
  return os.str();
}

}  // namespace lbist
