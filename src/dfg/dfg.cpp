#include "dfg/dfg.hpp"

#include <unordered_set>

#include "support/dot.hpp"

namespace lbist {

std::string_view to_string(OpKind k) {
  switch (k) {
    case OpKind::Add: return "add";
    case OpKind::Sub: return "sub";
    case OpKind::Mul: return "mul";
    case OpKind::Div: return "div";
    case OpKind::And: return "and";
    case OpKind::Or: return "or";
    case OpKind::Xor: return "xor";
    case OpKind::Lt: return "lt";
    case OpKind::Gt: return "gt";
  }
  return "?";
}

std::string_view symbol(OpKind k) {
  switch (k) {
    case OpKind::Add: return "+";
    case OpKind::Sub: return "-";
    case OpKind::Mul: return "*";
    case OpKind::Div: return "/";
    case OpKind::And: return "&";
    case OpKind::Or: return "|";
    case OpKind::Xor: return "^";
    case OpKind::Lt: return "<";
    case OpKind::Gt: return ">";
  }
  return "?";
}

OpKind kind_from_symbol(std::string_view sym) {
  if (sym == "+") return OpKind::Add;
  if (sym == "-") return OpKind::Sub;
  if (sym == "*") return OpKind::Mul;
  if (sym == "/") return OpKind::Div;
  if (sym == "&") return OpKind::And;
  if (sym == "|") return OpKind::Or;
  if (sym == "^") return OpKind::Xor;
  if (sym == "<") return OpKind::Lt;
  if (sym == ">") return OpKind::Gt;
  throw Error("unknown operator symbol: '" + std::string(sym) + "'");
}

bool is_commutative(OpKind k) {
  switch (k) {
    case OpKind::Add:
    case OpKind::Mul:
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
      return true;
    case OpKind::Sub:
    case OpKind::Div:
    case OpKind::Lt:
    case OpKind::Gt:
      return false;
  }
  return false;
}

VarId Dfg::add_input(std::string var_name, bool port_resident) {
  LBIST_CHECK(!find_var(var_name).has_value(),
              "duplicate variable name: " + var_name);
  VarId id{static_cast<VarId::value_type>(vars_.size())};
  Variable v;
  v.id = id;
  v.name = std::move(var_name);
  v.port_resident = port_resident;
  vars_.push_back(std::move(v));
  return id;
}

VarId Dfg::add_op(OpKind kind, VarId lhs, VarId rhs, std::string result_name,
                  std::string op_name) {
  LBIST_CHECK(lhs.valid() && lhs.index() < vars_.size(), "bad lhs operand");
  LBIST_CHECK(rhs.valid() && rhs.index() < vars_.size(), "bad rhs operand");
  LBIST_CHECK(!find_var(result_name).has_value(),
              "duplicate variable name: " + result_name);

  OpId oid{static_cast<OpId::value_type>(ops_.size())};
  if (op_name.empty()) {
    op_name = std::string(to_string(kind)) + std::to_string(ops_.size());
  }
  LBIST_CHECK(!find_op(op_name).has_value(),
              "duplicate operation name: " + op_name);

  VarId rid{static_cast<VarId::value_type>(vars_.size())};
  Variable result;
  result.id = rid;
  result.name = std::move(result_name);
  result.def = oid;
  vars_.push_back(std::move(result));

  Operation op;
  op.id = oid;
  op.name = std::move(op_name);
  op.kind = kind;
  op.lhs = lhs;
  op.rhs = rhs;
  op.result = rid;
  ops_.push_back(std::move(op));

  vars_[lhs.index()].uses.push_back(oid);
  if (rhs != lhs) {
    vars_[rhs.index()].uses.push_back(oid);
  }
  return rid;
}

void Dfg::mark_output(VarId v) {
  LBIST_CHECK(v.valid() && v.index() < vars_.size(), "bad variable id");
  vars_[v.index()].is_output = true;
}

void Dfg::mark_control_only(VarId v) {
  LBIST_CHECK(v.valid() && v.index() < vars_.size(), "bad variable id");
  LBIST_CHECK(vars_[v.index()].def.valid(),
              "only operation results can be control-only");
  vars_[v.index()].control_only = true;
}

void Dfg::tie_loop(VarId carried, VarId init) {
  LBIST_CHECK(carried.valid() && carried.index() < vars_.size() &&
                  init.valid() && init.index() < vars_.size(),
              "bad variable id in loop tie");
  const Variable& out = vars_[carried.index()];
  const Variable& in = vars_[init.index()];
  LBIST_CHECK(out.def.valid() && out.is_output,
              "carried variable must be an operation result marked output: " +
                  out.name);
  LBIST_CHECK(in.is_input() && in.allocatable(),
              "loop init must be an allocatable primary input: " + in.name);
  for (const auto& [c, i] : loop_ties_) {
    LBIST_CHECK(c != carried && i != init,
                "variable appears in two loop ties");
  }
  loop_ties_.emplace_back(carried, init);
}

std::optional<VarId> Dfg::find_var(std::string_view vname) const {
  for (const auto& v : vars_) {
    if (v.name == vname) return v.id;
  }
  return std::nullopt;
}

std::optional<OpId> Dfg::find_op(std::string_view oname) const {
  for (const auto& o : ops_) {
    if (o.name == oname) return o.id;
  }
  return std::nullopt;
}

void Dfg::validate() const {
  std::unordered_set<std::string> names;
  for (const auto& v : vars_) {
    LBIST_CHECK(names.insert(v.name).second,
                "duplicate variable name: " + v.name);
    if (!v.is_output && !v.control_only && v.def.valid()) {
      LBIST_CHECK(!v.uses.empty(),
                  "dead operation result (no uses, not an output): " + v.name);
    }
    LBIST_CHECK(!(v.control_only && v.is_output),
                "control-only variables are routed to the controller, not to "
                "a primary output: " +
                    v.name);
    LBIST_CHECK(!(v.port_resident && v.def.valid()),
                "only primary inputs can be port-resident: " + v.name);
  }
  for (const auto& o : ops_) {
    LBIST_CHECK(!vars_[o.lhs.index()].control_only &&
                    !vars_[o.rhs.index()].control_only,
                "control-only variables cannot be datapath operands: " +
                    o.name);
  }
}

std::string Dfg::to_dot() const {
  DotWriter dot(name_, /*directed=*/true);
  for (const auto& o : ops_) {
    dot.add_node(o.name, {"label=\"" + std::string(symbol(o.kind)) + " (" +
                              o.name + ")\"",
                          "shape=circle"});
  }
  for (const auto& v : vars_) {
    if (v.is_input()) {
      dot.add_node(v.name, {"shape=plaintext"});
      for (OpId u : v.uses) {
        dot.add_edge(v.name, ops_[u.index()].name,
                     {"label=\"" + v.name + "\""});
      }
    } else {
      for (OpId u : v.uses) {
        dot.add_edge(ops_[v.def.index()].name, ops_[u.index()].name,
                     {"label=\"" + v.name + "\""});
      }
      if (v.is_output) {
        dot.add_node("out_" + v.name, {"shape=plaintext",
                                       "label=\"" + v.name + "\""});
        dot.add_edge(ops_[v.def.index()].name, "out_" + v.name);
      }
    }
  }
  return dot.str();
}

}  // namespace lbist
