#include "dfg/random_dfg.hpp"

#include <algorithm>
#include <random>

#include "support/check.hpp"

namespace lbist {

RandomDfg make_random_dfg(const RandomDfgOptions& opts) {
  LBIST_CHECK(opts.num_steps >= 1, "need at least one step");
  LBIST_CHECK(opts.ops_per_step >= 1, "need at least one op per step");
  LBIST_CHECK(opts.num_inputs >= 2, "need at least two inputs");
  LBIST_CHECK(!opts.kinds.empty(), "need at least one op kind");

  std::mt19937_64 rng(opts.seed);
  Dfg dfg("random_s" + std::to_string(opts.seed));

  std::vector<VarId> inputs;
  for (int i = 0; i < opts.num_inputs; ++i) {
    inputs.push_back(dfg.add_input("in" + std::to_string(i)));
  }

  // Values defined strictly before the step being generated.
  std::vector<VarId> defined;
  IdMap<OpId, int> steps;

  auto pick = [&rng](const std::vector<VarId>& pool) {
    std::uniform_int_distribution<std::size_t> d(0, pool.size() - 1);
    return pool[d(rng)];
  };
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  int var_counter = 0;
  for (int step = 1; step <= opts.num_steps; ++step) {
    std::vector<VarId> produced;
    for (int k = 0; k < opts.ops_per_step; ++k) {
      auto pick_operand = [&]() {
        const bool reuse =
            !defined.empty() && coin(rng) < opts.reuse_probability;
        if (!reuse) return pick(inputs);
        // Chain bias: prefer the freshest value so dependence chains grow.
        if (coin(rng) < opts.chain_probability) return defined.back();
        return pick(defined);
      };
      VarId a = pick_operand();
      VarId b = pick_operand();
      std::uniform_int_distribution<std::size_t> dk(0, opts.kinds.size() - 1);
      VarId r = dfg.add_op(opts.kinds[dk(rng)], a, b,
                           "t" + std::to_string(var_counter++));
      produced.push_back(r);
      steps.push_back(step);
    }
    defined.insert(defined.end(), produced.begin(), produced.end());
  }

  // Anything never consumed becomes a primary output so the DFG validates;
  // unused primary inputs are consumed by an extra final-step op.
  for (const auto& v : dfg.vars()) {
    if (!v.is_input() && v.uses.empty()) dfg.mark_output(v.id);
  }
  for (const auto& v : dfg.vars()) {
    if (v.is_input() && v.uses.empty()) {
      VarId r = dfg.add_op(OpKind::Add, v.id, v.id,
                           "t" + std::to_string(var_counter++));
      steps.push_back(opts.num_steps + 1);
      dfg.mark_output(r);
    }
  }
  // Loop-carried ties: feed an output result back into an input whose last
  // read is no later than the carried value's defining step (the loop
  // binder's non-overlap rule: a value read during step s and one written
  // at the end of step s can share a register).
  if (opts.loop_ties > 0) {
    auto last_use_step = [&](VarId v) {
      int last = 0;
      for (OpId use : dfg.var(v).uses) last = std::max(last, steps[use]);
      return last;
    };
    std::vector<VarId> outs;
    for (const auto& v : dfg.vars()) {
      if (v.is_output && !v.is_input()) outs.push_back(v.id);
    }
    std::stable_sort(outs.begin(), outs.end(), [&](VarId a, VarId b) {
      return steps[dfg.var(a).def] > steps[dfg.var(b).def];
    });
    std::vector<bool> tied(dfg.num_vars(), false);
    int placed = 0;
    for (VarId carried : outs) {
      if (placed == opts.loop_ties) break;
      const int def_step = steps[dfg.var(carried).def];
      for (VarId init : inputs) {
        if (tied[init.index()] || last_use_step(init) > def_step) continue;
        dfg.tie_loop(carried, init);
        tied[init.index()] = true;
        ++placed;
        break;
      }
    }
  }
  dfg.validate();

  Schedule sched(dfg, std::move(steps));
  return RandomDfg{std::move(dfg), std::move(sched)};
}

}  // namespace lbist
