#include "dfg/random_dfg.hpp"

#include <random>

#include "support/check.hpp"

namespace lbist {

RandomDfg make_random_dfg(const RandomDfgOptions& opts) {
  LBIST_CHECK(opts.num_steps >= 1, "need at least one step");
  LBIST_CHECK(opts.ops_per_step >= 1, "need at least one op per step");
  LBIST_CHECK(opts.num_inputs >= 2, "need at least two inputs");
  LBIST_CHECK(!opts.kinds.empty(), "need at least one op kind");

  std::mt19937_64 rng(opts.seed);
  Dfg dfg("random_s" + std::to_string(opts.seed));

  std::vector<VarId> inputs;
  for (int i = 0; i < opts.num_inputs; ++i) {
    inputs.push_back(dfg.add_input("in" + std::to_string(i)));
  }

  // Values defined strictly before the step being generated.
  std::vector<VarId> defined;
  IdMap<OpId, int> steps;

  auto pick = [&rng](const std::vector<VarId>& pool) {
    std::uniform_int_distribution<std::size_t> d(0, pool.size() - 1);
    return pool[d(rng)];
  };
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  int var_counter = 0;
  for (int step = 1; step <= opts.num_steps; ++step) {
    std::vector<VarId> produced;
    for (int k = 0; k < opts.ops_per_step; ++k) {
      auto pick_operand = [&]() {
        const bool reuse =
            !defined.empty() && coin(rng) < opts.reuse_probability;
        return reuse ? pick(defined) : pick(inputs);
      };
      VarId a = pick_operand();
      VarId b = pick_operand();
      std::uniform_int_distribution<std::size_t> dk(0, opts.kinds.size() - 1);
      VarId r = dfg.add_op(opts.kinds[dk(rng)], a, b,
                           "t" + std::to_string(var_counter++));
      produced.push_back(r);
      steps.push_back(step);
    }
    defined.insert(defined.end(), produced.begin(), produced.end());
  }

  // Anything never consumed becomes a primary output so the DFG validates;
  // unused primary inputs are consumed by an extra final-step op.
  for (const auto& v : dfg.vars()) {
    if (!v.is_input() && v.uses.empty()) dfg.mark_output(v.id);
  }
  for (const auto& v : dfg.vars()) {
    if (v.is_input() && v.uses.empty()) {
      VarId r = dfg.add_op(OpKind::Add, v.id, v.id,
                           "t" + std::to_string(var_counter++));
      steps.push_back(opts.num_steps + 1);
      dfg.mark_output(r);
    }
  }
  dfg.validate();

  Schedule sched(dfg, std::move(steps));
  return RandomDfg{std::move(dfg), std::move(sched)};
}

}  // namespace lbist
