#pragma once
// Behaviour-level clean-up passes (HLS front-end substrate).
//
// The paper takes its DFGs as given — including redundancy: the HAL
// differential-equation benchmark computes u*dx twice, and synthesis
// tools of the era bound both instances.  These passes let a user choose:
//
//  * `eliminate_common_subexpressions` merges operations with identical
//    (kind, operands) — operands order-normalized for commutative kinds,
//  * `remove_dead_code` drops operations whose results can never reach a
//    primary output or the controller.
//
// Both return a fresh DFG (schedules refer to operation ids and are
// invalidated; reschedule afterwards).  Reference semantics are preserved:
// every surviving output computes the same function of the inputs
// (property-tested against evaluate_dfg on random vectors).

#include "dfg/dfg.hpp"

namespace lbist {

/// Result of a rewrite: the new graph plus name-based bookkeeping.
struct OptimizedDfg {
  Dfg dfg;
  /// Operations removed by the pass (names from the input DFG).
  std::vector<std::string> removed_ops;
};

/// Merges duplicate operations.  Runs to a fixed point (merging two ops
/// can make their consumers identical).
[[nodiscard]] OptimizedDfg eliminate_common_subexpressions(const Dfg& dfg);

/// Removes operations (and then-unused inputs) that cannot influence any
/// primary output or control result.
[[nodiscard]] OptimizedDfg remove_dead_code(const Dfg& dfg);

}  // namespace lbist
