#pragma once
// Random scheduled-DFG generator for property tests, the differential
// fuzzer (src/fuzz/) and scaling experiments.
//
// Produces straight-line scheduled DFGs layer by layer: operations in step s
// draw operands from variables produced in earlier steps (or fresh primary
// inputs), so every generated design is a valid scheduled DFG whose conflict
// graph is an interval graph — the same class the paper's algorithms target.
// Two shape knobs stretch the distribution beyond the uniform layered form:
// `chain_probability` biases operands toward the most recent result
// (producing deep dependence chains like the diff-eq update), and
// `loop_ties` adds loop-carried dependences (`Dfg::tie_loop`) whenever a
// valid non-overlapping (output, input) pair exists — the shape the
// loop-aware binder extension targets.

#include <cstdint>
#include <vector>

#include "dfg/dfg.hpp"
#include "dfg/schedule.hpp"

namespace lbist {

/// Knobs for the generator.  Defaults give mid-sized designs similar in
/// shape to the paper's benchmarks.
struct RandomDfgOptions {
  std::uint64_t seed = 1;
  int num_steps = 6;
  int ops_per_step = 3;       ///< exact number of operations per control step
  int num_inputs = 4;         ///< pool of primary inputs operands may use
  double reuse_probability = 0.6;  ///< chance an operand reuses a live value
  /// Chance a reused operand is the most recently produced value instead of
  /// a uniform pick — 0 keeps the historical layered shape, values near 1
  /// yield chain-shaped DFGs (long critical paths, skinny conflict graphs).
  double chain_probability = 0.0;
  /// Number of loop-carried ties to attempt (carried output fed back into a
  /// primary input, see Dfg::tie_loop).  Only ties whose live ranges do not
  /// overlap are added, so the result always satisfies the loop binder's
  /// validity rules; fewer than requested may be placed.
  int loop_ties = 0;
  std::vector<OpKind> kinds = {OpKind::Add, OpKind::Mul, OpKind::Sub,
                               OpKind::And};
};

/// A generated design.
struct RandomDfg {
  Dfg dfg;
  Schedule schedule;
};

/// Generates a random scheduled DFG.  Deterministic for a given options
/// struct (same seed => same design).
[[nodiscard]] RandomDfg make_random_dfg(const RandomDfgOptions& opts);

}  // namespace lbist
