#pragma once
// Random scheduled-DFG generator for property tests and scaling experiments.
//
// Produces straight-line scheduled DFGs layer by layer: operations in step s
// draw operands from variables produced in earlier steps (or fresh primary
// inputs), so every generated design is a valid scheduled DFG whose conflict
// graph is an interval graph — the same class the paper's algorithms target.

#include <cstdint>
#include <vector>

#include "dfg/dfg.hpp"
#include "dfg/schedule.hpp"

namespace lbist {

/// Knobs for the generator.  Defaults give mid-sized designs similar in
/// shape to the paper's benchmarks.
struct RandomDfgOptions {
  std::uint64_t seed = 1;
  int num_steps = 6;
  int ops_per_step = 3;       ///< exact number of operations per control step
  int num_inputs = 4;         ///< pool of primary inputs operands may use
  double reuse_probability = 0.6;  ///< chance an operand reuses a live value
  std::vector<OpKind> kinds = {OpKind::Add, OpKind::Mul, OpKind::Sub,
                               OpKind::And};
};

/// A generated design.
struct RandomDfg {
  Dfg dfg;
  Schedule schedule;
};

/// Generates a random scheduled DFG.  Deterministic for a given options
/// struct (same seed => same design).
[[nodiscard]] RandomDfg make_random_dfg(const RandomDfgOptions& opts);

}  // namespace lbist
