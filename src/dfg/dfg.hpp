#pragma once
// Scheduled data-flow graph (DFG) model — the behavioural input to the
// allocation algorithms of Parulkar/Gupta/Breuer (DAC'95), Section III.
//
// A DFG G = (V, E) has operations V and variables E (operands and results).
// All operators are binary (the paper's assumption); non-commutative kinds
// are supported and constrain interconnect port assignment.  Variables come
// in three flavours that matter to allocation:
//
//  * ordinary datapath variables — register-allocated (colored),
//  * `port_resident` primary inputs — held in dedicated, pre-existing input
//    registers outside the allocation (used for the Paulin benchmark, whose
//    published register counts exclude the architectural input registers),
//  * `control_only` results — 1-bit conditions routed to the controller and
//    never stored in a datapath register (e.g. the `<` in the diff-eq loop).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/check.hpp"
#include "support/ids.hpp"

namespace lbist {

/// Operator kinds appearing in the benchmark DFGs.
enum class OpKind {
  Add,
  Sub,
  Mul,
  Div,
  And,
  Or,
  Xor,
  Lt,
  Gt,
};

/// Human-readable name, e.g. "add".
[[nodiscard]] std::string_view to_string(OpKind k);
/// Operator symbol used in the textual DFG format, e.g. "+".
[[nodiscard]] std::string_view symbol(OpKind k);
/// Parses an operator symbol; throws lbist::Error on unknown symbols.
[[nodiscard]] OpKind kind_from_symbol(std::string_view sym);
/// True for operators where swapping the operands preserves the result.
[[nodiscard]] bool is_commutative(OpKind k);

/// A variable (an edge of the DFG): either a primary input or the result of
/// exactly one operation; used by zero or more operations.
struct Variable {
  VarId id;
  std::string name;
  /// Defining operation; invalid for primary inputs.
  OpId def;
  /// Operations reading this variable.
  std::vector<OpId> uses;
  /// Primary output of the behaviour (held live to the end of the schedule).
  bool is_output = false;
  /// Result consumed only by the controller; excluded from register binding.
  bool control_only = false;
  /// Primary input kept in a dedicated input register outside the binding.
  bool port_resident = false;

  [[nodiscard]] bool is_input() const { return !def.valid(); }
  /// True if this variable participates in register allocation.
  [[nodiscard]] bool allocatable() const {
    return !control_only && !port_resident;
  }
};

/// An operation (a vertex of the DFG).  Always binary.
struct Operation {
  OpId id;
  std::string name;
  OpKind kind = OpKind::Add;
  VarId lhs;
  VarId rhs;
  VarId result;
};

/// A data-flow graph under construction or analysis.  Build with
/// `add_input`/`add_op`/`mark_output`, then `validate()`.
class Dfg {
 public:
  explicit Dfg(std::string name) : name_(std::move(name)) {}

  /// Adds a primary input variable.
  VarId add_input(std::string var_name, bool port_resident = false);

  /// Adds a binary operation computing `result_name = lhs kind rhs` and
  /// returns the result variable.  `op_name` defaults to
  /// "<kind><ordinal>", e.g. "mul3".
  VarId add_op(OpKind kind, VarId lhs, VarId rhs, std::string result_name,
               std::string op_name = "");

  /// Marks a variable as a primary output.
  void mark_output(VarId v);
  /// Marks an operation result as controller-consumed (not allocated).
  void mark_control_only(VarId v);

  /// Declares a loop-carried dependence: output `carried` becomes input
  /// `init` on the next iteration, so the two must share a register.  The
  /// paper's algorithms assume loop-free behaviours (interval conflict
  /// graphs); ties are consumed by the loop-aware binder extension
  /// (binding/loop_binder.hpp).
  void tie_loop(VarId carried, VarId init);
  [[nodiscard]] const std::vector<std::pair<VarId, VarId>>& loop_ties()
      const {
    return loop_ties_;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_ops() const { return ops_.size(); }
  [[nodiscard]] std::size_t num_vars() const { return vars_.size(); }
  [[nodiscard]] const Operation& op(OpId id) const { return ops_[id.index()]; }
  [[nodiscard]] const Variable& var(VarId id) const {
    return vars_[id.index()];
  }
  [[nodiscard]] const std::vector<Operation>& ops() const { return ops_; }
  [[nodiscard]] const std::vector<Variable>& vars() const { return vars_; }

  /// Finds a variable by name; returns nullopt if absent.
  [[nodiscard]] std::optional<VarId> find_var(std::string_view vname) const;
  /// Finds an operation by name; returns nullopt if absent.
  [[nodiscard]] std::optional<OpId> find_op(std::string_view oname) const;

  /// Checks structural sanity: every non-output, non-control variable is
  /// used at least once; names are unique; operands exist.  Throws
  /// lbist::Error on violations.
  void validate() const;

  /// Graphviz rendering of the DFG (operations as circles, variables as
  /// edge labels) — used to reproduce paper Fig. 2.
  [[nodiscard]] std::string to_dot() const;

 private:
  std::string name_;
  std::vector<Operation> ops_;
  std::vector<Variable> vars_;
  std::vector<std::pair<VarId, VarId>> loop_ties_;
};

}  // namespace lbist
