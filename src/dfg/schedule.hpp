#pragma once
// Control-step schedule for a DFG: S : V -> {1, 2, 3, ...}.
//
// The allocation algorithms assume a register-transfer timing model: an
// operation scheduled in step s reads its operands (from registers or input
// ports) during s and writes its result into a register at the end of s.
// Hence a data dependency forces strictly increasing steps (no chaining).

#include <vector>

#include "dfg/dfg.hpp"
#include "support/ids.hpp"

namespace lbist {

/// An immutable schedule of a DFG.  Validates data dependencies at
/// construction time.
class Schedule {
 public:
  /// `step_of[op]` is the 1-based control step of each operation.
  Schedule(const Dfg& dfg, IdMap<OpId, int> step_of);

  [[nodiscard]] int step(OpId op) const { return step_of_[op]; }
  /// Number of control steps (= max step over all operations).
  [[nodiscard]] int num_steps() const { return num_steps_; }

  /// Operations scheduled in a given step, in id order.
  [[nodiscard]] std::vector<OpId> ops_in_step(const Dfg& dfg, int step) const;

 private:
  IdMap<OpId, int> step_of_;
  int num_steps_ = 0;
};

}  // namespace lbist
