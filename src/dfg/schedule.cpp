#include "dfg/schedule.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace lbist {

Schedule::Schedule(const Dfg& dfg, IdMap<OpId, int> step_of)
    : step_of_(std::move(step_of)) {
  LBIST_CHECK(step_of_.size() == dfg.num_ops(),
              "schedule must cover every operation");
  for (const auto& op : dfg.ops()) {
    const int s = step_of_[op.id];
    LBIST_CHECK(s >= 1, "control steps are 1-based");
    num_steps_ = std::max(num_steps_, s);
    for (VarId operand : {op.lhs, op.rhs}) {
      const Variable& v = dfg.var(operand);
      if (v.def.valid()) {
        LBIST_CHECK(step_of_[v.def] < s,
                    "operation " + op.name +
                        " reads a value produced in the same or a later step "
                        "(no chaining in the RT timing model)");
      }
    }
  }
}

std::vector<OpId> Schedule::ops_in_step(const Dfg& dfg, int step) const {
  std::vector<OpId> result;
  for (const auto& op : dfg.ops()) {
    if (step_of_[op.id] == step) result.push_back(op.id);
  }
  return result;
}

}  // namespace lbist
