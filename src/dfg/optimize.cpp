#include "dfg/optimize.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "support/check.hpp"

namespace lbist {

namespace {

/// Rebuilds a DFG keeping only ops for which keep(op) is true; uses of a
/// dropped op's result are redirected via `replacement` (old result var ->
/// old surviving var).  Inputs that end up unused are dropped too.
OptimizedDfg rebuild(const Dfg& src,
                     const IdMap<OpId, char>& keep,
                     const IdMap<VarId, VarId>& replacement) {
  // Resolve replacement chains (a -> b -> c).
  auto resolve = [&](VarId v) {
    while (replacement[v].valid()) v = replacement[v];
    return v;
  };

  // Which inputs are still referenced by surviving ops?
  IdMap<VarId, char> input_used(src.num_vars(), 0);
  for (const auto& op : src.ops()) {
    if (keep[op.id] == 0) continue;
    for (VarId operand : {op.lhs, op.rhs}) {
      const VarId r = resolve(operand);
      if (src.var(r).is_input()) input_used[r] = 1;
    }
  }

  OptimizedDfg out{Dfg(src.name()), {}};
  IdMap<VarId, VarId> new_of(src.num_vars(), VarId::invalid());
  for (const auto& v : src.vars()) {
    if (v.is_input() && input_used[v.id] != 0) {
      new_of[v.id] = out.dfg.add_input(v.name, v.port_resident);
    }
  }
  for (const auto& op : src.ops()) {
    if (keep[op.id] == 0) {
      out.removed_ops.push_back(op.name);
      continue;
    }
    const VarId lhs = new_of[resolve(op.lhs)];
    const VarId rhs = new_of[resolve(op.rhs)];
    LBIST_CHECK(lhs.valid() && rhs.valid(),
                "operand of surviving op was removed: " + op.name);
    new_of[op.result] = out.dfg.add_op(op.kind, lhs, rhs,
                                       src.var(op.result).name, op.name);
  }
  for (const auto& v : src.vars()) {
    const VarId nv = new_of[resolve(v.id)];
    if (!nv.valid()) continue;
    if (v.is_output) out.dfg.mark_output(nv);
    if (v.control_only) out.dfg.mark_control_only(nv);
  }
  out.dfg.validate();
  return out;
}

}  // namespace

OptimizedDfg eliminate_common_subexpressions(const Dfg& src) {
  IdMap<OpId, char> keep(src.num_ops(), 1);
  IdMap<VarId, VarId> replacement(src.num_vars(), VarId::invalid());

  auto resolve = [&](VarId v) {
    while (replacement[v].valid()) v = replacement[v];
    return v;
  };

  // Single forward pass reaches the fixed point: ops are in dependency
  // order, so by the time an op is visited its operands are final.
  using Key = std::tuple<OpKind, VarId, VarId>;
  std::map<Key, OpId> seen;
  for (const auto& op : src.ops()) {
    VarId a = resolve(op.lhs);
    VarId b = resolve(op.rhs);
    if (is_commutative(op.kind) && b < a) std::swap(a, b);
    const Key key{op.kind, a, b};
    auto [it, inserted] = seen.emplace(key, op.id);
    if (!inserted) {
      const OpId survivor = it->second;
      // A datapath value and a control-only value cannot share a variable.
      if (src.var(op.result).control_only !=
          src.var(src.op(survivor).result).control_only) {
        continue;
      }
      keep[op.id] = 0;
      replacement[op.result] = src.op(survivor).result;
      // Output/control markings migrate in rebuild() via resolve().
    }
  }
  return rebuild(src, keep, replacement);
}

OptimizedDfg remove_dead_code(const Dfg& src) {
  // Backward liveness from outputs and control results.
  IdMap<VarId, char> live(src.num_vars(), 0);
  for (const auto& v : src.vars()) {
    if (v.is_output || v.control_only) live[v.id] = 1;
  }
  const auto& ops = src.ops();
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    if (live[it->result] == 0) continue;
    live[it->lhs] = 1;
    live[it->rhs] = 1;
  }

  IdMap<OpId, char> keep(src.num_ops(), 1);
  for (const auto& op : src.ops()) keep[op.id] = live[op.result];
  IdMap<VarId, VarId> replacement(src.num_vars(), VarId::invalid());
  return rebuild(src, keep, replacement);
}

}  // namespace lbist
