#include "dfg/benchmarks.hpp"

#include "support/check.hpp"

namespace lbist {

namespace {

constexpr const char* kEx1 = R"(
dfg ex1
input a b c e
op add1 + a b -> d @1
op add2 + c d -> f @2
op mul1 * e f -> g @3
op mul2 * d g -> h @4
output h
)";

constexpr const char* kEx2 = R"(
dfg ex2
input u v w x y z
op mul1 * u v -> t1 @1
op mul2 * w x -> t2 @1
op add1 + t1 y -> t3 @2
op div1 / t2 z -> t4 @2
op mul3 * t3 t4 -> t5 @3
op add2 + t2 w -> t6 @3
op and1 & t5 t6 -> t7 @4
output t7
)";

constexpr const char* kTseng = R"(
dfg tseng
input a b c d e f
op sub1 - a b -> v1 @1
op add1 + c d -> v2 @1
op or1 | e f -> v3 @2
op add2 + v1 v2 -> v4 @2
op mul1 * a v3 -> v5 @3
op and1 & v2 v3 -> v7 @3
op div1 / v5 v7 -> v6 @4
op add3 + v4 v6 -> v8 @5
output v8
)";

constexpr const char* kPaulin = R"(
dfg paulin
portinput x u dx y a c3
op mul1 * c3 x -> t1 @1
op mul2 * u dx -> t2 @1
op add1 + x dx -> x1 @1
op mul3 * t1 t2 -> t3 @2
op mul4 * c3 y -> t4 @2
op lt1 < x1 a -> c @2
op mul5 * t4 dx -> t5 @3
op mul6 * u dx -> t6 @3
op sub1 - u t3 -> t7 @3
op sub2 - t7 t5 -> u1 @4
op add2 + y t6 -> y1 @4
output x1 u1 y1
control c
)";

Benchmark make(const std::string& name, const char* text,
               const std::string& spec) {
  Benchmark b{name, parse_dfg(text), spec};
  LBIST_CHECK(b.design.schedule.has_value(),
              "benchmark " + name + " must be scheduled");
  return b;
}

}  // namespace

Benchmark make_ex1() { return make("ex1", kEx1, "1+,1*"); }
Benchmark make_ex2() { return make("ex2", kEx2, "1/,2*,2+,1&"); }
Benchmark make_tseng1() { return make("Tseng1", kTseng, "2+,1*,1-,1&,1|,1/"); }
Benchmark make_tseng2() { return make("Tseng2", kTseng, "1+,3[-*/&|]"); }
Benchmark make_paulin() { return make("Paulin", kPaulin, "1+,2*,1[-<]"); }

Benchmark make_paulin_loop() {
  constexpr const char* kText = R"(
dfg paulin_loop
input x u y
portinput dx a c3
op mul1 * c3 x -> t1 @1
op mul2 * u dx -> t2 @1
op add1 + x dx -> x1 @1
op mul3 * t1 t2 -> t3 @2
op mul4 * c3 y -> t4 @2
op lt1 < x1 a -> c @2
op mul5 * t4 dx -> t5 @3
op mul6 * u dx -> t6 @3
op sub1 - u t3 -> t7 @3
op sub2 - t7 t5 -> u1 @4
op add2 + y t6 -> y1 @4
output x1 u1 y1
control c
carry x1 x
carry u1 u
carry y1 y
)";
  return make("PaulinLoop", kText, "1+,2*,1[-<]");
}

std::vector<Benchmark> paper_benchmarks() {
  std::vector<Benchmark> out;
  out.push_back(make_ex1());
  out.push_back(make_ex2());
  out.push_back(make_tseng1());
  out.push_back(make_tseng2());
  out.push_back(make_paulin());
  return out;
}

Dfg make_fir(int taps) {
  LBIST_CHECK(taps >= 2, "FIR needs at least two taps");
  Dfg dfg("fir" + std::to_string(taps));
  std::vector<VarId> products;
  for (int i = 0; i < taps; ++i) {
    VarId x = dfg.add_input("x" + std::to_string(i), /*port_resident=*/true);
    VarId c = dfg.add_input("c" + std::to_string(i), /*port_resident=*/true);
    products.push_back(
        dfg.add_op(OpKind::Mul, c, x, "p" + std::to_string(i)));
  }
  // Balanced adder tree over the tap products.
  int level = 0;
  while (products.size() > 1) {
    std::vector<VarId> next;
    for (std::size_t i = 0; i + 1 < products.size(); i += 2) {
      next.push_back(dfg.add_op(OpKind::Add, products[i], products[i + 1],
                                "s" + std::to_string(level) + "_" +
                                    std::to_string(i / 2)));
    }
    if (products.size() % 2 == 1) next.push_back(products.back());
    products = std::move(next);
    ++level;
  }
  dfg.mark_output(products.front());
  dfg.validate();
  return dfg;
}

Dfg make_biquad_cascade(int sections) {
  LBIST_CHECK(sections >= 1, "need at least one biquad section");
  Dfg dfg("biquad" + std::to_string(sections));
  VarId x = dfg.add_input("x", /*port_resident=*/true);
  for (int s = 0; s < sections; ++s) {
    const std::string p = "s" + std::to_string(s) + "_";
    auto in = [&](const char* name) {
      return dfg.add_input(p + name, /*port_resident=*/true);
    };
    VarId b0 = in("b0"), b1 = in("b1"), b2 = in("b2");
    VarId a1 = in("a1"), a2 = in("a2");
    VarId xd1 = in("xd1"), xd2 = in("xd2");
    VarId yd1 = in("yd1"), yd2 = in("yd2");

    VarId t1 = dfg.add_op(OpKind::Mul, b0, x, p + "t1");
    VarId t2 = dfg.add_op(OpKind::Mul, b1, xd1, p + "t2");
    VarId t3 = dfg.add_op(OpKind::Mul, b2, xd2, p + "t3");
    VarId t4 = dfg.add_op(OpKind::Mul, a1, yd1, p + "t4");
    VarId t5 = dfg.add_op(OpKind::Mul, a2, yd2, p + "t5");
    VarId s1 = dfg.add_op(OpKind::Add, t1, t2, p + "s1");
    VarId s2 = dfg.add_op(OpKind::Add, s1, t3, p + "s2");
    VarId s3 = dfg.add_op(OpKind::Add, t4, t5, p + "s3");
    x = dfg.add_op(OpKind::Sub, s2, s3, p + "y");
  }
  dfg.mark_output(x);
  dfg.validate();
  return dfg;
}

Dfg make_lattice(int stages) {
  LBIST_CHECK(stages >= 1, "need at least one lattice stage");
  Dfg dfg("lattice" + std::to_string(stages));
  VarId f = dfg.add_input("f0", /*port_resident=*/true);
  VarId b = dfg.add_input("b0", /*port_resident=*/true);
  for (int s = 1; s <= stages; ++s) {
    const std::string p = "k" + std::to_string(s);
    VarId k = dfg.add_input(p, /*port_resident=*/true);
    VarId kb = dfg.add_op(OpKind::Mul, k, b, "kb" + std::to_string(s));
    VarId fn = dfg.add_op(OpKind::Sub, f, kb, "f" + std::to_string(s));
    VarId kf = dfg.add_op(OpKind::Mul, k, fn, "kf" + std::to_string(s));
    b = dfg.add_op(OpKind::Sub, b, kf, "b" + std::to_string(s));
    f = fn;
  }
  dfg.mark_output(f);
  dfg.mark_output(b);
  dfg.validate();
  return dfg;
}

Dfg make_complex_mult() {
  Dfg dfg("cmult");
  VarId ar = dfg.add_input("ar");
  VarId ai = dfg.add_input("ai");
  VarId br = dfg.add_input("br");
  VarId bi = dfg.add_input("bi");
  VarId t1 = dfg.add_op(OpKind::Mul, ar, br, "t1");
  VarId t2 = dfg.add_op(OpKind::Mul, ai, bi, "t2");
  VarId t3 = dfg.add_op(OpKind::Mul, ar, bi, "t3");
  VarId t4 = dfg.add_op(OpKind::Mul, ai, br, "t4");
  VarId re = dfg.add_op(OpKind::Sub, t1, t2, "re");
  VarId im = dfg.add_op(OpKind::Add, t3, t4, "im");
  dfg.mark_output(re);
  dfg.mark_output(im);
  dfg.validate();
  return dfg;
}

Dfg make_mat2x2() {
  Dfg dfg("mat2x2");
  VarId a[2][2];
  VarId b[2][2];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      a[i][j] = dfg.add_input("a" + std::to_string(i) + std::to_string(j));
      b[i][j] = dfg.add_input("b" + std::to_string(i) + std::to_string(j));
    }
  }
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      const std::string suffix = std::to_string(i) + std::to_string(j);
      VarId p = dfg.add_op(OpKind::Mul, a[i][0], b[0][j], "p" + suffix);
      VarId q = dfg.add_op(OpKind::Mul, a[i][1], b[1][j], "q" + suffix);
      dfg.mark_output(dfg.add_op(OpKind::Add, p, q, "c" + suffix));
    }
  }
  dfg.validate();
  return dfg;
}

}  // namespace lbist
