#include "dfg/lifetime.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace lbist {

IdMap<VarId, LiveInterval> compute_lifetimes(const Dfg& dfg,
                                             const Schedule& sched,
                                             const LifetimeOptions& opts) {
  IdMap<VarId, LiveInterval> out(dfg.num_vars());
  for (const auto& v : dfg.vars()) {
    LiveInterval iv;
    if (v.is_input()) {
      LBIST_CHECK(!v.uses.empty(), "unused primary input: " + v.name);
      int first_use = sched.num_steps() + 1;
      for (OpId u : v.uses) first_use = std::min(first_use, sched.step(u));
      iv.birth = first_use - 1;
    } else {
      iv.birth = sched.step(v.def);
    }
    iv.death = iv.birth + 1;  // every stored value lives at least one step
    for (OpId u : v.uses) iv.death = std::max(iv.death, sched.step(u));
    if (v.is_output && opts.hold_outputs_to_end) {
      iv.death = std::max(iv.death, sched.num_steps() + 1);
    }
    out[v.id] = iv;
  }
  return out;
}

int max_live(const Dfg& dfg, const IdMap<VarId, LiveInterval>& lifetimes) {
  int best = 0;
  // Live counts only change at step boundaries; sample each step t by
  // counting intervals with birth < t <= death.
  int horizon = 0;
  for (const auto& v : dfg.vars()) {
    horizon = std::max(horizon, lifetimes[v.id].death);
  }
  for (int t = 1; t <= horizon; ++t) {
    int live = 0;
    for (const auto& v : dfg.vars()) {
      if (!v.allocatable()) continue;
      const auto& iv = lifetimes[v.id];
      if (iv.birth < t && t <= iv.death) ++live;
    }
    best = std::max(best, live);
  }
  return best;
}

}  // namespace lbist
