#pragma once
// Textual DFG format — human-writable serialization used by the examples and
// the benchmark library.
//
//   # comment
//   dfg ex1
//   input a b c e          # register-allocated primary inputs
//   portinput x dx         # port-resident inputs (dedicated input registers)
//   op add1 + a b -> d @1  # name, symbol, operands, result, control step
//   op mul2 * d g -> h @4
//   output h               # primary outputs
//   control c              # control-only results (not register-allocated)
//
// The `@step` annotations are optional but all-or-nothing: either every
// operation carries one (a scheduled DFG) or none does (schedule separately
// with the `sched` library).

#include <optional>
#include <string>
#include <string_view>

#include "dfg/dfg.hpp"
#include "dfg/schedule.hpp"

namespace lbist {

/// Result of parsing: the graph plus its schedule when steps were given.
struct ParsedDfg {
  Dfg dfg;
  std::optional<Schedule> schedule;
};

/// Parses the textual format; throws lbist::Error with a line number on
/// malformed input.
[[nodiscard]] ParsedDfg parse_dfg(std::string_view text);

/// Serializes a DFG (and optional schedule) back to the textual format.
[[nodiscard]] std::string print_dfg(const Dfg& dfg,
                                    const Schedule* sched = nullptr);

}  // namespace lbist
