#pragma once
// Benchmark DFGs used in the paper's evaluation (Table I-III), reconstructed.
//
// The paper's figures are not machine-readable and two of the sources (the
// Papachristou DAC'91 example, the Tseng/FACET behaviour) are only available
// in prose, so each DFG here is a documented reconstruction that preserves
// the structural facts the paper states:
//
//  * ex1    — the paper's Fig. 2: 4 operations (2 add, 2 mul), 8 variables
//             a..h, minimum of 3 registers, module sets I_M1 = {a,b,c,d},
//             O_M1 = {d,f} under the module assignment {add1,add2} -> M1,
//             {mul1,mul2} -> M2.  (The paper's running example contains a
//             small arithmetic inconsistency in its SD trace; our ex1 is
//             self-consistent and pins the same invariants.)
//  * ex2    — stand-in for the DFG taken from Papachristou et al. DAC'91:
//             7 operations (1 div, 3 mul, 2 add, 1 and), 13 variables,
//             minimum of 5 registers, module assignment 1/, 2*, 2+, 1&.
//  * tseng  — stand-in for the Tseng/FACET benchmark: 8 operations
//             (3 add, 1 sub, 1 mul, 1 div, 1 and, 1 or), minimum of
//             5 registers; two module assignments as in the paper:
//             Tseng1 = 2+,1*,1-,1&,1|,1/  and  Tseng2 = 1+ and 3 ALUs.
//  * paulin — the Paulin/HAL differential-equation solver (well published):
//             6 mul, 2 add, 2 sub, 1 compare over 4 control steps with
//             2 multipliers; loop inputs (x, u, dx, y, a, the constant 3)
//             are port-resident (the paper's register counts for this
//             benchmark exclude architectural input registers — with them
//             included no 4-register binding exists), and the loop-exit
//             compare result is control-only.  Minimum of 4 registers,
//             matching Table I.
//
// `make_fir` builds a parameterized FIR filter DFG (unscheduled; use the
// sched library) for the scaling experiments.

#include <string>
#include <vector>

#include "dfg/parse.hpp"

namespace lbist {

/// A reconstructed benchmark: scheduled DFG plus the paper's pinned module
/// assignment spec (syntax of binding/module_spec.hpp).
struct Benchmark {
  std::string name;
  ParsedDfg design;
  std::string module_spec;
};

[[nodiscard]] Benchmark make_ex1();
[[nodiscard]] Benchmark make_ex2();
[[nodiscard]] Benchmark make_tseng1();
[[nodiscard]] Benchmark make_tseng2();
[[nodiscard]] Benchmark make_paulin();

/// The diff-eq solver as it actually runs — a loop: x, u, y are allocated
/// registers carried across iterations (x1 -> x etc.), only the constants
/// (dx, a, 3) stay port-resident.  Exercises the loop-aware binder and
/// shows the self-adjacency cost the paper's straight-line model avoids.
[[nodiscard]] Benchmark make_paulin_loop();

/// The five rows of Table I, in paper order.
[[nodiscard]] std::vector<Benchmark> paper_benchmarks();

/// Parameterized FIR filter: `taps` multiplies plus a balanced adder tree.
/// Unscheduled; coefficients and sample window are port-resident inputs.
[[nodiscard]] Dfg make_fir(int taps);

/// Cascade of direct-form-I IIR biquad sections (5 mul, 3 add, 1 sub per
/// section, chained through the section output).  Coefficients and delayed
/// samples are port-resident.  Unscheduled.
[[nodiscard]] Dfg make_biquad_cascade(int sections);

/// Normalized lattice filter: per stage, f_i = f_{i-1} - k_i*b_{i-1} and
/// b_i = b_{i-1} - k_i*f_i — a deep, serial DFG (long critical path), the
/// opposite register-pressure profile from the FIR tree.  Unscheduled.
[[nodiscard]] Dfg make_lattice(int stages);

/// Complex multiply (ar+j*ai)*(br+j*bi): 4 mul, 1 sub, 1 add.  Unscheduled.
[[nodiscard]] Dfg make_complex_mult();

/// 2x2 matrix product C = A*B: 8 mul, 4 add — wide and shallow, a
/// module-sharing stress test.  Unscheduled.
[[nodiscard]] Dfg make_mat2x2();

}  // namespace lbist
