#include "rtl/datapath.hpp"

#include <sstream>

#include "support/dot.hpp"

namespace lbist {

int Datapath::mux_count() const {
  // One multiplexer *unit* per destination with two or more sources — the
  // counting convention of the paper's "# Mux" column.  (The area model
  // separately charges (k-1) 2:1 slices for a k-input mux.)
  int muxes = 0;
  auto cost = [](std::size_t k) { return k > 1 ? 1 : 0; };
  for (const auto& m : modules) {
    muxes += cost(m.left_sources.size());
    muxes += cost(m.right_sources.size());
  }
  for (const auto& r : registers) {
    muxes += cost(r.source_modules.size() + (r.external_source ? 1u : 0u));
  }
  return muxes;
}

std::vector<std::size_t> Datapath::self_adjacent_registers() const {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < registers.size(); ++r) {
    bool self_adjacent = false;
    for (const auto& m : modules) {
      const bool is_source = m.left_sources.count(r) > 0 ||
                             m.right_sources.count(r) > 0;
      const bool is_dest = m.dest_registers.count(r) > 0;
      if (is_source && is_dest) {
        self_adjacent = true;
        break;
      }
    }
    if (self_adjacent) out.push_back(r);
  }
  return out;
}

std::string Datapath::describe() const {
  std::ostringstream os;
  os << "datapath " << name << ": " << num_allocated << " register(s)";
  if (registers.size() > num_allocated) {
    os << " (+" << registers.size() - num_allocated
       << " dedicated input register(s))";
  }
  os << ", " << modules.size() << " module(s), " << mux_count()
     << " mux(es)\n";
  for (const auto& m : modules) {
    os << "  " << m.name << "  L<-{";
    bool first = true;
    for (std::size_t r : m.left_sources) {
      os << (first ? "" : ",") << registers[r].name;
      first = false;
    }
    os << "}  R<-{";
    first = true;
    for (std::size_t r : m.right_sources) {
      os << (first ? "" : ",") << registers[r].name;
      first = false;
    }
    os << "}  ->{";
    first = true;
    for (std::size_t r : m.dest_registers) {
      os << (first ? "" : ",") << registers[r].name;
      first = false;
    }
    os << "}";
    if (m.drives_control) os << " +ctrl";
    os << "\n";
  }
  return os.str();
}

std::string Datapath::to_dot() const {
  DotWriter dot(name, /*directed=*/true);
  for (const auto& r : registers) {
    dot.add_node(r.name,
                 {"shape=box", r.dedicated_input
                                   ? std::string("style=dashed")
                                   : std::string("style=solid")});
  }
  for (const auto& m : modules) {
    dot.add_node(m.name, {"shape=trapezium"});
    for (std::size_t r : m.left_sources) {
      dot.add_edge(registers[r].name, m.name, {"label=\"L\""});
    }
    for (std::size_t r : m.right_sources) {
      dot.add_edge(registers[r].name, m.name, {"label=\"R\""});
    }
    for (std::size_t r : m.dest_registers) {
      dot.add_edge(m.name, registers[r].name);
    }
  }
  return dot.str();
}

}  // namespace lbist
