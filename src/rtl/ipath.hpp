#pragma once
// I-path enumeration and BIST embeddings (paper Section II).
//
// A *simple I-path* transfers data unaltered between a register and a module
// port (at most one register, no modules in between — Definition 1).  In the
// mux-connectivity datapath model every register->port and module->register
// connection is a simple I-path, so enumeration reads straight off the
// Datapath connectivity sets.
//
// A *BIST embedding* of a module covers all its ports with I-paths: two
// distinct TPG registers driving the two input ports and one SA register
// receiving the output.  If the SA register equals one of the TPGs, that
// register must operate as test generator and analyzer simultaneously — a
// CBILBO (Wang/McCluskey).
//
// As an extension beyond the paper's simple I-paths, `transparent_ipaths`
// finds length-2 I-paths through modules with an identity mode (x+0, x*1,
// x&1...1, x|0...0): these widen the embedding space further (future-work
// direction noted in our DESIGN.md, exercised by the ablation bench).

#include <functional>
#include <optional>
#include <vector>

#include "rtl/datapath.hpp"

namespace lbist {

/// Which module port an I-path touches.
enum class IPathPort { Left, Right, Out };

/// A simple I-path between `reg` and `module`'s `port`.
struct SimpleIPath {
  std::size_t reg = 0;
  std::size_t module = 0;
  IPathPort port = IPathPort::Left;
};

/// All simple I-paths of the data path.
[[nodiscard]] std::vector<SimpleIPath> simple_ipaths(const Datapath& dp);

/// One way to test a module: TPGs on both input ports, SA on the output.
///
/// A TPG normally drives its port over a *simple* I-path (direct mux
/// connection).  With transparency enabled, a TPG may instead reach the
/// port through another module held in an identity mode plus the register
/// it writes (reg -> transparent module -> reg -> port); `left_through` /
/// `right_through` record that intermediate module, which must not be
/// under test in the same session.
struct BistEmbedding {
  std::size_t module = 0;
  std::size_t tpg_left = 0;
  std::size_t tpg_right = 0;
  /// SA register; nullopt when the module output is observed at a primary
  /// output/control pin instead of a register (no register cost).
  std::optional<std::size_t> sa;
  /// Module held transparent on the left/right TPG path, if any.
  std::optional<std::size_t> left_through;
  std::optional<std::size_t> right_through;
  /// Intermediate register of the transparent path (the one the identity
  /// module writes and the port reads); occupied for the whole session.
  std::optional<std::size_t> left_via;
  std::optional<std::size_t> right_via;

  /// True if the SA register doubles as one of the TPGs (CBILBO required).
  [[nodiscard]] bool needs_cbilbo() const {
    return sa.has_value() && (*sa == tpg_left || *sa == tpg_right);
  }
  [[nodiscard]] bool uses_transparency() const {
    return left_through.has_value() || right_through.has_value();
  }
};

/// Every BIST embedding of module `m` over simple I-paths only
/// (tpg_left != tpg_right always).  Empty result means the module cannot
/// be pseudo-randomly tested with the present connectivity (e.g. a single
/// register feeds both ports).
[[nodiscard]] std::vector<BistEmbedding> enumerate_embeddings(
    const Datapath& dp, std::size_t m);

/// Embeddings over simple I-paths plus single-hop transparent I-paths
/// (extension; see DESIGN.md).  The simple embeddings come first, so
/// cost-equal solutions prefer them.
[[nodiscard]] std::vector<BistEmbedding> enumerate_embeddings_extended(
    const Datapath& dp, std::size_t m);

/// Streaming visitor over the embeddings of module `m`, in exactly the
/// order `enumerate_embeddings` would list them, without materializing the
/// list (the count is |left| x |right| x |dests| — quadratic-to-cubic in
/// register fan-in, gigabytes at 10k-op scale).  `fn` returns false to
/// stop early.  Returns the number of embeddings visited.
std::size_t for_each_embedding(
    const Datapath& dp, std::size_t m,
    const std::function<bool(const BistEmbedding&)>& fn);

/// Streaming form of `enumerate_embeddings_extended` (same order).
std::size_t for_each_embedding_extended(
    const Datapath& dp, std::size_t m,
    const std::function<bool(const BistEmbedding&)>& fn);

/// An I-path through a module in an identity mode: data flows
/// `from_reg -> module(port) -> to_reg` unaltered when the other port is
/// held at the identity constant.
struct TransparentIPath {
  std::size_t from_reg = 0;
  std::size_t through_module = 0;
  IPathPort data_port = IPathPort::Left;
  std::size_t to_reg = 0;
};

/// True if the module kind set has an identity constant making one operand
/// transparent (add/sub/or/xor: 0, mul/div: 1, and: all-ones).
[[nodiscard]] bool has_identity_mode(const ModuleProto& proto);

/// Enumerates transparent (length-2) I-paths.
[[nodiscard]] std::vector<TransparentIPath> transparent_ipaths(
    const Datapath& dp);

}  // namespace lbist
