#pragma once
// Self-checking Verilog testbench emission.
//
// Pairs with rtl/verilog.hpp: given the generated control program, an input
// vector and the cycle-level simulation result, emits a testbench that
// drives the data path's control ports step by step and compares the
// primary-output registers against the expected values at the end.  The
// C++ simulator (rtl/simulate.hpp) is the reference; the testbench lets a
// user replay the same run under any Verilog simulator.

#include <string>

#include "rtl/controller.hpp"
#include "rtl/simulate.hpp"

namespace lbist {

/// Emits a testbench module named `<datapath>_tb` for the module produced
/// by emit_verilog(dp, width).  `inputs` must be the vector used to obtain
/// `sim` from simulate_datapath.
[[nodiscard]] std::string emit_testbench(
    const Dfg& dfg, const Datapath& dp, const Controller& ctl,
    const IdMap<VarId, std::uint32_t>& inputs, const SimResult& sim,
    int width);

}  // namespace lbist
