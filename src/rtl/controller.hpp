#pragma once
// Controller generation: turns a bound, scheduled design into the per-step
// control words (register enables, mux selects, ALU opcodes) that drive the
// structural data path.  The paper leaves the controller out of scope; we
// generate it so the allocation results can be *executed* — the simulator
// (rtl/simulate.hpp) runs these words against the netlist and checks the
// data path computes exactly what the DFG specifies.

#include <vector>

#include "binding/module_binding.hpp"
#include "binding/register_binding.hpp"
#include "dfg/dfg.hpp"
#include "dfg/lifetime.hpp"
#include "dfg/schedule.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

/// Control of one register for one step.
struct RegControl {
  bool enable = false;
  /// Index into the register's source list (sorted source modules, then
  /// the external input port); -1 when disabled.
  int select = -1;
  /// The variable written this step (for tracing); invalid when disabled.
  VarId var;
};

/// Control of one module for one step.
struct ModuleControl {
  bool active = false;
  /// Index into the sorted left/right source-register lists; -1 if idle.
  int left_select = -1;
  int right_select = -1;
  OpKind op = OpKind::Add;
  /// The DFG operation executing (for tracing); invalid when idle.
  OpId instance;
};

/// One step's worth of control.
struct ControlWord {
  std::vector<RegControl> regs;
  std::vector<ModuleControl> modules;
};

/// The control program: word 0 performs the initial input loads (values
/// live before step 1); word s (1-based) drives control step s, with its
/// register writes taking effect at the end of the step.
class Controller {
 public:
  static Controller generate(const Dfg& dfg, const Schedule& sched,
                             const RegisterBinding& rb, const Datapath& dp,
                             const IdMap<VarId, LiveInterval>& lifetimes);

  /// Number of control steps (words run 0..num_steps inclusive).
  [[nodiscard]] int num_steps() const {
    return static_cast<int>(words_.size()) - 1;
  }
  [[nodiscard]] const ControlWord& word(int s) const {
    return words_[static_cast<std::size_t>(s)];
  }

  /// Source list of register r as the controller sees it: sorted source
  /// module indices, then (if present) the external input port.
  [[nodiscard]] static std::vector<int> register_sources(const Datapath& dp,
                                                         std::size_t r);

 private:
  std::vector<ControlWord> words_;
};

}  // namespace lbist
