#include "rtl/controller.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace lbist {

namespace {

/// dp-module index executing `op` (dp.modules may be a subsequence of the
/// binder's modules when a spec over-provisions).
std::size_t dp_module_of(const Datapath& dp, OpId op) {
  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    for (OpId inst : dp.modules[m].instances) {
      if (inst == op) return m;
    }
  }
  throw Error("operation not mapped to any datapath module");
}

int index_in(const std::set<std::size_t>& sorted_set, std::size_t value) {
  int i = 0;
  for (std::size_t member : sorted_set) {
    if (member == value) return i;
    ++i;
  }
  throw Error("source register not connected to the expected port");
}

}  // namespace

std::vector<int> Controller::register_sources(const Datapath& dp,
                                              std::size_t r) {
  std::vector<int> sources;
  for (std::size_t m : dp.registers[r].source_modules) {
    sources.push_back(static_cast<int>(m));
  }
  if (dp.registers[r].external_source) sources.push_back(-1);  // external
  return sources;
}

Controller Controller::generate(const Dfg& dfg, const Schedule& sched,
                                const RegisterBinding& rb, const Datapath& dp,
                                const IdMap<VarId, LiveInterval>& lifetimes) {
  Controller ctl;
  ctl.words_.assign(static_cast<std::size_t>(sched.num_steps()) + 1,
                    ControlWord{});
  for (auto& w : ctl.words_) {
    w.regs.assign(dp.registers.size(), RegControl{});
    w.modules.assign(dp.modules.size(), ModuleControl{});
  }

  auto reg_select_of = [&](std::size_t r, int source_module) {
    auto sources = register_sources(dp, r);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (sources[i] == source_module) return static_cast<int>(i);
    }
    throw Error("register " + dp.registers[r].name +
                " has no mux input for the requested source");
  };

  auto schedule_write = [&](int step, std::size_t r, int source_module,
                            VarId var) {
    auto& rc = ctl.words_[static_cast<std::size_t>(step)].regs[r];
    LBIST_CHECK(!rc.enable, "register " + dp.registers[r].name +
                                " written twice in step " +
                                std::to_string(step));
    rc.enable = true;
    rc.select = reg_select_of(r, source_module);
    rc.var = var;
  };

  // Input loads (external source = -1) at the end of the variable's birth
  // step; dedicated input registers load everything up front.
  for (const auto& v : dfg.vars()) {
    if (!v.is_input()) continue;
    if (v.port_resident) {
      for (std::size_t r = 0; r < dp.registers.size(); ++r) {
        if (dp.registers[r].dedicated_input &&
            dp.registers[r].vars.size() == 1 &&
            dp.registers[r].vars[0] == v.id) {
          schedule_write(0, r, -1, v.id);
        }
      }
    } else {
      const RegId reg = rb.reg_of[v.id];
      LBIST_CHECK(reg.valid(), "input variable unbound: " + v.name);
      schedule_write(lifetimes[v.id].birth, reg.index(), -1, v.id);
    }
  }

  // Operation execution and result writes.
  for (const auto& op : dfg.ops()) {
    const int step = sched.step(op.id);
    const std::size_t m = dp_module_of(dp, op.id);
    const DpModule& mod = dp.modules[m];

    auto& mc = ctl.words_[static_cast<std::size_t>(step)].modules[m];
    LBIST_CHECK(!mc.active, "module " + mod.name + " used twice in step " +
                                std::to_string(step));
    mc.active = true;
    mc.op = op.kind;
    mc.instance = op.id;

    const auto& [lroute, rroute] = dp.routes[op.id];
    const OperandRoute& to_left = lroute.to_left ? lroute : rroute;
    const OperandRoute& to_right = lroute.to_left ? rroute : lroute;
    mc.left_select = index_in(mod.left_sources, to_left.reg);
    mc.right_select = index_in(mod.right_sources, to_right.reg);

    const Variable& result = dfg.var(op.result);
    if (!result.control_only) {
      const RegId dest = rb.reg_of[op.result];
      LBIST_CHECK(dest.valid(), "result variable unbound: " + result.name);
      schedule_write(step, dest.index(), static_cast<int>(m), op.result);
    }
  }
  return ctl;
}

}  // namespace lbist
