#pragma once
// Structural RTL data-path model: registers, functional modules and the
// multiplexed connections between them — the output of allocation and the
// input to BIST resource selection.
//
// Connectivity is stored at the granularity BIST analysis needs: for each
// module, the set of registers that can drive its left/right input port
// (through an input multiplexer) and the set of registers its output can be
// written to.  A connection in these sets is exactly a *simple I-path* in
// the sense of Abadir/Breuer (Definition 1 of the paper): data moves
// register -> port or port -> register unaltered, activated by mux controls.
//
// Register index space: [0, num_allocated) are the registers produced by
// register binding; [num_allocated, registers.size()) are dedicated input
// registers holding port-resident primary inputs (present in the netlist
// and usable as test resources, but not counted in the paper's "# Reg").

#include <set>
#include <string>
#include <vector>

#include "binding/module_spec.hpp"
#include "support/ids.hpp"

namespace lbist {

/// A physical register.
struct DpRegister {
  std::string name;
  /// Variables stored over time (one per control step at most).
  std::vector<VarId> vars;
  /// True for a dedicated (uncounted) input register.
  bool dedicated_input = false;
  /// Modules whose outputs are muxed into this register.
  std::set<std::size_t> source_modules;
  /// True if a primary input is loaded into this register from outside.
  bool external_source = false;
  /// True if a primary output is read from this register.
  bool drives_output = false;
};

/// A functional module with its input-port connectivity.
struct DpModule {
  std::string name;
  ModuleProto proto;
  std::vector<OpId> instances;
  /// Registers connected (through the port mux) to the left input port.
  std::set<std::size_t> left_sources;
  /// Registers connected to the right input port.
  std::set<std::size_t> right_sources;
  /// Registers the output port writes to.
  std::set<std::size_t> dest_registers;
  /// True if some instance's result is consumed by the controller only.
  bool drives_control = false;
};

/// How each operand of each operation is routed (for reporting/emission).
struct OperandRoute {
  std::size_t reg = 0;  ///< source register index
  bool to_left = true;  ///< which module port receives it
};

/// The complete data path.
struct Datapath {
  std::string name;
  std::vector<DpRegister> registers;
  std::vector<DpModule> modules;
  std::size_t num_allocated = 0;  ///< registers counted in "# Reg"
  /// Per operation: routing of (lhs, rhs) to module ports.
  IdMap<OpId, std::pair<OperandRoute, OperandRoute>> routes;

  /// Total number of 2:1-equivalent multiplexers: every destination with k
  /// sources costs k-1 (module input ports and register inputs alike).
  [[nodiscard]] int mux_count() const;

  /// Registers that are simultaneously a source and a destination of the
  /// same module (self-adjacent registers, the quantity RALLOC minimizes).
  [[nodiscard]] std::vector<std::size_t> self_adjacent_registers() const;

  /// Human-readable structural summary (used for the Fig. 5 reproduction).
  [[nodiscard]] std::string describe() const;

  /// Graphviz rendering.
  [[nodiscard]] std::string to_dot() const;
};

}  // namespace lbist
