#pragma once
// Structural Verilog emitter.  Renders the allocated data path as a
// synthesizable RTL skeleton: one always-block register per DpRegister (with
// an input mux over its sources), one input mux per module port, and one
// combinational functional unit per module.  Control (mux selects, register
// enables) is brought out as ports — the controller is outside the paper's
// scope, exactly as in the original flow.

#include <string>

#include "rtl/datapath.hpp"

namespace lbist {

/// Emits a single Verilog module named after the datapath.
[[nodiscard]] std::string emit_verilog(const Datapath& dp, int bit_width = 8);

}  // namespace lbist
