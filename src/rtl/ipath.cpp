#include "rtl/ipath.hpp"

namespace lbist {

std::vector<SimpleIPath> simple_ipaths(const Datapath& dp) {
  std::vector<SimpleIPath> out;
  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    const DpModule& mod = dp.modules[m];
    for (std::size_t r : mod.left_sources) {
      out.push_back(SimpleIPath{r, m, IPathPort::Left});
    }
    for (std::size_t r : mod.right_sources) {
      out.push_back(SimpleIPath{r, m, IPathPort::Right});
    }
    for (std::size_t r : mod.dest_registers) {
      out.push_back(SimpleIPath{r, m, IPathPort::Out});
    }
  }
  return out;
}

namespace {

/// A TPG option for one port: the generator register, and the module held
/// transparent on the way (nullopt for a direct connection).
struct TpgOption {
  std::size_t reg = 0;
  std::optional<std::size_t> through;
  std::optional<std::size_t> via;
};

/// Streams the cross product of TPG options (x dest registers) to `fn`;
/// stops when `fn` returns false.  Returns the number of embeddings
/// visited.  The materialized enumerators below collect from this visitor,
/// so streaming and materialized callers see the exact same order.
std::size_t visit_embeddings_from_options(
    const Datapath& dp, std::size_t m, const std::vector<TpgOption>& left,
    const std::vector<TpgOption>& right,
    const std::function<bool(const BistEmbedding&)>& fn) {
  const DpModule& mod = dp.modules[m];
  std::size_t visited = 0;
  for (const TpgOption& tl : left) {
    for (const TpgOption& tr : right) {
      if (tl.reg == tr.reg) continue;  // need two independent generators
      // A module cannot be a transparent wire for its own test.
      if ((tl.through.has_value() && *tl.through == m) ||
          (tr.through.has_value() && *tr.through == m)) {
        continue;
      }
      // A via register is overwritten by the pattern stream every cycle:
      // it cannot simultaneously be the other port's generator, and two
      // distinct streams cannot share one via register.
      if (tl.via.has_value() && *tl.via == tr.reg) continue;
      if (tr.via.has_value() && *tr.via == tl.reg) continue;
      if (tl.via.has_value() && tr.via.has_value() && *tl.via == *tr.via) {
        continue;
      }
      BistEmbedding e;
      e.module = m;
      e.tpg_left = tl.reg;
      e.tpg_right = tr.reg;
      e.left_through = tl.through;
      e.right_through = tr.through;
      e.left_via = tl.via;
      e.right_via = tr.via;
      if (mod.dest_registers.empty()) {
        e.sa = std::nullopt;  // observed at a primary output/control pin
        ++visited;
        if (!fn(e)) return visited;
      } else {
        for (std::size_t sa : mod.dest_registers) {
          // A via register cannot compact while shuttling patterns.
          if ((tl.via.has_value() && *tl.via == sa) ||
              (tr.via.has_value() && *tr.via == sa)) {
            continue;
          }
          e.sa = sa;
          ++visited;
          if (!fn(e)) return visited;
        }
      }
    }
  }
  return visited;
}


std::vector<TpgOption> direct_options(const std::set<std::size_t>& sources) {
  std::vector<TpgOption> out;
  for (std::size_t r : sources) {
    out.push_back(TpgOption{r, std::nullopt, std::nullopt});
  }
  return out;
}

}  // namespace

std::vector<BistEmbedding> enumerate_embeddings(const Datapath& dp,
                                                std::size_t m) {
  std::vector<BistEmbedding> out;
  for_each_embedding(dp, m, [&](const BistEmbedding& e) {
    out.push_back(e);
    return true;
  });
  return out;
}

std::vector<BistEmbedding> enumerate_embeddings_extended(const Datapath& dp,
                                                         std::size_t m) {
  std::vector<BistEmbedding> out;
  for_each_embedding_extended(dp, m, [&](const BistEmbedding& e) {
    out.push_back(e);
    return true;
  });
  return out;
}

std::size_t for_each_embedding(
    const Datapath& dp, std::size_t m,
    const std::function<bool(const BistEmbedding&)>& fn) {
  const DpModule& mod = dp.modules[m];
  return visit_embeddings_from_options(dp, m,
                                       direct_options(mod.left_sources),
                                       direct_options(mod.right_sources), fn);
}

std::size_t for_each_embedding_extended(
    const Datapath& dp, std::size_t m,
    const std::function<bool(const BistEmbedding&)>& fn) {
  // The TPG option lists are O(port fan-in + transparent paths) — cheap to
  // build even at scale; only their cross product must not materialize.
  const DpModule& mod = dp.modules[m];
  std::vector<TpgOption> left = direct_options(mod.left_sources);
  std::vector<TpgOption> right = direct_options(mod.right_sources);
  // One-hop transparent extensions: from_reg -> t(identity) -> to_reg,
  // where to_reg already feeds the port.  Skip options whose generator is
  // already a direct source (no benefit, larger search).
  const auto paths = transparent_ipaths(dp);
  auto extend = [&](const std::set<std::size_t>& sources,
                    std::vector<TpgOption>& options) {
    for (const TransparentIPath& p : paths) {
      if (p.through_module == m) continue;
      if (sources.count(p.to_reg) == 0) continue;
      if (sources.count(p.from_reg) > 0) continue;
      options.push_back(TpgOption{p.from_reg, p.through_module, p.to_reg});
    }
  };
  extend(mod.left_sources, left);
  extend(mod.right_sources, right);
  return visit_embeddings_from_options(dp, m, left, right, fn);
}

bool has_identity_mode(const ModuleProto& proto) {
  for (OpKind k : proto.supports) {
    switch (k) {
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div:
      case OpKind::And:
      case OpKind::Or:
      case OpKind::Xor:
        return true;  // 0, 1, or all-ones identity exists
      case OpKind::Lt:
      case OpKind::Gt:
        break;  // comparison outputs are 1-bit; no transparency
    }
  }
  return false;
}

std::vector<TransparentIPath> transparent_ipaths(const Datapath& dp) {
  std::vector<TransparentIPath> out;
  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    const DpModule& mod = dp.modules[m];
    if (!has_identity_mode(mod.proto)) continue;
    for (std::size_t to : mod.dest_registers) {
      for (std::size_t from : mod.left_sources) {
        out.push_back(TransparentIPath{from, m, IPathPort::Left, to});
      }
      for (std::size_t from : mod.right_sources) {
        out.push_back(TransparentIPath{from, m, IPathPort::Right, to});
      }
    }
  }
  return out;
}

}  // namespace lbist
