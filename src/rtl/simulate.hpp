#pragma once
// Cycle-level functional simulation of an allocated data path.
//
// This closes the loop on the whole allocation stack: the simulator clocks
// the generated control words against the structural netlist and checks
// that every variable receives exactly the value the behavioural DFG
// specifies.  A binding/interconnect/controller bug — two live variables
// sharing a register, a mux select routed to the wrong port, an operand
// swapped on a non-commutative operator — shows up as a value mismatch.

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/controller.hpp"

namespace lbist {

/// Evaluates one operator on `width`-bit unsigned words.  Division by zero
/// yields zero (the hardware convention used throughout the library).
[[nodiscard]] std::uint32_t eval_op(OpKind kind, std::uint32_t a,
                                    std::uint32_t b, int width);

/// Reference semantics: evaluates the DFG directly on an input assignment.
/// `inputs[v]` must be set for every primary input v.
[[nodiscard]] IdMap<VarId, std::uint32_t> evaluate_dfg(
    const Dfg& dfg, const IdMap<VarId, std::uint32_t>& inputs, int width);

/// Result of a data-path simulation run.
struct SimResult {
  /// Value observed for each variable at the moment it was written into its
  /// register (primary inputs included).  Control-only results are recorded
  /// from the module output.
  IdMap<VarId, std::uint32_t> observed;
  /// Variables whose observed value differs from the DFG reference.
  std::vector<VarId> mismatches;
  /// Register contents after each control word: reg_trace[s][r] is
  /// register r's value at the end of word s (s = 0..num_steps).  Feeds
  /// the VCD writer (rtl/vcd.hpp).
  std::vector<std::vector<std::uint32_t>> reg_trace;

  [[nodiscard]] bool ok() const { return mismatches.empty(); }
};

/// Clocks the controller against the data path with the given inputs and
/// compares every write against the reference evaluation.
[[nodiscard]] SimResult simulate_datapath(
    const Dfg& dfg, const Datapath& dp, const Controller& ctl,
    const IdMap<VarId, std::uint32_t>& inputs, int width);

/// Runs the behaviour `iterations` times, feeding each loop-carried output
/// (Dfg::loop_ties()) back into its init input — the loop the diff-eq
/// solver actually executes.  Returns the per-iteration results; each
/// iteration is checked against the reference semantics of its own inputs.
[[nodiscard]] std::vector<SimResult> simulate_datapath_loop(
    const Dfg& dfg, const Datapath& dp, const Controller& ctl,
    const IdMap<VarId, std::uint32_t>& initial_inputs, int width,
    int iterations);

}  // namespace lbist
