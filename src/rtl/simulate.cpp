#include "rtl/simulate.hpp"

#include "support/check.hpp"

namespace lbist {

namespace {
std::uint32_t width_mask(int width) {
  return width == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << width) - 1);
}
}  // namespace

std::uint32_t eval_op(OpKind kind, std::uint32_t a, std::uint32_t b,
                      int width) {
  const std::uint32_t mask = width_mask(width);
  a &= mask;
  b &= mask;
  switch (kind) {
    case OpKind::Add: return (a + b) & mask;
    case OpKind::Sub: return (a - b) & mask;
    case OpKind::Mul: return (a * b) & mask;
    case OpKind::Div: return b == 0 ? 0 : (a / b) & mask;
    case OpKind::And: return a & b;
    case OpKind::Or: return a | b;
    case OpKind::Xor: return a ^ b;
    case OpKind::Lt: return a < b ? 1 : 0;
    case OpKind::Gt: return a > b ? 1 : 0;
  }
  return 0;
}

IdMap<VarId, std::uint32_t> evaluate_dfg(
    const Dfg& dfg, const IdMap<VarId, std::uint32_t>& inputs, int width) {
  IdMap<VarId, std::uint32_t> values(dfg.num_vars(), 0);
  for (const auto& v : dfg.vars()) {
    if (v.is_input()) values[v.id] = inputs[v.id] & width_mask(width);
  }
  // Operations were appended in dependency order.
  for (const auto& op : dfg.ops()) {
    values[op.result] =
        eval_op(op.kind, values[op.lhs], values[op.rhs], width);
  }
  return values;
}

SimResult simulate_datapath(const Dfg& dfg, const Datapath& dp,
                            const Controller& ctl,
                            const IdMap<VarId, std::uint32_t>& inputs,
                            int width) {
  const auto reference = evaluate_dfg(dfg, inputs, width);

  SimResult result;
  result.observed.assign(dfg.num_vars(), 0);

  std::vector<std::uint32_t> reg_value(dp.registers.size(), 0);

  auto external_value_of = [&](VarId var) {
    LBIST_CHECK(dfg.var(var).is_input(),
                "external load of a non-input variable");
    return inputs[var] & width_mask(width);
  };

  for (int step = 0; step <= ctl.num_steps(); ++step) {
    const ControlWord& word = ctl.word(step);

    // Combinational phase: modules read current register values.
    std::vector<std::uint32_t> module_out(dp.modules.size(), 0);
    for (std::size_t m = 0; m < dp.modules.size(); ++m) {
      const ModuleControl& mc = word.modules[m];
      if (!mc.active) continue;
      const DpModule& mod = dp.modules[m];
      auto source_at = [&](const std::set<std::size_t>& sources, int index) {
        int i = 0;
        for (std::size_t r : sources) {
          if (i == index) return reg_value[r];
          ++i;
        }
        throw Error("mux select out of range on " + mod.name);
      };
      const std::uint32_t a = source_at(mod.left_sources, mc.left_select);
      const std::uint32_t b = source_at(mod.right_sources, mc.right_select);
      module_out[m] = eval_op(mc.op, a, b, width);

      // Control-only results never reach a register; record them here.
      const Operation& op = dfg.op(mc.instance);
      if (dfg.var(op.result).control_only) {
        result.observed[op.result] = module_out[m];
      }
    }

    // Sequential phase: all enabled registers latch simultaneously.
    std::vector<std::uint32_t> next = reg_value;
    for (std::size_t r = 0; r < dp.registers.size(); ++r) {
      const RegControl& rc = word.regs[r];
      if (!rc.enable) continue;
      const auto sources = Controller::register_sources(dp, r);
      LBIST_CHECK(rc.select >= 0 &&
                      rc.select < static_cast<int>(sources.size()),
                  "register mux select out of range");
      const int src = sources[static_cast<std::size_t>(rc.select)];
      const std::uint32_t value =
          src < 0 ? external_value_of(rc.var)
                  : module_out[static_cast<std::size_t>(src)];
      next[r] = value;
      result.observed[rc.var] = value;
    }
    reg_value = std::move(next);
    result.reg_trace.push_back(reg_value);
  }

  for (const auto& v : dfg.vars()) {
    if (result.observed[v.id] != reference[v.id]) {
      result.mismatches.push_back(v.id);
    }
  }
  return result;
}

std::vector<SimResult> simulate_datapath_loop(
    const Dfg& dfg, const Datapath& dp, const Controller& ctl,
    const IdMap<VarId, std::uint32_t>& initial_inputs, int width,
    int iterations) {
  LBIST_CHECK(iterations >= 1, "need at least one iteration");
  std::vector<SimResult> results;
  IdMap<VarId, std::uint32_t> inputs = initial_inputs;
  for (int it = 0; it < iterations; ++it) {
    results.push_back(simulate_datapath(dfg, dp, ctl, inputs, width));
    const SimResult& r = results.back();
    for (const auto& [carried, init] : dfg.loop_ties()) {
      inputs[init] = r.observed[carried];
    }
  }
  return results;
}

}  // namespace lbist
