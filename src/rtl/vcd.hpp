#pragma once
// VCD (value change dump) writer: turns a data-path simulation trace into
// a waveform file any viewer (GTKWave & co.) can open.  One signal per
// register; values change at the end of each control word, one timestep
// per clock.

#include <string>

#include "rtl/datapath.hpp"
#include "rtl/simulate.hpp"

namespace lbist {

/// Renders the simulation's register trace as VCD.  `width` must match the
/// simulation's bit width.
[[nodiscard]] std::string emit_vcd(const Datapath& dp, const SimResult& sim,
                                   int width);

}  // namespace lbist
