#pragma once
// Functional-mode controller emission: the FSM companion to
// rtl/verilog.hpp's data path.  A step counter walks the control words and
// drives every enable, mux select and ALU opcode; `start` launches one
// execution of the behaviour, `done` pulses when the last step retires.
// Together with the data path module this completes a synthesizable RTL
// design (the "RTL designs" of the paper's title).

#include <string>

#include "rtl/controller.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

/// Emits module `<name>_ctrl` matching emit_verilog(dp, width)'s ports.
[[nodiscard]] std::string emit_controller_verilog(const Datapath& dp,
                                                  const Controller& ctl);

}  // namespace lbist
