#pragma once
// Replayable fuzz corpus files.
//
// A corpus file is an ordinary textual DFG (dfg/parse.hpp) with a metadata
// header carried in `#!` directive lines — every corpus file is therefore
// also parseable by `parse_dfg` (directives read as comments), and every
// tool that understands the DFG format can open a reproducer directly:
//
//   #! lowbist-fuzz corpus v1
//   #! seed 1234
//   #! width 4
//   #! oracle simulation:bist
//   #! note minimized from 18 ops
//   #! build lowbist 0.5.0 (a1b2c3d) Release
//   dfg random_s1234
//   input in0 in1
//   op add0 + in0 in1 -> t0 @1
//   output t0
//
// `dump_corpus` emits a canonical form (fixed directive order, canonical
// `print_dfg` body) so files round-trip exactly: parse → dump → parse is
// the identity on the dumped text, a property the fuzz tests enforce.

#include <cstdint>
#include <string>
#include <string_view>

#include "dfg/parse.hpp"

namespace lbist {

/// One corpus entry: a scheduled design plus fuzz provenance.
struct CorpusEntry {
  /// Generator seed that produced the design; 0 for handwritten entries.
  std::uint64_t seed = 0;
  /// Datapath bit width the oracles ran at.
  int width = 4;
  /// Failing oracle name (e.g. "simulation:trad"), or "none" for corpus
  /// seeds that are expected to replay clean.
  std::string oracle = "none";
  /// Free-text provenance ("minimized from 18 ops", triage notes, ...).
  std::string note;
  /// Identity of the build that wrote the reproducer (build_info_line()):
  /// a failure that stops reproducing can be traced to the writing binary.
  /// Empty for handwritten entries.
  std::string build;
  /// The design itself; the schedule is mandatory (fuzzing replays need
  /// the exact control steps).
  ParsedDfg design{Dfg(""), std::nullopt};
};

/// Parses a corpus file.  Throws lbist::Error on malformed directives, a
/// missing `lowbist-fuzz corpus` header, or an unscheduled DFG body.
[[nodiscard]] CorpusEntry parse_corpus(std::string_view text);

/// Serializes to the canonical corpus form.
[[nodiscard]] std::string dump_corpus(const CorpusEntry& entry);

}  // namespace lbist
