#include "fuzz/minimize.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace lbist {
namespace {

struct Candidate {
  Dfg dfg;
  Schedule sched;
};

/// Rebuilds the design keeping only the ops with keep[i] set, repairing
/// dangling references as documented in minimize.hpp.  Returns nullopt when
/// the repaired design is not a valid scheduled DFG.
std::optional<Candidate> rebuild(const Dfg& src, const Schedule& sched,
                                 const std::vector<bool>& keep) {
  try {
    Dfg out(src.name());
    IdMap<VarId, VarId> var_map(src.num_vars(), VarId{});

    // Which variables the kept ops actually read.
    std::vector<bool> needed(src.num_vars(), false);
    for (const auto& op : src.ops()) {
      if (!keep[op.id.index()]) continue;
      needed[op.lhs.index()] = true;
      needed[op.rhs.index()] = true;
    }

    // Original inputs first (id order), then substitute inputs standing in
    // for removed results, so rebuilds are deterministic.
    for (const auto& v : src.vars()) {
      if (v.is_input() && needed[v.id.index()]) {
        var_map[v.id] = out.add_input(v.name, v.port_resident);
      }
    }
    for (const auto& v : src.vars()) {
      if (v.is_input() || !needed[v.id.index()]) continue;
      if (!keep[v.def.index()]) {
        var_map[v.id] = out.add_input(v.name);
      }
    }

    IdMap<OpId, int> steps;
    std::vector<int> used_steps;
    for (const auto& op : src.ops()) {
      if (!keep[op.id.index()]) continue;
      const auto& result = src.var(op.result);
      var_map[op.result] = out.add_op(op.kind, var_map[op.lhs],
                                      var_map[op.rhs], result.name, op.name);
      steps.push_back(sched.step(op.id));
      used_steps.push_back(sched.step(op.id));
    }

    // Flags and sinks: keep output/control marks; anything left without a
    // reader must become an output for the DFG to validate.
    for (const auto& op : src.ops()) {
      if (!keep[op.id.index()]) continue;
      const auto& result = src.var(op.result);
      const VarId nv = var_map[op.result];
      if (result.control_only) {
        out.mark_control_only(nv);
      } else if (result.is_output || out.var(nv).uses.empty()) {
        out.mark_output(nv);
      }
    }

    // Loop ties survive only when both endpoints survived in their
    // original roles (shrinking never adds overlap, so surviving ties stay
    // valid for the loop binder).
    for (const auto& [carried, init] : src.loop_ties()) {
      const VarId c = var_map[carried];
      const VarId i = var_map[init];
      if (!c.valid() || !i.valid()) continue;
      if (out.var(c).is_input() || !out.var(i).is_input()) continue;
      out.tie_loop(c, i);
    }

    out.validate();

    // Compact the schedule: squeeze out empty steps, keep relative order.
    std::sort(used_steps.begin(), used_steps.end());
    used_steps.erase(std::unique(used_steps.begin(), used_steps.end()),
                     used_steps.end());
    std::map<int, int> rank;
    for (std::size_t i = 0; i < used_steps.size(); ++i) {
      rank[used_steps[i]] = static_cast<int>(i) + 1;
    }
    for (auto& s : steps) s = rank[s];

    Schedule out_sched(out, std::move(steps));
    return Candidate{std::move(out), std::move(out_sched)};
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace

MinimizeResult minimize_dfg(const Dfg& dfg, const Schedule& sched,
                            const StillFails& still_fails) {
  int calls = 0;
  auto fails = [&](const Dfg& d, const Schedule& s) {
    ++calls;
    try {
      return still_fails(d, s);
    } catch (...) {
      return false;
    }
  };
  LBIST_CHECK(fails(dfg, sched),
              "minimize_dfg: the input design does not fail the predicate");

  // Canonicalize through rebuild() so every later candidate differs from
  // `current` only by the removed ops.
  std::vector<bool> all(dfg.num_ops(), true);
  std::optional<Candidate> current = rebuild(dfg, sched, all);
  LBIST_CHECK(current.has_value(),
              "minimize_dfg: input design does not rebuild");
  if (!fails(current->dfg, current->sched)) {
    // Canonicalization itself changed the verdict (can happen when the
    // failure depends on unused inputs); minimize the original as-is.
    current = Candidate{dfg, sched};
  }

  const std::size_t initial_ops = current->dfg.num_ops();
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t chunk = std::max<std::size_t>(
             1, current->dfg.num_ops() / 2);
         chunk >= 1; chunk /= 2) {
      std::size_t start = 0;
      while (start < current->dfg.num_ops() && current->dfg.num_ops() > 1) {
        const std::size_t n = current->dfg.num_ops();
        std::vector<bool> keep(n, true);
        for (std::size_t i = start; i < std::min(start + chunk, n); ++i) {
          keep[i] = false;
        }
        auto cand = rebuild(current->dfg, current->sched, keep);
        if (cand.has_value() && cand->dfg.num_ops() < n &&
            fails(cand->dfg, cand->sched)) {
          current = std::move(cand);
          changed = true;
          // Stay at the same position: the ops shifted down into it.
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }

  const std::size_t final_ops = current->dfg.num_ops();
  return MinimizeResult{std::move(current->dfg), std::move(current->sched),
                        initial_ops, final_ops, calls};
}

}  // namespace lbist
