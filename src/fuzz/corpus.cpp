#include "fuzz/corpus.hpp"

#include <sstream>

#include "support/check.hpp"

namespace lbist {

namespace {

constexpr std::string_view kMagic = "lowbist-fuzz corpus v1";

/// Splits off the first whitespace-delimited word of `s`.
std::pair<std::string, std::string> split_word(const std::string& s) {
  std::istringstream in(s);
  std::string head;
  in >> head;
  std::string rest;
  std::getline(in, rest);
  if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
  return {head, rest};
}

}  // namespace

CorpusEntry parse_corpus(std::string_view text) {
  CorpusEntry entry;
  bool saw_magic = false;
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.rfind("#!", 0) != 0) continue;
    std::string body = line.substr(2);
    if (!body.empty() && body.front() == ' ') body.erase(0, 1);
    if (body == kMagic) {
      saw_magic = true;
      continue;
    }
    auto [key, value] = split_word(body);
    const std::string where = " (corpus line " + std::to_string(lineno) + ")";
    if (key == "seed") {
      try {
        entry.seed = std::stoull(value);
      } catch (const std::exception&) {
        throw Error("bad corpus seed: " + value + where);
      }
    } else if (key == "width") {
      try {
        entry.width = std::stoi(value);
      } catch (const std::exception&) {
        throw Error("bad corpus width: " + value + where);
      }
      LBIST_CHECK(entry.width >= 2 && entry.width <= 32,
                  "corpus width out of range" + where);
    } else if (key == "oracle") {
      LBIST_CHECK(!value.empty(), "corpus oracle directive is empty" + where);
      entry.oracle = value;
    } else if (key == "note") {
      entry.note = value;
    } else if (key == "build") {
      entry.build = value;
    } else {
      throw Error("unknown corpus directive: #! " + key + where);
    }
  }
  LBIST_CHECK(saw_magic,
              "not a corpus file (missing '#! " + std::string(kMagic) + "')");
  entry.design = parse_dfg(text);  // directives parse as comments
  LBIST_CHECK(entry.design.schedule.has_value(),
              "corpus DFG must be scheduled (@step annotations)");
  return entry;
}

std::string dump_corpus(const CorpusEntry& entry) {
  LBIST_CHECK(entry.design.schedule.has_value(),
              "corpus DFG must be scheduled");
  std::ostringstream out;
  out << "#! " << kMagic << "\n";
  out << "#! seed " << entry.seed << "\n";
  out << "#! width " << entry.width << "\n";
  out << "#! oracle " << (entry.oracle.empty() ? "none" : entry.oracle)
      << "\n";
  if (!entry.note.empty()) out << "#! note " << entry.note << "\n";
  if (!entry.build.empty()) out << "#! build " << entry.build << "\n";
  out << print_dfg(entry.design.dfg, &*entry.design.schedule);
  return out.str();
}

}  // namespace lbist
