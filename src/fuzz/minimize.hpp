#pragma once
// Delta-debugging minimizer for failing fuzz cases.
//
// Given a scheduled DFG that violates an invariant, `minimize_dfg` shrinks
// it to a (locally) minimal scheduled DFG that still violates it.  The
// reduction operator removes a subset of operations and repairs the design:
// operands that referenced a removed result are rewired to primary inputs
// with the same name (value provenance is irrelevant to structural
// invariants), unreferenced inputs are dropped, newly sink variables become
// primary outputs, loop ties over removed variables are dropped, and the
// schedule is compacted (empty steps squeezed out, relative order kept).
//
// The search is the classic ddmin loop: try removing chunks of size n/2,
// n/4, ... 1 until a full pass of single-op removals makes no progress.
// Every candidate is revalidated (`Dfg::validate` + schedule construction);
// candidates the repair cannot make well-formed are simply skipped.

#include <functional>

#include "dfg/dfg.hpp"
#include "dfg/schedule.hpp"

namespace lbist {

/// Returns true when the candidate design still exhibits the failure being
/// minimized.  Must be deterministic.  Exceptions thrown by the predicate
/// are treated as "does not fail" (the candidate is rejected).
using StillFails = std::function<bool(const Dfg&, const Schedule&)>;

/// A minimized reproducer.
struct MinimizeResult {
  Dfg dfg;
  Schedule schedule;
  std::size_t initial_ops = 0;
  std::size_t final_ops = 0;
  int predicate_calls = 0;
};

/// Shrinks `dfg` while `still_fails` holds.  The input design itself must
/// satisfy the predicate (throws lbist::Error otherwise, so a minimizer
/// bug cannot silently "minimize" a passing design).
[[nodiscard]] MinimizeResult minimize_dfg(const Dfg& dfg,
                                          const Schedule& sched,
                                          const StillFails& still_fails);

}  // namespace lbist
