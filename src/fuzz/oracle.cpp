#include "fuzz/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "binding/cbilbo_check.hpp"
#include "bist/allocator.hpp"
#include "core/report.hpp"
#include "core/synthesizer.hpp"
#include "dfg/lifetime.hpp"
#include "graph/coloring.hpp"
#include "graph/conflict.hpp"
#include "obs/events.hpp"
#include "passes/incremental.hpp"
#include "passes/pipeline.hpp"
#include "rtl/controller.hpp"
#include "rtl/ipath.hpp"
#include "rtl/simulate.hpp"
#include "support/check.hpp"

namespace lbist {

bool OracleVerdict::failed(const std::string& name) const {
  return std::any_of(failures.begin(), failures.end(),
                     [&](const OracleFailure& f) { return f.oracle == name; });
}

namespace {

/// splitmix64 finalizer — the digest mixer.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= (h >> 30);
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= (h >> 27);
  h *= 0x94d049bb133111ebull;
  h ^= (h >> 31);
  return h;
}

std::uint32_t width_mask(int width) {
  return width >= 32 ? 0xFFFFFFFFu
                     : ((std::uint32_t{1} << width) - 1u);
}

const char* arm_name(BinderKind kind) {
  switch (kind) {
    case BinderKind::Traditional: return "trad";
    case BinderKind::CliquePartition: return "clique";
    case BinderKind::BistAware: return "bist";
    case BinderKind::LoopAware: return "loop";
    default: return "?";
  }
}

/// Deterministic stimulus: vector 0 assigns input i the value i+1 (never
/// zero, so multiplier chains stay alive); vector 1 mixes the stimulus
/// seed so each case exercises different data.
IdMap<VarId, std::uint32_t> make_inputs(const Dfg& dfg, int vec,
                                        std::uint64_t seed, int width) {
  const std::uint32_t mask = width_mask(width);
  IdMap<VarId, std::uint32_t> inputs(dfg.num_vars(), 0);
  std::uint32_t ordinal = 0;
  for (const auto& v : dfg.vars()) {
    if (!v.is_input()) continue;
    ++ordinal;
    if (vec == 0) {
      inputs[v.id] = ordinal & mask;
    } else {
      const std::uint64_t h = mix(seed, ordinal);
      inputs[v.id] = static_cast<std::uint32_t>(h) & mask;
    }
    if (inputs[v.id] == 0) inputs[v.id] = 1;  // keep mul/div paths non-trivial
  }
  return inputs;
}

/// Mutation self-test: move one variable into a register it conflicts
/// with.  Returns true if a corruptible pair existed.
bool corrupt_binding(RegisterBinding& rb, const VarConflictGraph& cg) {
  for (std::size_t a = 0; a < rb.regs.size(); ++a) {
    for (VarId v : rb.regs[a]) {
      if (cg.vertex_of[v] < 0) continue;
      for (std::size_t b = 0; b < rb.regs.size(); ++b) {
        if (a == b) continue;
        for (VarId u : rb.regs[b]) {
          if (cg.vertex_of[u] < 0) continue;
          if (!cg.graph.adjacent(cg.vertex(v), cg.vertex(u))) continue;
          // v conflicts with u: moving v into u's register breaks the
          // partition invariant.
          auto& from = rb.regs[a];
          from.erase(std::find(from.begin(), from.end(), v));
          rb.regs[b].push_back(v);
          rb.reg_of[v] = RegId{static_cast<RegId::value_type>(b)};
          return true;
        }
      }
    }
  }
  return false;
}

class OracleRun {
 public:
  OracleRun(const Dfg& dfg, const Schedule& sched, const OracleOptions& opts)
      : dfg_(dfg), sched_(sched), opts_(opts) {}

  OracleVerdict run() {
    protos_ = minimal_module_spec(dfg_, sched_);
    check_arm(BinderKind::Traditional);
    if (dfg_.num_ops() <=
        static_cast<std::size_t>(opts_.clique_arm_max_ops)) {
      check_arm(BinderKind::CliquePartition);
    }
    check_arm(BinderKind::BistAware);
    if (!dfg_.loop_ties().empty()) check_arm(BinderKind::LoopAware);
    verdict_.digest = digest_;
    return std::move(verdict_);
  }

 private:
  void fail(std::string oracle, std::string detail) {
    verdict_.failures.push_back({std::move(oracle), std::move(detail)});
  }

  void check_arm(BinderKind kind) {
    const std::string arm = arm_name(kind);
    SynthesisOptions so;
    so.binder = kind;
    so.area.bit_width = opts_.width;
    // The bist arm runs with the decision-event stream on so the
    // events-cbilbo oracle can cross-check it against cbilbo_check.
    AlgorithmEvents events(nullptr, /*keep_events=*/true);
    if (kind == BinderKind::BistAware) so.events = &events;
    try {
      SynthesisResult result = Synthesizer(so).run(dfg_, sched_, protos_);
      check_binding(arm, kind, so, result);
      check_simulation(arm, kind, so, result);
      check_area(arm, so, result);
      if (kind == BinderKind::BistAware) check_report(result);
      if (kind == BinderKind::BistAware) check_events(events, result);
      const bool deep =
          kind == BinderKind::BistAware &&
          dfg_.num_ops() <= static_cast<std::size_t>(opts_.deep_check_max_ops);
      if (deep) check_snapshot(so, result);
      if (deep) check_incremental(so, result);
      if (kind == BinderKind::Traditional && opts_.check_lemma2) {
        check_lemma2(result);
      }
      digest_ =
          mix(digest_, static_cast<std::uint64_t>(result.num_registers()));
      digest_ = mix(digest_, static_cast<std::uint64_t>(result.num_mux()));
      digest_ = mix(digest_, static_cast<std::uint64_t>(std::llround(
                                 result.overhead_percent * 1e6)));
    } catch (const Error& e) {
      // The pipeline tripped an LBIST_CHECK outside a validation oracle:
      // that is a finding, not a harness crash.
      fail("pipeline:" + arm, e.what());
    }
  }

  void check_binding(const std::string& arm, BinderKind kind,
                     const SynthesisOptions& so,
                     const SynthesisResult& result) {
    auto lt = compute_lifetimes(dfg_, sched_, so.lifetime);
    auto cg = build_conflict_graph(dfg_, lt);
    RegisterBinding rb = result.registers;
    if (opts_.inject_binding_bug && kind == BinderKind::Traditional) {
      corrupt_binding(rb, cg);
    }
    try {
      rb.validate(dfg_, lt);
    } catch (const Error& e) {
      fail("binding-valid:" + arm, e.what());
      return;
    }
    if (kind == BinderKind::Traditional || kind == BinderKind::BistAware) {
      const std::size_t minimum = chordal_clique_number(cg.graph);
      if (rb.num_regs() != minimum) {
        fail("binding-minimal:" + arm,
             std::to_string(rb.num_regs()) + " registers, clique number " +
                 std::to_string(minimum));
      }
    }
  }

  void check_simulation(const std::string& arm, BinderKind kind,
                        const SynthesisOptions& so,
                        const SynthesisResult& result) {
    auto lt = compute_lifetimes(dfg_, sched_, so.lifetime);
    auto ctl = Controller::generate(dfg_, sched_, result.registers,
                                    result.datapath, lt);
    for (int vec = 0; vec < 2; ++vec) {
      auto inputs = make_inputs(dfg_, vec, opts_.stimulus_seed, opts_.width);
      auto sim = simulate_datapath(dfg_, result.datapath, ctl, inputs,
                                   opts_.width);
      if (!sim.ok()) {
        std::ostringstream os;
        os << "vector " << vec << ": ";
        for (VarId v : sim.mismatches) os << dfg_.var(v).name << " ";
        fail("simulation:" + arm, os.str());
      }
      for (const auto& v : sim.observed) {
        digest_ = mix(digest_, v);
      }
    }
    if (kind == BinderKind::LoopAware) {
      auto inputs = make_inputs(dfg_, 0, opts_.stimulus_seed, opts_.width);
      auto iters = simulate_datapath_loop(dfg_, result.datapath, ctl, inputs,
                                          opts_.width, 3);
      for (std::size_t i = 0; i < iters.size(); ++i) {
        if (!iters[i].ok()) {
          fail("loop-simulation", "iteration " + std::to_string(i));
        }
      }
    }
  }

  void check_area(const std::string& arm, const SynthesisOptions& so,
                  const SynthesisResult& result) {
    const double functional = so.area.functional_area(result.datapath);
    if (std::abs(functional - result.functional_area) > 1e-6) {
      fail("area-consistency:" + arm, "functional area drifted");
    }
    double extra = 0.0;
    for (const auto& role : result.bist.roles) {
      extra += so.area.role_extra(role);
    }
    if (std::abs(extra - result.bist.extra_area) > 1e-6) {
      fail("area-consistency:" + arm,
           "role extras sum " + std::to_string(extra) + " != reported " +
               std::to_string(result.bist.extra_area));
    }
    const double overhead =
        functional > 0 ? 100.0 * result.bist.extra_area / functional : 0.0;
    if (std::abs(overhead - result.overhead_percent) > 1e-6) {
      fail("area-consistency:" + arm, "overhead percentage drifted");
    }
    if (result.bist.exact) {
      BistAllocator alloc(so.area);
      const double greedy = alloc.solve_greedy(result.datapath).extra_area;
      if (result.bist.extra_area > greedy + 1e-9) {
        fail("area-consistency:" + arm,
             "exact allocation (" + std::to_string(result.bist.extra_area) +
                 ") worse than greedy (" + std::to_string(greedy) + ")");
      }
    }
  }

  void check_report(const SynthesisResult& result) {
    const Json report = report_json(dfg_, result);
    const std::string text = report.dump();
    const Json reparsed = Json::parse(text);
    if (reparsed.dump() != text) {
      fail("report-consistency", "JSON dump does not round-trip");
      return;
    }
    const Json& metrics = reparsed.at("metrics");
    auto expect_num = [&](const char* key, double want) {
      const Json* got = metrics.find(key);
      if (got == nullptr || std::abs(got->as_number() - want) > 1e-6) {
        fail("report-consistency", std::string("metrics.") + key +
                                       " disagrees with the synthesis result");
      }
    };
    expect_num("registers", result.num_registers());
    expect_num("muxes", result.num_mux());
    expect_num("functional_area", result.functional_area);
    expect_num("bist_extra_area", result.bist.extra_area);
    expect_num("bist_overhead_percent", result.overhead_percent);
  }

  /// The binder's emitted cbilbo_forced event stream agrees with an
  /// independent Lemma-2 evaluation of the finished binding (the binder
  /// derives its events from register *masks* mid-run; cbilbo_check's
  /// dfg/rb overload rederives everything from the materialized binding —
  /// the two must name the same forced modules).
  void check_events(const AlgorithmEvents& events,
                    const SynthesisResult& result) {
    const auto independent =
        forced_cbilbos(dfg_, result.modules, result.registers);
    std::vector<std::size_t> reported;
    for (const AlgorithmEvent& ev : events.snapshot()) {
      if (ev.kind != "cbilbo_forced") continue;
      reported.push_back(
          static_cast<std::size_t>(ev.detail.at("module").as_int()));
    }
    std::vector<std::size_t> expected;
    expected.reserve(independent.size());
    for (const ForcedCbilbo& f : independent) {
      expected.push_back(f.module.index());
    }
    std::sort(reported.begin(), reported.end());
    std::sort(expected.begin(), expected.end());
    if (reported != expected) {
      fail("events-cbilbo",
           "binder emitted " + std::to_string(reported.size()) +
               " cbilbo_forced events, independent Lemma-2 check finds " +
               std::to_string(expected.size()));
    }
    digest_ = mix(digest_, events.count("cbilbo_forced"));
  }

  /// Every stage-boundary IR snapshot resumes to the bit-identical result:
  /// run the pipeline to each boundary, serialize, re-parse, restore into a
  /// fresh state (own DFG, rebuilt from the printed design) and finish the
  /// run — the text report and the JSON report must match the uninterrupted
  /// run byte for byte.
  void check_snapshot(const SynthesisOptions& so,
                      const SynthesisResult& result) {
    SynthesisOptions clean = so;  // the oracle's replays must not re-emit
    clean.trace = nullptr;        // decision events into the arm's stream
    clean.events = nullptr;
    const PassPipeline& pipeline = PassPipeline::standard();
    const std::string want_text = result.describe(dfg_);
    const std::string want_json = report_json(dfg_, result).dump();
    for (std::size_t stage = 1; stage <= pipeline.num_passes(); ++stage) {
      const std::string stage_name(pipeline.passes()[stage - 1]->name());
      SynthState state(dfg_, sched_, protos_, clean);
      pipeline.run(state, stage);
      SynthState resumed =
          pipeline.restore(Json::parse(pipeline.snapshot(state).dump()));
      pipeline.run(resumed);
      if (resumed.result.describe(resumed.dfg()) != want_text) {
        fail("snapshot-roundtrip",
             "stage " + stage_name + ": resumed report text diverged");
      }
      const std::string got_json =
          report_json(resumed.dfg(), resumed.result).dump();
      if (got_json != want_json) {
        fail("snapshot-roundtrip",
             "stage " + stage_name + ": resumed JSON report diverged");
      }
      digest_ = mix(digest_, got_json.size());
    }
  }

  /// Incremental re-synthesis is bit-identical to full synthesis, and the
  /// driver reuses exactly the passes an edit cannot reach: a repeat call
  /// reuses everything, an area-model edit re-runs only the bist pass, a
  /// lifetime-policy edit invalidates the whole pipeline.
  void check_incremental(const SynthesisOptions& so,
                         const SynthesisResult& result) {
    SynthesisOptions clean = so;
    clean.trace = nullptr;
    clean.events = nullptr;
    const std::string want_text = result.describe(dfg_);
    IncrementalSynthesizer inc(clean);
    const std::size_t n = PassPipeline::standard().num_passes();
    SynthesisResult r0 = inc.resynthesize(dfg_, sched_, protos_);
    if (r0.describe(dfg_) != want_text ||
        report_json(dfg_, r0).dump() != report_json(dfg_, result).dump()) {
      fail("incremental", "initial run diverged from full synthesis");
    }
    // Unchanged inputs: every pass reuses.
    SynthesisResult r1 = inc.resynthesize(dfg_, sched_, protos_);
    if (r1.describe(dfg_) != want_text) {
      fail("incremental", "no-op re-run diverged");
    }
    if (inc.stats().passes_run != n || inc.stats().passes_reused != n) {
      fail("incremental",
           "no-op re-run executed " +
               std::to_string(inc.stats().passes_run - n) + " passes");
    }
    // Area-only edit: only the bist pass reads the area model.
    SynthesisOptions wider = clean;
    wider.area.bit_width = clean.area.bit_width + 1;
    inc.options() = wider;
    SynthesisResult r2 = inc.resynthesize(dfg_, sched_, protos_);
    SynthesisResult full2 = Synthesizer(wider).run(dfg_, sched_, protos_);
    if (r2.describe(dfg_) != full2.describe(dfg_) ||
        report_json(dfg_, r2).dump() != report_json(dfg_, full2).dump()) {
      fail("incremental", "area edit diverged from full synthesis");
    }
    if (inc.stats().passes_run != n + 1) {
      fail("incremental",
           "area edit re-ran " + std::to_string(inc.stats().passes_run - n) +
               " passes, expected exactly the bist pass");
    }
    // Lifetime-policy edit: changes the sched pass's inputs, so the whole
    // pipeline re-runs.
    SynthesisOptions held = wider;
    held.lifetime.hold_outputs_to_end = !wider.lifetime.hold_outputs_to_end;
    inc.options() = held;
    SynthesisResult r3 = inc.resynthesize(dfg_, sched_, protos_);
    SynthesisResult full3 = Synthesizer(held).run(dfg_, sched_, protos_);
    if (r3.describe(dfg_) != full3.describe(dfg_) ||
        report_json(dfg_, r3).dump() != report_json(dfg_, full3).dump()) {
      fail("incremental", "lifetime edit diverged from full synthesis");
    }
    digest_ = mix(digest_, inc.stats().passes_run);
    digest_ = mix(digest_, inc.stats().passes_reused);
  }

  /// Lemma 2 agrees with brute force over every embedding (the paper's
  /// setting: binary commutative modules with two distinct operand
  /// registers and an allocatable result).
  void check_lemma2(const SynthesisResult& result) {
    const auto& dp = result.datapath;
    double combos = 0;
    std::vector<std::vector<BistEmbedding>> all;
    for (std::size_t m = 0; m < dp.modules.size(); ++m) {
      all.push_back(enumerate_embeddings(dp, m));
      combos += static_cast<double>(all.back().size());
    }
    if (combos > opts_.lemma2_budget) return;  // exhaustive oracle gated

    const auto lemma = forced_cbilbos(dfg_, result.modules, result.registers);
    for (std::size_t m = 0; m < dp.modules.size(); ++m) {
      bool clean = true;
      for (OpId opid : result.modules.instances(
               ModuleId{static_cast<ModuleId::value_type>(m)})) {
        const auto& op = dfg_.op(opid);
        if (op.lhs == op.rhs || !is_commutative(op.kind)) clean = false;
        if (!dfg_.var(op.result).allocatable()) clean = false;
      }
      if (!clean || all[m].empty()) continue;
      const bool brute_forced =
          std::all_of(all[m].begin(), all[m].end(),
                      [](const BistEmbedding& e) { return e.needs_cbilbo(); });
      const bool lemma_forced =
          std::any_of(lemma.begin(), lemma.end(), [&](const ForcedCbilbo& f) {
            return f.module.index() == m;
          });
      if (lemma_forced != brute_forced) {
        fail("lemma2", "module " + dp.modules[m].name + ": lemma says " +
                           (lemma_forced ? "forced" : "free") +
                           ", brute force says " +
                           (brute_forced ? "forced" : "free"));
      }
    }
  }

  const Dfg& dfg_;
  const Schedule& sched_;
  const OracleOptions& opts_;
  std::vector<ModuleProto> protos_;
  OracleVerdict verdict_;
  std::uint64_t digest_ = 0x6c6f776269737421ull;  // "lowbist!"
};

}  // namespace

OracleVerdict run_oracles(const Dfg& dfg, const Schedule& sched,
                          const OracleOptions& opts) {
  return OracleRun(dfg, sched, opts).run();
}

}  // namespace lbist
