#include "fuzz/fuzz.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <future>
#include <ostream>
#include <vector>

#include "fuzz/minimize.hpp"
#include "service/thread_pool.hpp"
#include "support/check.hpp"
#include "support/version.hpp"

namespace lbist {
namespace {

/// splitmix64 — same mixer as the oracle digest, reused for knob draws.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= (h >> 30);
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= (h >> 27);
  h *= 0x94d049bb133111ebull;
  h ^= (h >> 31);
  return h;
}

/// Cheap deterministic knob stream derived from the case seed.
class KnobStream {
 public:
  explicit KnobStream(std::uint64_t seed) : state_(seed) {}

  /// Uniform draw in [0, n).
  std::uint64_t next(std::uint64_t n) {
    state_ = mix(state_, 0x2545f4914f6cdd1dull);
    return state_ % n;
  }

 private:
  std::uint64_t state_;
};

const std::vector<std::vector<OpKind>>& op_mixes() {
  // Index 0 is the Lemma-2 setting (all commutative); the others stress
  // non-commutative port assignment, logic-heavy and division datapaths.
  static const std::vector<std::vector<OpKind>> mixes = {
      {OpKind::Add, OpKind::Mul, OpKind::And},
      {OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::And},
      {OpKind::And, OpKind::Or, OpKind::Xor, OpKind::Add},
      {OpKind::Sub, OpKind::Div, OpKind::Add},
      {OpKind::Add, OpKind::Mul, OpKind::Sub, OpKind::Lt},
  };
  return mixes;
}

std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == ':' || c == '/' || c == ' ') c = '-';
  }
  return s;
}

}  // namespace

FuzzCase make_fuzz_case(std::uint64_t master_seed, int index, int base_width,
                        bool vary_width, bool large_shapes) {
  const std::uint64_t case_seed =
      mix(master_seed, static_cast<std::uint64_t>(index));
  KnobStream knobs(case_seed);

  RandomDfgOptions gen;
  gen.seed = case_seed;
  gen.kinds = op_mixes()[knobs.next(op_mixes().size())];

  switch (knobs.next(large_shapes ? 6 : 5)) {
    case 0:  // small layered — the Lemma-2 sweet spot
      gen.num_steps = 2 + static_cast<int>(knobs.next(3));
      gen.ops_per_step = 1 + static_cast<int>(knobs.next(2));
      gen.num_inputs = 2 + static_cast<int>(knobs.next(3));
      break;
    case 1:  // medium layered — the paper-benchmark shape
      gen.num_steps = 4 + static_cast<int>(knobs.next(4));
      gen.ops_per_step = 2 + static_cast<int>(knobs.next(2));
      gen.num_inputs = 3 + static_cast<int>(knobs.next(4));
      break;
    case 2:  // chain — long dependence chains, skinny conflict graphs
      gen.num_steps = 5 + static_cast<int>(knobs.next(5));
      gen.ops_per_step = 1;
      gen.num_inputs = 2 + static_cast<int>(knobs.next(2));
      gen.chain_probability = 0.85;
      gen.reuse_probability = 0.8;
      break;
    case 3:  // wide — high register pressure per step
      gen.num_steps = 2 + static_cast<int>(knobs.next(3));
      gen.ops_per_step = 3 + static_cast<int>(knobs.next(2));
      gen.num_inputs = 4 + static_cast<int>(knobs.next(3));
      break;
    case 4:  // loop-tied — exercises the loop-aware binder arm
      gen.num_steps = 3 + static_cast<int>(knobs.next(4));
      gen.ops_per_step = 1 + static_cast<int>(knobs.next(3));
      gen.num_inputs = 3 + static_cast<int>(knobs.next(3));
      gen.loop_ties = 1 + static_cast<int>(knobs.next(2));
      break;
    default:  // large layered — ≥1k ops, the scaling stress shape
      gen.num_steps = 125 + static_cast<int>(knobs.next(126));
      gen.ops_per_step = 8;
      gen.num_inputs = 12;
      gen.reuse_probability = 0.9;
      gen.chain_probability = 0.3;
      break;
  }
  gen.reuse_probability =
      std::max(gen.reuse_probability,
               0.3 + 0.1 * static_cast<double>(knobs.next(6)));

  int width = base_width;
  if (vary_width) {
    static constexpr int kWidths[] = {2, 4, 8, 16};
    width = kWidths[knobs.next(4)];
  }

  FuzzCase fc{gen, make_random_dfg(gen), width, case_seed};
  return fc;
}

OracleOptions oracle_options_for(const FuzzCase& fuzz_case,
                                 const FuzzOptions& opts) {
  OracleOptions oo;
  oo.width = fuzz_case.width;
  oo.stimulus_seed = fuzz_case.case_seed;
  oo.lemma2_budget = opts.lemma2_budget;
  oo.inject_binding_bug = opts.inject_binding_bug;
  return oo;
}

OracleVerdict replay_corpus_entry(const CorpusEntry& entry,
                                  bool inject_binding_bug) {
  LBIST_CHECK(entry.design.schedule.has_value(),
              "corpus entry has no schedule");
  OracleOptions oo;
  oo.width = entry.width;
  oo.stimulus_seed = entry.seed == 0 ? 1 : entry.seed;
  oo.inject_binding_bug = inject_binding_bug;
  return run_oracles(entry.design.dfg, *entry.design.schedule, oo);
}

namespace {

struct CaseOutcome {
  OracleVerdict verdict;
  std::size_t num_ops = 0;
};

/// Minimizes one failing case and renders its corpus reproducer.
FuzzFailureReport build_report(int index, const FuzzCase& fc,
                               const OracleVerdict& verdict,
                               const FuzzOptions& opts) {
  FuzzFailureReport report;
  report.case_index = index;
  report.case_seed = fc.case_seed;
  report.oracle = verdict.failures.front().oracle;
  report.detail = verdict.failures.front().detail;
  report.original_ops = fc.design.dfg.num_ops();
  report.minimized_ops = report.original_ops;

  CorpusEntry entry;
  entry.seed = fc.case_seed;
  entry.width = fc.width;
  entry.oracle = report.oracle;
  entry.build = build_info_line();

  const OracleOptions oo = oracle_options_for(fc, opts);
  if (opts.minimize) {
    const std::string oracle = report.oracle;
    auto still_fails = [&](const Dfg& d, const Schedule& s) {
      return run_oracles(d, s, oo).failed(oracle);
    };
    auto min = minimize_dfg(fc.design.dfg, fc.design.schedule, still_fails);
    report.minimized_ops = min.final_ops;
    entry.note = "minimized from " + std::to_string(min.initial_ops) +
                 " ops (" + std::to_string(min.predicate_calls) +
                 " oracle calls)";
    entry.design = ParsedDfg{std::move(min.dfg), std::move(min.schedule)};
  } else {
    entry.design = ParsedDfg{fc.design.dfg, fc.design.schedule};
  }
  report.corpus_text = dump_corpus(entry);

  if (!opts.corpus_dir.empty()) {
    std::filesystem::create_directories(opts.corpus_dir);
    const std::string path = opts.corpus_dir + "/case-" +
                             std::to_string(fc.case_seed) + "-" +
                             sanitize(report.oracle) + ".corpus";
    std::ofstream out(path);
    LBIST_CHECK(out.good(), "cannot write corpus file: " + path);
    out << report.corpus_text;
    report.corpus_path = path;
  }
  return report;
}

}  // namespace

FuzzSummary run_fuzz(const FuzzOptions& opts, std::ostream* log) {
  LBIST_CHECK(opts.cases >= 1, "fuzz needs at least one case");
  FuzzSummary summary;
  summary.digest = mix(opts.seed, 0x66757a7aull);  // "fuzz"

  ThreadPool pool(ThreadPool::resolve_jobs(opts.jobs));
  std::vector<std::future<CaseOutcome>> outcomes;
  outcomes.reserve(static_cast<std::size_t>(opts.cases));
  for (int i = 0; i < opts.cases; ++i) {
    outcomes.push_back(pool.submit([i, &opts]() -> CaseOutcome {
      const FuzzCase fc = make_fuzz_case(opts.seed, i, opts.width,
                                         opts.vary_width, opts.large_shapes);
      CaseOutcome outcome;
      outcome.num_ops = fc.design.dfg.num_ops();
      outcome.verdict = run_oracles(fc.design.dfg, fc.design.schedule,
                                    oracle_options_for(fc, opts));
      return outcome;
    }));
  }

  std::vector<int> failing_cases;
  for (int i = 0; i < opts.cases; ++i) {
    // Collect in submission order: the digest fold is independent of how
    // the pool interleaved the workers.
    const CaseOutcome outcome = outcomes[static_cast<std::size_t>(i)].get();
    summary.digest = mix(summary.digest, outcome.verdict.digest);
    ++summary.cases;
    if (!outcome.verdict.ok()) {
      ++summary.failures;
      failing_cases.push_back(i);
    }
    if (log != nullptr && opts.progress_interval > 0 &&
        (i + 1) % opts.progress_interval == 0) {
      *log << "fuzz: " << (i + 1) << "/" << opts.cases << " cases, "
           << summary.failures << " failing\n";
    }
  }

  // Minimize and report the first few failures (deterministic order).
  for (int index : failing_cases) {
    if (static_cast<int>(summary.reports.size()) >= opts.max_reports) break;
    const FuzzCase fc = make_fuzz_case(opts.seed, index, opts.width,
                                       opts.vary_width, opts.large_shapes);
    const OracleVerdict verdict =
        run_oracles(fc.design.dfg, fc.design.schedule,
                    oracle_options_for(fc, opts));
    if (verdict.ok()) continue;  // cannot happen for a deterministic oracle
    FuzzFailureReport report = build_report(index, fc, verdict, opts);
    if (log != nullptr) {
      *log << "fuzz: case " << index << " (seed " << report.case_seed
           << ") fails " << report.oracle << " [" << report.detail << "], "
           << report.original_ops << " -> " << report.minimized_ops
           << " ops";
      if (!report.corpus_path.empty()) *log << " -> " << report.corpus_path;
      *log << "\n";
    }
    summary.reports.push_back(std::move(report));
  }
  return summary;
}

}  // namespace lbist
