#pragma once
// Differential invariant oracles for the fuzzer.
//
// Each generated (or replayed) scheduled DFG is pushed through the
// traditional, clique-partitioning and BIST-aware binders (plus the
// loop-aware binder when the design carries loop ties) and checked against
// invariants the paper's construction guarantees:
//
//   binding-valid:<arm>     the register binding partitions the allocatable
//                           variables with no intra-register conflicts
//   binding-minimal:<arm>   trad/bist bindings use exactly the chordal
//                           clique number of registers (paper Section III)
//   simulation:<arm>        cycle-level datapath simulation of the bound
//                           design matches DFG reference semantics on
//                           deterministic input vectors
//   loop-simulation         multi-iteration simulation with loop feedback
//                           tracks the reference on every iteration
//   lemma2                  Lemma-2 forced-CBILBO verdicts agree with brute
//                           force over every BIST embedding (small designs)
//   area-consistency        functional area, extra area and the overhead
//                           percentage are mutually consistent, and the
//                           exact allocator never loses to the greedy one
//   report-consistency      the JSON report round-trips and its metrics
//                           equal the synthesis result
//   snapshot-roundtrip      every stage-boundary IR snapshot (src/passes)
//                           serializes, re-parses and resumes to the byte-
//                           identical text and JSON reports
//   incremental             IncrementalSynthesizer matches full synthesis
//                           bit for bit across no-op, area-model and
//                           lifetime-policy edits, reusing exactly the
//                           passes each edit cannot reach
//
// `inject_binding_bug` deliberately breaks the traditional binding before
// validation (moves a variable into a conflicting register) — the fuzzing
// self-test that proves the harness catches and minimizes real invariant
// violations.

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/dfg.hpp"
#include "dfg/schedule.hpp"

namespace lbist {

/// Oracle configuration for one case.
struct OracleOptions {
  int width = 4;  ///< datapath bit width for area model and simulation
  /// Extra input vector entropy (the first vector is always input i = i+1).
  std::uint64_t stimulus_seed = 1;
  /// Run the Lemma-2-vs-brute-force comparison (skipped automatically when
  /// the embedding space exceeds `lemma2_budget` combinations).
  bool check_lemma2 = true;
  double lemma2_budget = 50000;
  /// Size gate for the clique-partitioning arm: its partitioner is
  /// super-quadratic in the variable count, so designs beyond this many
  /// operations skip that arm (the ≥1k-op fuzz shapes would otherwise
  /// spend the whole campaign inside one binder).  0 disables the arm.
  int clique_arm_max_ops = 400;
  /// Size gate for the snapshot-roundtrip and incremental oracles: they
  /// re-run the full pipeline (exact BIST allocator included) about a
  /// dozen times per case, so they only fire on designs with at most this
  /// many operations.  0 disables them.
  int deep_check_max_ops = 12;
  /// Mutation self-test: corrupt the traditional binding before validation.
  bool inject_binding_bug = false;
};

/// One violated invariant.
struct OracleFailure {
  std::string oracle;  ///< e.g. "simulation:bist"
  std::string detail;  ///< human-readable specifics
};

/// Outcome of running every oracle on one design.
struct OracleVerdict {
  std::vector<OracleFailure> failures;
  /// Deterministic fingerprint of everything the oracles observed
  /// (register/mux counts, overheads, simulation values).  Two runs of the
  /// same case must produce the same digest — the fuzz driver folds these
  /// into the run digest to detect nondeterminism.
  std::uint64_t digest = 0;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  /// True if some failure's oracle name equals `name`.
  [[nodiscard]] bool failed(const std::string& name) const;
};

/// Runs every applicable oracle on a scheduled design.  Structural errors
/// thrown by the pipeline itself (not by a validation oracle) are reported
/// as a failure of oracle "pipeline:<arm>" rather than propagated.
[[nodiscard]] OracleVerdict run_oracles(const Dfg& dfg, const Schedule& sched,
                                        const OracleOptions& opts);

}  // namespace lbist
