#pragma once
// Differential fuzzing driver (`lowbist fuzz`).
//
// Draws seeded random scheduled DFGs from a family of shapes (layered,
// chain-heavy, wide, loop-tied — see make_fuzz_case), fans the oracle runs
// out over the service ThreadPool, and folds every case's observation
// digest into one run digest.  Runs are deterministic per master seed:
// case i is generated from mix(seed, i) and the digest is folded in case
// order, so `-j 8` and `-j 1` produce identical summaries.
//
// Failing cases are shrunk with the delta-debugging minimizer and written
// as replayable corpus files (fuzz/corpus.hpp) that `lowbist fuzz
// --replay <file>` re-judges with the same oracles.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dfg/random_dfg.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/oracle.hpp"

namespace lbist {

/// Fuzzing-run configuration.
struct FuzzOptions {
  std::uint64_t seed = 1;  ///< master seed; case i derives from mix(seed, i)
  int cases = 1000;
  int jobs = 1;            ///< oracle-thread count (<1 = hardware)
  int width = 4;           ///< base datapath width (cases also vary width)
  bool vary_width = true;  ///< draw per-case widths from {2,4,8,16}
  bool minimize = true;    ///< shrink failing cases to minimal reproducers
  int max_reports = 10;    ///< detailed (minimized) reports to produce
  std::string corpus_dir;  ///< write reproducers here; empty = don't write
  double lemma2_budget = 50000;
  /// Mix in a sixth shape family of ≥1k-op layered DFGs (scaling stress
  /// for the bitset graphs and the incremental-ΔSD binder).  Off by
  /// default: the family redraws every case's knobs, so enabling it
  /// changes the run digest.
  bool large_shapes = false;
  /// Hidden mutation self-test: break the traditional binding on purpose.
  bool inject_binding_bug = false;
  /// Emit a progress line to the log every this many cases (0 = off).
  int progress_interval = 0;
};

/// One fully-specified generated case.
struct FuzzCase {
  RandomDfgOptions gen;  ///< exact generator knobs (replayable)
  RandomDfg design;
  int width = 4;
  std::uint64_t case_seed = 0;
};

/// Detailed report for one failing case.
struct FuzzFailureReport {
  int case_index = 0;
  std::uint64_t case_seed = 0;
  std::string oracle;  ///< first failing oracle
  std::string detail;
  std::size_t original_ops = 0;
  std::size_t minimized_ops = 0;
  std::string corpus_text;  ///< minimized reproducer, corpus format
  std::string corpus_path;  ///< file written under corpus_dir, if any
};

/// Whole-run outcome.
struct FuzzSummary {
  int cases = 0;
  int failures = 0;  ///< number of failing cases (not individual oracles)
  std::uint64_t digest = 0;
  std::vector<FuzzFailureReport> reports;  ///< first max_reports failures

  [[nodiscard]] bool ok() const { return failures == 0; }
};

/// Deterministically derives case `index` of a run seeded with
/// `master_seed`: shape family, op mix, width and generator seed all come
/// from the mixed per-case seed.  `large_shapes` widens the family pool
/// with the ≥1k-op scaling shape (see FuzzOptions::large_shapes).
[[nodiscard]] FuzzCase make_fuzz_case(std::uint64_t master_seed, int index,
                                      int base_width, bool vary_width,
                                      bool large_shapes = false);

/// Oracle configuration used for a given case under these run options.
[[nodiscard]] OracleOptions oracle_options_for(const FuzzCase& fuzz_case,
                                               const FuzzOptions& opts);

/// Runs the whole campaign.  `log` (may be null) receives progress lines
/// and failure summaries.
[[nodiscard]] FuzzSummary run_fuzz(const FuzzOptions& opts,
                                   std::ostream* log = nullptr);

/// Re-judges a corpus entry with the standard oracles at its recorded
/// width.  Used by `lowbist fuzz --replay` and the corpus tests.
[[nodiscard]] OracleVerdict replay_corpus_entry(
    const CorpusEntry& entry, bool inject_binding_bug = false);

}  // namespace lbist
