#include "support/dot.hpp"

#include <sstream>

namespace lbist {

namespace {
std::string join_attrs(const std::vector<std::string>& attrs) {
  if (attrs.empty()) return "";
  std::ostringstream os;
  os << " [";
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) os << ", ";
    os << attrs[i];
  }
  os << "]";
  return os.str();
}
}  // namespace

DotWriter::DotWriter(std::string name, bool directed)
    : name_(std::move(name)), directed_(directed) {}

void DotWriter::add_node(const std::string& id,
                         std::vector<std::string> attrs) {
  lines_.push_back("  \"" + id + "\"" + join_attrs(attrs) + ";");
}

void DotWriter::add_edge(const std::string& from, const std::string& to,
                         std::vector<std::string> attrs) {
  const char* arrow = directed_ ? " -> " : " -- ";
  lines_.push_back("  \"" + from + "\"" + arrow + "\"" + to + "\"" +
                   join_attrs(attrs) + ";");
}

std::string DotWriter::str() const {
  std::ostringstream os;
  os << (directed_ ? "digraph " : "graph ") << name_ << " {\n";
  for (const auto& l : lines_) os << l << '\n';
  os << "}\n";
  return os.str();
}

}  // namespace lbist
