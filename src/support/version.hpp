#pragma once
// Build identification: which build of lowbist produced an artifact.
//
// Checkpoint snapshots, the server health reply and the batch metrics
// dump all embed this record so that a saved file can always be traced
// back to the build that wrote it (`lowbist version` prints the same
// data).  The values are informational only: snapshot compatibility is
// governed by the snapshot "format" tag, never by the writer record.

#include <string>

#include "support/json.hpp"

namespace lbist {

/// Identity of this binary, fixed at configure/compile time.
struct BuildInfo {
  std::string version;     ///< project version (CMake PROJECT_VERSION)
  std::string git;         ///< `git describe --always --dirty --tags`
  std::string compiler;    ///< compiler identification (__VERSION__)
  std::string sanitizer;   ///< LBIST_SANITIZE preset ("" = none)
  std::string build_type;  ///< CMAKE_BUILD_TYPE
};

/// The process-wide build record.
[[nodiscard]] const BuildInfo& build_info();

/// {"version": ..., "git": ..., "compiler": ..., "sanitizer": ...,
///  "build_type": ...}
[[nodiscard]] Json build_info_json();

/// Multi-line human-readable rendering (the `lowbist version` output).
[[nodiscard]] std::string build_info_string();

/// Single-line rendering for log lines and `#!` directives, e.g.
/// "lowbist 0.5.0 (a1b2c3d) Release".  Never contains a newline.
[[nodiscard]] std::string build_info_line();

}  // namespace lbist
