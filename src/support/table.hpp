#pragma once
// Plain-text table formatter used by the benchmark harnesses to print
// paper-style tables (Table I/II/III) with aligned columns.

#include <iosfwd>
#include <string>
#include <vector>

namespace lbist {

/// Accumulates rows of string cells and renders them with aligned columns,
/// a header rule, and optional title — mirroring the look of the paper's
/// tables in monospace output.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Optional title printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  /// Renders the table to a string.
  [[nodiscard]] std::string str() const;

  /// Streams the rendered table.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` digits after the decimal point.
[[nodiscard]] std::string fmt_double(double v, int prec = 2);

}  // namespace lbist
