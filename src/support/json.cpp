#include "support/json.hpp"

#include <cmath>
#include <cstdio>

#include "support/check.hpp"

namespace lbist {

Json& Json::push_back(Json v) {
  auto* arr = std::get_if<Array>(&value_);
  LBIST_CHECK(arr != nullptr, "push_back on a non-array JSON value");
  arr->items.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  auto* obj = std::get_if<Object>(&value_);
  LBIST_CHECK(obj != nullptr, "set on a non-object JSON value");
  for (auto& [k, existing] : obj->members) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj->members.emplace_back(key, std::move(v));
  return *this;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<long long>(d));
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", d);
    out += buf;
  }
}

std::string indent_of(int n) { return std::string(static_cast<std::size_t>(n), ' '); }

}  // namespace

void Json::write(std::string& out, int indent) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    write_number(out, *d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    write_escaped(out, *s);
  } else if (const auto* arr = std::get_if<Array>(&value_)) {
    if (arr->items.empty()) {
      out += "[]";
      return;
    }
    out += "[\n";
    for (std::size_t i = 0; i < arr->items.size(); ++i) {
      out += indent_of(indent + 2);
      arr->items[i].write(out, indent + 2);
      if (i + 1 < arr->items.size()) out += ',';
      out += '\n';
    }
    out += indent_of(indent) + "]";
  } else if (const auto* obj = std::get_if<Object>(&value_)) {
    if (obj->members.empty()) {
      out += "{}";
      return;
    }
    out += "{\n";
    for (std::size_t i = 0; i < obj->members.size(); ++i) {
      out += indent_of(indent + 2);
      write_escaped(out, obj->members[i].first);
      out += ": ";
      obj->members[i].second.write(out, indent + 2);
      if (i + 1 < obj->members.size()) out += ',';
      out += '\n';
    }
    out += indent_of(indent) + "}";
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0);
  return out;
}

}  // namespace lbist
