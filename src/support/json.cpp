#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/check.hpp"

namespace lbist {

Json& Json::push_back(Json v) {
  auto* arr = std::get_if<Array>(&value_);
  LBIST_CHECK(arr != nullptr, "push_back on a non-array JSON value");
  arr->items.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  auto* obj = std::get_if<Object>(&value_);
  LBIST_CHECK(obj != nullptr, "set on a non-object JSON value");
  for (auto& [k, existing] : obj->members) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj->members.emplace_back(key, std::move(v));
  return *this;
}

bool Json::as_bool() const {
  const auto* b = std::get_if<bool>(&value_);
  LBIST_CHECK(b != nullptr, "JSON value is not a boolean");
  return *b;
}

double Json::as_number() const {
  const auto* d = std::get_if<double>(&value_);
  LBIST_CHECK(d != nullptr, "JSON value is not a number");
  return *d;
}

int Json::as_int() const {
  const double d = as_number();
  LBIST_CHECK(d == std::floor(d) && std::abs(d) <= 2147483647.0,
              "JSON number is not a representable integer");
  return static_cast<int>(d);
}

const std::string& Json::as_string() const {
  const auto* s = std::get_if<std::string>(&value_);
  LBIST_CHECK(s != nullptr, "JSON value is not a string");
  return *s;
}

std::size_t Json::size() const {
  if (const auto* arr = std::get_if<Array>(&value_)) return arr->items.size();
  if (const auto* obj = std::get_if<Object>(&value_)) {
    return obj->members.size();
  }
  return 0;
}

const Json& Json::at(std::size_t i) const {
  const auto* arr = std::get_if<Array>(&value_);
  LBIST_CHECK(arr != nullptr, "indexing a non-array JSON value");
  LBIST_CHECK(i < arr->items.size(), "JSON array index out of range");
  return arr->items[i];
}

bool Json::contains(const std::string& key) const {
  return find(key) != nullptr;
}

const Json* Json::find(const std::string& key) const {
  const auto* obj = std::get_if<Object>(&value_);
  if (obj == nullptr) return nullptr;
  for (const auto& [k, v] : obj->members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  LBIST_CHECK(v != nullptr, "JSON object has no member \"" + key + "\"");
  return *v;
}

std::vector<std::string> Json::keys() const {
  std::vector<std::string> out;
  if (const auto* obj = std::get_if<Object>(&value_)) {
    out.reserve(obj->members.size());
    for (const auto& [k, v] : obj->members) out.push_back(k);
  }
  return out;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  // Shortest representation that round-trips: try increasing precision
  // until strtod gives the bits back.
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  out += buf;
}

std::string indent_of(int n) { return std::string(static_cast<std::size_t>(n), ' '); }

// ---- Parser --------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  /// Containers deeper than this are rejected.  The parser is recursive-
  /// descent, so unbounded nesting means unbounded C++ stack — fatal once
  /// untrusted bytes arrive over the server socket.  256 is far beyond any
  /// real manifest or report while keeping worst-case stack use trivial.
  static constexpr int kMaxDepth = 256;

  Json parse_document() {
    Json v = parse_value();
    skip_space();
    if (pos_ < text_.size()) fail("unexpected trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    int line = 1;
    int col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw Error("JSON parse error at line " + std::to_string(line) +
                ", column " + std::to_string(col) + ": " + what);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_space() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
    }
    pos_ += word.size();
  }

  Json parse_value() {
    skip_space();
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't': expect_word("true"); return Json::boolean(true);
      case 'f': expect_word("false"); return Json::boolean(false);
      case 'n': expect_word("null"); return Json::null();
      default: return parse_number();
    }
  }

  /// Tracks container nesting across parse_object/parse_array recursion.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxDepth) {
        parser.fail("nesting deeper than " + std::to_string(kMaxDepth) +
                    " levels");
      }
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  };

  Json parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    Json obj = Json::object();
    skip_space();
    if (!eof() && peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_space();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_space();
      expect(':');
      obj.set(key, parse_value());
      skip_space();
      if (eof()) fail("unterminated object");
      const char c = next();
      if (c == '}') return obj;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Json parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    Json arr = Json::array();
    skip_space();
    if (!eof() && peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_space();
      if (eof()) fail("unterminated array");
      const char c = next();
      if (c == ']') return arr;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape sequence");
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof()) fail("unterminated \\u escape");
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              --pos_;
              fail("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs unsupported —
          // the library only emits \u for control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    auto digits = [&] {
      bool any = false;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        any = true;
      }
      return any;
    };
    if (!digits()) fail("invalid number");
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) fail("digits required after decimal point");
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) fail("digits required in exponent");
    }
    const std::string lexeme(text_.substr(start, pos_ - start));
    return Json::number(std::strtod(lexeme.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

void Json::write(std::string& out, int indent) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    write_number(out, *d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    write_escaped(out, *s);
  } else if (const auto* arr = std::get_if<Array>(&value_)) {
    if (arr->items.empty()) {
      out += "[]";
      return;
    }
    out += "[\n";
    for (std::size_t i = 0; i < arr->items.size(); ++i) {
      out += indent_of(indent + 2);
      arr->items[i].write(out, indent + 2);
      if (i + 1 < arr->items.size()) out += ',';
      out += '\n';
    }
    out += indent_of(indent) + "]";
  } else if (const auto* obj = std::get_if<Object>(&value_)) {
    if (obj->members.empty()) {
      out += "{}";
      return;
    }
    out += "{\n";
    for (std::size_t i = 0; i < obj->members.size(); ++i) {
      out += indent_of(indent + 2);
      write_escaped(out, obj->members[i].first);
      out += ": ";
      obj->members[i].second.write(out, indent + 2);
      if (i + 1 < obj->members.size()) out += ',';
      out += '\n';
    }
    out += indent_of(indent) + "}";
  }
}

void Json::write_compact(std::string& out) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* d = std::get_if<double>(&value_)) {
    write_number(out, *d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    write_escaped(out, *s);
  } else if (const auto* arr = std::get_if<Array>(&value_)) {
    out += '[';
    for (std::size_t i = 0; i < arr->items.size(); ++i) {
      if (i > 0) out += ',';
      arr->items[i].write_compact(out);
    }
    out += ']';
  } else if (const auto* obj = std::get_if<Object>(&value_)) {
    out += '{';
    for (std::size_t i = 0; i < obj->members.size(); ++i) {
      if (i > 0) out += ',';
      write_escaped(out, obj->members[i].first);
      out += ':';
      obj->members[i].second.write_compact(out);
    }
    out += '}';
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0);
  return out;
}

std::string Json::dump_compact() const {
  std::string out;
  write_compact(out);
  return out;
}

}  // namespace lbist
