#pragma once
// Error handling for lowbist.
//
// Library invariants and user-input validation both throw `lbist::Error`
// (per C++ Core Guidelines E.2: throw to signal that a function can't do its
// job).  `LBIST_CHECK` is used for conditions that depend on caller input;
// it is always on, in release builds too, because allocation problems are
// small and validation cost is negligible next to the search itself.

#include <sstream>
#include <stdexcept>
#include <string>

namespace lbist {

/// Exception thrown for invalid inputs or broken invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace lbist

/// Validate `cond`; on failure throw lbist::Error with location context.
#define LBIST_CHECK(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::lbist::detail::fail(#cond, __FILE__, __LINE__, (msg));        \
    }                                                                 \
  } while (false)
