#pragma once
// Fixed-capacity dynamic bitset over 64-bit words.  Used for adjacency rows
// of conflict/compatibility graphs (n is at most a few hundred in HLS
// allocation problems, so dense rows are both simplest and fastest).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lbist {

/// A set of small integers [0, size) with constant-time membership and
/// word-parallel intersection/subset queries.
class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return size_; }

  void set(std::size_t i) { words_[i / 64] |= (std::uint64_t{1} << (i % 64)); }
  void reset(std::size_t i) {
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  [[nodiscard]] bool any() const {
    for (auto w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// True if this set intersects `other`.
  [[nodiscard]] bool intersects(const DynBitset& other) const {
    const std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }

  /// True if every member of this set is also in `other`.
  [[nodiscard]] bool subset_of(const DynBitset& other) const {
    const std::size_t n = words_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t ow = i < other.words_.size() ? other.words_[i] : 0;
      if (words_[i] & ~ow) return false;
    }
    return true;
  }

  DynBitset& operator|=(const DynBitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
    return *this;
  }

  DynBitset& operator&=(const DynBitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= other.words_[i];
    }
    return *this;
  }

  friend bool operator==(const DynBitset&, const DynBitset&) = default;

  /// Members in increasing order.
  [[nodiscard]] std::vector<std::size_t> members() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < size_; ++i) {
      if (test(i)) out.push_back(i);
    }
    return out;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace lbist
