#pragma once
// Fixed-capacity dynamic bitset over 64-bit words.  Used for adjacency rows
// of conflict/compatibility graphs, register variable-masks and sharing
// masks.  Designs now reach 10k-100k operations, so every operation that
// used to walk bits walks words: membership iteration uses countr_zero,
// and the combined count/intersection queries (count_and_not,
// intersect_count) exist so hot paths never materialize a merged set.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lbist {

/// A set of small integers [0, size) with constant-time membership and
/// word-parallel intersection/subset queries.
class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Words backing the set (the last word's unused high bits are zero).
  [[nodiscard]] std::size_t num_words() const { return words_.size(); }
  [[nodiscard]] std::uint64_t word(std::size_t w) const { return words_[w]; }

  /// words_[w] &= mask — word-granular masking for row-window operations.
  void and_word(std::size_t w, std::uint64_t mask) { words_[w] &= mask; }
  /// words_[w] |= mask.  Caller must keep bits within [0, size).
  void or_word(std::size_t w, std::uint64_t mask) { words_[w] |= mask; }

  void set(std::size_t i) { words_[i / 64] |= (std::uint64_t{1} << (i % 64)); }
  void reset(std::size_t i) {
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  /// Clears every bit without changing capacity.
  void clear() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  [[nodiscard]] bool any() const {
    for (auto w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// True if this set intersects `other`.
  [[nodiscard]] bool intersects(const DynBitset& other) const {
    const std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }

  /// True if every member of this set is also in `other`.
  [[nodiscard]] bool subset_of(const DynBitset& other) const {
    const std::size_t n = words_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t ow = i < other.words_.size() ? other.words_[i] : 0;
      if (words_[i] & ~ow) return false;
    }
    return true;
  }

  /// |this ∩ other| without materializing the intersection.
  [[nodiscard]] std::size_t intersect_count(const DynBitset& other) const {
    const std::size_t n = std::min(words_.size(), other.words_.size());
    std::size_t c = 0;
    for (std::size_t i = 0; i < n; ++i) {
      c += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
    }
    return c;
  }

  /// |this \ other| without materializing the difference.  This is the ΔSD
  /// kernel: SD(R ∪ {v}) - SD(R) = |mask(v) \ share_mask(R)|.
  [[nodiscard]] std::size_t count_and_not(const DynBitset& other) const {
    std::size_t c = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t ow = i < other.words_.size() ? other.words_[i] : 0;
      c += static_cast<std::size_t>(std::popcount(words_[i] & ~ow));
    }
    return c;
  }

  DynBitset& operator|=(const DynBitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
    return *this;
  }

  DynBitset& operator&=(const DynBitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= other.words_[i];
    }
    return *this;
  }

  friend bool operator==(const DynBitset&, const DynBitset&) = default;

  /// Calls `f(i)` for every member in increasing order (word-parallel).
  template <typename F>
  void for_each_set_bit(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        f(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  /// Members in increasing order.
  [[nodiscard]] std::vector<std::size_t> members() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for_each_set_bit([&](std::size_t i) { out.push_back(i); });
    return out;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace lbist
