#pragma once
// Monotonic scratch arena for per-synthesis temporaries.
//
// The binder and the graph algorithms allocate many short-lived arrays per
// coloring step (candidate lists, merged masks, neighbourhood scratch).  At
// paper-benchmark sizes the allocator noise is irrelevant; at 10k-100k ops
// it dominates.  An Arena hands out typed spans from large chunks and
// releases everything at once: `reset()` keeps the chunks, so a synthesis
// pass reuses the same memory for every step.
//
// Only trivially-destructible element types are supported — nothing is
// destroyed on reset.

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

namespace lbist {

/// Bump allocator over geometrically-growing chunks.
class Arena {
 public:
  explicit Arena(std::size_t first_chunk_bytes = 1 << 16)
      : next_chunk_bytes_(first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `n` default-initialized elements of T.
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    const std::size_t bytes = n * sizeof(T);
    std::size_t offset = align_up(used_, alignof(T));
    if (chunks_.empty() || offset + bytes > chunks_.back().size()) {
      grow(bytes);
      offset = 0;
    }
    used_ = offset + bytes;
    T* base = reinterpret_cast<T*>(chunks_.back().data() + offset);
    return {base, n};
  }

  /// Allocates `n` zero-filled elements of T.
  template <typename T>
  [[nodiscard]] std::span<T> alloc_zeroed(std::size_t n) {
    std::span<T> s = alloc<T>(n);
    for (T& x : s) x = T{};
    return s;
  }

  /// Releases every allocation; keeps the largest chunk for reuse.
  void reset() {
    if (chunks_.size() > 1) {
      // Keep only the biggest chunk (always the last: growth is monotonic).
      chunks_.erase(chunks_.begin(), chunks_.end() - 1);
    }
    used_ = 0;
  }

  /// Total bytes currently held (capacity, not live allocations).
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size();
    return total;
  }

 private:
  static std::size_t align_up(std::size_t x, std::size_t a) {
    return (x + a - 1) & ~(a - 1);
  }

  void grow(std::size_t min_bytes) {
    while (next_chunk_bytes_ < min_bytes) next_chunk_bytes_ *= 2;
    chunks_.emplace_back(next_chunk_bytes_);
    next_chunk_bytes_ *= 2;
    used_ = 0;
  }

  std::vector<std::vector<std::byte>> chunks_;
  std::size_t used_ = 0;  ///< bytes used in the *last* chunk
  std::size_t next_chunk_bytes_;
};

}  // namespace lbist
