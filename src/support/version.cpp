#include "support/version.hpp"

#include <sstream>

// The build system injects these via target_compile_definitions; the
// fallbacks keep non-CMake builds (e.g. single-file experiments) working.
#ifndef LOWBIST_VERSION
#define LOWBIST_VERSION "0.0.0"
#endif
#ifndef LOWBIST_GIT_DESCRIBE
#define LOWBIST_GIT_DESCRIBE "unknown"
#endif
#ifndef LOWBIST_SANITIZE_PRESET
#define LOWBIST_SANITIZE_PRESET ""
#endif
#ifndef LOWBIST_BUILD_TYPE
#define LOWBIST_BUILD_TYPE ""
#endif
#ifdef __VERSION__
#define LOWBIST_COMPILER __VERSION__
#else
#define LOWBIST_COMPILER "unknown"
#endif

namespace lbist {

const BuildInfo& build_info() {
  static const BuildInfo info{
      LOWBIST_VERSION, LOWBIST_GIT_DESCRIBE, LOWBIST_COMPILER,
      LOWBIST_SANITIZE_PRESET, LOWBIST_BUILD_TYPE};
  return info;
}

Json build_info_json() {
  const BuildInfo& info = build_info();
  Json j = Json::object();
  j.set("version", Json::string(info.version));
  j.set("git", Json::string(info.git));
  j.set("compiler", Json::string(info.compiler));
  j.set("sanitizer", Json::string(info.sanitizer));
  j.set("build_type", Json::string(info.build_type));
  return j;
}

std::string build_info_string() {
  const BuildInfo& info = build_info();
  std::ostringstream os;
  os << "lowbist " << info.version << " (" << info.git << ")\n";
  os << "compiler:  " << info.compiler << "\n";
  os << "sanitizer: " << (info.sanitizer.empty() ? "none" : info.sanitizer)
     << "\n";
  os << "build:     " << info.build_type << "\n";
  return os.str();
}

std::string build_info_line() {
  const BuildInfo& info = build_info();
  std::ostringstream os;
  os << "lowbist " << info.version << " (" << info.git << ")";
  if (!info.build_type.empty()) os << " " << info.build_type;
  if (!info.sanitizer.empty()) os << " sanitize=" << info.sanitizer;
  return os.str();
}

}  // namespace lbist
