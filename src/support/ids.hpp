#pragma once
// Strong index types used across the library.
//
// Every entity in a design (operation, variable, module, register, net, ...)
// is identified by a dense 0-based index.  Raw `int` indices invite mixing a
// variable id with a register id; the `Id` template below makes each entity's
// id a distinct type while keeping the cost of a plain integer.

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

namespace lbist {

/// A strongly-typed dense index.  `Tag` is a phantom type that distinguishes
/// id families (e.g. `Id<struct OpTag>` vs `Id<struct VarTag>`).
template <typename Tag>
class Id {
 public:
  using value_type = std::int32_t;

  /// Constructs an invalid id.  `valid()` is false and `value()` must not be
  /// used for indexing.
  constexpr Id() = default;
  constexpr explicit Id(value_type v) : v_(v) {}

  /// Underlying integer value.  Only meaningful when `valid()`.
  [[nodiscard]] constexpr value_type value() const { return v_; }
  /// Convenience for indexing into std::vector.
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(v_);
  }
  [[nodiscard]] constexpr bool valid() const { return v_ >= 0; }

  /// Sentinel invalid id (also what a default-constructed Id holds).
  [[nodiscard]] static constexpr Id invalid() { return Id{}; }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  value_type v_ = -1;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
  if (!id.valid()) return os << "<invalid>";
  return os << id.value();
}

// Id families used throughout the library.
using OpId = Id<struct OpTag>;         ///< DFG operation
using VarId = Id<struct VarTag>;       ///< DFG variable (edge)
using ModuleId = Id<struct ModuleTag>; ///< functional module (hardware unit)
using RegId = Id<struct RegTag>;       ///< register (color of conflict graph)
using NodeId = Id<struct NodeTag>;     ///< RTL netlist node
using NetId = Id<struct NetTag>;       ///< RTL netlist net

/// A dense map from a strong id to `V`, backed by std::vector.
template <typename IdT, typename V>
class IdMap {
 public:
  IdMap() = default;
  explicit IdMap(std::size_t n, const V& init = V{}) : data_(n, init) {}

  [[nodiscard]] V& operator[](IdT id) { return data_[id.index()]; }
  [[nodiscard]] const V& operator[](IdT id) const { return data_[id.index()]; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  void assign(std::size_t n, const V& init) { data_.assign(n, init); }
  void resize(std::size_t n) { data_.resize(n); }
  void push_back(V v) { data_.push_back(std::move(v)); }

  [[nodiscard]] auto begin() { return data_.begin(); }
  [[nodiscard]] auto end() { return data_.end(); }
  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }

 private:
  std::vector<V> data_;
};

}  // namespace lbist

template <typename Tag>
struct std::hash<lbist::Id<Tag>> {
  std::size_t operator()(lbist::Id<Tag> id) const noexcept {
    return std::hash<typename lbist::Id<Tag>::value_type>{}(id.value());
  }
};
