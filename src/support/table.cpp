#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace lbist {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  LBIST_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  LBIST_CHECK(cells.size() == headers_.size(),
              "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.str();
}

std::string fmt_double(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

}  // namespace lbist
