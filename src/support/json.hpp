#pragma once
// Minimal JSON value tree (no external dependencies): an emitter for the
// library's reports and a parser for machine-readable inputs (the batch
// service's JSONL job manifests).  Build with the static factories or
// Json::parse, inspect with the is_*/as_* accessors, render with dump().

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace lbist {

/// A JSON value tree.  Build with the static factories, render with dump().
class Json {
 public:
  Json() : value_(nullptr) {}

  static Json null() { return Json(); }
  static Json boolean(bool b) { return Json(b); }
  static Json number(double d) { return Json(d); }
  static Json number(int i) { return Json(static_cast<double>(i)); }
  static Json number(std::int64_t i) { return Json(static_cast<double>(i)); }
  static Json number(std::size_t i) { return Json(static_cast<double>(i)); }
  static Json string(std::string s) { return Json(std::move(s)); }
  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }
  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }

  /// Parses one JSON document.  Throws lbist::Error with a precise
  /// "line L, column C" position on malformed input; trailing non-space
  /// content after the document is an error too.  Containers nested
  /// deeper than 256 levels are rejected (the parser is recursive
  /// descent, and untrusted input reaches it over the server socket).
  [[nodiscard]] static Json parse(std::string_view text);

  /// Appends to an array value (must be an array).
  Json& push_back(Json v);
  /// Sets a key on an object value (must be an object); returns *this for
  /// chaining.
  Json& set(const std::string& key, Json v);

  // ---- Inspection -------------------------------------------------------
  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(value_);
  }

  /// Typed reads; each throws lbist::Error when the value has another type.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// as_number() narrowed to int; throws when not integral.
  [[nodiscard]] int as_int() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array/object element count (0 for scalars).
  [[nodiscard]] std::size_t size() const;
  /// Array element access; throws on non-arrays and out-of-range indices.
  [[nodiscard]] const Json& at(std::size_t i) const;
  /// True when an object value has `key`.
  [[nodiscard]] bool contains(const std::string& key) const;
  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Object member lookup; throws when absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// Object keys in insertion order (empty for non-objects).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Serializes with 2-space indentation.
  [[nodiscard]] std::string dump() const;
  /// Serializes on one line (JSONL-friendly; the batch service's format).
  [[nodiscard]] std::string dump_compact() const;

 private:
  struct Array {
    std::vector<Json> items;
  };
  struct Object {
    std::vector<std::pair<std::string, Json>> members;  // insertion order
  };
  using Value =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  explicit Json(bool b) : value_(b) {}
  explicit Json(double d) : value_(d) {}
  explicit Json(std::string s) : value_(std::move(s)) {}

  void write(std::string& out, int indent) const;
  void write_compact(std::string& out) const;

  Value value_;
};

}  // namespace lbist
