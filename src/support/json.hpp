#pragma once
// Minimal JSON emitter (no external dependencies): enough to serialize the
// library's reports for downstream tooling.  Writer only — the library
// never consumes JSON.

#include <initializer_list>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace lbist {

/// A JSON value tree.  Build with the static factories, render with dump().
class Json {
 public:
  Json() : value_(nullptr) {}

  static Json null() { return Json(); }
  static Json boolean(bool b) { return Json(b); }
  static Json number(double d) { return Json(d); }
  static Json number(int i) { return Json(static_cast<double>(i)); }
  static Json string(std::string s) { return Json(std::move(s)); }
  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }
  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }

  /// Appends to an array value (must be an array).
  Json& push_back(Json v);
  /// Sets a key on an object value (must be an object); returns *this for
  /// chaining.
  Json& set(const std::string& key, Json v);

  /// Serializes with 2-space indentation.
  [[nodiscard]] std::string dump() const;

 private:
  struct Array {
    std::vector<Json> items;
  };
  struct Object {
    std::vector<std::pair<std::string, Json>> members;  // insertion order
  };
  using Value =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  explicit Json(bool b) : value_(b) {}
  explicit Json(double d) : value_(d) {}
  explicit Json(std::string s) : value_(std::move(s)) {}

  void write(std::string& out, int indent) const;

  Value value_;
};

}  // namespace lbist
