#pragma once
// Stable content hashing shared across layers: the synthesis cache tags
// keys with it, the disk cache stamps every on-disk record with it, and
// logs/reports use it as a short fingerprint.  FNV-1a is deliberately
// simple — keys are compared by full string everywhere, so the hash only
// needs to be stable across platforms and runs, never collision-proof.

#include <cstdint>
#include <string_view>

namespace lbist {

/// 64-bit FNV-1a content hash (stable across platforms and runs).
[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace lbist
