#pragma once
// Linear-feedback shift registers and multiple-input signature registers —
// the circuit-level substance behind the TPG / SA / BILBO / CBILBO register
// modes.  Used by the BIST fault simulator to validate that the allocated
// test plans actually detect faults (the paper takes this machinery, the
// USC BITS back end, as given; we build it).
//
// Widths 2..32 bits are supported with primitive characteristic polynomials
// (maximal-length sequences).

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace lbist {

/// Primitive polynomial tap mask for an n-bit LFSR (bit i set = x^(i+1)
/// term present; the x^0 term is implicit).  Throws for unsupported widths.
[[nodiscard]] std::uint32_t primitive_taps(int width);

/// Fibonacci LFSR generating a maximal-length pseudo-random sequence.
/// This is the TPG mode of a BILBO register.
class Lfsr {
 public:
  /// `seed` must be non-zero in the low `width` bits: an all-zero state is
  /// the lock-up state of a maximal-length LFSR (it never leaves it, so a
  /// TPG seeded with it would emit constant zero patterns forever).
  /// Throws lbist::Error on an all-zero effective seed.
  Lfsr(int width, std::uint32_t seed);

  /// Current parallel output (the register contents).
  [[nodiscard]] std::uint32_t state() const { return state_; }

  /// Advances one clock; returns the new state.
  std::uint32_t step();

  [[nodiscard]] int width() const { return width_; }
  /// Sequence period = 2^width - 1 for primitive polynomials.
  [[nodiscard]] std::uint64_t period() const {
    return (std::uint64_t{1} << width_) - 1;
  }

 private:
  int width_;
  std::uint32_t mask_;
  std::uint32_t taps_;
  std::uint32_t state_;
};

/// Multiple-input signature register (parallel-input LFSR compactor) —
/// the SA mode of a BILBO register.
class Misr {
 public:
  explicit Misr(int width, std::uint32_t seed = 0);

  /// Compacts one response word into the signature.
  void absorb(std::uint32_t word);

  [[nodiscard]] std::uint32_t signature() const { return state_; }
  [[nodiscard]] int width() const { return width_; }

 private:
  int width_;
  std::uint32_t mask_;
  std::uint32_t taps_;
  std::uint32_t state_;
};

/// A concurrent BILBO register: generates patterns *and* compacts responses
/// in the same clock (two register halves, Wang/McCluskey) — the reason its
/// area is about twice a plain register.
class Cbilbo {
 public:
  Cbilbo(int width, std::uint32_t gen_seed, std::uint32_t sig_seed = 0)
      : gen_(width, gen_seed), sig_(width, sig_seed) {}

  /// Pattern currently driven into the circuit under test.
  [[nodiscard]] std::uint32_t pattern() const { return gen_.state(); }
  /// Clocks both halves: emits the next pattern and compacts `response`.
  void step(std::uint32_t response) {
    sig_.absorb(response);
    gen_.step();
  }
  [[nodiscard]] std::uint32_t signature() const { return sig_.signature(); }

 private:
  Lfsr gen_;
  Misr sig_;
};

}  // namespace lbist
