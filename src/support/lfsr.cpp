#include "support/lfsr.hpp"

#include <bit>

namespace lbist {

std::uint32_t primitive_taps(int width) {
  // Tap masks for primitive polynomials (taps at bit positions, LSB-first;
  // classic tables, e.g. Bardell/McAnney/Savir).  Mask bit i corresponds to
  // stage i+1 feeding the XOR.
  switch (width) {
    case 2: return 0x3;          // x^2 + x + 1
    case 3: return 0x6;          // x^3 + x^2 + 1
    case 4: return 0xC;          // x^4 + x^3 + 1
    case 5: return 0x14;         // x^5 + x^3 + 1
    case 6: return 0x30;         // x^6 + x^5 + 1
    case 7: return 0x60;         // x^7 + x^6 + 1
    case 8: return 0xB8;         // x^8 + x^6 + x^5 + x^4 + 1
    case 9: return 0x110;        // x^9 + x^5 + 1
    case 10: return 0x240;       // x^10 + x^7 + 1
    case 11: return 0x500;       // x^11 + x^9 + 1
    case 12: return 0xE08;       // x^12 + x^11 + x^10 + x^4 + 1
    case 13: return 0x1C80;      // x^13 + x^12 + x^11 + x^8 + 1
    case 14: return 0x3802;      // x^14 + x^13 + x^12 + x^2 + 1
    case 15: return 0x6000;      // x^15 + x^14 + 1
    case 16: return 0xD008;      // x^16 + x^15 + x^13 + x^4 + 1
    case 17: return 0x12000;     // x^17 + x^14 + 1
    case 18: return 0x20400;     // x^18 + x^11 + 1
    case 19: return 0x72000;     // x^19 + x^18 + x^17 + x^14 + 1
    case 20: return 0x90000;     // x^20 + x^17 + 1
    case 21: return 0x140000;    // x^21 + x^19 + 1
    case 22: return 0x300000;    // x^22 + x^21 + 1
    case 23: return 0x420000;    // x^23 + x^18 + 1
    case 24: return 0xE10000;    // x^24 + x^23 + x^22 + x^17 + 1
    case 25: return 0x1200000;   // x^25 + x^22 + 1
    case 26: return 0x2000023;   // x^26 + x^6 + x^2 + x + 1
    case 27: return 0x4000013;   // x^27 + x^5 + x^2 + x + 1
    case 28: return 0x9000000;   // x^28 + x^25 + 1
    case 29: return 0x14000000;  // x^29 + x^27 + 1
    case 30: return 0x20000029;  // x^30 + x^6 + x^4 + x + 1
    case 31: return 0x48000000;  // x^31 + x^28 + 1
    case 32: return 0x80200003;  // x^32 + x^22 + x^2 + x + 1
    default:
      throw Error("no primitive polynomial tabulated for width " +
                  std::to_string(width));
  }
}

namespace {
std::uint32_t width_mask(int width) {
  return width == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << width) - 1);
}
}  // namespace

Lfsr::Lfsr(int width, std::uint32_t seed)
    : width_(width),
      mask_(width_mask(width)),
      taps_(primitive_taps(width)),
      state_(seed & mask_) {
  LBIST_CHECK(state_ != 0,
              "LFSR seed must be non-zero in the low " +
                  std::to_string(width) +
                  " bits (the all-zero state locks up the sequence)");
}

std::uint32_t Lfsr::step() {
  // Fibonacci form: feedback bit = parity of tapped stages, shifted in.
  const std::uint32_t fb =
      static_cast<std::uint32_t>(std::popcount(state_ & taps_) & 1);
  state_ = ((state_ << 1) | fb) & mask_;
  return state_;
}

Misr::Misr(int width, std::uint32_t seed)
    : width_(width),
      mask_(width_mask(width)),
      taps_(primitive_taps(width)),
      state_(seed & mask_) {}

void Misr::absorb(std::uint32_t word) {
  const std::uint32_t fb =
      static_cast<std::uint32_t>(std::popcount(state_ & taps_) & 1);
  state_ = (((state_ << 1) | fb) ^ word) & mask_;
}

}  // namespace lbist
