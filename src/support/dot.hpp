#pragma once
// Minimal Graphviz DOT emitter.  Used to dump DFGs, conflict graphs and RTL
// netlists for inspection (paper Figs. 2, 4, 5 are reproduced as DOT + text).

#include <string>
#include <vector>

namespace lbist {

/// Builder for a DOT graph description.  Node/edge attributes are passed as
/// preformatted `key=value` strings and joined with commas.
class DotWriter {
 public:
  /// `directed` selects digraph vs graph syntax.
  explicit DotWriter(std::string name, bool directed);

  /// Adds a node with optional attributes, e.g. {"label=\"a\"", "shape=box"}.
  void add_node(const std::string& id, std::vector<std::string> attrs = {});

  /// Adds an edge; uses `->` or `--` depending on directedness.
  void add_edge(const std::string& from, const std::string& to,
                std::vector<std::string> attrs = {});

  /// Renders the accumulated graph.
  [[nodiscard]] std::string str() const;

 private:
  std::string name_;
  bool directed_;
  std::vector<std::string> lines_;
};

}  // namespace lbist
