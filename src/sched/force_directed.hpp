#pragma once
// Force-directed scheduling (Paulin & Knight, 1989) — the scheduler behind
// the paper's "Paulin" benchmark.  Minimizes the expected concurrency of
// each operator kind under a fixed latency bound, which tends to minimize
// functional-unit count before binding.

#include "dfg/dfg.hpp"
#include "dfg/schedule.hpp"

namespace lbist {

/// Schedules `dfg` into exactly `latency` steps (must be >= the critical
/// path).  Deterministic: ties are broken by operation id.
[[nodiscard]] Schedule force_directed_schedule(const Dfg& dfg, int latency);

}  // namespace lbist
