#pragma once
// Register-pressure-aware list scheduling.
//
// The schedule fixes the variable lifetimes, hence the conflict graph's
// clique number, hence the register count every binder downstream must
// pay.  This scheduler biases the classic list scheduler's ready queue
// toward operations that *kill* live values (their operands see their last
// use) and away from operations that create long-lived ones, shrinking the
// peak live count — often one register below the plain list schedule on
// filter workloads (see sched_test and bench_scaling).

#include "sched/list_sched.hpp"

namespace lbist {

/// Resource-constrained schedule minimizing (heuristically) the peak
/// number of simultaneously live values.
[[nodiscard]] Schedule min_pressure_schedule(const Dfg& dfg,
                                             const ResourceLimits& limits);

}  // namespace lbist
