#pragma once
// Resource-constrained list scheduling.

#include <map>

#include "dfg/dfg.hpp"
#include "dfg/schedule.hpp"

namespace lbist {

/// Per-kind functional unit limits, e.g. {{Mul, 2}, {Add, 1}}.  Kinds not
/// listed are unlimited.
using ResourceLimits = std::map<OpKind, int>;

/// Classic list scheduling: ready operations are prioritized by ALAP slack
/// (most urgent first) and issued while per-kind unit limits allow.
[[nodiscard]] Schedule list_schedule(const Dfg& dfg,
                                     const ResourceLimits& limits);

}  // namespace lbist
