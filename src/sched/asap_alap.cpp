#include "sched/asap_alap.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace lbist {

IdMap<OpId, int> asap_steps(const Dfg& dfg) {
  IdMap<OpId, int> step(dfg.num_ops(), 0);
  // Operations were appended in dependency order (operands must exist when
  // add_op is called), so a single forward pass suffices.
  for (const auto& op : dfg.ops()) {
    int earliest = 1;
    for (VarId v : {op.lhs, op.rhs}) {
      const auto& var = dfg.var(v);
      if (var.def.valid()) earliest = std::max(earliest, step[var.def] + 1);
    }
    step[op.id] = earliest;
  }
  return step;
}

int critical_path_length(const Dfg& dfg) {
  auto asap = asap_steps(dfg);
  int len = 0;
  for (const auto& op : dfg.ops()) len = std::max(len, asap[op.id]);
  return len;
}

IdMap<OpId, int> alap_steps(const Dfg& dfg, int deadline) {
  LBIST_CHECK(deadline >= critical_path_length(dfg),
              "deadline shorter than the critical path");
  IdMap<OpId, int> step(dfg.num_ops(), deadline);
  // Reverse pass: an op must finish before the earliest consumer of its
  // result.
  const auto& ops = dfg.ops();
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    int latest = deadline;
    const auto& result = dfg.var(it->result);
    for (OpId user : result.uses) {
      latest = std::min(latest, step[user] - 1);
    }
    step[it->id] = latest;
  }
  return step;
}

Schedule asap_schedule(const Dfg& dfg) {
  return Schedule(dfg, asap_steps(dfg));
}

}  // namespace lbist
