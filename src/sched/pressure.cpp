#include "sched/pressure.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "sched/asap_alap.hpp"
#include "support/check.hpp"

namespace lbist {

Schedule min_pressure_schedule(const Dfg& dfg, const ResourceLimits& limits) {
  const int cp = critical_path_length(dfg);
  auto alap = alap_steps(dfg, cp);

  IdMap<OpId, int> step(dfg.num_ops(), 0);
  // Remaining use counts per variable (a value dies when this hits zero).
  IdMap<VarId, int> remaining_uses(dfg.num_vars(), 0);
  for (const auto& v : dfg.vars()) {
    remaining_uses[v.id] = static_cast<int>(v.uses.size());
  }

  std::size_t scheduled = 0;
  int current = 0;
  while (scheduled < dfg.num_ops()) {
    ++current;
    LBIST_CHECK(current <= static_cast<int>(dfg.num_ops()) + cp + 1,
                "pressure scheduler failed to converge");
    std::vector<OpId> ready;
    for (const auto& op : dfg.ops()) {
      if (step[op.id] != 0) continue;
      bool ok = true;
      for (VarId v : {op.lhs, op.rhs}) {
        const auto& var = dfg.var(v);
        if (var.def.valid() &&
            (step[var.def] == 0 || step[var.def] >= current)) {
          ok = false;
          break;
        }
      }
      if (ok) ready.push_back(op.id);
    }

    // Net pressure effect of issuing op now: +1 for the new value, -1 for
    // every operand this op kills.  Prefer pressure-reducing ops, then the
    // urgent ones (least ALAP slack).
    auto pressure_delta = [&](OpId id) {
      const Operation& op = dfg.op(id);
      int delta = 1;
      if (remaining_uses[op.lhs] == 1) --delta;
      if (op.rhs != op.lhs && remaining_uses[op.rhs] == 1) --delta;
      return delta;
    };
    std::stable_sort(ready.begin(), ready.end(), [&](OpId a, OpId b) {
      const int da = pressure_delta(a);
      const int db = pressure_delta(b);
      if (da != db) return da < db;
      return alap[a] < alap[b];
    });

    std::map<OpKind, int> used;
    for (OpId id : ready) {
      const OpKind kind = dfg.op(id).kind;
      auto limit = limits.find(kind);
      if (limit != limits.end() && used[kind] >= limit->second) continue;
      step[id] = current;
      ++used[kind];
      ++scheduled;
      const Operation& op = dfg.op(id);
      --remaining_uses[op.lhs];
      if (op.rhs != op.lhs) --remaining_uses[op.rhs];
    }
  }
  return Schedule(dfg, std::move(step));
}

}  // namespace lbist
