#include "sched/list_sched.hpp"

#include <algorithm>
#include <vector>

#include "sched/asap_alap.hpp"
#include "support/check.hpp"

namespace lbist {

Schedule list_schedule(const Dfg& dfg, const ResourceLimits& limits) {
  const int cp = critical_path_length(dfg);
  // A generous deadline for slack computation; actual latency may exceed cp
  // because of resource limits, so recompute ALAP lazily is not needed —
  // slack ordering only guides priority.
  auto alap = alap_steps(dfg, cp);

  IdMap<OpId, int> step(dfg.num_ops(), 0);
  std::size_t remaining = dfg.num_ops();
  int current = 0;
  while (remaining > 0) {
    ++current;
    LBIST_CHECK(current <= static_cast<int>(dfg.num_ops()) + cp + 1,
                "list scheduler failed to converge");
    // Ready: unscheduled ops whose operands are all produced before now.
    std::vector<OpId> ready;
    for (const auto& op : dfg.ops()) {
      if (step[op.id] != 0) continue;
      bool ok = true;
      for (VarId v : {op.lhs, op.rhs}) {
        const auto& var = dfg.var(v);
        if (var.def.valid() &&
            (step[var.def] == 0 || step[var.def] >= current)) {
          ok = false;
          break;
        }
      }
      if (ok) ready.push_back(op.id);
    }
    std::stable_sort(ready.begin(), ready.end(), [&](OpId a, OpId b) {
      return alap[a] < alap[b];  // least slack first
    });
    std::map<OpKind, int> used;
    for (OpId id : ready) {
      const OpKind kind = dfg.op(id).kind;
      auto limit = limits.find(kind);
      if (limit != limits.end() && used[kind] >= limit->second) continue;
      step[id] = current;
      ++used[kind];
      --remaining;
    }
  }
  return Schedule(dfg, std::move(step));
}

}  // namespace lbist
