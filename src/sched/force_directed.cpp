#include "sched/force_directed.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "sched/asap_alap.hpp"
#include "support/check.hpp"

namespace lbist {

namespace {

struct Frames {
  IdMap<OpId, int> earliest;
  IdMap<OpId, int> latest;
};

/// ASAP/ALAP ranges honoring already-fixed operations (fixed[op] != 0 pins
/// the op to that step).
Frames compute_frames(const Dfg& dfg, int latency,
                      const IdMap<OpId, int>& fixed) {
  Frames f{IdMap<OpId, int>(dfg.num_ops(), 1),
           IdMap<OpId, int>(dfg.num_ops(), latency)};
  for (const auto& op : dfg.ops()) {
    int e = 1;
    for (VarId v : {op.lhs, op.rhs}) {
      const auto& var = dfg.var(v);
      if (var.def.valid()) e = std::max(e, f.earliest[var.def] + 1);
    }
    if (fixed[op.id] != 0) e = fixed[op.id];
    f.earliest[op.id] = e;
  }
  const auto& ops = dfg.ops();
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    int l = latency;
    for (OpId user : dfg.var(it->result).uses) {
      l = std::min(l, f.latest[user] - 1);
    }
    if (fixed[it->id] != 0) l = fixed[it->id];
    f.latest[it->id] = l;
    LBIST_CHECK(f.earliest[it->id] <= l,
                "infeasible frame for op " + it->name);
  }
  return f;
}

/// Distribution graphs: expected number of kind-k operations in each step.
std::map<OpKind, std::vector<double>> distribution_graphs(
    const Dfg& dfg, int latency, const Frames& f) {
  std::map<OpKind, std::vector<double>> dg;
  for (const auto& op : dfg.ops()) {
    auto& row = dg[op.kind];
    if (row.empty()) row.assign(static_cast<std::size_t>(latency) + 1, 0.0);
    const int e = f.earliest[op.id];
    const int l = f.latest[op.id];
    const double p = 1.0 / static_cast<double>(l - e + 1);
    for (int t = e; t <= l; ++t) row[static_cast<std::size_t>(t)] += p;
  }
  return dg;
}

/// Self force of placing `op` at `t` given distribution `row` and frame
/// [e, l]: DG(t) minus the mean DG over the frame.
double self_force(const std::vector<double>& row, int e, int l, int t) {
  double mean = 0.0;
  for (int j = e; j <= l; ++j) mean += row[static_cast<std::size_t>(j)];
  mean /= static_cast<double>(l - e + 1);
  return row[static_cast<std::size_t>(t)] - mean;
}

}  // namespace

Schedule force_directed_schedule(const Dfg& dfg, int latency) {
  LBIST_CHECK(latency >= critical_path_length(dfg),
              "latency below critical path");
  IdMap<OpId, int> fixed(dfg.num_ops(), 0);

  for (std::size_t fixed_count = 0; fixed_count < dfg.num_ops();
       ++fixed_count) {
    Frames f = compute_frames(dfg, latency, fixed);
    auto dg = distribution_graphs(dfg, latency, f);

    double best_force = std::numeric_limits<double>::infinity();
    OpId best_op;
    int best_t = 0;
    for (const auto& op : dfg.ops()) {
      if (fixed[op.id] != 0) continue;
      const int e = f.earliest[op.id];
      const int l = f.latest[op.id];
      for (int t = e; t <= l; ++t) {
        double force = self_force(dg[op.kind], e, l, t);
        // Implied restriction of immediate predecessors (must end < t) and
        // successors (must start > t): add their self forces under the
        // tightened frames.
        for (VarId v : {op.lhs, op.rhs}) {
          const auto& var = dfg.var(v);
          if (!var.def.valid() || fixed[var.def] != 0) continue;
          const auto& p = dfg.op(var.def);
          const int pe = f.earliest[p.id];
          const int pl = std::min(f.latest[p.id], t - 1);
          if (pl >= pe && pl < f.latest[p.id]) {
            // Mean-shift charge: average DG over the tightened frame minus
            // over the old frame.
            double old_mean = 0.0, new_mean = 0.0;
            for (int j = pe; j <= f.latest[p.id]; ++j) {
              old_mean += dg[p.kind][static_cast<std::size_t>(j)];
            }
            old_mean /= static_cast<double>(f.latest[p.id] - pe + 1);
            for (int j = pe; j <= pl; ++j) {
              new_mean += dg[p.kind][static_cast<std::size_t>(j)];
            }
            new_mean /= static_cast<double>(pl - pe + 1);
            force += new_mean - old_mean;
          }
        }
        for (OpId user : dfg.var(op.result).uses) {
          if (fixed[user] != 0) continue;
          const auto& s = dfg.op(user);
          const int se = std::max(f.earliest[s.id], t + 1);
          const int sl = f.latest[s.id];
          if (se <= sl && se > f.earliest[s.id]) {
            double old_mean = 0.0, new_mean = 0.0;
            for (int j = f.earliest[s.id]; j <= sl; ++j) {
              old_mean += dg[s.kind][static_cast<std::size_t>(j)];
            }
            old_mean /= static_cast<double>(sl - f.earliest[s.id] + 1);
            for (int j = se; j <= sl; ++j) {
              new_mean += dg[s.kind][static_cast<std::size_t>(j)];
            }
            new_mean /= static_cast<double>(sl - se + 1);
            force += new_mean - old_mean;
          }
        }
        if (force < best_force - 1e-12) {
          best_force = force;
          best_op = op.id;
          best_t = t;
        }
      }
    }
    LBIST_CHECK(best_op.valid(), "force-directed scheduler found no move");
    fixed[best_op] = best_t;
  }
  return Schedule(dfg, std::move(fixed));
}

}  // namespace lbist
