#pragma once
// As-soon-as-possible / as-late-as-possible scheduling.  The paper takes a
// scheduled DFG as input; these schedulers let users (and our FIR/random
// workloads) produce one, and feed the mobility ranges of the force-directed
// scheduler.

#include "dfg/dfg.hpp"
#include "dfg/schedule.hpp"
#include "support/ids.hpp"

namespace lbist {

/// Earliest feasible step per operation (every op takes one step; operands
/// must be produced in strictly earlier steps).
[[nodiscard]] IdMap<OpId, int> asap_steps(const Dfg& dfg);

/// Latest feasible step per operation under a total latency of `deadline`
/// steps.  Throws if the critical path exceeds the deadline.
[[nodiscard]] IdMap<OpId, int> alap_steps(const Dfg& dfg, int deadline);

/// Convenience: the ASAP schedule itself.
[[nodiscard]] Schedule asap_schedule(const Dfg& dfg);

/// Length of the critical path in steps (= latency of the ASAP schedule).
[[nodiscard]] int critical_path_length(const Dfg& dfg);

}  // namespace lbist
