#pragma once
// The hybrid-BIST Pareto engine: sweeps (binder arm × hybrid
// configuration) for a scheduled design and grades every point on three
// objectives at once —
//
//   bist_area       extra gates of the BIST register conversions
//                   (minimize; from the existing allocator)
//   fault_coverage  gate-level stuck-at coverage of the hybrid session
//                   (maximize)
//   test_length     total test clocks across the session plan (minimize)
//
// The DAC'95 paper optimizes the first objective only; this engine
// surfaces the trade-offs the other two introduce (ROADMAP item 3).
// Results are bit-identical across `-j 1` and `-j N` (core/sweep.hpp).

#include <cstddef>
#include <string>
#include <vector>

#include "core/explorer.hpp"
#include "hybrid/session.hpp"
#include "support/json.hpp"

namespace lbist {

class MetricsRegistry;  // service/metrics.hpp

/// One (design, binder, configuration) evaluation.
struct HybridPoint {
  std::string label;   ///< module spec
  BinderKind binder = BinderKind::BistAware;
  std::string config;  ///< HybridConfig name
  int num_registers = 0;
  int num_mux = 0;
  double functional_area = 0.0;
  double bist_area = 0.0;      ///< objective 1 (minimize)
  double fault_coverage = 0.0; ///< objective 2 (maximize), 0..1
  long long test_length = 0;   ///< objective 3 (minimize), clocks
  int faults_total = 0;
  int hard_faults = 0;
  int reseeds = 0;
  int topups = 0;
  int sessions = 0;
};

/// Sweep configuration.
struct HybridSweepOptions {
  std::vector<BinderKind> binders = {BinderKind::Traditional,
                                     BinderKind::BistAware};
  /// Test-scheme axis; empty = default_hybrid_configs(patterns).
  std::vector<HybridConfig> configs;
  AreaModel area{};
  int patterns = 256;  ///< budget the default config ladder scales from
  /// Worker threads (1 = serial, < 1 = hardware concurrency); results are
  /// in input order (spec-major, binder, config) regardless.
  int jobs = 1;
  TraceRecorder* trace = nullptr;      ///< borrowed, not owned
  MetricsRegistry* metrics = nullptr;  ///< borrowed, not owned
};

/// Evaluates every (spec, binder, config) point of a scheduled design.
[[nodiscard]] std::vector<HybridPoint> explore_hybrid(
    const Dfg& dfg, const Schedule& sched,
    const std::vector<std::string>& specs,
    const HybridSweepOptions& opts = {});

/// True when `x` is at least as good as `y` on all three objectives and
/// strictly better on one.
[[nodiscard]] bool hybrid_dominates(const HybridPoint& x,
                                    const HybridPoint& y);

/// Indices of the non-dominated points.
[[nodiscard]] std::vector<std::size_t> hybrid_pareto_front(
    const std::vector<HybridPoint>& points);

/// Renders the sweep as an aligned table (front members starred).
[[nodiscard]] std::string describe_hybrid_points(
    const std::vector<HybridPoint>& points);

/// Machine-readable sweep report: every point with its objectives and a
/// "pareto" flag.
[[nodiscard]] Json hybrid_points_json(const std::vector<HybridPoint>& points);

}  // namespace lbist
