#include "hybrid/pareto.hpp"

#include <utility>

#include "core/sweep.hpp"
#include "obs/trace.hpp"
#include "passes/synth_state.hpp"
#include "service/metrics.hpp"
#include "support/table.hpp"

namespace lbist {

namespace {

/// One synthesized binder arm, shared by every configuration point.
struct Arm {
  std::string spec;
  BinderKind binder = BinderKind::BistAware;
  SynthesisResult result;
};

}  // namespace

std::vector<HybridPoint> explore_hybrid(const Dfg& dfg, const Schedule& sched,
                                        const std::vector<std::string>& specs,
                                        const HybridSweepOptions& opts) {
  const std::vector<HybridConfig> configs =
      opts.configs.empty() ? default_hybrid_configs(opts.patterns)
                           : opts.configs;
  const std::size_t num_binders = opts.binders.size();
  const std::size_t num_configs = configs.size();
  const int width = opts.area.bit_width;

  // Stage 1: synthesize every (spec, binder) arm once — the allocator's
  // area objective does not depend on the test scheme.
  std::vector<Arm> arms = run_sweep<Arm>(
      specs.size() * num_binders, opts.jobs, [&](std::size_t i) {
        Arm arm;
        arm.spec = specs[i / num_binders];
        arm.binder = opts.binders[i % num_binders];
        SynthesisOptions sopts;
        sopts.binder = arm.binder;
        sopts.area = opts.area;
        sopts.trace = opts.trace;
        arm.result =
            Synthesizer(sopts).run(dfg, sched, parse_module_spec(arm.spec));
        return arm;
      });

  // Stage 2: grade every (arm, config) point.
  std::vector<HybridPoint> points = run_sweep<HybridPoint>(
      arms.size() * num_configs, opts.jobs, [&](std::size_t i) {
        const Arm& arm = arms[i / num_configs];
        const HybridConfig& cfg = configs[i % num_configs];
        auto span = trace_span(opts.trace, "hybrid_point");
        if (span.active()) {
          span.arg("label", arm.spec);
          span.arg("binder", binder_kind_name(arm.binder));
          span.arg("config", cfg.name);
        }
        const HybridSessionResult session = run_hybrid_session(
            arm.result.datapath, arm.result.bist, cfg, width, opts.trace);

        HybridPoint p;
        p.label = arm.spec;
        p.binder = arm.binder;
        p.config = cfg.name;
        p.num_registers = arm.result.num_registers();
        p.num_mux = arm.result.num_mux();
        p.functional_area = arm.result.functional_area;
        p.bist_area = arm.result.bist.extra_area;
        p.fault_coverage = session.coverage();
        p.test_length = session.test_clocks;
        p.faults_total = session.faults_total;
        p.hard_faults = session.hard_faults;
        p.reseeds = session.reseeds_used;
        p.topups = session.topups_used;
        p.sessions = session.num_sessions;
        return p;
      });

  // Session statistics are recorded from the final (deterministic) points,
  // not inside the workers, so the metrics dump is identical for any -j.
  if (opts.metrics != nullptr) {
    MetricsRegistry& m = *opts.metrics;
    for (const HybridPoint& p : points) {
      m.counter("hybrid_points").inc();
      m.counter("hybrid_hard_faults")
          .inc(static_cast<std::uint64_t>(p.hard_faults));
      m.counter("hybrid_reseeds").inc(static_cast<std::uint64_t>(p.reseeds));
      m.counter("hybrid_topups").inc(static_cast<std::uint64_t>(p.topups));
      m.histogram("hybrid_coverage_percent").record(p.fault_coverage * 100.0);
      m.histogram("hybrid_test_length_clocks")
          .record(static_cast<double>(p.test_length));
    }
  }
  return points;
}

bool hybrid_dominates(const HybridPoint& x, const HybridPoint& y) {
  const bool no_worse = x.bist_area <= y.bist_area &&
                        x.fault_coverage >= y.fault_coverage &&
                        x.test_length <= y.test_length;
  const bool better = x.bist_area < y.bist_area ||
                      x.fault_coverage > y.fault_coverage ||
                      x.test_length < y.test_length;
  return no_worse && better;
}

std::vector<std::size_t> hybrid_pareto_front(
    const std::vector<HybridPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i != j && hybrid_dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::string describe_hybrid_points(const std::vector<HybridPoint>& points) {
  TextTable t({"point", "binder", "config", "BIST area", "coverage %",
               "test clocks", "hard", "reseeds", "topups", "sessions"});
  const auto front = hybrid_pareto_front(points);
  auto on_front = [&](std::size_t i) {
    for (std::size_t f : front) {
      if (f == i) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    const HybridPoint& p = points[i];
    t.add_row({p.label + (on_front(i) ? " *" : ""),
               std::string(binder_kind_name(p.binder)), p.config,
               fmt_double(p.bist_area, 0),
               fmt_double(p.fault_coverage * 100.0),
               std::to_string(p.test_length), std::to_string(p.hard_faults),
               std::to_string(p.reseeds), std::to_string(p.topups),
               std::to_string(p.sessions)});
  }
  return t.str() +
         "(* = on the (BIST area, fault coverage, test length) Pareto "
         "front)\n";
}

Json hybrid_points_json(const std::vector<HybridPoint>& points) {
  const auto front = hybrid_pareto_front(points);
  std::vector<bool> on_front(points.size(), false);
  for (std::size_t f : front) on_front[f] = true;

  Json arr = Json::array();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const HybridPoint& p = points[i];
    arr.push_back(
        Json::object()
            .set("label", Json::string(p.label))
            .set("binder",
                 Json::string(std::string(binder_kind_name(p.binder))))
            .set("config", Json::string(p.config))
            .set("registers", Json::number(p.num_registers))
            .set("mux", Json::number(p.num_mux))
            .set("functional_area", Json::number(p.functional_area))
            .set("bist_area", Json::number(p.bist_area))
            .set("fault_coverage", Json::number(p.fault_coverage))
            .set("test_length",
                 Json::number(static_cast<std::int64_t>(p.test_length)))
            .set("faults_total", Json::number(p.faults_total))
            .set("hard_faults", Json::number(p.hard_faults))
            .set("reseeds", Json::number(p.reseeds))
            .set("topups", Json::number(p.topups))
            .set("sessions", Json::number(p.sessions))
            .set("pareto", Json::boolean(on_front[i])));
  }
  return Json::object()
      .set("objectives", Json::array()
                             .push_back(Json::string("bist_area"))
                             .push_back(Json::string("fault_coverage"))
                             .push_back(Json::string("test_length")))
      .set("points", std::move(arr));
}

}  // namespace lbist
