#pragma once
// Optional post-pipeline hybrid evaluation: runs the remaining synthesis
// passes on a SynthState (e.g. one restored from a posted IR snapshot),
// grades the resulting BIST plan under one hybrid configuration, and
// stores the report in the state's `aux["hybrid"]` slot so a re-snapshot
// carries it.  This is what the server's {"type":"hybrid"} request and
// the CLI resume path call.

#include "hybrid/session.hpp"
#include "passes/pipeline.hpp"

namespace lbist {

/// Serializes a configuration (every field that affects the outcome).
[[nodiscard]] Json hybrid_config_to_json(const HybridConfig& config);

/// Inverse of hybrid_config_to_json; missing fields keep their defaults,
/// unknown mode names throw lbist::Error.
[[nodiscard]] HybridConfig hybrid_config_from_json(const Json& j);

/// Serializes a session result (aggregates + per-module breakdown).
[[nodiscard]] Json hybrid_result_to_json(const HybridSessionResult& result);

/// Runs any passes `state` has not completed, evaluates `config` against
/// the final BIST plan, records the report under `state.aux["hybrid"]`
/// and returns it.  The report holds the config, the session result and
/// the three sweep objectives (bist_area / fault_coverage / test_length).
[[nodiscard]] Json evaluate_hybrid(SynthState& state,
                                   const HybridConfig& config);

}  // namespace lbist
