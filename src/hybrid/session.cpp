#include "hybrid/session.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <utility>

#include "bist/fault_sim.hpp"
#include "bist/sessions.hpp"
#include "gates/gate_fault_sim.hpp"
#include "gates/gate_selftest.hpp"
#include "gates/module_builders.hpp"
#include "hybrid/reseed.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace lbist {

const char* hybrid_mode_name(HybridMode mode) {
  switch (mode) {
    case HybridMode::PseudoRandom:
      return "pseudo-random";
    case HybridMode::Reseed:
      return "reseed";
    case HybridMode::ReseedTopup:
      return "reseed+topup";
    case HybridMode::Evolved:
      return "evolved";
  }
  return "?";
}

std::vector<HybridConfig> default_hybrid_configs(int patterns) {
  if (patterns < 16) patterns = 16;
  const int short_pr = std::max(16, patterns / 4);
  std::vector<HybridConfig> configs;

  HybridConfig pr;
  pr.name = "pr";
  pr.mode = HybridMode::PseudoRandom;
  pr.pr_patterns = patterns;
  configs.push_back(pr);

  HybridConfig pr_short;
  pr_short.name = "pr-short";
  pr_short.mode = HybridMode::PseudoRandom;
  pr_short.pr_patterns = short_pr;
  configs.push_back(pr_short);

  HybridConfig hybrid;
  hybrid.name = "hybrid";
  hybrid.mode = HybridMode::Reseed;
  hybrid.pr_patterns = short_pr;
  hybrid.max_reseeds = 32;
  hybrid.reseed_burst = 16;
  configs.push_back(hybrid);

  HybridConfig topup;
  topup.name = "hybrid+topup";
  topup.mode = HybridMode::ReseedTopup;
  topup.pr_patterns = short_pr;
  topup.max_reseeds = 16;
  topup.reseed_burst = 16;
  configs.push_back(topup);

  HybridConfig evolve;
  evolve.name = "evolve";
  evolve.mode = HybridMode::Evolved;
  evolve.pr_patterns = short_pr;
  configs.push_back(evolve);

  return configs;
}

namespace {

/// Clocks a `patterns`-long LFSR phase actually spends (period cap).
long long phase_clocks(int patterns, int width) {
  const long long period = (1LL << width) - 1;
  return std::min<long long>(patterns, period);
}

/// Aggregated outcome of testing one module *function* (OpKind) under one
/// configuration — the memoizable unit: it depends only on (kind, width,
/// seeds, config), not on which datapath the module sits in.
struct KindOutcome {
  int total = 0;
  int pr = 0;
  int reseed = 0;
  int topup = 0;
  int hard = 0;
  int reseeds = 0;
  int topups = 0;
  long long clocks = 0;
};

int fault_key(const GateFault& f) {
  return f.node * 2 + (f.stuck_one ? 1 : 0);
}

KindOutcome compute_kind(OpKind kind, int width, std::uint32_t seed_l,
                         std::uint32_t seed_r, const HybridConfig& cfg,
                         TraceRecorder* trace) {
  const ModuleNetlist net = build_module(kind, width);
  KindOutcome out;

  std::uint32_t sa = seed_l;
  std::uint32_t sb = seed_r;
  if (cfg.mode == HybridMode::Evolved) {
    auto span = trace_span(trace, "hybrid_evolve");
    const EvolveOutcome evolved =
        evolve_seed_pair(net, cfg.pr_patterns, cfg.evolve);
    sa = evolved.best.a;
    sb = evolved.best.b;
    if (span.active()) {
      span.arg("detected", static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(evolved.detected)));
    }
  }

  GateBistDetail detail;
  {
    auto span = trace_span(trace, "hybrid_pr");
    detail = simulate_gate_bist_seeded(net, sa, sb, cfg.pr_patterns);
    if (span.active()) {
      span.arg("patterns",
               static_cast<std::uint64_t>(phase_clocks(cfg.pr_patterns,
                                                       width)));
      span.arg("detected", static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(
                                   detail.summary.detected)));
    }
  }
  out.total = detail.summary.total;
  out.pr = detail.summary.detected;
  out.hard = static_cast<int>(detail.undetected.size());
  out.clocks = phase_clocks(cfg.pr_patterns, width);

  std::vector<GateFault> remaining = detail.undetected;
  // Hard faults deferred past the reseed phase, with any pattern the seed
  // search already found (reused by top-up without re-searching).
  std::vector<std::pair<GateFault, std::optional<SeedPair>>> deferred;

  if (cfg.mode == HybridMode::Reseed ||
      cfg.mode == HybridMode::ReseedTopup) {
    auto span = trace_span(trace, "hybrid_reseed");
    while (!remaining.empty() && out.reseeds < cfg.max_reseeds) {
      const GateFault f = remaining.front();
      remaining.erase(remaining.begin());
      const std::optional<SeedPair> pat = find_detecting_pattern(net, f);
      if (!pat || pat->a == 0 || pat->b == 0) {
        // Redundant fault, or the only tests need an all-zero operand —
        // a state a maximal-length LFSR can never hold, so reseeding
        // cannot apply it.  Top-up (a scan load) still can.
        deferred.emplace_back(f, pat);
        continue;
      }
      ++out.reseeds;
      out.clocks += width + phase_clocks(cfg.reseed_burst, width);
      const GateBistDetail burst =
          simulate_gate_bist_seeded(net, pat->a, pat->b, cfg.reseed_burst);
      std::set<int> burst_undetected;
      for (const GateFault& g : burst.undetected) {
        burst_undetected.insert(fault_key(g));
      }
      std::vector<GateFault> still;
      for (const GateFault& g : remaining) {
        if (burst_undetected.count(fault_key(g)) != 0) {
          still.push_back(g);
        } else {
          ++out.reseed;
        }
      }
      if (burst_undetected.count(fault_key(f)) != 0) {
        // The target itself survived the burst's MISR check (aliasing or
        // burst too short to re-visit the pattern); defer it rather than
        // retrying forever.
        deferred.emplace_back(f, pat);
      } else {
        ++out.reseed;
      }
      remaining = std::move(still);
    }
    if (span.active()) {
      span.arg("reseeds",
               static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(out.reseeds)));
      span.arg("detected", static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(out.reseed)));
    }
  }
  for (const GateFault& g : remaining) {
    deferred.emplace_back(g, std::nullopt);
  }

  if (cfg.mode == HybridMode::ReseedTopup) {
    auto span = trace_span(trace, "hybrid_topup");
    for (const auto& [fault, known] : deferred) {
      const std::optional<SeedPair> pat =
          known ? known : find_detecting_pattern(net, fault);
      if (!pat) continue;  // redundant: no test exists within the search
      ++out.topups;
      ++out.topup;
      out.clocks += width + 1;  // scan the pattern in, one capture clock
    }
    if (span.active()) {
      span.arg("topups", static_cast<std::uint64_t>(
                             static_cast<std::uint32_t>(out.topups)));
    }
  }

  return out;
}

/// Memoized compute_kind: the sweep revisits the same (kind, width, seeds,
/// config) many times across binder arms and specs.  Values are
/// deterministic functions of the key, so a cross-thread race at worst
/// recomputes the identical value.
KindOutcome compute_kind_cached(OpKind kind, int width, std::uint32_t seed_l,
                                std::uint32_t seed_r,
                                const HybridConfig& cfg,
                                TraceRecorder* trace) {
  std::string key = std::string(symbol(kind));
  key += '|';
  key += std::to_string(width) + "|" + std::to_string(seed_l) + "|" +
         std::to_string(seed_r) + "|" +
         std::to_string(static_cast<int>(cfg.mode)) + "|" +
         std::to_string(cfg.pr_patterns) + "|" +
         std::to_string(cfg.max_reseeds) + "|" +
         std::to_string(cfg.reseed_burst) + "|" +
         std::to_string(cfg.evolve.population) + "|" +
         std::to_string(cfg.evolve.generations) + "|" +
         std::to_string(cfg.evolve.seed);

  static std::mutex mu;
  static std::map<std::string, KindOutcome> memo;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
  }
  const KindOutcome out = compute_kind(kind, width, seed_l, seed_r, cfg,
                                       trace);
  std::lock_guard<std::mutex> lock(mu);
  memo.emplace(key, out);
  return out;
}

}  // namespace

HybridSessionResult run_hybrid_session(const Datapath& dp,
                                       const BistSolution& solution,
                                       const HybridConfig& config, int width,
                                       TraceRecorder* trace) {
  LBIST_CHECK(solution.embeddings.size() == dp.modules.size(),
              "hybrid session: solution does not match the data path");
  const TestSessionPlan plan = schedule_test_sessions(dp, solution);

  HybridSessionResult result;
  result.num_sessions = plan.num_sessions;
  std::vector<long long> session_clocks(
      static_cast<std::size_t>(std::max(plan.num_sessions, 0)), 0);

  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    if (!solution.embeddings[m].has_value()) continue;
    const BistEmbedding& e = *solution.embeddings[m];
    LBIST_CHECK(!e.uses_transparency(),
                "hybrid grading of transparent paths is not supported");

    auto span = trace_span(trace, "hybrid_module");
    if (span.active()) {
      span.arg("module", static_cast<std::uint64_t>(m));
      span.arg("config", config.name);
    }

    ModuleHybridResult report;
    report.module = m;

    bool all_kinds_modeled = true;
    for (OpKind k : dp.modules[m].proto.supports) {
      all_kinds_modeled = all_kinds_modeled && has_gate_level_model(k);
    }
    if (!all_kinds_modeled) {
      // Port-fault fallback (dividers): pseudo-random only — reseeding
      // needs the gate netlist to target specific faults.
      report.gate_level = false;
      const CoverageResult cov =
          simulate_module_bist(dp.modules[m].proto, width,
                               config.pr_patterns);
      report.faults_total = cov.total;
      report.detected_pr = cov.detected;
      report.hard_faults = cov.total - cov.detected;
      report.test_clocks =
          static_cast<long long>(dp.modules[m].proto.supports.size()) *
          phase_clocks(config.pr_patterns, width);
    } else {
      const std::uint32_t seed_l = chip_seed(e.tpg_left, width);
      const std::uint32_t seed_r = chip_seed(e.tpg_right, width);
      for (OpKind k : dp.modules[m].proto.supports) {
        const KindOutcome out =
            compute_kind_cached(k, width, seed_l, seed_r, config, trace);
        report.faults_total += out.total;
        report.detected_pr += out.pr;
        report.detected_reseed += out.reseed;
        report.detected_topup += out.topup;
        report.hard_faults += out.hard;
        report.reseeds_used += out.reseeds;
        report.topups_used += out.topups;
        report.test_clocks += out.clocks;
      }
    }

    if (span.active()) {
      span.arg("faults", static_cast<std::uint64_t>(
                             static_cast<std::uint32_t>(report.faults_total)));
      span.arg("clocks",
               static_cast<std::uint64_t>(report.test_clocks));
    }

    const int s = plan.session_of[m];
    if (s >= 0) {
      session_clocks[static_cast<std::size_t>(s)] =
          std::max(session_clocks[static_cast<std::size_t>(s)],
                   report.test_clocks);
    }
    result.faults_total += report.faults_total;
    result.faults_detected += report.detected();
    result.hard_faults += report.hard_faults;
    result.reseeds_used += report.reseeds_used;
    result.topups_used += report.topups_used;
    result.modules.push_back(report);
  }

  for (long long clocks : session_clocks) result.test_clocks += clocks;
  return result;
}

}  // namespace lbist
