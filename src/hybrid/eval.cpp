#include "hybrid/eval.hpp"

#include <utility>

#include "support/check.hpp"

namespace lbist {

namespace {

HybridMode mode_from_name(const std::string& name) {
  if (name == "pseudo-random") return HybridMode::PseudoRandom;
  if (name == "reseed") return HybridMode::Reseed;
  if (name == "reseed+topup") return HybridMode::ReseedTopup;
  if (name == "evolved") return HybridMode::Evolved;
  throw Error("unknown hybrid mode: " + name);
}

}  // namespace

Json hybrid_config_to_json(const HybridConfig& config) {
  return Json::object()
      .set("name", Json::string(config.name))
      .set("mode", Json::string(hybrid_mode_name(config.mode)))
      .set("pr_patterns", Json::number(config.pr_patterns))
      .set("max_reseeds", Json::number(config.max_reseeds))
      .set("reseed_burst", Json::number(config.reseed_burst))
      .set("evolve_population", Json::number(config.evolve.population))
      .set("evolve_generations", Json::number(config.evolve.generations))
      .set("evolve_seed",
           Json::number(static_cast<std::int64_t>(config.evolve.seed)));
}

HybridConfig hybrid_config_from_json(const Json& j) {
  HybridConfig config;
  if (const Json* name = j.find("name")) config.name = name->as_string();
  if (const Json* mode = j.find("mode")) {
    config.mode = mode_from_name(mode->as_string());
  }
  if (const Json* v = j.find("pr_patterns")) config.pr_patterns = v->as_int();
  if (const Json* v = j.find("max_reseeds")) config.max_reseeds = v->as_int();
  if (const Json* v = j.find("reseed_burst")) {
    config.reseed_burst = v->as_int();
  }
  if (const Json* v = j.find("evolve_population")) {
    config.evolve.population = v->as_int();
  }
  if (const Json* v = j.find("evolve_generations")) {
    config.evolve.generations = v->as_int();
  }
  if (const Json* v = j.find("evolve_seed")) {
    const double seed = v->as_number();
    LBIST_CHECK(seed >= 0, "evolve_seed must be non-negative");
    config.evolve.seed = static_cast<std::uint64_t>(seed);
  }
  LBIST_CHECK(config.pr_patterns > 0, "pr_patterns must be positive");
  LBIST_CHECK(config.max_reseeds >= 0, "max_reseeds must be non-negative");
  LBIST_CHECK(config.reseed_burst > 0, "reseed_burst must be positive");
  return config;
}

Json hybrid_result_to_json(const HybridSessionResult& result) {
  Json modules = Json::array();
  for (const ModuleHybridResult& m : result.modules) {
    modules.push_back(
        Json::object()
            .set("module", Json::number(m.module))
            .set("gate_level", Json::boolean(m.gate_level))
            .set("faults_total", Json::number(m.faults_total))
            .set("detected_pr", Json::number(m.detected_pr))
            .set("detected_reseed", Json::number(m.detected_reseed))
            .set("detected_topup", Json::number(m.detected_topup))
            .set("hard_faults", Json::number(m.hard_faults))
            .set("reseeds", Json::number(m.reseeds_used))
            .set("topups", Json::number(m.topups_used))
            .set("test_clocks",
                 Json::number(static_cast<std::int64_t>(m.test_clocks))));
  }
  return Json::object()
      .set("faults_total", Json::number(result.faults_total))
      .set("faults_detected", Json::number(result.faults_detected))
      .set("fault_coverage", Json::number(result.coverage()))
      .set("hard_faults", Json::number(result.hard_faults))
      .set("reseeds", Json::number(result.reseeds_used))
      .set("topups", Json::number(result.topups_used))
      .set("sessions", Json::number(result.num_sessions))
      .set("test_length",
           Json::number(static_cast<std::int64_t>(result.test_clocks)))
      .set("modules", std::move(modules));
}

Json evaluate_hybrid(SynthState& state, const HybridConfig& config) {
  PassPipeline::standard().run(state);
  const int width = state.options().area.bit_width;
  const HybridSessionResult session =
      run_hybrid_session(state.result.datapath, state.result.bist, config,
                         width, state.options().trace);

  Json report = Json::object()
                    .set("config", hybrid_config_to_json(config))
                    .set("bist_area",
                         Json::number(state.result.bist.extra_area))
                    .set("result", hybrid_result_to_json(session));
  state.aux["hybrid"] = report;
  return report;
}

}  // namespace lbist
