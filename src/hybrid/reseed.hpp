#pragma once
// Deterministic per-fault seed computation for LFSR reseeding.
//
// After the pseudo-random phase, each remaining hard fault needs an
// operand pattern that sensitizes it.  Loading that pattern into the TPG
// pair as a fresh seed (a reseed: one scan load of `width` clocks) changes
// the *relative phase* of the two lockstep LFSRs, so the following burst
// walks (a, b) pairs the chip-seed trajectory can never visit — that, not
// extra pattern count, is where reseeding's coverage comes from.
//
// The search is a deterministic function of the netlist and the fault
// (independent of call order and thread count):
//
//   1. Cone phase — when the fault's input support is small (the usual
//      case for ripple/array structures: a cell sees a handful of operand
//      bits), exhaustively enumerate the support assignments over three
//      fixed backgrounds.  Complete for small cones: if no test exists
//      there with these backgrounds, fall through.
//   2. Probe phase — a fixed splitmix64 stream keyed by the fault probes
//      `random_budget` full-width operand pairs.
//
// Returns nullopt when both phases fail (redundant or hard-to-excite
// faults); callers count those as permanently undetected.

#include <cstdint>
#include <optional>

#include "gates/gate_fault_sim.hpp"

namespace lbist {

/// An operand pattern, doubling as a TPG seed pair when non-zero.
struct SeedPair {
  std::uint32_t a = 1;
  std::uint32_t b = 1;
};

/// Searches for a pattern that detects `fault` on `module` (alias-free
/// output comparison).  Deterministic; see the header comment for the
/// two-phase strategy.
[[nodiscard]] std::optional<SeedPair> find_detecting_pattern(
    const ModuleNetlist& module, const GateFault& fault,
    int random_budget = 2048);

}  // namespace lbist
