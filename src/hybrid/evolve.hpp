#pragma once
// Evolutionary test-generation baseline (cf. "Evolutionary Approach to
// Test Generation for Functional BIST"): a small, fully deterministic GA
// over the TPG seed pair.  Instead of reseeding per hard fault, this arm
// asks how far a *single* well-chosen seed pair gets within the same
// pattern budget — the comparison point that shows whether hybrid
// reseeding earns its scan-load clocks.
//
// Determinism: fixed population size, generation count and splitmix64
// stream (keyed by the config's evolve_seed and the netlist shape), so
// the winning pair is a pure function of (netlist, budget, config).

#include <cstdint>

#include "gates/gate_fault_sim.hpp"
#include "hybrid/reseed.hpp"

namespace lbist {

struct EvolveParams {
  int population = 8;
  int generations = 6;
  std::uint64_t seed = 0x105EB157ULL;  ///< GA stream seed
};

struct EvolveOutcome {
  SeedPair best;
  int detected = 0;  ///< faults the best pair detects within the budget
};

/// Evolves a seed pair maximizing faults detected by a `patterns`-clock
/// pseudo-random session (period-capped).  Fitness ties break toward the
/// earlier candidate, keeping the result order-independent.
[[nodiscard]] EvolveOutcome evolve_seed_pair(const ModuleNetlist& module,
                                             int patterns,
                                             const EvolveParams& params);

}  // namespace lbist
