#include "hybrid/evolve.hpp"

#include <vector>

namespace lbist {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint32_t nonzero(std::uint32_t v, std::uint32_t mask) {
  v &= mask;
  return v == 0 ? 1 : v;
}

struct Candidate {
  SeedPair seeds;
  int fitness = -1;
};

}  // namespace

EvolveOutcome evolve_seed_pair(const ModuleNetlist& module, int patterns,
                               const EvolveParams& params) {
  const int width = module.width;
  const std::uint32_t mask =
      width == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << width) - 1);
  // Key the stream by the netlist shape so distinct module kinds evolve
  // independently even under one config.
  std::uint64_t rng = params.seed ^
                      (static_cast<std::uint64_t>(module.netlist.num_nodes())
                       << 20) ^
                      static_cast<std::uint64_t>(patterns);

  auto fitness = [&](const SeedPair& s) {
    return simulate_gate_bist_seeded(module, s.a, s.b, patterns)
        .summary.detected;
  };

  const int pop_size = params.population < 2 ? 2 : params.population;
  std::vector<Candidate> pop;
  pop.reserve(static_cast<std::size_t>(pop_size));
  for (int i = 0; i < pop_size; ++i) {
    const std::uint64_t r = splitmix64(rng);
    Candidate c;
    c.seeds.a = nonzero(static_cast<std::uint32_t>(r), mask);
    c.seeds.b = nonzero(static_cast<std::uint32_t>(r >> 32), mask);
    c.fitness = fitness(c.seeds);
    pop.push_back(c);
  }

  auto best_of = [](const std::vector<Candidate>& v) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (v[i].fitness > v[best].fitness) best = i;  // ties keep earlier
    }
    return best;
  };

  for (int g = 0; g < params.generations; ++g) {
    std::vector<Candidate> next;
    next.reserve(pop.size());
    next.push_back(pop[best_of(pop)]);  // elitism
    while (next.size() < pop.size()) {
      // Tournament-of-two parents.
      auto pick = [&]() -> const Candidate& {
        const std::uint64_t r = splitmix64(rng);
        const std::size_t i =
            static_cast<std::size_t>(r % pop.size());
        const std::size_t j =
            static_cast<std::size_t>((r >> 32) % pop.size());
        return pop[pop[i].fitness >= pop[j].fitness ? i : j];
      };
      const Candidate& p0 = pick();
      const Candidate& p1 = pick();
      // Uniform bit crossover, then a 1-2 bit mutation on each operand.
      const std::uint64_t xmask = splitmix64(rng);
      Candidate child;
      child.seeds.a = (p0.seeds.a & static_cast<std::uint32_t>(xmask)) |
                      (p1.seeds.a & ~static_cast<std::uint32_t>(xmask));
      child.seeds.b =
          (p0.seeds.b & static_cast<std::uint32_t>(xmask >> 32)) |
          (p1.seeds.b & ~static_cast<std::uint32_t>(xmask >> 32));
      const std::uint64_t m = splitmix64(rng);
      child.seeds.a ^= std::uint32_t{1}
                       << (m % static_cast<std::uint64_t>(width));
      if ((m >> 16) & 1u) {
        child.seeds.b ^= std::uint32_t{1}
                         << ((m >> 32) % static_cast<std::uint64_t>(width));
      }
      child.seeds.a = nonzero(child.seeds.a, mask);
      child.seeds.b = nonzero(child.seeds.b, mask);
      child.fitness = fitness(child.seeds);
      next.push_back(child);
    }
    pop = std::move(next);
  }

  const Candidate& winner = pop[best_of(pop)];
  return EvolveOutcome{winner.seeds, winner.fitness};
}

}  // namespace lbist
