#include "hybrid/reseed.hpp"

#include <vector>

namespace lbist {

namespace {

/// splitmix64 — the repo's standard deterministic stream (cf. fuzz.cpp).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Where a primary-input node sits in the module's operand ports.
struct PortBit {
  bool on_a = false;
  int bit = 0;
};

}  // namespace

std::optional<SeedPair> find_detecting_pattern(const ModuleNetlist& module,
                                               const GateFault& fault,
                                               int random_budget) {
  const int width = module.width;
  const std::uint32_t mask =
      width == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << width) - 1);

  // Phase 1: exhaustive enumeration over the fault's input cone, against
  // three fixed backgrounds for the bits outside the cone.
  const std::vector<int> cone = fault_cone_inputs(module.netlist, fault.node);
  constexpr std::size_t kMaxConeBits = 12;
  if (!cone.empty() && cone.size() <= kMaxConeBits) {
    std::vector<PortBit> port_bits;
    port_bits.reserve(cone.size());
    for (int node : cone) {
      PortBit pb;
      bool found = false;
      for (int bit = 0; bit < width && !found; ++bit) {
        if (module.a[static_cast<std::size_t>(bit)] == node) {
          pb = PortBit{true, bit};
          found = true;
        } else if (module.b[static_cast<std::size_t>(bit)] == node) {
          pb = PortBit{false, bit};
          found = true;
        }
      }
      if (!found) continue;  // input outside the operand ports (unused tie)
      port_bits.push_back(pb);
    }
    const std::uint32_t alternating = 0x55555555u & mask;
    const std::uint32_t backgrounds[3] = {0u, mask, alternating};
    const std::uint32_t combos = std::uint32_t{1} << port_bits.size();
    for (const std::uint32_t bg : backgrounds) {
      for (std::uint32_t c = 0; c < combos; ++c) {
        std::uint32_t a = bg;
        std::uint32_t b = bg;
        for (std::size_t i = 0; i < port_bits.size(); ++i) {
          const std::uint32_t bit = std::uint32_t{1}
                                    << port_bits[i].bit;
          std::uint32_t& word = port_bits[i].on_a ? a : b;
          if ((c >> i) & 1u) {
            word |= bit;
          } else {
            word &= ~bit;
          }
        }
        if (pattern_detects_fault(module, a, b, fault)) {
          return SeedPair{a, b};
        }
      }
    }
  }

  // Phase 2: fixed pseudo-random probing keyed by the fault site, so the
  // search is reproducible and independent of who asks first.
  std::uint64_t rng = 0xB15D0000u ^
                      (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(fault.node))
                       << 1) ^
                      (fault.stuck_one ? 1u : 0u);
  for (int i = 0; i < random_budget; ++i) {
    const std::uint64_t r = splitmix64(rng);
    const std::uint32_t a = static_cast<std::uint32_t>(r) & mask;
    const std::uint32_t b = static_cast<std::uint32_t>(r >> 32) & mask;
    if (pattern_detects_fault(module, a, b, fault)) {
      return SeedPair{a, b};
    }
  }
  return std::nullopt;
}

}  // namespace lbist
