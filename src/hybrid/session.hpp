#pragma once
// Hybrid test-session model (cf. "BILBO-friendly Hybrid BIST Architecture
// with Asymmetric Polynomial Reseeding"): grades one allocated BIST plan
// under a three-phase test scheme and prices it in clocks.
//
//   PR      The allocated TPG registers run from their chip seeds for
//           `pr_patterns` clocks (period-capped), MISR per module function
//           — exactly the scheme gate_selftest grades, so mode
//           PseudoRandom reproduces today's coverage numbers.
//   Reseed  Each fault left undetected ("hard") gets a deterministic seed
//           search (hybrid/reseed.hpp); a hit costs one scan load (width
//           clocks) plus a `reseed_burst`-clock burst that often picks up
//           collateral hard faults.
//   Top-up  Hard faults still alive after the reseed budget are applied as
//           single deterministic scan patterns (width + 1 clocks each).
//
// Modules without a gate-level model (dividers) fall back to the
// port-fault model and are never reseeded.  Concurrency follows the
// allocator's session plan: the total test length is the sum over test
// sessions of the longest member module's clocks.

#include <cstdint>
#include <string>
#include <vector>

#include "bist/allocator.hpp"
#include "hybrid/evolve.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

class TraceRecorder;  // obs/trace.hpp

/// Which phases a configuration runs.
enum class HybridMode {
  PseudoRandom,  ///< chip-seed LFSR phase only
  Reseed,        ///< PR + per-hard-fault reseeding bursts
  ReseedTopup,   ///< Reseed + deterministic top-up for the leftovers
  Evolved,       ///< GA-evolved seed pair replaces the chip seeds (baseline)
};

[[nodiscard]] const char* hybrid_mode_name(HybridMode mode);

/// One point on the test-scheme axis of the sweep.
struct HybridConfig {
  std::string name = "pr";
  HybridMode mode = HybridMode::PseudoRandom;
  int pr_patterns = 256;  ///< PR phase clocks (period-capped per module)
  int max_reseeds = 32;   ///< reseed budget per module function
  int reseed_burst = 16;  ///< clocks per reseed burst
  EvolveParams evolve{};  ///< GA knobs (mode Evolved)
};

/// The sweep's default configuration ladder, scaled from the pattern
/// budget: a full-budget PR arm, a quarter-budget PR arm (what hybrid
/// spends before reseeding), the hybrid arms, and the evolved baseline.
[[nodiscard]] std::vector<HybridConfig> default_hybrid_configs(int patterns);

/// Per-module outcome.
struct ModuleHybridResult {
  std::size_t module = 0;
  bool gate_level = true;  ///< false = port-fault fallback (no reseeding)
  int faults_total = 0;
  int detected_pr = 0;      ///< by the pseudo-random (or evolved) phase
  int detected_reseed = 0;  ///< by reseeding bursts
  int detected_topup = 0;   ///< by deterministic top-up patterns
  int hard_faults = 0;      ///< undetected after the PR phase
  int reseeds_used = 0;
  int topups_used = 0;
  long long test_clocks = 0;

  [[nodiscard]] int detected() const {
    return detected_pr + detected_reseed + detected_topup;
  }
};

/// Whole-plan outcome.
struct HybridSessionResult {
  std::vector<ModuleHybridResult> modules;
  int faults_total = 0;
  int faults_detected = 0;
  int hard_faults = 0;
  int reseeds_used = 0;
  int topups_used = 0;
  int num_sessions = 0;
  /// Sum over test sessions of the longest member module's clocks.
  long long test_clocks = 0;

  [[nodiscard]] double coverage() const {
    return faults_total == 0
               ? 1.0
               : static_cast<double>(faults_detected) / faults_total;
  }
};

/// Evaluates `config` against the allocated plan: every testable module is
/// graded with its embedding's chip seeds, untestable modules contribute
/// nothing, and the session plan prices concurrency.  Deterministic.
[[nodiscard]] HybridSessionResult run_hybrid_session(
    const Datapath& dp, const BistSolution& solution,
    const HybridConfig& config, int width, TraceRecorder* trace = nullptr);

}  // namespace lbist
