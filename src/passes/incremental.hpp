#pragma once
// Incremental re-synthesis: after a DFG edit, re-run only the passes
// whose inputs actually changed.
//
// The driver keeps the previous run's per-pass outputs together with a
// fingerprint of each pass's inputs (Pass::input_fingerprint).  On
// `resynthesize` it walks the pipeline in order; a pass whose current
// input fingerprint equals the previous one gets its cached output copied
// in (the fingerprint covers *everything* the pass reads, so equality
// proves the deterministic pass would recompute the same bits), otherwise
// the pass runs for real.  Downstream fingerprints are computed over the
// *actual* state, so invalidation propagates exactly as far as the edit's
// effects do — and no further:
//
//  * renaming variables/operations reuses sched, conflict_graph and
//    binding (their outputs are id-based), re-running only interconnect
//    and bist (whose outputs embed names),
//  * changing only the area model re-runs just the bist pass,
//  * a structural edit (new operation, changed schedule) re-runs
//    everything downstream of the first affected pass.
//
// The result is bit-identical to a fresh Synthesizer(opts).run(...) by
// construction; the fuzzer's incremental-vs-full oracle (src/fuzz)
// differentially checks exactly that on random designs and edits.

#include <cstdint>
#include <vector>

#include "passes/pipeline.hpp"

namespace lbist {

/// Re-synthesis driver with per-pass memoization.  Not thread-safe (one
/// driver per editing session).
class IncrementalSynthesizer {
 public:
  explicit IncrementalSynthesizer(SynthesisOptions opts = {})
      : opts_(opts) {}

  /// Cumulative reuse accounting across resynthesize() calls.
  struct Stats {
    std::size_t runs = 0;           ///< resynthesize() invocations
    std::size_t passes_run = 0;     ///< passes actually executed
    std::size_t passes_reused = 0;  ///< passes served from the cache
  };

  /// Synthesizes the (edited) design, reusing every pass output whose
  /// inputs are unchanged since the previous call.  The first call runs
  /// the full pipeline.
  [[nodiscard]] SynthesisResult resynthesize(
      const Dfg& dfg, const Schedule& sched,
      const std::vector<ModuleProto>& protos);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const SynthesisOptions& options() const { return opts_; }
  /// Mutable access for editing-session option changes (e.g. a new area
  /// model): the per-pass fingerprints cover every synthesis-affecting
  /// option, so the next resynthesize() re-runs exactly the passes the
  /// change reaches.
  [[nodiscard]] SynthesisOptions& options() { return opts_; }

  /// Drops the cached run (the next resynthesize() is a full run).
  void invalidate();

 private:
  SynthesisOptions opts_;
  Stats stats_;
  bool has_prev_ = false;
  std::vector<std::uint64_t> fps_;
  SynthesisResult prev_;
  VarConflictGraph prev_cg_;
};

}  // namespace lbist
