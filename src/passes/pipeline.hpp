#pragma once
// The pass pipeline: the DAC'95 phase sequence as an ordered list of
// Pass objects, plus whole-state snapshot/restore.
//
// Pipeline order (fixed — later passes consume earlier outputs):
//
//   sched          module binding + variable lifetimes
//   conflict_graph interval conflict graph over allocatable variables
//   binding        register binding (strategy per SynthesisOptions)
//   interconnect   mux-connectivity data path
//   bist           BIST resource allocation + headline metrics
//
// Snapshot format ("lowbist-ir-v1"): a single JSON object holding the
// canonical textual design (dfg/parse.hpp round-trips it exactly), the
// module spec, every option field that affects synthesis, the stage the
// state is at, and the completed passes' outputs under "ir".  See
// docs/passes.md for the schema and examples.

#include <memory>
#include <string_view>
#include <vector>

#include "passes/pass.hpp"

namespace lbist {

/// The fixed five-pass pipeline.  Immutable after construction; safe to
/// share across threads (passes are stateless).
class PassPipeline {
 public:
  PassPipeline();

  [[nodiscard]] const std::vector<std::unique_ptr<const Pass>>& passes()
      const {
    return passes_;
  }
  [[nodiscard]] std::size_t num_passes() const { return passes_.size(); }

  /// Index of the named pass; throws lbist::Error on unknown names.
  [[nodiscard]] std::size_t index_of(std::string_view name) const;

  /// Runs passes [state.completed, end) in order.
  void run(SynthState& state, std::size_t end) const;
  /// Runs every remaining pass.
  void run(SynthState& state) const { run(state, passes_.size()); }

  /// Freezes `state` into a snapshot: design, spec, options, stage, and
  /// the outputs of every completed pass.
  [[nodiscard]] Json snapshot(const SynthState& state) const;

  /// Restores a state from a snapshot() document.  The returned state
  /// owns its design; observability pointers are null (re-attach via
  /// options() if wanted).  Throws lbist::Error on malformed snapshots.
  [[nodiscard]] SynthState restore(const Json& snapshot) const;

  /// The canonical per-process instance (the Synthesizer façade and the
  /// CLI/server all share it).
  [[nodiscard]] static const PassPipeline& standard();

 private:
  std::vector<std::unique_ptr<const Pass>> passes_;
};

/// Serializes the synthesis-relevant option fields (binder, bist_binder,
/// interconnect, lifetime, area — never trace/events).
[[nodiscard]] Json options_to_json(const SynthesisOptions& opts);
/// Inverse of options_to_json; unknown binder names etc. throw.
[[nodiscard]] SynthesisOptions options_from_json(const Json& j);

/// Rebuilds a ModuleProto from its label() ("+" or "[-*/&|]").
[[nodiscard]] ModuleProto proto_from_label(std::string_view label);

}  // namespace lbist
