#pragma once
// The pass pipeline's working state — a serializable IR snapshot.
//
// `SynthState` carries everything the synthesis passes read and write:
// the (borrowed) scheduled DFG, the pinned module prototypes, the pipeline
// options, and the accumulating `SynthesisResult`.  A state can be frozen
// at any pass boundary into a JSON snapshot (see passes/pipeline.hpp) and
// later restored — in another process, on another machine, by another
// build — and the remaining passes produce bit-identical output, because
// every pass is a deterministic function of the state.
//
// Ownership: on the live path (Synthesizer façade) the DFG and schedule
// are borrowed from the caller, exactly as before the refactor — no
// copies.  A state restored from a snapshot owns its DFG/schedule (parsed
// back from the snapshot's canonical textual design) via `owned_`.

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/synthesizer.hpp"
#include "dfg/parse.hpp"
#include "graph/conflict.hpp"
#include "support/json.hpp"

namespace lbist {

/// Canonical binder name used in snapshots, checkpoints and sweep tables:
/// "traditional", "bist-aware", "ralloc", "syntest", "clique",
/// "loop-aware".
[[nodiscard]] const char* binder_kind_name(BinderKind kind);

/// Parses a canonical binder name; throws lbist::Error on unknown names.
[[nodiscard]] BinderKind binder_kind_from_name(std::string_view name);

/// Pipeline state threaded through the passes.  Move-only: it may borrow
/// the caller's DFG/schedule and holds the partially-built result.
class SynthState {
 public:
  /// Live path: borrows `dfg` and `sched` (caller keeps ownership; both
  /// must outlive the state).
  SynthState(const Dfg& dfg, const Schedule& sched,
             std::vector<ModuleProto> protos, SynthesisOptions opts)
      : dfg_(&dfg),
        sched_(&sched),
        protos_(std::move(protos)),
        opts_(opts) {}

  /// Restore path: takes ownership of a parsed design (which must carry a
  /// schedule).  Used by PassPipeline::restore.
  SynthState(std::unique_ptr<ParsedDfg> design,
             std::vector<ModuleProto> protos, SynthesisOptions opts);

  SynthState(SynthState&&) = default;
  SynthState& operator=(SynthState&&) = default;
  SynthState(const SynthState&) = delete;
  SynthState& operator=(const SynthState&) = delete;

  [[nodiscard]] const Dfg& dfg() const { return *dfg_; }
  [[nodiscard]] const Schedule& sched() const { return *sched_; }
  [[nodiscard]] const std::vector<ModuleProto>& protos() const {
    return protos_;
  }
  [[nodiscard]] const SynthesisOptions& options() const { return opts_; }
  /// Mutable options access: a restored state has null observability
  /// pointers; callers may re-attach a recorder/event sink before
  /// resuming (the pointers never affect what is synthesized).
  [[nodiscard]] SynthesisOptions& options() { return opts_; }

  /// Outputs accumulated by the passes (fields filled in pipeline order).
  SynthesisResult result;
  /// Conflict-graph pass output.  Not serialized: it is rebuilt
  /// deterministically from the lifetimes on restore.
  VarConflictGraph cg;
  bool has_cg = false;

  /// Number of pipeline passes completed so far (0 = fresh state).
  std::size_t completed = 0;

  /// Auxiliary post-pipeline analysis results keyed by name (e.g. the
  /// hybrid-BIST evaluation stores its report under "hybrid").  Never read
  /// by the five passes; carried through snapshot/restore when non-empty,
  /// so existing snapshots stay byte-identical.
  std::map<std::string, Json> aux;

 private:
  std::unique_ptr<ParsedDfg> owned_;  ///< set only on the restore path
  const Dfg* dfg_ = nullptr;
  const Schedule* sched_ = nullptr;
  std::vector<ModuleProto> protos_;
  SynthesisOptions opts_;
};

}  // namespace lbist
