#pragma once
// The pass abstraction: one pipeline phase as a named, serializable,
// fingerprintable unit of work.
//
// Every pass is a *pure deterministic function* of the SynthState fields
// it reads (its "inputs"): given equal inputs it writes equal outputs.
// That property is what makes the three features built on top of the
// pipeline sound:
//
//  * checkpoint/resume — serialize() captures a pass's output exactly;
//    resuming from a snapshot and running the remaining passes yields the
//    same bits as an uninterrupted run,
//  * remote execution — a {"type":"pass"} server request replays one
//    pass on a posted snapshot with identical results,
//  * incremental re-synthesis — input_fingerprint() hashes everything a
//    pass's output depends on; an unchanged fingerprint proves the cached
//    output is still the answer (passes/incremental.hpp).

#include <cstdint>

#include "passes/synth_state.hpp"
#include "support/json.hpp"

namespace lbist {

/// One pipeline phase.  Implementations are stateless (all state lives in
/// SynthState), so a Pass is shareable across threads and sweeps.
class Pass {
 public:
  virtual ~Pass() = default;

  Pass() = default;
  Pass(const Pass&) = delete;
  Pass& operator=(const Pass&) = delete;

  /// Stable identifier: "sched", "conflict_graph", "binding",
  /// "interconnect", "bist".  Doubles as the trace span name (the span
  /// names predate the pass manager; obs tooling depends on them).
  [[nodiscard]] virtual const char* name() const = 0;

  /// Runs the pass: reads its inputs from `state`, writes its outputs
  /// into it.  Records one trace span (via state.options().trace) and
  /// feeds decision events exactly as the pre-refactor monolith did.
  virtual void run(SynthState& state) const = 0;

  /// Writes this pass's output into the snapshot's "ir" object.
  virtual void serialize(const SynthState& state, Json& ir) const = 0;

  /// Restores this pass's output from a snapshot's "ir" object.  Throws
  /// lbist::Error when the snapshot is malformed or inconsistent with the
  /// design.
  virtual void deserialize(const Json& ir, SynthState& state) const = 0;

  /// Canonical fingerprint of every input this pass's output depends on
  /// (design structure, upstream outputs, the relevant option fields —
  /// never the observability pointers).  Equal fingerprints imply equal
  /// outputs; unequal fingerprints may still collide in the other
  /// direction, which only costs a spurious re-run, never a wrong reuse.
  [[nodiscard]] virtual std::uint64_t input_fingerprint(
      const SynthState& state) const = 0;
};

}  // namespace lbist
