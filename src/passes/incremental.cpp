#include "passes/incremental.hpp"

#include <string_view>

#include "support/check.hpp"

namespace lbist {

namespace {

/// Copies the named pass's cached output into `state` (the reuse path of
/// the incremental driver).  Mirrors what each pass's run() writes.
void copy_pass_output(std::string_view pass, const SynthesisResult& prev,
                      const VarConflictGraph& prev_cg, SynthState& state) {
  if (pass == "sched") {
    state.result.modules = prev.modules;
    state.result.lifetimes = prev.lifetimes;
  } else if (pass == "conflict_graph") {
    state.cg = prev_cg;
    state.has_cg = true;
  } else if (pass == "binding") {
    state.result.registers = prev.registers;
  } else if (pass == "interconnect") {
    state.result.datapath = prev.datapath;
  } else if (pass == "bist") {
    state.result.bist = prev.bist;
    state.result.functional_area = prev.functional_area;
    state.result.overhead_percent = prev.overhead_percent;
  } else {
    throw Error("incremental driver does not know pass: " +
                std::string(pass));
  }
}

}  // namespace

SynthesisResult IncrementalSynthesizer::resynthesize(
    const Dfg& dfg, const Schedule& sched,
    const std::vector<ModuleProto>& protos) {
  const PassPipeline& pipeline = PassPipeline::standard();
  SynthState state(dfg, sched, protos, opts_);
  std::vector<std::uint64_t> fps(pipeline.num_passes(), 0);
  for (std::size_t i = 0; i < pipeline.num_passes(); ++i) {
    const Pass& pass = *pipeline.passes()[i];
    fps[i] = pass.input_fingerprint(state);
    if (has_prev_ && fps[i] == fps_[i]) {
      copy_pass_output(pass.name(), prev_, prev_cg_, state);
      state.completed = i + 1;
      ++stats_.passes_reused;
    } else {
      pass.run(state);
      state.completed = i + 1;
      ++stats_.passes_run;
    }
  }
  ++stats_.runs;
  fps_ = std::move(fps);
  prev_ = state.result;  // keep a copy for the next edit
  prev_cg_ = state.cg;
  has_prev_ = true;
  return std::move(state.result);
}

void IncrementalSynthesizer::invalidate() {
  has_prev_ = false;
  fps_.clear();
}

}  // namespace lbist
