#include "passes/pipeline.hpp"

#include <cstdio>
#include <string>
#include <utility>

#include "baselines/ralloc.hpp"
#include "baselines/syntest.hpp"
#include "binding/clique_binder.hpp"
#include "binding/loop_binder.hpp"
#include "binding/traditional_binder.hpp"
#include "dfg/parse.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/version.hpp"

namespace lbist {

namespace {

// ---- Canonical fingerprint keys ------------------------------------------
//
// Every pass hashes a canonical string of its inputs with FNV-1a.  The
// strings are built from ids, flags and exactly-printed doubles, so two
// states fingerprint equal iff the pass would read identical inputs.

std::uint64_t fnv(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void append_num(std::string& out, long long v) {
  out += std::to_string(v);
  out += ',';
}

void append_double(std::string& out, double d) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
  out += ';';
}

/// Name-free structural encoding of the scheduled design: operation
/// kinds/operands/steps, variable roles, loop ties.  Renaming variables
/// or operations leaves this key unchanged (their results are id-based).
std::string structural_key(const Dfg& dfg, const Schedule& sched) {
  std::string key = "v:";
  for (const Variable& v : dfg.vars()) {
    key += v.is_output ? 'o' : '.';
    key += v.control_only ? 'c' : '.';
    key += v.port_resident ? 'p' : '.';
  }
  key += "|o:";
  for (const Operation& op : dfg.ops()) {
    append_num(key, static_cast<long long>(op.kind));
    append_num(key, op.lhs.value());
    append_num(key, op.rhs.value());
    append_num(key, op.result.value());
    append_num(key, sched.step(op.id));
  }
  key += "|t:";
  for (const auto& [carried, init] : dfg.loop_ties()) {
    append_num(key, carried.value());
    append_num(key, init.value());
  }
  return key;
}

std::string spec_key(const std::vector<ModuleProto>& protos) {
  std::string key;
  for (const ModuleProto& p : protos) {
    key += p.label();
    key += ';';
  }
  return key;
}

std::string lifetimes_key(const IdMap<VarId, LiveInterval>& lifetimes) {
  std::string key;
  for (const LiveInterval& lt : lifetimes) {
    append_num(key, lt.birth);
    append_num(key, lt.death);
  }
  return key;
}

std::string module_of_key(const ModuleBinding& mb, const Dfg& dfg) {
  std::string key;
  for (const Operation& op : dfg.ops()) {
    append_num(key, mb.module_of(op.id).value());
  }
  return key;
}

std::string registers_key(const RegisterBinding& rb) {
  std::string key;
  for (const std::vector<VarId>& reg : rb.regs) {
    for (VarId v : reg) append_num(key, v.value());
    key += '/';
  }
  return key;
}

std::string area_key(const AreaModel& area) {
  std::string key = std::to_string(area.bit_width) + ";";
  append_double(key, area.reg_gates_per_bit);
  append_double(key, area.mux_gates_per_bit);
  append_double(key, area.tpg_extra_per_bit);
  append_double(key, area.sa_extra_per_bit);
  append_double(key, area.bilbo_extra_per_bit);
  append_double(key, area.cbilbo_extra_per_bit);
  append_double(key, area.add_gates_per_bit);
  append_double(key, area.sub_gates_per_bit);
  append_double(key, area.logic_gates_per_bit);
  append_double(key, area.cmp_gates_per_bit);
  append_double(key, area.mul_gates_per_bit2);
  append_double(key, area.div_gates_per_bit2);
  append_double(key, area.alu_extra_kind_factor);
  return key;
}

std::string bist_binder_key(const BistBinderOptions& bb) {
  std::string key;
  key += bb.sd_ordered_pves ? '1' : '0';
  key += bb.delta_sd_rule ? '1' : '0';
  key += bb.case_overrides ? '1' : '0';
  key += bb.avoid_cbilbo ? '1' : '0';
  return key;
}

// ---- JSON helpers --------------------------------------------------------

Json index_set_json(const std::set<std::size_t>& s) {
  Json arr = Json::array();
  for (std::size_t i : s) arr.push_back(Json::number(i));
  return arr;
}

std::set<std::size_t> index_set_from_json(const Json& arr) {
  std::set<std::size_t> s;
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const int v = arr.at(i).as_int();
    LBIST_CHECK(v >= 0, "negative index in snapshot set");
    s.insert(static_cast<std::size_t>(v));
  }
  return s;
}

std::size_t size_at(const Json& obj, const std::string& key) {
  const int v = obj.at(key).as_int();
  LBIST_CHECK(v >= 0, "negative index in snapshot: " + key);
  return static_cast<std::size_t>(v);
}

Json datapath_to_json(const Datapath& dp) {
  Json j = Json::object();
  j.set("name", Json::string(dp.name));
  Json regs = Json::array();
  for (const DpRegister& r : dp.registers) {
    Json reg = Json::object();
    reg.set("name", Json::string(r.name));
    Json vars = Json::array();
    for (VarId v : r.vars) vars.push_back(Json::number(v.value()));
    reg.set("vars", std::move(vars));
    reg.set("dedicated_input", Json::boolean(r.dedicated_input));
    reg.set("source_modules", index_set_json(r.source_modules));
    reg.set("external_source", Json::boolean(r.external_source));
    reg.set("drives_output", Json::boolean(r.drives_output));
    regs.push_back(std::move(reg));
  }
  j.set("registers", std::move(regs));
  Json mods = Json::array();
  for (const DpModule& m : dp.modules) {
    Json mod = Json::object();
    mod.set("name", Json::string(m.name));
    mod.set("proto", Json::string(m.proto.label()));
    Json insts = Json::array();
    for (OpId op : m.instances) insts.push_back(Json::number(op.value()));
    mod.set("instances", std::move(insts));
    mod.set("left_sources", index_set_json(m.left_sources));
    mod.set("right_sources", index_set_json(m.right_sources));
    mod.set("dest_registers", index_set_json(m.dest_registers));
    mod.set("drives_control", Json::boolean(m.drives_control));
    mods.push_back(std::move(mod));
  }
  j.set("modules", std::move(mods));
  j.set("num_allocated", Json::number(dp.num_allocated));
  Json routes = Json::array();
  for (const auto& [lhs, rhs] : dp.routes) {
    Json route = Json::array();
    route.push_back(Json::number(lhs.reg));
    route.push_back(Json::boolean(lhs.to_left));
    route.push_back(Json::number(rhs.reg));
    route.push_back(Json::boolean(rhs.to_left));
    routes.push_back(std::move(route));
  }
  j.set("routes", std::move(routes));
  return j;
}

Datapath datapath_from_json(const Json& j, const Dfg& dfg) {
  Datapath dp;
  dp.name = j.at("name").as_string();
  const Json& regs = j.at("registers");
  for (std::size_t i = 0; i < regs.size(); ++i) {
    const Json& reg = regs.at(i);
    DpRegister r;
    r.name = reg.at("name").as_string();
    const Json& vars = reg.at("vars");
    for (std::size_t k = 0; k < vars.size(); ++k) {
      const int v = vars.at(k).as_int();
      LBIST_CHECK(v >= 0 && static_cast<std::size_t>(v) < dfg.num_vars(),
                  "snapshot register references unknown variable");
      r.vars.push_back(VarId{static_cast<VarId::value_type>(v)});
    }
    r.dedicated_input = reg.at("dedicated_input").as_bool();
    r.source_modules = index_set_from_json(reg.at("source_modules"));
    r.external_source = reg.at("external_source").as_bool();
    r.drives_output = reg.at("drives_output").as_bool();
    dp.registers.push_back(std::move(r));
  }
  const Json& mods = j.at("modules");
  for (std::size_t i = 0; i < mods.size(); ++i) {
    const Json& mod = mods.at(i);
    DpModule m;
    m.name = mod.at("name").as_string();
    m.proto = proto_from_label(mod.at("proto").as_string());
    const Json& insts = mod.at("instances");
    for (std::size_t k = 0; k < insts.size(); ++k) {
      const int op = insts.at(k).as_int();
      LBIST_CHECK(op >= 0 && static_cast<std::size_t>(op) < dfg.num_ops(),
                  "snapshot module references unknown operation");
      m.instances.push_back(OpId{static_cast<OpId::value_type>(op)});
    }
    m.left_sources = index_set_from_json(mod.at("left_sources"));
    m.right_sources = index_set_from_json(mod.at("right_sources"));
    m.dest_registers = index_set_from_json(mod.at("dest_registers"));
    m.drives_control = mod.at("drives_control").as_bool();
    dp.modules.push_back(std::move(m));
  }
  dp.num_allocated = size_at(j, "num_allocated");
  const Json& routes = j.at("routes");
  LBIST_CHECK(routes.size() == dfg.num_ops(),
              "snapshot route count does not match the design");
  dp.routes.assign(dfg.num_ops(), {});
  for (std::size_t i = 0; i < routes.size(); ++i) {
    const Json& route = routes.at(i);
    LBIST_CHECK(route.size() == 4, "snapshot route is not a 4-tuple");
    auto& [lhs, rhs] = dp.routes[OpId{static_cast<OpId::value_type>(i)}];
    lhs.reg = static_cast<std::size_t>(route.at(0).as_int());
    lhs.to_left = route.at(1).as_bool();
    rhs.reg = static_cast<std::size_t>(route.at(2).as_int());
    rhs.to_left = route.at(3).as_bool();
  }
  return dp;
}

Json embedding_to_json(const BistEmbedding& e) {
  Json j = Json::object();
  j.set("module", Json::number(e.module));
  j.set("tpg_left", Json::number(e.tpg_left));
  j.set("tpg_right", Json::number(e.tpg_right));
  if (e.sa) j.set("sa", Json::number(*e.sa));
  if (e.left_through) j.set("left_through", Json::number(*e.left_through));
  if (e.right_through) j.set("right_through", Json::number(*e.right_through));
  if (e.left_via) j.set("left_via", Json::number(*e.left_via));
  if (e.right_via) j.set("right_via", Json::number(*e.right_via));
  return j;
}

BistEmbedding embedding_from_json(const Json& j) {
  BistEmbedding e;
  e.module = size_at(j, "module");
  e.tpg_left = size_at(j, "tpg_left");
  e.tpg_right = size_at(j, "tpg_right");
  if (j.contains("sa")) e.sa = size_at(j, "sa");
  if (j.contains("left_through")) e.left_through = size_at(j, "left_through");
  if (j.contains("right_through")) {
    e.right_through = size_at(j, "right_through");
  }
  if (j.contains("left_via")) e.left_via = size_at(j, "left_via");
  if (j.contains("right_via")) e.right_via = size_at(j, "right_via");
  return e;
}

Json bist_to_json(const BistSolution& bist) {
  Json j = Json::object();
  Json roles = Json::array();
  for (BistRole r : bist.roles) {
    roles.push_back(Json::number(static_cast<int>(r)));
  }
  j.set("roles", std::move(roles));
  Json embs = Json::array();
  for (const std::optional<BistEmbedding>& e : bist.embeddings) {
    embs.push_back(e ? embedding_to_json(*e) : Json::null());
  }
  j.set("embeddings", std::move(embs));
  Json untestable = Json::array();
  for (std::size_t m : bist.untestable_modules) {
    untestable.push_back(Json::number(m));
  }
  j.set("untestable_modules", std::move(untestable));
  j.set("extra_area", Json::number(bist.extra_area));
  j.set("exact", Json::boolean(bist.exact));
  return j;
}

BistSolution bist_from_json(const Json& j) {
  BistSolution bist;
  const Json& roles = j.at("roles");
  for (std::size_t i = 0; i < roles.size(); ++i) {
    const int r = roles.at(i).as_int();
    LBIST_CHECK(r >= 0 && r <= 4, "snapshot BIST role out of range");
    bist.roles.push_back(static_cast<BistRole>(r));
  }
  const Json& embs = j.at("embeddings");
  for (std::size_t i = 0; i < embs.size(); ++i) {
    const Json& e = embs.at(i);
    if (e.is_null()) {
      bist.embeddings.push_back(std::nullopt);
    } else {
      bist.embeddings.push_back(embedding_from_json(e));
    }
  }
  const Json& untestable = j.at("untestable_modules");
  for (std::size_t i = 0; i < untestable.size(); ++i) {
    const int m = untestable.at(i).as_int();
    LBIST_CHECK(m >= 0, "negative module index in snapshot");
    bist.untestable_modules.push_back(static_cast<std::size_t>(m));
  }
  bist.extra_area = j.at("extra_area").as_number();
  bist.exact = j.at("exact").as_bool();
  return bist;
}

// ---- The five passes -----------------------------------------------------
//
// The run() bodies are the former Synthesizer::run phases, verbatim: same
// call sequence, same trace span names and args, same event feeds, so the
// façade produces byte-identical results, traces and event streams.
//
// The span names (sched/conflict_graph/binding/interconnect/bist) are a
// stable external contract, not decoration: the sampling profiler
// attributes samples to the innermost span, check_profile.py --expect-span
// gates CI on them, and committed profiles in docs/performance.md slice by
// them.  Renaming one is a breaking change to every profile consumer.

class SchedPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "sched"; }

  void run(SynthState& state) const override {
    // "sched" covers the schedule-derived analyses: module binding,
    // lifetimes (the schedule itself arrives precomputed).
    auto span = trace_span(state.options().trace, "sched");
    if (span.active()) span.arg("design", state.dfg().name());
    state.result.modules =
        ModuleBinding::bind(state.dfg(), state.sched(), state.protos());
    state.result.lifetimes = compute_lifetimes(state.dfg(), state.sched(),
                                               state.options().lifetime);
  }

  void serialize(const SynthState& state, Json& ir) const override {
    Json module_of = Json::array();
    for (const Operation& op : state.dfg().ops()) {
      module_of.push_back(
          Json::number(state.result.modules.module_of(op.id).value()));
    }
    ir.set("module_of", std::move(module_of));
    Json lifetimes = Json::array();
    for (const LiveInterval& lt : state.result.lifetimes) {
      Json interval = Json::array();
      interval.push_back(Json::number(lt.birth));
      interval.push_back(Json::number(lt.death));
      lifetimes.push_back(std::move(interval));
    }
    ir.set("lifetimes", std::move(lifetimes));
  }

  void deserialize(const Json& ir, SynthState& state) const override {
    const Dfg& dfg = state.dfg();
    const Json& module_of = ir.at("module_of");
    LBIST_CHECK(module_of.size() == dfg.num_ops(),
                "snapshot module_of does not match the design");
    IdMap<OpId, ModuleId> assignment(dfg.num_ops());
    for (std::size_t i = 0; i < module_of.size(); ++i) {
      assignment[OpId{static_cast<OpId::value_type>(i)}] =
          ModuleId{static_cast<ModuleId::value_type>(module_of.at(i).as_int())};
    }
    state.result.modules = ModuleBinding::restore(dfg, state.sched(),
                                                  state.protos(), assignment);
    const Json& lifetimes = ir.at("lifetimes");
    LBIST_CHECK(lifetimes.size() == dfg.num_vars(),
                "snapshot lifetimes do not match the design");
    state.result.lifetimes.assign(dfg.num_vars(), {});
    for (std::size_t i = 0; i < lifetimes.size(); ++i) {
      const Json& interval = lifetimes.at(i);
      LBIST_CHECK(interval.size() == 2, "snapshot lifetime is not a pair");
      LiveInterval lt;
      lt.birth = interval.at(0).as_int();
      lt.death = interval.at(1).as_int();
      state.result.lifetimes[VarId{static_cast<VarId::value_type>(i)}] = lt;
    }
  }

  [[nodiscard]] std::uint64_t input_fingerprint(
      const SynthState& state) const override {
    std::string key = "sched|";
    key += structural_key(state.dfg(), state.sched());
    key += "|spec=" + spec_key(state.protos());
    key += "|lt=";
    key += state.options().lifetime.hold_outputs_to_end ? '1' : '0';
    return fnv(key);
  }
};

class ConflictGraphPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "conflict_graph"; }

  void run(SynthState& state) const override {
    auto span = trace_span(state.options().trace, "conflict_graph");
    state.cg = build_conflict_graph(state.dfg(), state.result.lifetimes);
    state.has_cg = true;
  }

  void serialize(const SynthState&, Json&) const override {
    // Nothing: the conflict graph is a deterministic function of the
    // lifetimes and the variable roles, both already in the snapshot.
  }

  void deserialize(const Json&, SynthState& state) const override {
    state.cg = build_conflict_graph(state.dfg(), state.result.lifetimes);
    state.has_cg = true;
  }

  [[nodiscard]] std::uint64_t input_fingerprint(
      const SynthState& state) const override {
    std::string key = "cg|";
    key += lifetimes_key(state.result.lifetimes);
    key += "|a:";
    for (const Variable& v : state.dfg().vars()) {
      key += v.allocatable() ? '1' : '0';
    }
    return fnv(key);
  }
};

class BindingPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "binding"; }

  void run(SynthState& state) const override {
    LBIST_CHECK(state.has_cg, "binding pass needs the conflict graph");
    const SynthesisOptions& opts = state.options();
    SynthesisResult& result = state.result;
    auto span = trace_span(opts.trace, "binding");
    switch (opts.binder) {
      case BinderKind::Traditional:
        result.registers = bind_registers_traditional(state.dfg(), state.cg,
                                                      result.lifetimes);
        break;
      case BinderKind::BistAware:
        result.registers =
            bind_registers_bist_aware(state.dfg(), state.cg, result.modules,
                                      opts.bist_binder, nullptr, opts.events);
        break;
      case BinderKind::Ralloc:
        result.registers =
            bind_registers_ralloc(state.dfg(), state.cg, result.modules);
        break;
      case BinderKind::Syntest:
        result.registers =
            bind_registers_syntest(state.dfg(), state.cg, result.modules);
        break;
      case BinderKind::CliquePartition:
        result.registers =
            bind_registers_clique(state.dfg(), state.cg, result.modules);
        break;
      case BinderKind::LoopAware:
        result.registers =
            bind_registers_loop_aware(state.dfg(), result.lifetimes);
        break;
    }
    result.registers.validate(state.dfg(), result.lifetimes);
    if (span.active()) {
      span.arg("registers",
               static_cast<std::uint64_t>(result.registers.num_regs()));
    }
  }

  void serialize(const SynthState& state, Json& ir) const override {
    Json regs = Json::array();
    for (const std::vector<VarId>& reg : state.result.registers.regs) {
      Json vars = Json::array();
      for (VarId v : reg) vars.push_back(Json::number(v.value()));
      regs.push_back(std::move(vars));
    }
    ir.set("registers", std::move(regs));
  }

  void deserialize(const Json& ir, SynthState& state) const override {
    const Dfg& dfg = state.dfg();
    RegisterBinding rb;
    rb.reg_of.assign(dfg.num_vars(), RegId::invalid());
    const Json& regs = ir.at("registers");
    for (std::size_t r = 0; r < regs.size(); ++r) {
      const Json& vars = regs.at(r);
      std::vector<VarId> reg;
      for (std::size_t k = 0; k < vars.size(); ++k) {
        const int v = vars.at(k).as_int();
        LBIST_CHECK(v >= 0 && static_cast<std::size_t>(v) < dfg.num_vars(),
                    "snapshot binding references unknown variable");
        const VarId var{static_cast<VarId::value_type>(v)};
        reg.push_back(var);
        rb.reg_of[var] = RegId{static_cast<RegId::value_type>(r)};
      }
      rb.regs.push_back(std::move(reg));
    }
    rb.validate(dfg, state.result.lifetimes);
    state.result.registers = std::move(rb);
  }

  [[nodiscard]] std::uint64_t input_fingerprint(
      const SynthState& state) const override {
    const SynthesisOptions& opts = state.options();
    std::string key = "bind|";
    append_num(key, static_cast<long long>(opts.binder));
    key += bist_binder_key(opts.bist_binder);
    key += '|';
    key += structural_key(state.dfg(), state.sched());
    key += "|lt:" + lifetimes_key(state.result.lifetimes);
    key += "|mo:" + module_of_key(state.result.modules, state.dfg());
    return fnv(key);
  }
};

class InterconnectPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "interconnect"; }

  void run(SynthState& state) const override {
    const SynthesisOptions& opts = state.options();
    auto span = trace_span(opts.trace, "interconnect");
    state.result.datapath =
        build_datapath(state.dfg(), state.result.modules,
                       state.result.registers, opts.interconnect, "",
                       opts.events);
    if (span.active()) {
      span.arg("muxes",
               static_cast<std::uint64_t>(state.result.datapath.mux_count()));
    }
  }

  void serialize(const SynthState& state, Json& ir) const override {
    ir.set("datapath", datapath_to_json(state.result.datapath));
  }

  void deserialize(const Json& ir, SynthState& state) const override {
    state.result.datapath =
        datapath_from_json(ir.at("datapath"), state.dfg());
  }

  [[nodiscard]] std::uint64_t input_fingerprint(
      const SynthState& state) const override {
    // The data path embeds names (design, port-resident inputs, module
    // labels), so the full textual design participates here.
    std::string key = "ic|";
    key += state.options().interconnect.weight_by_sd ? '1' : '0';
    key += '|';
    key += print_dfg(state.dfg(), &state.sched());
    key += "|spec=" + spec_key(state.protos());
    key += "|mo:" + module_of_key(state.result.modules, state.dfg());
    key += "|rb:" + registers_key(state.result.registers);
    return fnv(key);
  }
};

class BistPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "bist"; }

  void run(SynthState& state) const override {
    const SynthesisOptions& opts = state.options();
    SynthesisResult& result = state.result;
    {
      auto span = trace_span(opts.trace, "bist");
      switch (opts.binder) {
        case BinderKind::Ralloc:
          result.bist = ralloc_bist_labelling(result.datapath, opts.area);
          break;
        case BinderKind::Syntest:
          result.bist = syntest_bist_labelling(result.datapath, opts.area);
          break;
        default: {
          BistAllocator allocator(opts.area);
          allocator.events = opts.events;
          result.bist = allocator.solve(result.datapath);
          break;
        }
      }
      if (span.active()) {
        span.arg("extra_area", result.bist.extra_area);
        span.arg_bool("exact", result.bist.exact);
      }
    }
    result.functional_area = opts.area.functional_area(result.datapath);
    result.overhead_percent =
        result.bist.overhead_percent(result.datapath, opts.area);
  }

  void serialize(const SynthState& state, Json& ir) const override {
    ir.set("bist", bist_to_json(state.result.bist));
    ir.set("functional_area", Json::number(state.result.functional_area));
    ir.set("overhead_percent", Json::number(state.result.overhead_percent));
  }

  void deserialize(const Json& ir, SynthState& state) const override {
    state.result.bist = bist_from_json(ir.at("bist"));
    LBIST_CHECK(state.result.bist.roles.size() ==
                    state.result.datapath.registers.size(),
                "snapshot BIST roles do not match the data path");
    state.result.functional_area = ir.at("functional_area").as_number();
    state.result.overhead_percent = ir.at("overhead_percent").as_number();
  }

  [[nodiscard]] std::uint64_t input_fingerprint(
      const SynthState& state) const override {
    const SynthesisOptions& opts = state.options();
    // Which labelling runs depends only on the binder *class*.
    const int cls = opts.binder == BinderKind::Ralloc    ? 0
                    : opts.binder == BinderKind::Syntest ? 1
                                                         : 2;
    std::string key = "bist|";
    append_num(key, cls);
    key += area_key(opts.area);
    key += '|';
    key += datapath_to_json(state.result.datapath).dump_compact();
    return fnv(key);
  }
};

}  // namespace

// ---- PassPipeline --------------------------------------------------------

PassPipeline::PassPipeline() {
  passes_.push_back(std::make_unique<SchedPass>());
  passes_.push_back(std::make_unique<ConflictGraphPass>());
  passes_.push_back(std::make_unique<BindingPass>());
  passes_.push_back(std::make_unique<InterconnectPass>());
  passes_.push_back(std::make_unique<BistPass>());
}

std::size_t PassPipeline::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    if (name == passes_[i]->name()) return i;
  }
  throw Error("unknown pass: " + std::string(name));
}

void PassPipeline::run(SynthState& state, std::size_t end) const {
  LBIST_CHECK(end <= passes_.size(), "pass index out of range");
  for (std::size_t i = state.completed; i < end; ++i) {
    passes_[i]->run(state);
    state.completed = i + 1;
  }
}

Json PassPipeline::snapshot(const SynthState& state) const {
  LBIST_CHECK(state.completed <= passes_.size(),
              "state completed more passes than the pipeline has");
  Json snap = Json::object();
  snap.set("format", Json::string("lowbist-ir-v1"));
  snap.set("writer", build_info_json());
  snap.set("stage",
           Json::string(state.completed == 0
                            ? "none"
                            : passes_[state.completed - 1]->name()));
  snap.set("design", Json::string(print_dfg(state.dfg(), &state.sched())));
  Json modules = Json::array();
  for (const ModuleProto& p : state.protos()) {
    modules.push_back(Json::string(p.label()));
  }
  snap.set("modules", std::move(modules));
  snap.set("options", options_to_json(state.options()));
  Json ir = Json::object();
  for (std::size_t i = 0; i < state.completed; ++i) {
    passes_[i]->serialize(state, ir);
  }
  snap.set("ir", std::move(ir));
  if (!state.aux.empty()) {
    Json aux = Json::object();
    for (const auto& [key, value] : state.aux) aux.set(key, value);
    snap.set("aux", std::move(aux));
  }
  return snap;
}

SynthState PassPipeline::restore(const Json& snap) const {
  const Json* format = snap.find("format");
  LBIST_CHECK(format != nullptr && format->is_string() &&
                  format->as_string() == "lowbist-ir-v1",
              "not a lowbist IR snapshot (format tag missing or unknown)");
  auto parsed = std::make_unique<ParsedDfg>(parse_dfg(snap.at("design").as_string()));
  std::vector<ModuleProto> protos;
  const Json& modules = snap.at("modules");
  for (std::size_t i = 0; i < modules.size(); ++i) {
    protos.push_back(proto_from_label(modules.at(i).as_string()));
  }
  SynthState state(std::move(parsed), std::move(protos),
                   options_from_json(snap.at("options")));
  const std::string& stage = snap.at("stage").as_string();
  if (stage != "none") {
    const std::size_t last = index_of(stage);
    const Json& ir = snap.at("ir");
    for (std::size_t i = 0; i <= last; ++i) {
      passes_[i]->deserialize(ir, state);
      state.completed = i + 1;
    }
  }
  if (const Json* aux = snap.find("aux")) {
    for (const std::string& key : aux->keys()) {
      state.aux[key] = aux->at(key);
    }
  }
  return state;
}

const PassPipeline& PassPipeline::standard() {
  static const PassPipeline pipeline;
  return pipeline;
}

// ---- Options / spec serialization ----------------------------------------

Json options_to_json(const SynthesisOptions& opts) {
  Json j = Json::object();
  j.set("binder", Json::string(binder_kind_name(opts.binder)));
  Json bb = Json::object();
  bb.set("sd_ordered_pves", Json::boolean(opts.bist_binder.sd_ordered_pves));
  bb.set("delta_sd_rule", Json::boolean(opts.bist_binder.delta_sd_rule));
  bb.set("case_overrides", Json::boolean(opts.bist_binder.case_overrides));
  bb.set("avoid_cbilbo", Json::boolean(opts.bist_binder.avoid_cbilbo));
  j.set("bist_binder", std::move(bb));
  Json ic = Json::object();
  ic.set("weight_by_sd", Json::boolean(opts.interconnect.weight_by_sd));
  j.set("interconnect", std::move(ic));
  Json lt = Json::object();
  lt.set("hold_outputs_to_end",
         Json::boolean(opts.lifetime.hold_outputs_to_end));
  j.set("lifetime", std::move(lt));
  Json area = Json::object();
  area.set("bit_width", Json::number(opts.area.bit_width));
  area.set("reg_gates_per_bit", Json::number(opts.area.reg_gates_per_bit));
  area.set("mux_gates_per_bit", Json::number(opts.area.mux_gates_per_bit));
  area.set("tpg_extra_per_bit", Json::number(opts.area.tpg_extra_per_bit));
  area.set("sa_extra_per_bit", Json::number(opts.area.sa_extra_per_bit));
  area.set("bilbo_extra_per_bit",
           Json::number(opts.area.bilbo_extra_per_bit));
  area.set("cbilbo_extra_per_bit",
           Json::number(opts.area.cbilbo_extra_per_bit));
  area.set("add_gates_per_bit", Json::number(opts.area.add_gates_per_bit));
  area.set("sub_gates_per_bit", Json::number(opts.area.sub_gates_per_bit));
  area.set("logic_gates_per_bit",
           Json::number(opts.area.logic_gates_per_bit));
  area.set("cmp_gates_per_bit", Json::number(opts.area.cmp_gates_per_bit));
  area.set("mul_gates_per_bit2", Json::number(opts.area.mul_gates_per_bit2));
  area.set("div_gates_per_bit2", Json::number(opts.area.div_gates_per_bit2));
  area.set("alu_extra_kind_factor",
           Json::number(opts.area.alu_extra_kind_factor));
  j.set("area", std::move(area));
  return j;
}

SynthesisOptions options_from_json(const Json& j) {
  SynthesisOptions opts;
  opts.binder = binder_kind_from_name(j.at("binder").as_string());
  const Json& bb = j.at("bist_binder");
  opts.bist_binder.sd_ordered_pves = bb.at("sd_ordered_pves").as_bool();
  opts.bist_binder.delta_sd_rule = bb.at("delta_sd_rule").as_bool();
  opts.bist_binder.case_overrides = bb.at("case_overrides").as_bool();
  opts.bist_binder.avoid_cbilbo = bb.at("avoid_cbilbo").as_bool();
  opts.interconnect.weight_by_sd =
      j.at("interconnect").at("weight_by_sd").as_bool();
  opts.lifetime.hold_outputs_to_end =
      j.at("lifetime").at("hold_outputs_to_end").as_bool();
  const Json& area = j.at("area");
  opts.area.bit_width = area.at("bit_width").as_int();
  opts.area.reg_gates_per_bit = area.at("reg_gates_per_bit").as_number();
  opts.area.mux_gates_per_bit = area.at("mux_gates_per_bit").as_number();
  opts.area.tpg_extra_per_bit = area.at("tpg_extra_per_bit").as_number();
  opts.area.sa_extra_per_bit = area.at("sa_extra_per_bit").as_number();
  opts.area.bilbo_extra_per_bit = area.at("bilbo_extra_per_bit").as_number();
  opts.area.cbilbo_extra_per_bit =
      area.at("cbilbo_extra_per_bit").as_number();
  opts.area.add_gates_per_bit = area.at("add_gates_per_bit").as_number();
  opts.area.sub_gates_per_bit = area.at("sub_gates_per_bit").as_number();
  opts.area.logic_gates_per_bit = area.at("logic_gates_per_bit").as_number();
  opts.area.cmp_gates_per_bit = area.at("cmp_gates_per_bit").as_number();
  opts.area.mul_gates_per_bit2 = area.at("mul_gates_per_bit2").as_number();
  opts.area.div_gates_per_bit2 = area.at("div_gates_per_bit2").as_number();
  opts.area.alu_extra_kind_factor =
      area.at("alu_extra_kind_factor").as_number();
  return opts;
}

ModuleProto proto_from_label(std::string_view label) {
  LBIST_CHECK(!label.empty(), "empty module label");
  ModuleProto p;
  if (label.front() == '[') {
    LBIST_CHECK(label.size() >= 3 && label.back() == ']',
                "malformed ALU label: " + std::string(label));
    for (std::size_t i = 1; i + 1 < label.size(); ++i) {
      p.supports.push_back(kind_from_symbol(label.substr(i, 1)));
    }
  } else {
    p.supports.push_back(kind_from_symbol(label));
  }
  return p;
}

}  // namespace lbist
