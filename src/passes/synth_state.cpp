#include "passes/synth_state.hpp"

#include "support/check.hpp"

namespace lbist {

const char* binder_kind_name(BinderKind kind) {
  switch (kind) {
    case BinderKind::Traditional: return "traditional";
    case BinderKind::BistAware: return "bist-aware";
    case BinderKind::Ralloc: return "ralloc";
    case BinderKind::Syntest: return "syntest";
    case BinderKind::CliquePartition: return "clique";
    case BinderKind::LoopAware: return "loop-aware";
  }
  return "?";
}

BinderKind binder_kind_from_name(std::string_view name) {
  for (BinderKind kind :
       {BinderKind::Traditional, BinderKind::BistAware, BinderKind::Ralloc,
        BinderKind::Syntest, BinderKind::CliquePartition,
        BinderKind::LoopAware}) {
    if (name == binder_kind_name(kind)) return kind;
  }
  throw Error("unknown binder name: " + std::string(name));
}

SynthState::SynthState(std::unique_ptr<ParsedDfg> design,
                       std::vector<ModuleProto> protos, SynthesisOptions opts)
    : owned_(std::move(design)), protos_(std::move(protos)), opts_(opts) {
  LBIST_CHECK(owned_ != nullptr, "restored state needs a design");
  LBIST_CHECK(owned_->schedule.has_value(),
              "restored design carries no schedule");
  dfg_ = &owned_->dfg;
  sched_ = &*owned_->schedule;
}

}  // namespace lbist
