#include "core/explorer.hpp"

#include <sstream>

#include "support/table.hpp"

namespace lbist {

namespace {

const char* binder_name(BinderKind kind) {
  switch (kind) {
    case BinderKind::Traditional: return "traditional";
    case BinderKind::BistAware: return "bist-aware";
    case BinderKind::Ralloc: return "ralloc";
    case BinderKind::Syntest: return "syntest";
    case BinderKind::CliquePartition: return "clique";
  }
  return "?";
}

DesignPoint synthesize_point(const Dfg& dfg, const Schedule& sched,
                             const std::vector<ModuleProto>& protos,
                             const std::string& label, BinderKind binder,
                             const AreaModel& model) {
  SynthesisOptions opts;
  opts.binder = binder;
  opts.area = model;
  SynthesisResult result = Synthesizer(opts).run(dfg, sched, protos);

  DesignPoint point;
  point.label = label;
  point.binder = binder;
  point.latency = sched.num_steps();
  point.num_registers = result.num_registers();
  point.num_mux = result.num_mux();
  point.functional_area = result.functional_area;
  point.bist_extra = result.bist.extra_area;
  point.overhead_percent = result.overhead_percent;
  return point;
}

}  // namespace

std::vector<DesignPoint> explore_module_specs(
    const Dfg& dfg, const Schedule& sched,
    const std::vector<std::string>& specs, const ExplorerOptions& opts) {
  std::vector<DesignPoint> points;
  for (const std::string& spec : specs) {
    const auto protos = parse_module_spec(spec);
    for (BinderKind binder : opts.binders) {
      points.push_back(
          synthesize_point(dfg, sched, protos, spec, binder, opts.area));
    }
  }
  return points;
}

std::vector<DesignPoint> explore_resource_budgets(
    const Dfg& dfg, const std::vector<ResourceLimits>& budgets,
    const ExplorerOptions& opts) {
  std::vector<DesignPoint> points;
  for (const ResourceLimits& budget : budgets) {
    Schedule sched = list_schedule(dfg, budget);
    const auto protos = minimal_module_spec(dfg, sched);
    std::ostringstream label;
    bool first = true;
    for (const auto& [kind, count] : budget) {
      label << (first ? "" : ",") << count << symbol(kind);
      first = false;
    }
    label << " @" << sched.num_steps();
    for (BinderKind binder : opts.binders) {
      points.push_back(synthesize_point(dfg, sched, protos, label.str(),
                                        binder, opts.area));
    }
  }
  return points;
}

std::vector<std::size_t> pareto_front(const std::vector<DesignPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      const bool no_worse =
          points[j].functional_area <= points[i].functional_area &&
          points[j].bist_extra <= points[i].bist_extra;
      const bool better =
          points[j].functional_area < points[i].functional_area ||
          points[j].bist_extra < points[i].bist_extra;
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::string describe_points(const std::vector<DesignPoint>& points) {
  TextTable t({"point", "binder", "latency", "#reg", "#mux", "func area",
               "BIST extra", "% overhead", "total"});
  const auto front = pareto_front(points);
  auto on_front = [&](std::size_t i) {
    for (std::size_t f : front) {
      if (f == i) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DesignPoint& p = points[i];
    t.add_row({p.label + (on_front(i) ? " *" : ""), binder_name(p.binder),
               std::to_string(p.latency), std::to_string(p.num_registers),
               std::to_string(p.num_mux), fmt_double(p.functional_area, 0),
               fmt_double(p.bist_extra, 0),
               fmt_double(p.overhead_percent), fmt_double(p.total_area(), 0)});
  }
  return t.str() + "(* = on the (functional area, BIST extra) Pareto front)\n";
}

}  // namespace lbist
