#include "core/explorer.hpp"

#include <fstream>
#include <functional>
#include <mutex>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "core/sweep.hpp"
#include "obs/trace.hpp"
#include "passes/synth_state.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "support/version.hpp"

namespace lbist {

namespace {

Json point_to_json(const DesignPoint& p) {
  return Json::object()
      .set("label", Json::string(p.label))
      .set("binder", Json::string(std::string(binder_kind_name(p.binder))))
      .set("latency", Json::number(p.latency))
      .set("registers", Json::number(p.num_registers))
      .set("mux", Json::number(p.num_mux))
      .set("functional_area", Json::number(p.functional_area))
      .set("bist_extra", Json::number(p.bist_extra))
      .set("overhead_percent", Json::number(p.overhead_percent));
}

DesignPoint point_from_json(const Json& j) {
  DesignPoint p;
  p.label = j.at("label").as_string();
  p.binder = binder_kind_from_name(j.at("binder").as_string());
  p.latency = j.at("latency").as_int();
  p.num_registers = j.at("registers").as_int();
  p.num_mux = j.at("mux").as_int();
  p.functional_area = j.at("functional_area").as_number();
  p.bist_extra = j.at("bist_extra").as_number();
  p.overhead_percent = j.at("overhead_percent").as_number();
  return p;
}

/// JSONL sweep checkpoint: one completed DesignPoint per line, keyed by
/// (label, binder).  The constructor loads whatever a previous run managed
/// to write — malformed lines (e.g. a tail cut off by a crash) are skipped,
/// not fatal, since re-synthesizing a point is always safe.  record() is
/// mutex-guarded so jobs != 1 sweeps can share one checkpoint.
class Checkpoint {
 public:
  explicit Checkpoint(const std::string& path) : path_(path) {
    if (path_.empty()) return;
    bool any_line = false;
    std::ifstream in(path_);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      any_line = true;
      try {
        Json j = Json::parse(line);
        if (!j.is_object() || !j.contains("label")) continue;  // header
        DesignPoint p = point_from_json(j);
        done_.emplace(key(p.label, p.binder), p);
      } catch (const Error&) {
        continue;
      }
    }
    if (!any_line) {
      // Fresh checkpoint: open with a header naming the writing build.
      Json header = Json::object()
                        .set("checkpoint", Json::string("lowbist-explore-v1"))
                        .set("writer", build_info_json());
      append_line(header.dump_compact());
    }
  }

  [[nodiscard]] std::optional<DesignPoint> lookup(const std::string& label,
                                                  BinderKind binder) const {
    if (path_.empty()) return std::nullopt;
    auto it = done_.find(key(label, binder));
    if (it == done_.end()) return std::nullopt;
    return it->second;
  }

  void record(const DesignPoint& p) {
    if (path_.empty()) return;
    append_line(point_to_json(p).dump_compact());
  }

 private:
  static std::string key(const std::string& label, BinderKind binder) {
    return label + "\x1f" + binder_kind_name(binder);
  }

  void append_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    std::ofstream out(path_, std::ios::app);
    LBIST_CHECK(out.good(), "cannot write checkpoint file: " + path_);
    out << line << "\n";
  }

  std::string path_;
  std::unordered_map<std::string, DesignPoint> done_;
  std::mutex mu_;
};

/// One configured Synthesizer per binder style, hoisted out of the sweep
/// loop: a Synthesizer is stateless across run() calls, so every point
/// sharing a binder reuses the same instance (also from worker threads).
std::vector<Synthesizer> make_synthesizers(const ExplorerOptions& eopts) {
  std::vector<Synthesizer> synths;
  synths.reserve(eopts.binders.size());
  for (BinderKind binder : eopts.binders) {
    SynthesisOptions opts;
    opts.binder = binder;
    opts.area = eopts.area;
    opts.trace = eopts.trace;
    opts.events = eopts.events;
    synths.emplace_back(opts);
  }
  return synths;
}

DesignPoint synthesize_point(const Dfg& dfg, const Schedule& sched,
                             const std::vector<ModuleProto>& protos,
                             const std::string& label,
                             const Synthesizer& synth,
                             const ExplorerOptions& eopts) {
  const BinderKind binder = synth.options().binder;
  auto span = trace_span(eopts.trace, "point");
  if (span.active()) {
    span.arg("label", label);
    span.arg("binder", binder_kind_name(binder));
  }
  SynthesisResult result = synth.run(dfg, sched, protos);

  DesignPoint point;
  point.label = label;
  point.binder = binder;
  point.latency = sched.num_steps();
  point.num_registers = result.num_registers();
  point.num_mux = result.num_mux();
  point.functional_area = result.functional_area;
  point.bist_extra = result.bist.extra_area;
  point.overhead_percent = result.overhead_percent;
  return point;
}

}  // namespace

std::vector<DesignPoint> explore_module_specs(
    const Dfg& dfg, const Schedule& sched,
    const std::vector<std::string>& specs, const ExplorerOptions& opts) {
  const std::size_t per_spec = opts.binders.size();
  const std::vector<Synthesizer> synths = make_synthesizers(opts);
  Checkpoint checkpoint(opts.checkpoint);
  return run_sweep<DesignPoint>(
      specs.size() * per_spec, opts.jobs, [&](std::size_t i) {
        const std::string& spec = specs[i / per_spec];
        const std::size_t which = i % per_spec;
        if (auto done = checkpoint.lookup(spec, opts.binders[which])) {
          return *done;
        }
        const auto protos = parse_module_spec(spec);
        DesignPoint point =
            synthesize_point(dfg, sched, protos, spec, synths[which], opts);
        checkpoint.record(point);
        return point;
      });
}

std::vector<DesignPoint> explore_resource_budgets(
    const Dfg& dfg, const std::vector<ResourceLimits>& budgets,
    const ExplorerOptions& opts) {
  const std::size_t per_budget = opts.binders.size();
  const std::vector<Synthesizer> synths = make_synthesizers(opts);
  Checkpoint checkpoint(opts.checkpoint);
  return run_sweep<DesignPoint>(
      budgets.size() * per_budget, opts.jobs, [&](std::size_t i) {
        const ResourceLimits& budget = budgets[i / per_budget];
        const std::size_t which = i % per_budget;
        Schedule sched = list_schedule(dfg, budget);
        const auto protos = minimal_module_spec(dfg, sched);
        std::ostringstream label;
        bool first = true;
        for (const auto& [kind, count] : budget) {
          label << (first ? "" : ",") << count << symbol(kind);
          first = false;
        }
        label << " @" << sched.num_steps();
        // The checkpoint only skips synthesis; scheduling (cheap) reruns
        // because the label — the checkpoint key — depends on it.
        if (auto done = checkpoint.lookup(label.str(), opts.binders[which])) {
          return *done;
        }
        DesignPoint point = synthesize_point(dfg, sched, protos, label.str(),
                                             synths[which], opts);
        checkpoint.record(point);
        return point;
      });
}

std::vector<std::size_t> pareto_front(const std::vector<DesignPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      const bool no_worse =
          points[j].functional_area <= points[i].functional_area &&
          points[j].bist_extra <= points[i].bist_extra;
      const bool better =
          points[j].functional_area < points[i].functional_area ||
          points[j].bist_extra < points[i].bist_extra;
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::string describe_points(const std::vector<DesignPoint>& points) {
  TextTable t({"point", "binder", "latency", "#reg", "#mux", "func area",
               "BIST extra", "% overhead", "total"});
  const auto front = pareto_front(points);
  auto on_front = [&](std::size_t i) {
    for (std::size_t f : front) {
      if (f == i) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DesignPoint& p = points[i];
    t.add_row({p.label + (on_front(i) ? " *" : ""),
               std::string(binder_kind_name(p.binder)),
               std::to_string(p.latency), std::to_string(p.num_registers),
               std::to_string(p.num_mux), fmt_double(p.functional_area, 0),
               fmt_double(p.bist_extra, 0),
               fmt_double(p.overhead_percent), fmt_double(p.total_area(), 0)});
  }
  return t.str() + "(* = on the (functional area, BIST extra) Pareto front)\n";
}

}  // namespace lbist
