#include "core/explorer.hpp"

#include <functional>
#include <future>
#include <sstream>

#include "obs/trace.hpp"
#include "service/thread_pool.hpp"
#include "support/table.hpp"

namespace lbist {

namespace {

const char* binder_name(BinderKind kind) {
  switch (kind) {
    case BinderKind::Traditional: return "traditional";
    case BinderKind::BistAware: return "bist-aware";
    case BinderKind::Ralloc: return "ralloc";
    case BinderKind::Syntest: return "syntest";
    case BinderKind::CliquePartition: return "clique";
  }
  return "?";
}

DesignPoint synthesize_point(const Dfg& dfg, const Schedule& sched,
                             const std::vector<ModuleProto>& protos,
                             const std::string& label, BinderKind binder,
                             const ExplorerOptions& eopts) {
  auto span = trace_span(eopts.trace, "point");
  if (span.active()) {
    span.arg("label", label);
    span.arg("binder", binder_name(binder));
  }
  SynthesisOptions opts;
  opts.binder = binder;
  opts.area = eopts.area;
  opts.trace = eopts.trace;
  opts.events = eopts.events;
  SynthesisResult result = Synthesizer(opts).run(dfg, sched, protos);

  DesignPoint point;
  point.label = label;
  point.binder = binder;
  point.latency = sched.num_steps();
  point.num_registers = result.num_registers();
  point.num_mux = result.num_mux();
  point.functional_area = result.functional_area;
  point.bist_extra = result.bist.extra_area;
  point.overhead_percent = result.overhead_percent;
  return point;
}

/// Runs one independent task per design point, serially for jobs == 1 or
/// over a ThreadPool otherwise.  Each task writes its own slot, so results
/// come back in input order either way; a task's exception propagates
/// through its future after every task has finished.
std::vector<DesignPoint> run_points(
    std::size_t count, int jobs,
    const std::function<DesignPoint(std::size_t)>& make_point) {
  std::vector<DesignPoint> points(count);
  if (jobs == 1) {
    for (std::size_t i = 0; i < count; ++i) points[i] = make_point(i);
    return points;
  }
  ThreadPool pool(ThreadPool::resolve_jobs(jobs));
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(
        pool.submit([&, i] { points[i] = make_point(i); }));
  }
  for (auto& f : futures) f.get();
  return points;
}

}  // namespace

std::vector<DesignPoint> explore_module_specs(
    const Dfg& dfg, const Schedule& sched,
    const std::vector<std::string>& specs, const ExplorerOptions& opts) {
  const std::size_t per_spec = opts.binders.size();
  return run_points(
      specs.size() * per_spec, opts.jobs, [&](std::size_t i) {
        const std::string& spec = specs[i / per_spec];
        const BinderKind binder = opts.binders[i % per_spec];
        const auto protos = parse_module_spec(spec);
        return synthesize_point(dfg, sched, protos, spec, binder, opts);
      });
}

std::vector<DesignPoint> explore_resource_budgets(
    const Dfg& dfg, const std::vector<ResourceLimits>& budgets,
    const ExplorerOptions& opts) {
  const std::size_t per_budget = opts.binders.size();
  return run_points(
      budgets.size() * per_budget, opts.jobs, [&](std::size_t i) {
        const ResourceLimits& budget = budgets[i / per_budget];
        const BinderKind binder = opts.binders[i % per_budget];
        Schedule sched = list_schedule(dfg, budget);
        const auto protos = minimal_module_spec(dfg, sched);
        std::ostringstream label;
        bool first = true;
        for (const auto& [kind, count] : budget) {
          label << (first ? "" : ",") << count << symbol(kind);
          first = false;
        }
        label << " @" << sched.num_steps();
        return synthesize_point(dfg, sched, protos, label.str(), binder,
                                opts);
      });
}

std::vector<std::size_t> pareto_front(const std::vector<DesignPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      const bool no_worse =
          points[j].functional_area <= points[i].functional_area &&
          points[j].bist_extra <= points[i].bist_extra;
      const bool better =
          points[j].functional_area < points[i].functional_area ||
          points[j].bist_extra < points[i].bist_extra;
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::string describe_points(const std::vector<DesignPoint>& points) {
  TextTable t({"point", "binder", "latency", "#reg", "#mux", "func area",
               "BIST extra", "% overhead", "total"});
  const auto front = pareto_front(points);
  auto on_front = [&](std::size_t i) {
    for (std::size_t f : front) {
      if (f == i) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DesignPoint& p = points[i];
    t.add_row({p.label + (on_front(i) ? " *" : ""), binder_name(p.binder),
               std::to_string(p.latency), std::to_string(p.num_registers),
               std::to_string(p.num_mux), fmt_double(p.functional_area, 0),
               fmt_double(p.bist_extra, 0),
               fmt_double(p.overhead_percent), fmt_double(p.total_area(), 0)});
  }
  return t.str() + "(* = on the (functional area, BIST extra) Pareto front)\n";
}

}  // namespace lbist
