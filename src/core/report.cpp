#include "core/report.hpp"

#include "bist/roles.hpp"

namespace lbist {

namespace {

Json counts_json(const RoleCounts& c) {
  return Json::object()
      .set("tpg", Json::number(c.tpg))
      .set("sa", Json::number(c.sa))
      .set("bilbo", Json::number(c.tpg_sa))
      .set("cbilbo", Json::number(c.cbilbo))
      .set("modified", Json::number(c.modified()));
}

Json registers_json(const Dfg& dfg, const SynthesisResult& r) {
  Json regs = Json::array();
  for (std::size_t i = 0; i < r.datapath.registers.size(); ++i) {
    const auto& reg = r.datapath.registers[i];
    Json vars = Json::array();
    for (VarId v : reg.vars) vars.push_back(Json::string(dfg.var(v).name));
    regs.push_back(Json::object()
                       .set("name", Json::string(reg.name))
                       .set("dedicated_input",
                            Json::boolean(reg.dedicated_input))
                       .set("variables", std::move(vars))
                       .set("bist_role",
                            Json::string(to_string(r.bist.roles[i]))));
  }
  return regs;
}

Json modules_json(const SynthesisResult& r) {
  Json mods = Json::array();
  for (std::size_t m = 0; m < r.datapath.modules.size(); ++m) {
    const auto& mod = r.datapath.modules[m];
    Json entry = Json::object()
                     .set("name", Json::string(mod.name))
                     .set("functions", Json::string(mod.proto.label()))
                     .set("instances",
                          Json::number(static_cast<int>(
                              mod.instances.size())));
    if (r.bist.embeddings[m].has_value()) {
      const auto& e = *r.bist.embeddings[m];
      Json emb =
          Json::object()
              .set("tpg_left",
                   Json::string(r.datapath.registers[e.tpg_left].name))
              .set("tpg_right",
                   Json::string(r.datapath.registers[e.tpg_right].name))
              .set("sa", e.sa.has_value()
                             ? Json::string(
                                   r.datapath.registers[*e.sa].name)
                             : Json::string("<external>"))
              .set("needs_cbilbo", Json::boolean(e.needs_cbilbo()));
      entry.set("embedding", std::move(emb));
    }
    mods.push_back(std::move(entry));
  }
  return mods;
}

Json metrics_json(const SynthesisResult& r) {
  return Json::object()
      .set("registers", Json::number(r.num_registers()))
      .set("muxes", Json::number(r.num_mux()))
      .set("functional_area", Json::number(r.functional_area))
      .set("bist_extra_area", Json::number(r.bist.extra_area))
      .set("bist_overhead_percent", Json::number(r.overhead_percent))
      .set("bist_counts", counts_json(r.bist.counts()));
}

}  // namespace

Json report_json(const Dfg& dfg, const SynthesisResult& r) {
  return Json::object()
      .set("design", Json::string(dfg.name()))
      .set("metrics", metrics_json(r))
      .set("registers", registers_json(dfg, r))
      .set("modules", modules_json(r));
}

Json comparison_json(const ComparisonRow& row) {
  return Json::object()
      .set("design", Json::string(row.name))
      .set("module_spec", Json::string(row.module_spec))
      .set("traditional", metrics_json(row.traditional))
      .set("testable", metrics_json(row.testable))
      .set("reduction_percent", Json::number(row.reduction_percent()));
}

Json sweep_json(const std::vector<DesignPoint>& points) {
  const auto front = pareto_front(points);
  auto on_front = [&](std::size_t i) {
    for (std::size_t f : front) {
      if (f == i) return true;
    }
    return false;
  };
  Json arr = Json::array();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DesignPoint& p = points[i];
    arr.push_back(Json::object()
                      .set("label", Json::string(p.label))
                      .set("latency", Json::number(p.latency))
                      .set("registers", Json::number(p.num_registers))
                      .set("muxes", Json::number(p.num_mux))
                      .set("functional_area",
                           Json::number(p.functional_area))
                      .set("bist_extra", Json::number(p.bist_extra))
                      .set("overhead_percent",
                           Json::number(p.overhead_percent))
                      .set("pareto", Json::boolean(on_front(i))));
  }
  return arr;
}

}  // namespace lbist
