#pragma once
// Design-space exploration (extension): the paper argues that considering
// testability early lets synthesis explore the testable design space; this
// module actually walks that space.  Given a behaviour, it sweeps resource
// budgets (which change the schedule), module specs and binder styles, and
// reports every point's functional area, BIST overhead and register/mux
// counts, with a Pareto filter over (functional area, BIST extra area).

#include <string>
#include <vector>

#include "core/synthesizer.hpp"
#include "sched/list_sched.hpp"

namespace lbist {

/// One synthesized design point.
struct DesignPoint {
  std::string label;
  BinderKind binder = BinderKind::BistAware;
  int latency = 0;
  int num_registers = 0;
  int num_mux = 0;
  double functional_area = 0.0;
  double bist_extra = 0.0;
  double overhead_percent = 0.0;

  [[nodiscard]] double total_area() const {
    return functional_area + bist_extra;
  }
};

/// Sweep configuration.
struct ExplorerOptions {
  /// Binder styles to try at each point.
  std::vector<BinderKind> binders = {BinderKind::Traditional,
                                     BinderKind::BistAware};
  AreaModel area{};
  /// Worker threads for the sweep: 1 = serial (default), < 1 = hardware
  /// concurrency.  Results are returned in deterministic input order
  /// (spec-major, binder-minor) regardless of the thread count.
  int jobs = 1;
  /// Optional observability (obs/): every point's pipeline runs under a
  /// "point" span and feeds decision events.  Both sinks are thread-safe,
  /// so they work with jobs != 1.  Borrowed, not owned.
  TraceRecorder* trace = nullptr;
  AlgorithmEvents* events = nullptr;
  /// Checkpoint file ("" = none): completed design points are appended as
  /// JSONL while the sweep runs, and points already present are returned
  /// without re-synthesis — an interrupted sweep resumes where it
  /// stopped.  The file opens with a header line recording the writing
  /// build (support/version.hpp).  Keyed by (label, binder): reuse a
  /// checkpoint only with the same design, width and sweep axes.
  std::string checkpoint;
};

/// Explores a *scheduled* design across module specs (each spec string is
/// one point, labelled by the spec).
[[nodiscard]] std::vector<DesignPoint> explore_module_specs(
    const Dfg& dfg, const Schedule& sched,
    const std::vector<std::string>& specs, const ExplorerOptions& opts = {});

/// Explores an *unscheduled* design across resource budgets: each budget is
/// list-scheduled, the minimal spec derived, and the point synthesized.
[[nodiscard]] std::vector<DesignPoint> explore_resource_budgets(
    const Dfg& dfg, const std::vector<ResourceLimits>& budgets,
    const ExplorerOptions& opts = {});

/// Indices of the points not dominated on (functional_area, bist_extra) —
/// smaller is better in both.
[[nodiscard]] std::vector<std::size_t> pareto_front(
    const std::vector<DesignPoint>& points);

/// Renders the sweep as an aligned table.
[[nodiscard]] std::string describe_points(
    const std::vector<DesignPoint>& points);

}  // namespace lbist
