#include "core/annealed_binder.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "binding/bist_aware_binder.hpp"
#include "bist/allocator.hpp"
#include "interconnect/build_datapath.hpp"
#include "support/check.hpp"

namespace lbist {

double binding_cost(const Dfg& dfg, const ModuleBinding& mb,
                    const RegisterBinding& rb, const AreaModel& model) {
  const Datapath dp = build_datapath(dfg, mb, rb);
  BistAllocator alloc(model);
  const BistSolution sol = alloc.solve(dp);
  double mux_area = 0.0;
  for (const auto& mod : dp.modules) {
    mux_area += model.mux_area(mod.left_sources.size());
    mux_area += model.mux_area(mod.right_sources.size());
  }
  for (const auto& reg : dp.registers) {
    mux_area += model.mux_area(reg.source_modules.size() +
                               (reg.external_source ? 1u : 0u));
  }
  return sol.extra_area + mux_area;
}

RegisterBinding bind_registers_annealed(const Dfg& dfg,
                                        const VarConflictGraph& cg,
                                        const ModuleBinding& mb,
                                        const AreaModel& model,
                                        const AnnealOptions& opts) {
  RegisterBinding current = bind_registers_bist_aware(dfg, cg, mb);
  if (cg.vars.empty()) return current;

  double current_cost = binding_cost(dfg, mb, current, model);
  RegisterBinding best = current;
  double best_cost = current_cost;

  std::mt19937_64 rng(opts.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick_vertex(
      0, cg.vars.size() - 1);

  double temperature = opts.initial_temperature;
  for (int iter = 0; iter < opts.iterations; ++iter) {
    temperature *= opts.cooling;

    // Move: push one variable into another register it does not conflict
    // with (possibly emptying its old register, which is then dropped).
    const VarId var = cg.vars[pick_vertex(rng)];
    const std::size_t vertex = cg.vertex(var);
    const RegId from = current.reg_of[var];

    std::vector<std::size_t> targets;
    for (std::size_t r = 0; r < current.num_regs(); ++r) {
      if (r == from.index()) continue;
      bool ok = true;
      for (VarId member : current.regs[r]) {
        if (cg.graph.adjacent(vertex, cg.vertex(member))) {
          ok = false;
          break;
        }
      }
      if (ok) targets.push_back(r);
    }
    if (targets.empty()) continue;
    std::uniform_int_distribution<std::size_t> pick_target(
        0, targets.size() - 1);
    const std::size_t to = targets[pick_target(rng)];

    RegisterBinding candidate = current;
    auto& from_vars = candidate.regs[from.index()];
    from_vars.erase(std::find(from_vars.begin(), from_vars.end(), var));
    candidate.regs[to].push_back(var);
    candidate.reg_of[var] = RegId{static_cast<RegId::value_type>(to)};
    // Drop an emptied register (renumber).
    if (from_vars.empty()) {
      candidate.regs.erase(candidate.regs.begin() +
                           static_cast<std::ptrdiff_t>(from.index()));
      candidate.reg_of.assign(dfg.num_vars(), RegId::invalid());
      for (std::size_t r = 0; r < candidate.regs.size(); ++r) {
        for (VarId member : candidate.regs[r]) {
          candidate.reg_of[member] =
              RegId{static_cast<RegId::value_type>(r)};
        }
      }
    } else if (opts.keep_register_count &&
               candidate.num_regs() > best.num_regs()) {
      continue;
    }

    const double cost = binding_cost(dfg, mb, candidate, model);
    const double delta = cost - current_cost;
    if (delta <= 0.0 ||
        uniform(rng) < std::exp(-delta / std::max(temperature, 1e-6))) {
      current = std::move(candidate);
      current_cost = cost;
      if (cost < best_cost) {
        best = current;
        best_cost = cost;
      }
    }
  }
  return best;
}

}  // namespace lbist
