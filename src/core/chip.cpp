#include "core/chip.hpp"

#include <sstream>

#include "bist/verilog_bist.hpp"
#include "dfg/parse.hpp"
#include "rtl/simulate.hpp"
#include "rtl/testbench.hpp"
#include "rtl/verilog.hpp"
#include "rtl/verilog_controller.hpp"
#include "support/check.hpp"

namespace lbist {

SelfTestingChip synthesize_chip(const Dfg& dfg, const Schedule& sched,
                                const std::vector<ModuleProto>& protos,
                                const ChipOptions& opts) {
  SynthesisOptions sopts = opts.synthesis;
  sopts.area.bit_width = opts.bit_width;

  SelfTestingChip chip{
      Synthesizer(sopts).run(dfg, sched, protos), Controller{}, {}, {},
      "",  "", "", ""};
  chip.controller = Controller::generate(dfg, sched,
                                         chip.synthesis.registers,
                                         chip.synthesis.datapath,
                                         chip.synthesis.lifetimes);

  // Safety net: the data path must compute the behaviour.  Deterministic
  // stimulus (input i gets i+1).
  IdMap<VarId, std::uint32_t> inputs(dfg.num_vars(), 0);
  std::uint32_t next = 1;
  for (const auto& v : dfg.vars()) {
    if (v.is_input()) inputs[v.id] = next++;
  }
  const SimResult sim =
      simulate_datapath(dfg, chip.synthesis.datapath, chip.controller,
                        inputs, opts.bit_width);
  LBIST_CHECK(sim.ok(),
              "functional cross-check failed — binder/interconnect bug");

  chip.plan = build_test_plan(chip.synthesis.datapath, chip.synthesis.bist,
                              opts.patterns, opts.bit_width);
  chip.selftest = run_self_test(chip.synthesis.datapath,
                                chip.synthesis.bist, opts.patterns,
                                opts.bit_width);

  chip.datapath_verilog =
      emit_verilog(chip.synthesis.datapath, opts.bit_width);
  chip.controller_verilog =
      emit_controller_verilog(chip.synthesis.datapath, chip.controller);
  chip.testbench_verilog =
      emit_testbench(dfg, chip.synthesis.datapath, chip.controller, inputs,
                     sim, opts.bit_width);
  // Transparency-extended plans cannot be emitted; the default allocator
  // does not produce them, but a custom SynthesisOptions could.
  bool transparent = false;
  for (const auto& e : chip.synthesis.bist.embeddings) {
    transparent = transparent || (e.has_value() && e->uses_transparency());
  }
  if (!transparent) {
    chip.bist_verilog =
        emit_bist_verilog(chip.synthesis.datapath, chip.synthesis.bist,
                          chip.selftest, opts.patterns, opts.bit_width);
  }
  return chip;
}

SelfTestingChip synthesize_chip(const std::string& dfg_text,
                                const std::string& module_spec,
                                const ChipOptions& opts) {
  ParsedDfg design = parse_dfg(dfg_text);
  LBIST_CHECK(design.schedule.has_value(),
              "synthesize_chip needs a scheduled design (@step annotations)");
  return synthesize_chip(design.dfg, *design.schedule,
                         parse_module_spec(module_spec), opts);
}

std::string SelfTestingChip::summary(const Dfg& dfg) const {
  std::ostringstream os;
  os << synthesis.describe(dfg);
  os << plan.describe(synthesis.datapath);
  os << "chip-level self-test: " << selftest.faults_detected << "/"
     << selftest.faults_injected << " port faults detected\n";
  os << "artifacts: " << datapath_verilog.size() << "B datapath, "
     << controller_verilog.size() << "B controller, "
     << testbench_verilog.size() << "B testbench, " << bist_verilog.size()
     << "B self-testing RTL\n";
  return os.str();
}

}  // namespace lbist
