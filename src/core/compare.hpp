#pragma once
// Side-by-side comparison driver: runs the Traditional and BIST-aware
// pipelines on one benchmark and assembles the quantities reported in the
// paper's Tables I and II.

#include <string>
#include <vector>

#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"

namespace lbist {

/// One benchmark's worth of Table I + Table II data.
struct ComparisonRow {
  std::string name;
  std::string module_spec;

  SynthesisResult traditional;
  SynthesisResult testable;

  /// Percentage reduction in BIST area overhead (last column of Table I).
  [[nodiscard]] double reduction_percent() const {
    if (traditional.overhead_percent == 0.0) return 0.0;
    return 100.0 *
           (traditional.overhead_percent - testable.overhead_percent) /
           traditional.overhead_percent;
  }
};

/// Runs both arms on one benchmark.
[[nodiscard]] ComparisonRow compare_benchmark(const Benchmark& bench,
                                              const AreaModel& model = {});

/// Runs both arms on every paper benchmark (the full Table I/II).
[[nodiscard]] std::vector<ComparisonRow> compare_paper_benchmarks(
    const AreaModel& model = {});

}  // namespace lbist
