#pragma once
// Machine-readable reports: JSON serialization of synthesis results,
// comparisons and design-space sweeps (CLI `--json`, CI integration).

#include "core/compare.hpp"
#include "core/explorer.hpp"
#include "core/synthesizer.hpp"
#include "support/json.hpp"

namespace lbist {

/// Full single-design report: binding, data path structure, BIST solution
/// and the headline metrics.
[[nodiscard]] Json report_json(const Dfg& dfg, const SynthesisResult& r);

/// Traditional-vs-testable comparison (one Table I row).
[[nodiscard]] Json comparison_json(const ComparisonRow& row);

/// A design-space sweep (one object per point, Pareto membership marked).
[[nodiscard]] Json sweep_json(const std::vector<DesignPoint>& points);

}  // namespace lbist
