#pragma once
// Simulated-annealing register binder (extension; ground-truth-chasing).
//
// The paper's heuristic optimizes *proxies* (sharing degrees, the Lemma-2
// conditions); this binder optimizes the real objective directly — the
// extra gates of the minimal-area BIST solution plus the mux area of the
// resulting data path — by annealing over valid bindings (moves: reassign
// one variable to another compatible register).  Each candidate is priced
// by running interconnect construction and the exact BIST allocator, so
// it is slow; its role is to bound how much the fast heuristic leaves on
// the table (bench_binding_space), echoing the paper's remark that "in a
// globally minimal BIST area overhead solution, a register might be
// modified into a CBILBO even though it is not necessary to do so".

#include <cstdint>

#include "binding/module_binding.hpp"
#include "binding/register_binding.hpp"
#include "bist/area_model.hpp"
#include "dfg/dfg.hpp"
#include "graph/conflict.hpp"

namespace lbist {

/// Annealing schedule knobs.  Deterministic for a given seed.
struct AnnealOptions {
  std::uint64_t seed = 1;
  int iterations = 3000;
  double initial_temperature = 20.0;
  double cooling = 0.998;
  /// Never exceed the starting binding's register count.
  bool keep_register_count = true;
};

/// The real objective the annealer minimizes: BIST conversion gates plus
/// total mux gates of the built data path.
[[nodiscard]] double binding_cost(const Dfg& dfg, const ModuleBinding& mb,
                                  const RegisterBinding& rb,
                                  const AreaModel& model);

/// Anneals from the BIST-aware heuristic's binding.  Never returns a
/// worse-than-start binding (the best-so-far is kept).
[[nodiscard]] RegisterBinding bind_registers_annealed(
    const Dfg& dfg, const VarConflictGraph& cg, const ModuleBinding& mb,
    const AreaModel& model, const AnnealOptions& opts = {});

}  // namespace lbist
