#include "core/compare.hpp"

namespace lbist {

ComparisonRow compare_benchmark(const Benchmark& bench,
                                const AreaModel& model) {
  LBIST_CHECK(bench.design.schedule.has_value(),
              "benchmark must carry a schedule");
  const auto protos = parse_module_spec(bench.module_spec);

  SynthesisOptions trad_opts;
  trad_opts.binder = BinderKind::Traditional;
  trad_opts.area = model;

  SynthesisOptions test_opts;
  test_opts.binder = BinderKind::BistAware;
  test_opts.area = model;

  ComparisonRow row;
  row.name = bench.name;
  row.module_spec = bench.module_spec;
  row.traditional = Synthesizer(trad_opts).run(
      bench.design.dfg, *bench.design.schedule, protos);
  row.testable = Synthesizer(test_opts).run(bench.design.dfg,
                                            *bench.design.schedule, protos);
  return row;
}

std::vector<ComparisonRow> compare_paper_benchmarks(const AreaModel& model) {
  std::vector<ComparisonRow> rows;
  for (const Benchmark& bench : paper_benchmarks()) {
    rows.push_back(compare_benchmark(bench, model));
  }
  return rows;
}

}  // namespace lbist
