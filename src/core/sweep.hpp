#pragma once
// Deterministic parallel fan-out shared by the design-space explorer and
// the hybrid-BIST Pareto sweep.
//
// The contract that makes `-j 1` and `-j N` bit-identical: every task is an
// independent pure function of its index, and each writes only its own
// result slot, so the output vector is in input order regardless of the
// thread count or completion order.

#include <cstddef>
#include <functional>
#include <future>
#include <vector>

#include "service/thread_pool.hpp"

namespace lbist {

/// Runs one independent task per point, serially for jobs == 1 or over a
/// ThreadPool otherwise (jobs < 1 = hardware concurrency).  A task's
/// exception propagates through its future after every task has finished.
template <class Point>
[[nodiscard]] std::vector<Point> run_sweep(
    std::size_t count, int jobs,
    const std::function<Point(std::size_t)>& make_point) {
  std::vector<Point> points(count);
  if (jobs == 1) {
    for (std::size_t i = 0; i < count; ++i) points[i] = make_point(i);
    return points;
  }
  ThreadPool pool(ThreadPool::resolve_jobs(jobs));
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([&, i] { points[i] = make_point(i); }));
  }
  for (auto& f : futures) f.get();
  return points;
}

}  // namespace lbist
