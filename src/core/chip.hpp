#pragma once
// One-call facade: behaviour in, self-testing chip out.
//
// Wraps the whole stack — parse/schedule checks, synthesis, controller
// generation, a functional-simulation cross-check, the fault-simulated
// test plan, and every RTL artifact (functional data path, controller FSM,
// self-checking testbench, self-testing BIST version with golden
// signatures).  What a downstream user calls when they do not care about
// the intermediate representations.

#include <string>

#include "bist/selftest.hpp"
#include "bist/test_plan.hpp"
#include "core/synthesizer.hpp"
#include "rtl/controller.hpp"

namespace lbist {

/// Everything the flow produces.
struct SelfTestingChip {
  SynthesisResult synthesis;
  Controller controller;
  TestPlan plan;
  SelfTestResult selftest;

  std::string datapath_verilog;
  std::string controller_verilog;
  std::string testbench_verilog;
  std::string bist_verilog;

  /// Short human-readable summary of the whole chip.
  [[nodiscard]] std::string summary(const Dfg& dfg) const;
};

/// Flow knobs beyond SynthesisOptions.
struct ChipOptions {
  SynthesisOptions synthesis{};
  int bit_width = 8;       ///< RTL/fault-sim width (area model follows)
  int patterns = 250;      ///< BIST session length (period-capped)
};

/// Runs the full flow on a scheduled DFG.  Throws lbist::Error if the
/// functional simulation cross-check fails (it cannot, unless a binder
/// invariant is broken — this is the flow's safety net).
[[nodiscard]] SelfTestingChip synthesize_chip(
    const Dfg& dfg, const Schedule& sched,
    const std::vector<ModuleProto>& protos, const ChipOptions& opts = {});

/// Convenience: parse the textual format (must carry @steps) and run.
[[nodiscard]] SelfTestingChip synthesize_chip(
    const std::string& dfg_text, const std::string& module_spec,
    const ChipOptions& opts = {});

}  // namespace lbist
