#pragma once
// End-to-end synthesis pipeline: scheduled DFG -> module binding ->
// register binding -> interconnect -> data path -> minimal-area BIST
// solution.  This is the library's main entry point.
//
// `Synthesizer` is a thin façade over the pass manager (src/passes): the
// five phases live as `Pass` objects in a `PassPipeline`, which adds
// checkpoint/resume (serializable IR snapshots), single-pass remote
// execution and incremental re-synthesis on top of the same code path.
// Callers that only want a result keep using this header unchanged.

#include <string>
#include <vector>

#include "binding/bist_aware_binder.hpp"
#include "binding/module_binding.hpp"
#include "binding/register_binding.hpp"
#include "bist/allocator.hpp"
#include "dfg/dfg.hpp"
#include "dfg/lifetime.hpp"
#include "dfg/schedule.hpp"
#include "interconnect/build_datapath.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

class TraceRecorder;   // obs/trace.hpp — pipeline phase spans
class AlgorithmEvents;  // obs/events.hpp — paper-level decision events

/// Which register-binding strategy the pipeline uses.
enum class BinderKind {
  Traditional,      ///< left-edge minimum binding, no testability
  BistAware,        ///< the paper's algorithm (Section III)
  Ralloc,           ///< Avra-style baseline (self-adjacency minimizing)
  Syntest,          ///< Papachristou-style baseline (self-testable template)
  CliquePartition,  ///< SD-weighted clique partitioning (extension)
  LoopAware,        ///< honors Dfg::loop_ties() (extension; loops are out
                    ///< of the paper's scope)
};

/// Pipeline configuration.
///
/// The observability pointers are borrowed (caller keeps ownership, must
/// outlive the run) and deliberately excluded from synthesis_cache_key():
/// they do not change what is synthesized, only what is recorded about it.
struct SynthesisOptions {
  BinderKind binder = BinderKind::BistAware;
  BistBinderOptions bist_binder{};
  InterconnectOptions interconnect{};
  LifetimeOptions lifetime{};
  AreaModel area{};
  TraceRecorder* trace = nullptr;    ///< phase spans (sched/binding/...)
  AlgorithmEvents* events = nullptr;  ///< decision events + counters
};

/// Everything the pipeline produced, with the headline metrics.
struct SynthesisResult {
  ModuleBinding modules;
  RegisterBinding registers;
  IdMap<VarId, LiveInterval> lifetimes;
  Datapath datapath;
  BistSolution bist;

  double functional_area = 0.0;
  double overhead_percent = 0.0;  ///< the paper's "% BIST area"

  [[nodiscard]] int num_registers() const {
    return static_cast<int>(registers.num_regs());
  }
  [[nodiscard]] int num_mux() const { return datapath.mux_count(); }

  /// Multi-line report: binding, data path structure, BIST solution.
  [[nodiscard]] std::string describe(const Dfg& dfg) const;
};

/// Runs the pipeline.
class Synthesizer {
 public:
  explicit Synthesizer(SynthesisOptions opts = {}) : opts_(opts) {}

  /// Synthesizes `dfg` under `sched` with the pinned module prototypes.
  [[nodiscard]] SynthesisResult run(const Dfg& dfg, const Schedule& sched,
                                    const std::vector<ModuleProto>& protos)
      const;

  [[nodiscard]] const SynthesisOptions& options() const { return opts_; }

 private:
  SynthesisOptions opts_;
};

}  // namespace lbist
