#include "core/synthesizer.hpp"

#include <sstream>

#include "baselines/ralloc.hpp"
#include "baselines/syntest.hpp"
#include "binding/clique_binder.hpp"
#include "binding/loop_binder.hpp"
#include "binding/traditional_binder.hpp"
#include "graph/conflict.hpp"
#include "obs/trace.hpp"

namespace lbist {

SynthesisResult Synthesizer::run(const Dfg& dfg, const Schedule& sched,
                                 const std::vector<ModuleProto>& protos)
    const {
  SynthesisResult result;
  {
    // "sched" covers the schedule-derived analyses: module binding,
    // lifetimes, conflict-graph construction (the schedule itself arrives
    // precomputed).
    auto span = trace_span(opts_.trace, "sched");
    if (span.active()) span.arg("design", dfg.name());
    result.modules = ModuleBinding::bind(dfg, sched, protos);
    result.lifetimes = compute_lifetimes(dfg, sched, opts_.lifetime);
  }
  const VarConflictGraph cg = [&] {
    auto span = trace_span(opts_.trace, "conflict_graph");
    return build_conflict_graph(dfg, result.lifetimes);
  }();

  {
    auto span = trace_span(opts_.trace, "binding");
    switch (opts_.binder) {
      case BinderKind::Traditional:
        result.registers =
            bind_registers_traditional(dfg, cg, result.lifetimes);
        break;
      case BinderKind::BistAware:
        result.registers = bind_registers_bist_aware(
            dfg, cg, result.modules, opts_.bist_binder, nullptr,
            opts_.events);
        break;
      case BinderKind::Ralloc:
        result.registers = bind_registers_ralloc(dfg, cg, result.modules);
        break;
      case BinderKind::Syntest:
        result.registers = bind_registers_syntest(dfg, cg, result.modules);
        break;
      case BinderKind::CliquePartition:
        result.registers = bind_registers_clique(dfg, cg, result.modules);
        break;
      case BinderKind::LoopAware:
        result.registers = bind_registers_loop_aware(dfg, result.lifetimes);
        break;
    }
    result.registers.validate(dfg, result.lifetimes);
    if (span.active()) {
      span.arg("registers",
               static_cast<std::uint64_t>(result.registers.num_regs()));
    }
  }

  {
    auto span = trace_span(opts_.trace, "interconnect");
    result.datapath = build_datapath(dfg, result.modules, result.registers,
                                     opts_.interconnect, "", opts_.events);
    if (span.active()) {
      span.arg("muxes", static_cast<std::uint64_t>(result.datapath.mux_count()));
    }
  }

  {
    auto span = trace_span(opts_.trace, "bist");
    switch (opts_.binder) {
      case BinderKind::Ralloc:
        result.bist = ralloc_bist_labelling(result.datapath, opts_.area);
        break;
      case BinderKind::Syntest:
        result.bist = syntest_bist_labelling(result.datapath, opts_.area);
        break;
      default: {
        BistAllocator allocator(opts_.area);
        allocator.events = opts_.events;
        result.bist = allocator.solve(result.datapath);
        break;
      }
    }
    if (span.active()) {
      span.arg("extra_area", result.bist.extra_area);
      span.arg_bool("exact", result.bist.exact);
    }
  }

  result.functional_area = opts_.area.functional_area(result.datapath);
  result.overhead_percent =
      result.bist.overhead_percent(result.datapath, opts_.area);
  return result;
}

std::string SynthesisResult::describe(const Dfg& dfg) const {
  std::ostringstream os;
  os << "register binding: " << registers.to_string(dfg) << "\n";
  os << datapath.describe();
  os << bist.describe(datapath);
  os << "functional area: " << functional_area << " gates, BIST overhead: "
     << overhead_percent << "%\n";
  return os.str();
}

}  // namespace lbist
