#include "core/synthesizer.hpp"

#include <sstream>

#include "baselines/ralloc.hpp"
#include "baselines/syntest.hpp"
#include "binding/clique_binder.hpp"
#include "binding/loop_binder.hpp"
#include "binding/traditional_binder.hpp"
#include "graph/conflict.hpp"

namespace lbist {

SynthesisResult Synthesizer::run(const Dfg& dfg, const Schedule& sched,
                                 const std::vector<ModuleProto>& protos)
    const {
  SynthesisResult result;
  result.modules = ModuleBinding::bind(dfg, sched, protos);
  result.lifetimes = compute_lifetimes(dfg, sched, opts_.lifetime);
  const VarConflictGraph cg = build_conflict_graph(dfg, result.lifetimes);

  switch (opts_.binder) {
    case BinderKind::Traditional:
      result.registers = bind_registers_traditional(dfg, cg, result.lifetimes);
      break;
    case BinderKind::BistAware:
      result.registers = bind_registers_bist_aware(dfg, cg, result.modules,
                                                   opts_.bist_binder);
      break;
    case BinderKind::Ralloc:
      result.registers = bind_registers_ralloc(dfg, cg, result.modules);
      break;
    case BinderKind::Syntest:
      result.registers = bind_registers_syntest(dfg, cg, result.modules);
      break;
    case BinderKind::CliquePartition:
      result.registers = bind_registers_clique(dfg, cg, result.modules);
      break;
    case BinderKind::LoopAware:
      result.registers = bind_registers_loop_aware(dfg, result.lifetimes);
      break;
  }
  result.registers.validate(dfg, result.lifetimes);

  result.datapath = build_datapath(dfg, result.modules, result.registers,
                                   opts_.interconnect);

  switch (opts_.binder) {
    case BinderKind::Ralloc:
      result.bist = ralloc_bist_labelling(result.datapath, opts_.area);
      break;
    case BinderKind::Syntest:
      result.bist = syntest_bist_labelling(result.datapath, opts_.area);
      break;
    default: {
      const BistAllocator allocator(opts_.area);
      result.bist = allocator.solve(result.datapath);
      break;
    }
  }

  result.functional_area = opts_.area.functional_area(result.datapath);
  result.overhead_percent =
      result.bist.overhead_percent(result.datapath, opts_.area);
  return result;
}

std::string SynthesisResult::describe(const Dfg& dfg) const {
  std::ostringstream os;
  os << "register binding: " << registers.to_string(dfg) << "\n";
  os << datapath.describe();
  os << bist.describe(datapath);
  os << "functional area: " << functional_area << " gates, BIST overhead: "
     << overhead_percent << "%\n";
  return os.str();
}

}  // namespace lbist
