#include "core/synthesizer.hpp"

#include <sstream>

#include "passes/pipeline.hpp"

namespace lbist {

SynthesisResult Synthesizer::run(const Dfg& dfg, const Schedule& sched,
                                 const std::vector<ModuleProto>& protos)
    const {
  // Thin façade over the pass pipeline (src/passes): same phases, same
  // order, same trace spans and events — byte-identical to the former
  // monolithic implementation.
  SynthState state(dfg, sched, protos, opts_);
  PassPipeline::standard().run(state);
  return std::move(state.result);
}

std::string SynthesisResult::describe(const Dfg& dfg) const {
  std::ostringstream os;
  os << "register binding: " << registers.to_string(dfg) << "\n";
  os << datapath.describe();
  os << bist.describe(datapath);
  os << "functional area: " << functional_area << " gates, BIST overhead: "
     << overhead_percent << "%\n";
  return os.str();
}

}  // namespace lbist
