#include "gates/module_builders.hpp"

namespace lbist {

namespace {

/// Skeleton with the A and B input columns created (A first, then B —
/// ModuleNetlist::eval relies on this order).
ModuleNetlist make_ports(int width) {
  LBIST_CHECK(width >= 1, "width must be positive");
  ModuleNetlist m;
  m.width = width;
  for (int i = 0; i < width; ++i) m.a.push_back(m.netlist.add_input());
  for (int i = 0; i < width; ++i) m.b.push_back(m.netlist.add_input());
  return m;
}

/// Full adder: returns {sum, carry}.
std::pair<int, int> full_adder(GateNetlist& nl, int a, int b, int cin) {
  const int axb = nl.add_gate(GateKind::Xor, a, b);
  const int sum = nl.add_gate(GateKind::Xor, axb, cin);
  const int ab = nl.add_gate(GateKind::And, a, b);
  const int cx = nl.add_gate(GateKind::And, axb, cin);
  const int cout = nl.add_gate(GateKind::Or, ab, cx);
  return {sum, cout};
}

/// Sum-only adder cell for the most significant position: real truncated
/// hardware never builds the dead carry-out (it would be unobservable, and
/// would show up as untestable faults in grading).
int sum_only_adder(GateNetlist& nl, int a, int b, int cin) {
  const int axb = nl.add_gate(GateKind::Xor, a, b);
  return nl.add_gate(GateKind::Xor, axb, cin);
}

}  // namespace

ModuleNetlist build_adder(int width) {
  ModuleNetlist m = make_ports(width);
  int carry = m.netlist.add_const(false);
  for (int i = 0; i < width; ++i) {
    const int a = m.a[static_cast<std::size_t>(i)];
    const int b = m.b[static_cast<std::size_t>(i)];
    if (i + 1 == width) {
      m.netlist.mark_output(sum_only_adder(m.netlist, a, b, carry));
    } else {
      auto [sum, cout] = full_adder(m.netlist, a, b, carry);
      m.netlist.mark_output(sum);
      carry = cout;
    }
  }
  return m;
}

ModuleNetlist build_subtractor(int width) {
  // a - b = a + ~b + 1.
  ModuleNetlist m = make_ports(width);
  int carry = m.netlist.add_const(true);
  for (int i = 0; i < width; ++i) {
    const int nb = m.netlist.add_gate(GateKind::Not,
                                      m.b[static_cast<std::size_t>(i)]);
    const int a = m.a[static_cast<std::size_t>(i)];
    if (i + 1 == width) {
      m.netlist.mark_output(sum_only_adder(m.netlist, a, nb, carry));
    } else {
      auto [sum, cout] = full_adder(m.netlist, a, nb, carry);
      m.netlist.mark_output(sum);
      carry = cout;
    }
  }
  return m;
}

ModuleNetlist build_comparator(int width, bool less_than) {
  // Borrow chain of a - b: borrow_{i+1} = (~a_i & b_i) | (~(a_i ^ b_i) &
  // borrow_i); final borrow = (a < b).  Result is bit 0; upper bits 0.
  ModuleNetlist m = make_ports(width);
  GateNetlist& nl = m.netlist;
  int borrow = nl.add_const(false);
  for (int i = 0; i < width; ++i) {
    const int a = m.a[static_cast<std::size_t>(i)];
    const int b = m.b[static_cast<std::size_t>(i)];
    const int na = nl.add_gate(GateKind::Not, a);
    const int nab = nl.add_gate(GateKind::And, na, b);
    const int axb = nl.add_gate(GateKind::Xor, a, b);
    const int eq = nl.add_gate(GateKind::Not, axb);
    const int keep = nl.add_gate(GateKind::And, eq, borrow);
    borrow = nl.add_gate(GateKind::Or, nab, keep);
  }
  if (less_than) {
    nl.mark_output(borrow);  // a < b
  } else {
    // a > b  ==  b < a  ==  borrow of (b - a); recompute with swapped
    // roles: equivalently a > b = ~(a < b) & ~(a == b).  Build equality.
    int eq_all = nl.add_const(true);
    for (int i = 0; i < width; ++i) {
      const int axb = nl.add_gate(GateKind::Xor,
                                  m.a[static_cast<std::size_t>(i)],
                                  m.b[static_cast<std::size_t>(i)]);
      const int eq = nl.add_gate(GateKind::Not, axb);
      eq_all = nl.add_gate(GateKind::And, eq_all, eq);
    }
    const int nlt = nl.add_gate(GateKind::Not, borrow);
    const int neq = nl.add_gate(GateKind::Not, eq_all);
    nl.mark_output(nl.add_gate(GateKind::And, nlt, neq));
  }
  const int zero = nl.add_const(false);
  for (int i = 1; i < width; ++i) nl.mark_output(zero);
  return m;
}

ModuleNetlist build_bitwise(OpKind kind, int width) {
  GateKind gate = GateKind::And;
  switch (kind) {
    case OpKind::And: gate = GateKind::And; break;
    case OpKind::Or: gate = GateKind::Or; break;
    case OpKind::Xor: gate = GateKind::Xor; break;
    default: throw Error("build_bitwise: not a bitwise kind");
  }
  ModuleNetlist m = make_ports(width);
  for (int i = 0; i < width; ++i) {
    m.netlist.mark_output(m.netlist.add_gate(
        gate, m.a[static_cast<std::size_t>(i)],
        m.b[static_cast<std::size_t>(i)]));
  }
  return m;
}

ModuleNetlist build_multiplier(int width) {
  // Truncated array multiplier: accumulate (a & b_j) << j row by row with
  // ripple adders, keeping only the low `width` bits.
  ModuleNetlist m = make_ports(width);
  GateNetlist& nl = m.netlist;
  const int zero = nl.add_const(false);

  // Row 0: partial products a_i & b_0.
  std::vector<int> acc(static_cast<std::size_t>(width), zero);
  for (int i = 0; i < width; ++i) {
    acc[static_cast<std::size_t>(i)] =
        nl.add_gate(GateKind::And, m.a[static_cast<std::size_t>(i)],
                    m.b[0]);
  }
  // Rows 1..width-1: acc += (a & b_j) << j (truncated).
  for (int j = 1; j < width; ++j) {
    int carry = zero;
    for (int i = j; i < width; ++i) {
      const int pp = nl.add_gate(GateKind::And,
                                 m.a[static_cast<std::size_t>(i - j)],
                                 m.b[static_cast<std::size_t>(j)]);
      if (i + 1 == width) {
        acc[static_cast<std::size_t>(i)] =
            sum_only_adder(nl, acc[static_cast<std::size_t>(i)], pp, carry);
      } else {
        auto [sum, cout] =
            full_adder(nl, acc[static_cast<std::size_t>(i)], pp, carry);
        acc[static_cast<std::size_t>(i)] = sum;
        carry = cout;
      }
    }
  }
  for (int i = 0; i < width; ++i) {
    nl.mark_output(acc[static_cast<std::size_t>(i)]);
  }
  return m;
}

bool has_gate_level_model(OpKind kind) {
  return kind != OpKind::Div;
}

ModuleNetlist build_module(OpKind kind, int width) {
  switch (kind) {
    case OpKind::Add: return build_adder(width);
    case OpKind::Sub: return build_subtractor(width);
    case OpKind::Mul: return build_multiplier(width);
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor: return build_bitwise(kind, width);
    case OpKind::Lt: return build_comparator(width, true);
    case OpKind::Gt: return build_comparator(width, false);
    case OpKind::Div:
      throw Error(
          "no combinational gate-level divider model; use the port-level "
          "fault model for OpKind::Div");
  }
  throw Error("unknown kind");
}

}  // namespace lbist
