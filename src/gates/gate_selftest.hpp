#pragma once
// Gate-level grading of an allocated BIST plan.
//
// bist/selftest.hpp runs the plan against word-level module semantics with
// port faults; this variant descends one level: each module's responses
// are computed by its gate netlist (src/gates), the fault universe is every
// internal gate node, and — crucially — the pattern generators are the
// *allocated* TPG registers with their chip seeds, not generic ones.  The
// result is the coverage this exact allocation achieves on this exact
// structure, the number a test engineer would sign off.
//
// Modules without a gate model (dividers) are graded with the port-fault
// model and reported separately.

#include "bist/allocator.hpp"
#include "bist/fault_sim.hpp"
#include "gates/module_builders.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

/// Per-module gate-level outcome.
struct GateSelfTestModule {
  std::size_t module = 0;
  bool gate_level = true;  ///< false when the port model was used
  CoverageResult coverage;
};

/// Whole-plan outcome.
struct GateSelfTestResult {
  std::vector<GateSelfTestModule> modules;
  int faults_injected = 0;
  int faults_detected = 0;

  [[nodiscard]] double coverage() const {
    return faults_injected == 0
               ? 1.0
               : static_cast<double>(faults_detected) / faults_injected;
  }
};

/// Chip seed of TPG register `reg` at `width` bits — the per-register
/// power-on constant the emitted hardware, the word-level engine
/// (bist/selftest.cpp), this grader and the hybrid session model all agree
/// on.  Never zero (an all-zero LFSR state is absorbing).
[[nodiscard]] std::uint32_t chip_seed(std::size_t reg, int width);

/// Grades every testable module of the solution at gate level, using the
/// embedding's TPG registers (chip seeds) and a per-function MISR session,
/// `patterns` clocks each (period-capped).
[[nodiscard]] GateSelfTestResult run_gate_self_test(
    const Datapath& dp, const BistSolution& solution, int patterns,
    int width);

}  // namespace lbist
