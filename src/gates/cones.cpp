#include "gates/cones.hpp"

#include <algorithm>

#include "support/dyn_bitset.hpp"

namespace lbist {

std::vector<std::size_t> cone_sizes(const GateNetlist& nl) {
  // Forward propagation of structural input supports; nodes are in
  // topological order by construction, inputs numbered in creation order.
  const std::size_t n = nl.num_nodes();
  const std::size_t num_inputs = nl.num_inputs();
  std::vector<DynBitset> support(n, DynBitset(num_inputs));
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const GateNode& node = nl.node(i);
    switch (node.kind) {
      case GateKind::Input:
        support[i].set(next_input++);
        break;
      case GateKind::Const0:
      case GateKind::Const1:
        break;
      default:
        support[i] |= support[static_cast<std::size_t>(node.fanin0)];
        if (node.fanin1 >= 0) {
          support[i] |= support[static_cast<std::size_t>(node.fanin1)];
        }
    }
  }
  std::vector<std::size_t> sizes;
  sizes.reserve(nl.outputs().size());
  for (int o : nl.outputs()) {
    sizes.push_back(support[static_cast<std::size_t>(o)].count());
  }
  return sizes;
}

ConeProfile cone_profile(const GateNetlist& nl) {
  const auto sizes = cone_sizes(nl);
  ConeProfile p;
  if (sizes.empty()) return p;
  p.max_cone = *std::max_element(sizes.begin(), sizes.end());
  p.min_cone = *std::min_element(sizes.begin(), sizes.end());
  double sum = 0;
  for (std::size_t s : sizes) sum += static_cast<double>(s);
  p.avg_cone = sum / static_cast<double>(sizes.size());
  p.pseudo_exhaustive_patterns =
      p.max_cone >= 63 ? (~std::uint64_t{0} >> 1)
                       : (std::uint64_t{1} << p.max_cone);
  return p;
}

}  // namespace lbist
