#pragma once
// Gate-level stuck-at fault simulation under the BIST configuration:
// maximal-length LFSRs drive both operand ports, a MISR compacts the
// outputs, and every internal gate node is graded stuck-at-0/1.
//
// Complements bist/fault_sim.hpp (port faults): the port model is
// implementation-independent (the paper's working assumption), the gate
// model validates that assumption on concrete ripple/array structures.
//
// Beyond the aggregate grader, this header exposes the hooks the hybrid
// test-session model (src/hybrid/) needs: a seeded session variant that
// reports *which* faults stay undetected (the hard faults reseeding must
// target), per-fault input cones for seed computation, and alias-free
// single-pattern detection checks.

#include "bist/fault_sim.hpp"
#include "gates/module_builders.hpp"

namespace lbist {

/// All 2*N stuck-at faults on the netlist's nodes (gate outputs, primary
/// inputs and constants — a stuck tie-cell is a real defect; its
/// stuck-at-same-value variant is redundant and simply stays undetected).
struct GateFault {
  int node = 0;
  bool stuck_one = false;
};
[[nodiscard]] std::vector<GateFault> enumerate_gate_faults(
    const GateNetlist& netlist);

/// Fault-simulates pseudo-random BIST of a gate-level module: LFSR
/// patterns on A and B (distinct seeds unless `independent_tpgs` is
/// false), MISR signature per run.  `patterns` is capped at one LFSR
/// period.  Returns detected/total over all gate faults.
[[nodiscard]] CoverageResult simulate_gate_bist(const ModuleNetlist& module,
                                                int patterns,
                                                bool independent_tpgs = true);

/// Outcome of one seeded pseudo-random session with the full per-fault
/// verdict retained.
struct GateBistDetail {
  CoverageResult summary;
  std::uint32_t golden_signature = 0;
  /// Faults whose MISR signature matched the golden one — the hard faults
  /// a reseed or deterministic top-up phase must pick up.  Enumeration
  /// order (ascending node, stuck-0 before stuck-1).
  std::vector<GateFault> undetected;
};

/// Same session model as simulate_gate_bist but with explicit TPG chip
/// seeds (both non-zero), and the per-fault detail kept.  `patterns` is
/// capped at one LFSR period.
[[nodiscard]] GateBistDetail simulate_gate_bist_seeded(
    const ModuleNetlist& module, std::uint32_t seed_a, std::uint32_t seed_b,
    int patterns);

/// Primary-input nodes in the transitive fan-in of `node`, ascending.
/// The support of a fault site: any test for the fault can only be
/// sensitized through these inputs, so seed search may enumerate this
/// (usually small) cone instead of the full 2*width input space.
[[nodiscard]] std::vector<int> fault_cone_inputs(const GateNetlist& netlist,
                                                 int node);

/// True when operand pattern (a, b) makes the faulty module's outputs
/// differ from the golden outputs — ideal (alias-free) observation, the
/// criterion seed search uses before committing a reseed.
[[nodiscard]] bool pattern_detects_fault(const ModuleNetlist& module,
                                         std::uint32_t a, std::uint32_t b,
                                         const GateFault& fault);

}  // namespace lbist
