#pragma once
// Gate-level stuck-at fault simulation under the BIST configuration:
// maximal-length LFSRs drive both operand ports, a MISR compacts the
// outputs, and every internal gate node is graded stuck-at-0/1.
//
// Complements bist/fault_sim.hpp (port faults): the port model is
// implementation-independent (the paper's working assumption), the gate
// model validates that assumption on concrete ripple/array structures.

#include "bist/fault_sim.hpp"
#include "gates/module_builders.hpp"

namespace lbist {

/// All 2*N stuck-at faults on the netlist's non-source nodes (gate outputs
/// and primary inputs; constants are skipped — they are untestable ties).
struct GateFault {
  int node = 0;
  bool stuck_one = false;
};
[[nodiscard]] std::vector<GateFault> enumerate_gate_faults(
    const GateNetlist& netlist);

/// Fault-simulates pseudo-random BIST of a gate-level module: LFSR
/// patterns on A and B (distinct seeds unless `independent_tpgs` is
/// false), MISR signature per run.  `patterns` is capped at one LFSR
/// period.  Returns detected/total over all gate faults.
[[nodiscard]] CoverageResult simulate_gate_bist(const ModuleNetlist& module,
                                                int patterns,
                                                bool independent_tpgs = true);

}  // namespace lbist
