#pragma once
// Gate-level netlists — the layer below the RTL operator modules.
//
// The paper's premise (Section II) is that mapping registers to TPGs/SAs is
// "independent of the function and the gate-level implementation of the
// operator modules".  This library makes that claim testable: it provides
// actual gate netlists for the operator kinds (ripple-carry adders, array
// multipliers, borrow-chain comparators, ...) and a stuck-at fault
// simulator over *internal* gate nodes, so BIST coverage can be graded
// against real structure instead of only port faults.
//
// Evaluation is 64-way bit-parallel: every node value is a 64-bit word
// carrying 64 independent patterns, which makes exhaustive and
// pseudo-random fault grading cheap.

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace lbist {

/// Supported gate kinds.  Input nodes carry stimulus; Const nodes are tied.
enum class GateKind : std::uint8_t {
  Input,
  Const0,
  Const1,
  Buf,
  Not,
  And,
  Or,
  Xor,
  Nand,
  Nor,
};

/// One node of the netlist (gates reference earlier nodes only, so the
/// vector order is a topological order).
struct GateNode {
  GateKind kind = GateKind::Input;
  int fanin0 = -1;
  int fanin1 = -1;
};

/// A combinational gate netlist.
class GateNetlist {
 public:
  /// Adds a primary input node; returns its index.
  int add_input();
  /// Adds a constant node.
  int add_const(bool one);
  /// Adds a one- or two-input gate over existing nodes.
  int add_gate(GateKind kind, int a, int b = -1);
  /// Marks a node as a primary output (order of calls = output order).
  void mark_output(int node);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] const GateNode& node(std::size_t i) const {
    return nodes_[i];
  }
  [[nodiscard]] std::size_t num_inputs() const { return num_inputs_; }
  [[nodiscard]] const std::vector<int>& outputs() const { return outputs_; }
  /// Gate count excluding inputs, constants and buffers (area proxy).
  [[nodiscard]] std::size_t gate_count() const;

  /// Evaluates 64 patterns at once: `input_words[i]` carries input i's 64
  /// values (bit p = pattern p).  `fault_node >= 0` forces that node to
  /// `fault_value` (stuck-at injection).  Returns one word per output.
  [[nodiscard]] std::vector<std::uint64_t> eval(
      const std::vector<std::uint64_t>& input_words, int fault_node = -1,
      bool fault_value = false) const;

 private:
  std::vector<GateNode> nodes_;
  std::vector<int> outputs_;
  std::size_t num_inputs_ = 0;
};

/// A gate netlist packaged as a binary operator module: bit indices of the
/// two operand ports and the result port.
struct ModuleNetlist {
  GateNetlist netlist;
  std::vector<int> a;  ///< operand A input nodes, LSB first
  std::vector<int> b;  ///< operand B input nodes, LSB first
  int width = 0;

  /// Evaluates the module on 64 (a, b) pattern pairs packed per bit.
  [[nodiscard]] std::vector<std::uint64_t> eval(
      const std::vector<std::uint64_t>& a_bits,
      const std::vector<std::uint64_t>& b_bits, int fault_node = -1,
      bool fault_value = false) const;
};

}  // namespace lbist
