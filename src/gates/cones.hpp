#pragma once
// Output-cone analysis of gate netlists, and the pseudo-exhaustive test
// criterion.
//
// Pseudo-exhaustive testing (McCluskey) applies all 2^k patterns to every
// output cone of at most k inputs, guaranteeing detection of every
// combinational fault inside the cone without fault simulation.  The cone
// profile of a module therefore bounds how long exhaustive-quality BIST
// would take — and shows why pseudo-random testing is the practical choice
// for arithmetic units: a ripple adder's MSB cone spans the entire operand
// width, so 2^(2w) patterns would be needed.

#include <vector>

#include "gates/gate_netlist.hpp"

namespace lbist {

/// Per-output input-support sizes of a netlist, in output order.
[[nodiscard]] std::vector<std::size_t> cone_sizes(const GateNetlist& nl);

/// Cone profile summary.
struct ConeProfile {
  std::size_t max_cone = 0;   ///< widest output support
  std::size_t min_cone = 0;   ///< narrowest output support
  double avg_cone = 0.0;
  /// Patterns for pseudo-exhaustive coverage = 2^max_cone (capped at
  /// 2^63 - 1 to stay representable).
  std::uint64_t pseudo_exhaustive_patterns = 0;
};

[[nodiscard]] ConeProfile cone_profile(const GateNetlist& nl);

}  // namespace lbist
