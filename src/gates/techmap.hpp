#pragma once
// NAND-only technology mapping.
//
// Every gate-level model can be lowered to 2-input NANDs (the universal
// cell of the era's gate arrays); the mapper rewrites a netlist and the
// parallel evaluator proves equivalence.  Gives the fault simulator a
// second, finer-grained fault universe (every NAND output a site) and the
// area model a sanity anchor in "real" gate-array cells.

#include "dfg/dfg.hpp"
#include "gates/gate_netlist.hpp"

namespace lbist {

/// Result of lowering: the NAND-only netlist plus cell statistics.
struct TechMapped {
  GateNetlist netlist;
  std::size_t nand_count = 0;
};

/// Rewrites `src` using only Input/Const/Nand nodes (inverters become
/// single-input-tied NANDs: NAND(a, a)).  Output order is preserved.
[[nodiscard]] TechMapped map_to_nand(const GateNetlist& src);

/// Convenience: NAND cell count of a module kind at `width` (an area
/// figure in universal cells, cf. AreaModel's gate equivalents).
[[nodiscard]] std::size_t nand_cells(OpKind kind, int width);

}  // namespace lbist
