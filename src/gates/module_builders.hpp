#pragma once
// Gate-level builders for the operator-module kinds.
//
//  * Add  — ripple-carry adder (5 gates/bit: 2 XOR, 2 AND, 1 OR)
//  * Sub  — two's-complement ripple subtractor (invert + carry-in 1)
//  * Lt/Gt — borrow-chain magnitude comparator (1-bit result)
//  * And/Or/Xor — one gate per bit
//  * Mul  — truncated array multiplier (AND partial products + ripple
//           adder rows), the classic structure behind the area model's
//           quadratic term
//
// Division has no compact combinational netlist (restoring dividers are
// sequential); `build_module` rejects OpKind::Div — the port-level fault
// model (bist/fault_sim.hpp) covers it instead.

#include "dfg/dfg.hpp"
#include "gates/gate_netlist.hpp"

namespace lbist {

[[nodiscard]] ModuleNetlist build_adder(int width);
[[nodiscard]] ModuleNetlist build_subtractor(int width);
[[nodiscard]] ModuleNetlist build_comparator(int width, bool less_than);
[[nodiscard]] ModuleNetlist build_bitwise(OpKind kind, int width);
[[nodiscard]] ModuleNetlist build_multiplier(int width);

/// Dispatch by operator kind; throws for OpKind::Div.
[[nodiscard]] ModuleNetlist build_module(OpKind kind, int width);

/// True if a gate-level builder exists for the kind.
[[nodiscard]] bool has_gate_level_model(OpKind kind);

}  // namespace lbist
