#include "gates/techmap.hpp"

#include "gates/module_builders.hpp"
#include "support/check.hpp"

namespace lbist {

TechMapped map_to_nand(const GateNetlist& src) {
  TechMapped out;
  GateNetlist& nl = out.netlist;
  std::vector<int> new_of(src.num_nodes(), -1);

  auto nand = [&](int a, int b) { return nl.add_gate(GateKind::Nand, a, b); };
  auto inv = [&](int a) { return nand(a, a); };

  for (std::size_t i = 0; i < src.num_nodes(); ++i) {
    const GateNode& n = src.node(i);
    const int a = n.fanin0 >= 0 ? new_of[static_cast<std::size_t>(n.fanin0)]
                                : -1;
    const int b = n.fanin1 >= 0 ? new_of[static_cast<std::size_t>(n.fanin1)]
                                : -1;
    int mapped = -1;
    switch (n.kind) {
      case GateKind::Input: mapped = nl.add_input(); break;
      case GateKind::Const0: mapped = nl.add_const(false); break;
      case GateKind::Const1: mapped = nl.add_const(true); break;
      case GateKind::Buf: mapped = a; break;  // wire, no cell
      case GateKind::Not: mapped = inv(a); break;
      case GateKind::Nand: mapped = nand(a, b); break;
      case GateKind::And: mapped = inv(nand(a, b)); break;
      case GateKind::Or:
        // a | b = NAND(~a, ~b)
        mapped = nand(inv(a), inv(b));
        break;
      case GateKind::Nor: mapped = inv(nand(inv(a), inv(b))); break;
      case GateKind::Xor: {
        // a ^ b = NAND(NAND(a, t), NAND(b, t)) with t = NAND(a, b).
        const int t = nand(a, b);
        mapped = nand(nand(a, t), nand(b, t));
        break;
      }
    }
    LBIST_CHECK(mapped >= 0, "technology mapping produced no node");
    new_of[i] = mapped;
  }
  for (int o : src.outputs()) {
    nl.mark_output(new_of[static_cast<std::size_t>(o)]);
  }
  out.nand_count = nl.gate_count();
  return out;
}

std::size_t nand_cells(OpKind kind, int width) {
  return map_to_nand(build_module(kind, width).netlist).nand_count;
}

}  // namespace lbist
