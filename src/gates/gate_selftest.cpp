#include "gates/gate_selftest.hpp"

#include <algorithm>

#include "gates/gate_fault_sim.hpp"
#include "support/check.hpp"
#include "support/lfsr.hpp"

namespace lbist {

// Chip seed per register — must match bist/selftest.cpp so the emitted
// hardware, the word-level engine and this grader agree on the stimulus.
std::uint32_t chip_seed(std::size_t reg, int width) {
  const std::uint32_t mask =
      width == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << width) - 1);
  const std::uint32_t seed =
      (0x9E3779B9u * (static_cast<std::uint32_t>(reg) + 1)) & mask;
  return seed == 0 ? 1 : seed;
}

namespace {

/// Signature of one module-function session through the gate netlist.
std::uint32_t session_signature(const ModuleNetlist& net,
                                std::uint32_t seed_l, std::uint32_t seed_r,
                                int patterns, int width, int fault_node,
                                bool fault_value) {
  Lfsr tl(width, seed_l);
  Lfsr tr(width, seed_r);
  Misr sa(width);
  // Pack pattern blocks of up to 64 and evaluate in parallel.
  for (int done = 0; done < patterns; done += 64) {
    const int count = std::min(64, patterns - done);
    std::vector<std::uint64_t> a_bits(static_cast<std::size_t>(width), 0);
    std::vector<std::uint64_t> b_bits(static_cast<std::size_t>(width), 0);
    for (int p = 0; p < count; ++p) {
      const std::uint32_t a = tl.state();
      const std::uint32_t b = tr.state();
      for (int bit = 0; bit < width; ++bit) {
        if ((a >> bit) & 1u) {
          a_bits[static_cast<std::size_t>(bit)] |= std::uint64_t{1} << p;
        }
        if ((b >> bit) & 1u) {
          b_bits[static_cast<std::size_t>(bit)] |= std::uint64_t{1} << p;
        }
      }
      tl.step();
      tr.step();
    }
    const auto out = net.eval(a_bits, b_bits, fault_node, fault_value);
    for (int p = 0; p < count; ++p) {
      std::uint32_t word = 0;
      for (int bit = 0; bit < width; ++bit) {
        if ((out[static_cast<std::size_t>(bit)] >> p) & 1u) {
          word |= 1u << bit;
        }
      }
      sa.absorb(word);
    }
  }
  return sa.signature();
}

}  // namespace

GateSelfTestResult run_gate_self_test(const Datapath& dp,
                                      const BistSolution& solution,
                                      int patterns, int width) {
  const std::uint64_t period = (std::uint64_t{1} << width) - 1;
  if (static_cast<std::uint64_t>(patterns) > period) {
    patterns = static_cast<int>(period);
  }

  GateSelfTestResult result;
  for (std::size_t m = 0; m < dp.modules.size(); ++m) {
    if (!solution.embeddings[m].has_value()) continue;
    const BistEmbedding& e = *solution.embeddings[m];
    LBIST_CHECK(!e.uses_transparency(),
                "gate-level grading of transparent paths is not supported");
    const std::uint32_t seed_l = chip_seed(e.tpg_left, width);
    const std::uint32_t seed_r = chip_seed(e.tpg_right, width);

    GateSelfTestModule report;
    report.module = m;

    bool all_kinds_modeled = true;
    for (OpKind k : dp.modules[m].proto.supports) {
      all_kinds_modeled = all_kinds_modeled && has_gate_level_model(k);
    }
    if (!all_kinds_modeled) {
      report.gate_level = false;
      report.coverage =
          simulate_module_bist(dp.modules[m].proto, width, patterns);
    } else {
      for (OpKind k : dp.modules[m].proto.supports) {
        const ModuleNetlist net = build_module(k, width);
        const std::uint32_t golden = session_signature(
            net, seed_l, seed_r, patterns, width, -1, false);
        for (const GateFault& f : enumerate_gate_faults(net.netlist)) {
          ++report.coverage.total;
          if (session_signature(net, seed_l, seed_r, patterns, width,
                                f.node, f.stuck_one) != golden) {
            ++report.coverage.detected;
          }
        }
      }
    }
    result.faults_injected += report.coverage.total;
    result.faults_detected += report.coverage.detected;
    result.modules.push_back(report);
  }
  return result;
}

}  // namespace lbist
