#include "gates/gate_netlist.hpp"

namespace lbist {

int GateNetlist::add_input() {
  nodes_.push_back(GateNode{GateKind::Input, -1, -1});
  ++num_inputs_;
  return static_cast<int>(nodes_.size()) - 1;
}

int GateNetlist::add_const(bool one) {
  nodes_.push_back(
      GateNode{one ? GateKind::Const1 : GateKind::Const0, -1, -1});
  return static_cast<int>(nodes_.size()) - 1;
}

int GateNetlist::add_gate(GateKind kind, int a, int b) {
  const int self = static_cast<int>(nodes_.size());
  LBIST_CHECK(kind != GateKind::Input && kind != GateKind::Const0 &&
                  kind != GateKind::Const1,
              "use add_input/add_const for source nodes");
  LBIST_CHECK(a >= 0 && a < self, "fanin out of range");
  const bool unary = (kind == GateKind::Buf || kind == GateKind::Not);
  if (unary) {
    LBIST_CHECK(b < 0, "unary gate takes one fanin");
  } else {
    LBIST_CHECK(b >= 0 && b < self, "fanin out of range");
  }
  nodes_.push_back(GateNode{kind, a, b});
  return self;
}

void GateNetlist::mark_output(int node) {
  LBIST_CHECK(node >= 0 && node < static_cast<int>(nodes_.size()),
              "output node out of range");
  outputs_.push_back(node);
}

std::size_t GateNetlist::gate_count() const {
  std::size_t count = 0;
  for (const auto& n : nodes_) {
    switch (n.kind) {
      case GateKind::Input:
      case GateKind::Const0:
      case GateKind::Const1:
      case GateKind::Buf:
        break;
      default:
        ++count;
    }
  }
  return count;
}

std::vector<std::uint64_t> GateNetlist::eval(
    const std::vector<std::uint64_t>& input_words, int fault_node,
    bool fault_value) const {
  LBIST_CHECK(input_words.size() == num_inputs_,
              "input word count must match input count");
  std::vector<std::uint64_t> value(nodes_.size(), 0);
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const GateNode& n = nodes_[i];
    std::uint64_t v = 0;
    switch (n.kind) {
      case GateKind::Input: v = input_words[next_input++]; break;
      case GateKind::Const0: v = 0; break;
      case GateKind::Const1: v = ~std::uint64_t{0}; break;
      case GateKind::Buf: v = value[static_cast<std::size_t>(n.fanin0)];
        break;
      case GateKind::Not:
        v = ~value[static_cast<std::size_t>(n.fanin0)];
        break;
      case GateKind::And:
        v = value[static_cast<std::size_t>(n.fanin0)] &
            value[static_cast<std::size_t>(n.fanin1)];
        break;
      case GateKind::Or:
        v = value[static_cast<std::size_t>(n.fanin0)] |
            value[static_cast<std::size_t>(n.fanin1)];
        break;
      case GateKind::Xor:
        v = value[static_cast<std::size_t>(n.fanin0)] ^
            value[static_cast<std::size_t>(n.fanin1)];
        break;
      case GateKind::Nand:
        v = ~(value[static_cast<std::size_t>(n.fanin0)] &
              value[static_cast<std::size_t>(n.fanin1)]);
        break;
      case GateKind::Nor:
        v = ~(value[static_cast<std::size_t>(n.fanin0)] |
              value[static_cast<std::size_t>(n.fanin1)]);
        break;
    }
    if (fault_node == static_cast<int>(i)) {
      v = fault_value ? ~std::uint64_t{0} : 0;
    }
    value[i] = v;
  }
  std::vector<std::uint64_t> out;
  out.reserve(outputs_.size());
  for (int o : outputs_) out.push_back(value[static_cast<std::size_t>(o)]);
  return out;
}

std::vector<std::uint64_t> ModuleNetlist::eval(
    const std::vector<std::uint64_t>& a_bits,
    const std::vector<std::uint64_t>& b_bits, int fault_node,
    bool fault_value) const {
  LBIST_CHECK(static_cast<int>(a_bits.size()) == width &&
                  static_cast<int>(b_bits.size()) == width,
              "operand bit-vectors must match the module width");
  // Interleave into the netlist's input order: inputs were created A first
  // then B (see module_builders.cpp).
  std::vector<std::uint64_t> inputs;
  inputs.reserve(netlist.num_inputs());
  inputs.insert(inputs.end(), a_bits.begin(), a_bits.end());
  inputs.insert(inputs.end(), b_bits.begin(), b_bits.end());
  return netlist.eval(inputs, fault_node, fault_value);
}

}  // namespace lbist
