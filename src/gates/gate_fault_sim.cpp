#include "gates/gate_fault_sim.hpp"

#include <algorithm>

#include "support/lfsr.hpp"

namespace lbist {

std::vector<GateFault> enumerate_gate_faults(const GateNetlist& netlist) {
  // Every node is a fault site, constants included (a stuck tie-cell is a
  // real defect; the stuck-at-same-value variant is trivially untestable
  // and simply stays undetected, like any redundant fault).
  std::vector<GateFault> faults;
  for (std::size_t n = 0; n < netlist.num_nodes(); ++n) {
    faults.push_back(GateFault{static_cast<int>(n), false});
    faults.push_back(GateFault{static_cast<int>(n), true});
  }
  return faults;
}

namespace {

/// Packs `count` (<= 64) consecutive LFSR states, bit i of word `b` being
/// bit b of the i-th state.
std::vector<std::uint64_t> pack_patterns(Lfsr& lfsr, int count, int width) {
  std::vector<std::uint64_t> words(static_cast<std::size_t>(width), 0);
  for (int p = 0; p < count; ++p) {
    const std::uint32_t state = lfsr.state();
    for (int b = 0; b < width; ++b) {
      if ((state >> b) & 1u) {
        words[static_cast<std::size_t>(b)] |= std::uint64_t{1} << p;
      }
    }
    lfsr.step();
  }
  return words;
}

/// One 64-pattern-parallel stimulus block for both operand ports.
struct Block {
  std::vector<std::uint64_t> a, b;
  int count = 0;
};

/// Pre-packs a whole session's stimulus in 64-pattern blocks.
std::vector<Block> pack_session(Lfsr& gen_a, Lfsr& gen_b, int patterns,
                                int width) {
  std::vector<Block> blocks;
  for (int done = 0; done < patterns; done += 64) {
    const int count = std::min(64, patterns - done);
    Block blk;
    blk.a = pack_patterns(gen_a, count, width);
    blk.b = pack_patterns(gen_b, count, width);
    blk.count = count;
    blocks.push_back(std::move(blk));
  }
  return blocks;
}

/// MISR signature of one (possibly faulty) run over the packed blocks.
std::uint32_t run_signature(const ModuleNetlist& module,
                            const std::vector<Block>& blocks, int fault_node,
                            bool fault_value) {
  const int width = module.width;
  Misr sa(width);
  for (const Block& blk : blocks) {
    const auto out = module.eval(blk.a, blk.b, fault_node, fault_value);
    for (int p = 0; p < blk.count; ++p) {
      std::uint32_t word = 0;
      for (int b = 0; b < width; ++b) {
        if ((out[static_cast<std::size_t>(b)] >> p) & 1u) word |= 1u << b;
      }
      sa.absorb(word);
    }
  }
  return sa.signature();
}

int cap_to_period(int patterns, int width) {
  const std::uint64_t period = (std::uint64_t{1} << width) - 1;
  if (static_cast<std::uint64_t>(patterns) > period) {
    return static_cast<int>(period);
  }
  return patterns;
}

}  // namespace

CoverageResult simulate_gate_bist(const ModuleNetlist& module, int patterns,
                                  bool independent_tpgs) {
  const int width = module.width;
  patterns = cap_to_period(patterns, width);

  Lfsr gen_a(width, 0x5);
  Lfsr gen_b(width, independent_tpgs ? 0x13 : 0x5);
  const std::vector<Block> blocks =
      pack_session(gen_a, gen_b, patterns, width);

  const std::uint32_t golden = run_signature(module, blocks, -1, false);
  CoverageResult result;
  for (const GateFault& f : enumerate_gate_faults(module.netlist)) {
    ++result.total;
    if (run_signature(module, blocks, f.node, f.stuck_one) != golden) {
      ++result.detected;
    }
  }
  return result;
}

GateBistDetail simulate_gate_bist_seeded(const ModuleNetlist& module,
                                         std::uint32_t seed_a,
                                         std::uint32_t seed_b, int patterns) {
  const int width = module.width;
  patterns = cap_to_period(patterns, width);

  Lfsr gen_a(width, seed_a);
  Lfsr gen_b(width, seed_b);
  const std::vector<Block> blocks =
      pack_session(gen_a, gen_b, patterns, width);

  GateBistDetail detail;
  detail.golden_signature = run_signature(module, blocks, -1, false);
  for (const GateFault& f : enumerate_gate_faults(module.netlist)) {
    ++detail.summary.total;
    if (run_signature(module, blocks, f.node, f.stuck_one) !=
        detail.golden_signature) {
      ++detail.summary.detected;
    } else {
      detail.undetected.push_back(f);
    }
  }
  return detail;
}

std::vector<int> fault_cone_inputs(const GateNetlist& netlist, int node) {
  LBIST_CHECK(node >= 0 && static_cast<std::size_t>(node) < netlist.num_nodes(),
              "fault_cone_inputs: node out of range");
  // Nodes are in topological order, so one backward sweep with a reach
  // mask collects the transitive fan-in.
  std::vector<char> reach(netlist.num_nodes(), 0);
  reach[static_cast<std::size_t>(node)] = 1;
  std::vector<int> inputs;
  for (int n = node; n >= 0; --n) {
    if (!reach[static_cast<std::size_t>(n)]) continue;
    const GateNode& g = netlist.node(static_cast<std::size_t>(n));
    if (g.kind == GateKind::Input) {
      inputs.push_back(n);
      continue;
    }
    if (g.fanin0 >= 0) reach[static_cast<std::size_t>(g.fanin0)] = 1;
    if (g.fanin1 >= 0) reach[static_cast<std::size_t>(g.fanin1)] = 1;
  }
  std::reverse(inputs.begin(), inputs.end());
  return inputs;
}

bool pattern_detects_fault(const ModuleNetlist& module, std::uint32_t a,
                           std::uint32_t b, const GateFault& fault) {
  const int width = module.width;
  std::vector<std::uint64_t> a_bits(static_cast<std::size_t>(width), 0);
  std::vector<std::uint64_t> b_bits(static_cast<std::size_t>(width), 0);
  for (int bit = 0; bit < width; ++bit) {
    if ((a >> bit) & 1u) a_bits[static_cast<std::size_t>(bit)] = 1;
    if ((b >> bit) & 1u) b_bits[static_cast<std::size_t>(bit)] = 1;
  }
  // Only lane 0 carries the pattern; the other 63 lanes are a spurious
  // all-zeros stimulus and must not contribute to the verdict.
  const auto golden = module.eval(a_bits, b_bits);
  const auto faulty = module.eval(a_bits, b_bits, fault.node, fault.stuck_one);
  for (std::size_t o = 0; o < golden.size(); ++o) {
    if (((golden[o] ^ faulty[o]) & 1u) != 0) return true;
  }
  return false;
}

}  // namespace lbist
