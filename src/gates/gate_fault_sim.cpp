#include "gates/gate_fault_sim.hpp"

#include <algorithm>

#include "support/lfsr.hpp"

namespace lbist {

std::vector<GateFault> enumerate_gate_faults(const GateNetlist& netlist) {
  // Every node is a fault site, constants included (a stuck tie-cell is a
  // real defect; the stuck-at-same-value variant is trivially untestable
  // and simply stays undetected, like any redundant fault).
  std::vector<GateFault> faults;
  for (std::size_t n = 0; n < netlist.num_nodes(); ++n) {
    faults.push_back(GateFault{static_cast<int>(n), false});
    faults.push_back(GateFault{static_cast<int>(n), true});
  }
  return faults;
}

namespace {

/// Packs `count` (<= 64) consecutive LFSR states, bit i of word `b` being
/// bit b of the i-th state.
std::vector<std::uint64_t> pack_patterns(Lfsr& lfsr, int count, int width) {
  std::vector<std::uint64_t> words(static_cast<std::size_t>(width), 0);
  for (int p = 0; p < count; ++p) {
    const std::uint32_t state = lfsr.state();
    for (int b = 0; b < width; ++b) {
      if ((state >> b) & 1u) {
        words[static_cast<std::size_t>(b)] |= std::uint64_t{1} << p;
      }
    }
    lfsr.step();
  }
  return words;
}

}  // namespace

CoverageResult simulate_gate_bist(const ModuleNetlist& module, int patterns,
                                  bool independent_tpgs) {
  const int width = module.width;
  const std::uint64_t period = (std::uint64_t{1} << width) - 1;
  if (static_cast<std::uint64_t>(patterns) > period) {
    patterns = static_cast<int>(period);
  }

  // Pre-pack the pattern stream in 64-pattern blocks.
  Lfsr gen_a(width, 0x5);
  Lfsr gen_b(width, independent_tpgs ? 0x13 : 0x5);
  struct Block {
    std::vector<std::uint64_t> a, b;
    int count;
  };
  std::vector<Block> blocks;
  for (int done = 0; done < patterns; done += 64) {
    const int count = std::min(64, patterns - done);
    Block blk;
    blk.a = pack_patterns(gen_a, count, width);
    blk.b = pack_patterns(gen_b, count, width);
    blk.count = count;
    blocks.push_back(std::move(blk));
  }

  auto run = [&](int fault_node, bool fault_value) {
    Misr sa(width);
    for (const Block& blk : blocks) {
      const auto out = module.eval(blk.a, blk.b, fault_node, fault_value);
      for (int p = 0; p < blk.count; ++p) {
        std::uint32_t word = 0;
        for (int b = 0; b < width; ++b) {
          if ((out[static_cast<std::size_t>(b)] >> p) & 1u) word |= 1u << b;
        }
        sa.absorb(word);
      }
    }
    return sa.signature();
  };

  const std::uint32_t golden = run(-1, false);
  CoverageResult result;
  for (const GateFault& f : enumerate_gate_faults(module.netlist)) {
    ++result.total;
    if (run(f.node, f.stuck_one) != golden) ++result.detected;
  }
  return result;
}

}  // namespace lbist
