#pragma once
// Data-path netlist construction: module binding + register binding +
// port assignment -> structural RTL (rtl/datapath.hpp).
//
// Follows the paper's flow: interconnect is assigned last, minimally, and
// (optionally) weighted so that registers with high sharing degrees land in
// IR^LR where they have the best chance of being selected as TPGs.

#include <string>

#include "binding/module_binding.hpp"
#include "binding/register_binding.hpp"
#include "dfg/dfg.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

class AlgorithmEvents;  // obs/events.hpp

/// Options for interconnect assignment.
struct InterconnectOptions {
  /// Weight IR^LR promotion by register sharing degree (Section IV); turn
  /// off for the ablation arm.
  bool weight_by_sd = true;
};

/// Builds the complete data path.  Port-resident primary inputs get
/// dedicated input registers appended after the allocated ones.  Mux-input
/// insertions/merges and commutative port flips are reported to `*events`
/// if non-null.
[[nodiscard]] Datapath build_datapath(const Dfg& dfg, const ModuleBinding& mb,
                                      const RegisterBinding& rb,
                                      const InterconnectOptions& opts = {},
                                      std::string name = "",
                                      AlgorithmEvents* events = nullptr);

}  // namespace lbist
