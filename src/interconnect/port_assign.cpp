#include "interconnect/port_assign.hpp"

#include <algorithm>

namespace lbist {

namespace {

/// A failed labelling attempt.  `pinned` marks a register whose forced
/// (non-commutative) sides conflict — it genuinely needs both ports.
struct Clash {
  bool found = false;
  bool pinned = false;
  std::size_t a = 0;
  std::size_t b = 0;
};

PortSide opposite(PortSide s) {
  return s == PortSide::Left ? PortSide::Right : PortSide::Left;
}

bool sided(PortSide s) {
  return s == PortSide::Left || s == PortSide::Right;
}

/// Propagates opposition constraints to a fixed point.  Registers labelled
/// Both satisfy every constraint.  Returns the first clash found, if any.
Clash propagate(const std::vector<PortConstraint>& constraints,
                std::vector<PortSide>& side) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& c : constraints) {
      if (c.lhs_reg == c.rhs_reg) continue;  // handled by the Both pin
      PortSide& ls = side[c.lhs_reg];
      PortSide& rs = side[c.rhs_reg];
      if (ls == PortSide::Both || rs == PortSide::Both) continue;
      if (sided(ls) && rs == PortSide::Unassigned) {
        rs = opposite(ls);
        changed = true;
      } else if (sided(rs) && ls == PortSide::Unassigned) {
        ls = opposite(rs);
        changed = true;
      } else if (sided(ls) && ls == rs) {
        return Clash{true, false, c.lhs_reg, c.rhs_reg};
      }
    }
  }
  return Clash{};
}

}  // namespace

PortAssignment assign_ports(std::size_t num_regs,
                            const std::vector<PortConstraint>& constraints,
                            const std::vector<int>& weight) {
  LBIST_CHECK(weight.empty() || weight.size() == num_regs,
              "weight vector must match register count");
  auto weight_of = [&](std::size_t r) {
    return weight.empty() ? 0 : weight[r];
  };

  std::vector<bool> forced_both(num_regs, false);
  for (const auto& c : constraints) {
    LBIST_CHECK(c.lhs_reg < num_regs && c.rhs_reg < num_regs,
                "register index out of range");
    // An instance reading the same register twice needs it on both ports.
    if (c.lhs_reg == c.rhs_reg) forced_both[c.lhs_reg] = true;
  }

  // Attempt a consistent labelling; on a clash promote one involved
  // register to Both and retry.  Terminates: Both strictly grows.
  while (true) {
    PortAssignment out;
    out.side.assign(num_regs, PortSide::Unassigned);
    for (std::size_t r = 0; r < num_regs; ++r) {
      if (forced_both[r]) out.side[r] = PortSide::Both;
    }

    Clash clash;
    // Non-commutative instances pin their operand sides.
    for (const auto& c : constraints) {
      if (c.commutative || c.lhs_reg == c.rhs_reg) continue;
      for (auto [r, want] : {std::pair{c.lhs_reg, PortSide::Left},
                             std::pair{c.rhs_reg, PortSide::Right}}) {
        PortSide& s = out.side[r];
        if (s == PortSide::Both) continue;
        if (s == PortSide::Unassigned) {
          s = want;
        } else if (s != want) {
          clash = Clash{true, true, r, r};  // r itself needs both ports
        }
      }
      if (clash.found) break;
    }

    // Propagate; seed one floating component at a time (first register of
    // an unresolved constraint goes Left) until everything is labelled.
    while (!clash.found) {
      clash = propagate(constraints, out.side);
      if (clash.found) break;
      bool seeded = false;
      for (const auto& c : constraints) {
        if (c.lhs_reg != c.rhs_reg &&
            out.side[c.lhs_reg] == PortSide::Unassigned &&
            out.side[c.rhs_reg] == PortSide::Unassigned) {
          out.side[c.lhs_reg] = PortSide::Left;
          seeded = true;
          break;
        }
      }
      if (!seeded) return out;
    }

    // Pick the register to promote to Both.  A register with conflicting
    // forced pins is promoted directly.  For an odd-cycle clash the
    // candidates are the clashing pair and any register constrained against
    // both of them (the rest of a triangle); the paper's weighting prefers
    // the register with the highest sharing degree in IR^LR.
    std::size_t promote;
    if (clash.pinned) {
      promote = clash.a;
    } else {
      std::vector<std::size_t> candidates{clash.a, clash.b};
      auto constrained_against = [&](std::size_t r, std::size_t other) {
        for (const auto& c : constraints) {
          if ((c.lhs_reg == r && c.rhs_reg == other) ||
              (c.lhs_reg == other && c.rhs_reg == r)) {
            return true;
          }
        }
        return false;
      };
      for (std::size_t r = 0; r < num_regs; ++r) {
        if (r == clash.a || r == clash.b || forced_both[r]) continue;
        if (constrained_against(r, clash.a) &&
            constrained_against(r, clash.b)) {
          candidates.push_back(r);
        }
      }
      promote = candidates.front();
      for (std::size_t r : candidates) {
        if (forced_both[promote] ||
            (!forced_both[r] && weight_of(r) > weight_of(promote))) {
          promote = r;
        }
      }
    }
    LBIST_CHECK(!forced_both[promote], "port assignment failed to converge");
    forced_both[promote] = true;
  }
}

}  // namespace lbist
