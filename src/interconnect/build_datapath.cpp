#include "interconnect/build_datapath.hpp"

#include <map>

#include "binding/sharing.hpp"
#include "interconnect/port_assign.hpp"
#include "obs/events.hpp"
#include "support/check.hpp"

namespace lbist {

Datapath build_datapath(const Dfg& dfg, const ModuleBinding& mb,
                        const RegisterBinding& rb,
                        const InterconnectOptions& opts, std::string name,
                        AlgorithmEvents* events) {
  Datapath dp;
  dp.name = name.empty() ? dfg.name() : std::move(name);
  dp.num_allocated = rb.num_regs();

  // Allocated registers.
  for (std::size_t r = 0; r < rb.num_regs(); ++r) {
    DpRegister reg;
    reg.name = "R" + std::to_string(r + 1);
    reg.vars = rb.regs[r];
    for (VarId v : reg.vars) {
      if (dfg.var(v).is_input()) reg.external_source = true;
      if (dfg.var(v).is_output) reg.drives_output = true;
    }
    dp.registers.push_back(std::move(reg));
  }
  // Dedicated input registers for port-resident inputs.
  std::map<VarId, std::size_t> dedicated_of;
  for (const auto& v : dfg.vars()) {
    if (!v.port_resident) continue;
    DpRegister reg;
    reg.name = "IN_" + v.name;
    reg.vars = {v.id};
    reg.dedicated_input = true;
    reg.external_source = true;
    dedicated_of[v.id] = dp.registers.size();
    dp.registers.push_back(std::move(reg));
  }

  auto reg_index = [&](VarId v) -> std::size_t {
    const Variable& var = dfg.var(v);
    if (var.port_resident) return dedicated_of.at(v);
    const RegId r = rb.reg_of[v];
    LBIST_CHECK(r.valid(), "operand variable has no register: " + var.name);
    return r.index();
  };

  // Register sharing degrees (IR^LR promotion weights).
  std::vector<int> weight;
  if (opts.weight_by_sd) {
    SharingAnalysis sa(dfg, mb);
    weight.assign(dp.registers.size(), 0);
    for (std::size_t r = 0; r < dp.registers.size(); ++r) {
      DynBitset mask(2 * mb.num_modules());
      for (VarId v : dp.registers[r].vars) mask |= sa.mask(v);
      weight[r] = SharingAnalysis::sd_of(mask);
    }
  }

  dp.routes.assign(dfg.num_ops(), {});

  // Running side preference per register (+ = mostly left so far).
  std::vector<int> side_bias(dp.registers.size(), 0);

  // Per-module port assignment and connectivity.  Modules the binder left
  // without instances (over-provisioned specs) produce no hardware.
  for (ModuleId m : mb.all_modules()) {
    if (mb.instances(m).empty()) continue;
    const std::size_t dp_index = dp.modules.size();
    DpModule mod;
    mod.name = mb.module_name(m);
    mod.instances = mb.instances(m);
    // Narrow a multi-function prototype to the kinds actually executed —
    // that is the hardware the data path needs (and pays area for).
    for (OpKind k : mb.proto(m).supports) {
      for (OpId opid : mod.instances) {
        if (dfg.op(opid).kind == k) {
          mod.proto.supports.push_back(k);
          break;
        }
      }
    }

    std::vector<PortConstraint> constraints;
    bool all_commutative = true;
    for (OpId opid : mod.instances) {
      const Operation& op = dfg.op(opid);
      constraints.push_back(PortConstraint{reg_index(op.lhs),
                                           reg_index(op.rhs),
                                           is_commutative(op.kind)});
      all_commutative = all_commutative && is_commutative(op.kind);
    }
    PortAssignment pa =
        assign_ports(dp.registers.size(), constraints, weight);

    // Section IV: the L/R split of a commutative module is symmetric, so
    // flip it for free when that aligns registers with the side they feed
    // in the modules already placed — shared (left, right) pairs across
    // modules are exactly what lets one TPG pair test several modules.
    if (all_commutative) {
      int agreement = 0;
      for (std::size_t r = 0; r < pa.side.size(); ++r) {
        if (pa.side[r] == PortSide::Left) agreement += side_bias[r];
        if (pa.side[r] == PortSide::Right) agreement -= side_bias[r];
      }
      if (agreement < 0) {
        if (events != nullptr) events->port_flip(mod.name);
        for (auto& s : pa.side) {
          if (s == PortSide::Left) {
            s = PortSide::Right;
          } else if (s == PortSide::Right) {
            s = PortSide::Left;
          }
        }
      }
    }
    for (std::size_t r = 0; r < pa.side.size(); ++r) {
      if (pa.side[r] == PortSide::Left) ++side_bias[r];
      if (pa.side[r] == PortSide::Right) --side_bias[r];
    }

    for (std::size_t i = 0; i < mod.instances.size(); ++i) {
      const Operation& op = dfg.op(mod.instances[i]);
      const std::size_t lr = constraints[i].lhs_reg;
      const std::size_t rr = constraints[i].rhs_reg;

      bool lhs_to_left;
      if (!is_commutative(op.kind)) {
        lhs_to_left = true;
      } else if (lr == rr) {
        lhs_to_left = true;  // same register feeds both ports
      } else if (pa.side[lr] == PortSide::Left ||
                 (pa.side[lr] == PortSide::Both &&
                  pa.side[rr] != PortSide::Left)) {
        lhs_to_left = true;
      } else {
        lhs_to_left = false;
      }

      const std::size_t to_left = lhs_to_left ? lr : rr;
      const std::size_t to_right = lhs_to_left ? rr : lr;
      const bool left_merged = !mod.left_sources.insert(to_left).second;
      const bool right_merged = !mod.right_sources.insert(to_right).second;
      if (events != nullptr) {
        events->mux_input(mod.name, to_left, 'L', left_merged);
        events->mux_input(mod.name, to_right, 'R', right_merged);
      }
      dp.routes[op.id] = {OperandRoute{lr, lhs_to_left},
                          OperandRoute{rr, !lhs_to_left}};

      const Variable& result = dfg.var(op.result);
      if (result.control_only) {
        mod.drives_control = true;
      } else {
        const std::size_t dest = reg_index(op.result);
        mod.dest_registers.insert(dest);
        dp.registers[dest].source_modules.insert(dp_index);
      }
    }
    dp.modules.push_back(std::move(mod));
  }
  return dp;
}

}  // namespace lbist
