#pragma once
// Input-port (connectivity) assignment for one module — Section IV.
//
// Each input register of a module is connected to the left port only, the
// right port only, or both (IR^L / IR^R / IR^LR).  Pangrle showed the
// minimum-connectivity assignment minimizes |IR^LR|; the paper adds a
// testability twist: when a register *must* be connected to both ports,
// prefer it to be a high-sharing-degree register, since a register in IR^LR
// can serve as TPG for either port.
//
// We model the problem as 2-coloring of an "opposition graph": every
// instance's two operand registers must sit on opposite ports.
// Non-commutative instances pin their operands' sides; an instance whose
// operands share one register forces that register into IR^LR.  Odd cycles
// and side clashes are resolved by promoting one involved register to IR^LR
// — the highest-weight one when SD weighting is enabled.

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace lbist {

/// Side assignment of one register relative to one module.
enum class PortSide : std::uint8_t { Unassigned, Left, Right, Both };

/// One instance's operand registers and orientation freedom.
struct PortConstraint {
  std::size_t lhs_reg = 0;
  std::size_t rhs_reg = 0;
  bool commutative = true;
};

/// Result of the assignment: `side[r]` for every register index that
/// appears in the constraints (others stay Unassigned).
struct PortAssignment {
  std::vector<PortSide> side;
  /// Number of registers connected to both ports (|IR^LR|).
  [[nodiscard]] int both_count() const {
    int c = 0;
    for (PortSide s : side) c += (s == PortSide::Both) ? 1 : 0;
    return c;
  }
};

/// Assigns sides for one module.  `num_regs` sizes the side vector;
/// `weight[r]` biases which register is promoted to IR^LR on conflicts
/// (higher weight promoted first) — pass the register sharing degrees for
/// the paper's behaviour, or an empty vector for unweighted resolution.
[[nodiscard]] PortAssignment assign_ports(
    std::size_t num_regs, const std::vector<PortConstraint>& constraints,
    const std::vector<int>& weight = {});

}  // namespace lbist
