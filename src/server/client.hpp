#pragma once
// Client side of the synthesis server protocol: streams a JSONL manifest
// to a live `lowbist serve` verbatim and copies every response line to an
// output stream.  `lowbist client`, the server tests and the load
// generator all drive the server through this.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace lbist {

/// Response tallies from one client session.
struct ClientSummary {
  int responses = 0;  ///< lines received (job results + control replies)
  int ok = 0;         ///< lines with status "ok"
  int errors = 0;     ///< lines with status "error" (includes "overloaded")
};

/// Connects to host:port, sends `manifest` as-is (a trailing newline is
/// added when missing), half-closes the write side, and copies response
/// lines to `out` until the server finishes draining and closes.  Sending
/// and receiving run concurrently so neither side's socket buffer can
/// deadlock a large manifest.  Throws Error when the connection fails.
ClientSummary run_client(const std::string& host, std::uint16_t port,
                         std::string_view manifest, std::ostream& out);

/// Splits "host:port"; throws Error on malformed input.
void parse_host_port(const std::string& spec, std::string* host,
                     std::uint16_t* port);

}  // namespace lbist
