#pragma once
// Long-running synthesis server.
//
// `lowbist serve` binds a loopback TCP port and speaks newline-delimited
// JSON: one request object per line in, one result line out.  Job requests
// use the exact `lowbist batch` manifest schema and produce byte-identical
// result lines (every request runs through service/batch's decode_
// manifest_line + run_entry), so a JSONL manifest is replayable against a
// live server — but the ThreadPool and SynthesisCache now persist across
// requests and connections, keeping the cache warm between sweeps.
//
// Architecture (one Server instance):
//
//   accept loop ──► connection threads ──► bounded admission ──► ThreadPool
//        │                │ (line framing,      (reject with          │
//   SIGINT/SIGTERM        │  control requests)   "overloaded")   workers run
//   self-pipe wakeup      └◄── responses written by workers ◄──── run_entry
//
// Admission control: at most `max_queue` requests may be admitted-but-
// unfinished; past that a request is rejected immediately with a
// status:"error"/"overloaded" line instead of buffering without bound.
// Deadlines: with `deadline_ms` > 0, a request that waited longer than the
// deadline in the queue is answered with a "deadline exceeded" error when
// a worker picks it up — the stale request never executes, so one backlog
// spike cannot poison workers with long-dead work.  Control requests
// ({"type":"health"} / {"type":"metrics"}) are answered inline by the
// connection thread and keep working under full overload.  Graceful
// shutdown (request_stop(), or SIGINT/SIGTERM with handle_signals): stop
// accepting, stop reading, drain every admitted request, flush responses,
// then dump final metrics to the log stream.  See docs/server.md.

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/events.hpp"
#include "server/net.hpp"
#include "service/batch.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "service/thread_pool.hpp"

namespace lbist {

class TraceRecorder;  // obs/trace.hpp

struct ServerOptions {
  std::uint16_t port = 0;            ///< 0 = kernel-assigned ephemeral port
  int jobs = 1;                      ///< worker threads; < 1 = hardware count
  std::size_t cache_capacity = 256;  ///< SynthesisCache entries
  std::size_t max_queue = 64;        ///< admitted-but-unfinished bound
  int deadline_ms = 0;               ///< per-request queue deadline; 0 = none
  bool handle_signals = false;       ///< SIGINT/SIGTERM → graceful shutdown
  std::ostream* log = nullptr;       ///< structured log lines (e.g. &std::cerr)
  /// Optional: per-request "request" spans (with nested pipeline phase
  /// spans) are recorded here.  Borrowed; must outlive the server.
  TraceRecorder* trace = nullptr;
  /// Retain decision-event objects (exportable via events().write_jsonl)
  /// in addition to the always-on counters.  Off by default: a long-lived
  /// server should not accumulate an unbounded event log.
  bool keep_events = false;
  /// Test seam: when set, workers invoke this before executing each job
  /// (after the deadline check).  Tests block here to hold workers busy and
  /// exercise admission control and shutdown draining deterministically.
  std::function<void()> test_hold;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  /// Stops the server (request_stop + wait) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens, then spawns the accept loop; on return port() is
  /// valid and the server accepts connections.  Throws Error on bind
  /// failure.
  void start();

  /// The bound port (resolves an ephemeral `port = 0` request).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Initiates graceful shutdown from any thread (signal-safe wakeup: one
  /// write to the self-pipe).  Returns immediately; wait() observes the
  /// drain.
  void request_stop();

  /// Blocks until shutdown completes: accept loop joined, every admitted
  /// request answered, connections closed, pool drained.  Dumps final
  /// metrics to the log stream.
  void wait();

  /// request_stop() + wait().
  void stop();

  /// Live instruments (shared with every worker).
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] SynthesisCache& cache() { return cache_; }
  /// Decision-event sink (counters always; objects iff keep_events).
  [[nodiscard]] const AlgorithmEvents& events() const { return events_; }

 private:
  struct Conn;

  void accept_loop();
  void serve_connection(Conn* conn);
  /// Handles {"type": ...} control requests inline; returns false when the
  /// line is not a control request.
  bool handle_control(Conn* conn, const std::string& line);
  void submit_job(Conn* conn, ManifestEntry entry, std::size_t index,
                  std::vector<std::future<void>>* inflight);
  void write_line(Conn* conn, const Json& line);
  void log_event(const Json& line);
  [[nodiscard]] Json metrics_json() const;

  ServerOptions opts_;
  MetricsRegistry metrics_;
  /// Decision-event sink: every synthesis run feeds the binding.* /
  /// cbilbo.* / interconnect.* / bist.* counters of metrics_ (scraped via
  /// {"type":"prometheus"}); event objects are retained only when
  /// opts_.keep_events asks for them.
  AlgorithmEvents events_;
  SynthesisCache cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<net::Listener> listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  bool started_ = false;
  bool finished_ = false;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 0;
  void reap_connections(bool join_all);

  std::atomic<bool> draining_{false};
  std::atomic<std::int64_t> in_flight_{0};

  std::mutex log_mu_;
  int stop_pipe_[2] = {-1, -1};  // [0] read / [1] write (self-pipe)
  bool signals_installed_ = false;
};

}  // namespace lbist
