#pragma once
// Long-running synthesis server.
//
// `lowbist serve` binds a loopback TCP port and speaks newline-delimited
// JSON: one request object per line in, one result line out.  Job requests
// use the exact `lowbist batch` manifest schema and produce byte-identical
// result lines (every request runs through service/batch's decode_
// manifest_line + run_entry), so a JSONL manifest is replayable against a
// live server — but the ThreadPool and SynthesisCache now persist across
// requests and connections, keeping the cache warm between sweeps.
//
// Architecture (one Server instance, `shards` event-loop shards):
//
//   shard 0..N-1, each: SO_REUSEPORT listener + epoll loop ──► ThreadPool
//        │  (non-blocking line framing, control requests,          │
//   SIGINT/SIGTERM  bounded admission → reject "overloaded")  workers run
//   self-pipe       └◄── responses queued by workers, flushed    run_entry
//   wakeup               by the shard loop with backpressure ◄──────┘
//
// The kernel load-balances incoming connections across the shard
// listeners; each shard owns its connections outright, so no lock is
// shared between shards on the I/O path.  Responses are queued into a
// bounded per-connection outbound buffer; a peer that stops reading while
// responses pile up past `max_outbound` is disconnected (slow-reader
// protection) instead of growing server memory without bound.
//
// Admission control: at most `max_queue` requests may be admitted-but-
// unfinished; past that a request is rejected immediately with a
// status:"error"/"overloaded" line instead of buffering without bound.
// Deadlines: with `deadline_ms` > 0, a request that waited longer than the
// deadline in the queue is answered with a "deadline exceeded" error when
// a worker picks it up — the stale request never executes, so one backlog
// spike cannot poison workers with long-dead work.  Control requests
// ({"type":"health"} / {"type":"metrics"}) are answered inline by the
// shard loop and keep working under full overload.  Graceful shutdown
// (request_stop(), or SIGINT/SIGTERM with handle_signals): stop
// accepting, stop reading, drain every admitted request, flush responses,
// then dump final metrics to the log stream.  See docs/server.md.
//
// Persistent cache: with `cache_dir` set, a content-addressed DiskCache
// (service/diskcache) sits behind the in-memory LRU as L2 — shared by all
// shards, surviving restarts, bounded by `cache_budget_bytes`.  See
// docs/diskcache.md.

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "service/batch.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "service/thread_pool.hpp"

namespace lbist {

class TraceRecorder;  // obs/trace.hpp

struct ServerOptions {
  std::uint16_t port = 0;            ///< 0 = kernel-assigned ephemeral port
  int jobs = 1;                      ///< worker threads; < 1 = hardware count
  int shards = 1;                    ///< event-loop shards; < 1 = 1
  std::size_t cache_capacity = 256;  ///< SynthesisCache entries
  std::size_t max_queue = 64;        ///< admitted-but-unfinished bound
  int deadline_ms = 0;               ///< per-request queue deadline; 0 = none
  /// Pending (unsent) response bytes allowed per connection before the
  /// peer is treated as a slow reader and disconnected.
  std::size_t max_outbound = 8u << 20;
  /// Persistent L2 cache directory ("" = in-memory cache only).
  std::string cache_dir;
  std::uint64_t cache_budget_bytes = 256ull << 20;  ///< L2 size bound
  bool handle_signals = false;       ///< SIGINT/SIGTERM → graceful shutdown
  std::ostream* log = nullptr;       ///< structured log lines (e.g. &std::cerr)
  /// Optional: per-request "request" spans (with nested pipeline phase
  /// spans) are recorded here.  Borrowed; must outlive the server.
  TraceRecorder* trace = nullptr;
  /// With `trace` set, write the Chrome trace here during wait() — i.e. as
  /// part of the SIGTERM/SIGINT graceful drain — so a killed server still
  /// exports its trace without the launcher's cooperation.  "" = the
  /// caller exports (or discards) the recorder itself.
  std::string trace_path;
  /// Threshold for the "slow_request" log line (carries the request's span
  /// id, connecting the log to the trace/profile).  0 = disabled.
  int slow_request_ms = 0;
  /// Retain decision-event objects (exportable via events().write_jsonl)
  /// in addition to the always-on counters.  Off by default: a long-lived
  /// server should not accumulate an unbounded event log.
  bool keep_events = false;
  /// Test seam: when set, workers invoke this before executing each job
  /// (after the deadline check).  Tests block here to hold workers busy and
  /// exercise admission control and shutdown draining deterministically.
  std::function<void()> test_hold;
};

class DiskCache;  // service/diskcache/diskcache.hpp

class Server {
 public:
  explicit Server(ServerOptions opts);
  /// Stops the server (request_stop + wait) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the shard listeners and spawns the shard loops; on return
  /// port() is valid and the server accepts connections.  Throws Error on
  /// bind failure or when cache_dir is locked by another process.
  void start();

  /// The bound port (resolves an ephemeral `port = 0` request).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Initiates graceful shutdown from any thread (signal-safe wakeup: one
  /// write to the self-pipe).  Returns immediately; wait() observes the
  /// drain.
  void request_stop();

  /// Blocks until shutdown completes: every admitted request answered,
  /// responses flushed, connections closed, shard loops joined, pool
  /// drained.  Dumps final metrics to the log stream.
  void wait();

  /// request_stop() + wait().
  void stop();

  /// Live instruments (shared with every worker).
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] SynthesisCache& cache() { return cache_; }
  /// The persistent L2 store, or nullptr when cache_dir was empty.
  [[nodiscard]] DiskCache* disk() const { return disk_.get(); }
  /// Decision-event sink (counters always; objects iff keep_events).
  [[nodiscard]] const AlgorithmEvents& events() const { return events_; }

 private:
  struct Conn;
  struct Shard;

  void shard_loop(Shard& shard);
  void accept_burst(Shard& shard);
  void on_readable(Shard& shard, const std::shared_ptr<Conn>& conn);
  void process_pending_lines(const std::shared_ptr<Conn>& conn);
  /// Handles {"type": ...} control requests inline; returns false when the
  /// line is not a control request.
  bool handle_control(Conn* conn, const std::string& line);
  void submit_job(const std::shared_ptr<Conn>& conn, ManifestEntry entry,
                  std::size_t index);
  /// Queues one response line (any thread); flags overflow for the loop.
  void append_response(Conn* conn, const Json& line);
  /// Flushes, rearms epoll interest and retires the connection when it is
  /// finished (loop thread only).
  void flush_and_update(Shard& shard, const std::shared_ptr<Conn>& conn);
  void close_conn(Shard& shard, std::uint64_t id);
  void notify_dirty(int shard_index, std::uint64_t conn_id);
  void start_drain(Shard& shard);
  void log_event(const Json& line);
  [[nodiscard]] Json metrics_json() const;

  ServerOptions opts_;
  MetricsRegistry metrics_;
  /// Decision-event sink: every synthesis run feeds the binding.* /
  /// cbilbo.* / interconnect.* / bist.* counters of metrics_ (scraped via
  /// {"type":"prometheus"}); event objects are retained only when
  /// opts_.keep_events asks for them.
  AlgorithmEvents events_;
  std::unique_ptr<DiskCache> disk_;
  SynthesisCache cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint16_t port_ = 0;
  bool started_ = false;
  bool finished_ = false;

  std::atomic<std::uint64_t> next_conn_id_{1};  // 0 tags the listener
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::uint64_t> next_span_id_{1};  // request span identity

  std::mutex log_mu_;
  int stop_pipe_[2] = {-1, -1};  // [0] read / [1] write (self-pipe)
  bool signals_installed_ = false;
};

}  // namespace lbist
