#include "server/server.hpp"

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <ostream>
#include <utility>
#include <vector>

#include "hybrid/eval.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"
#include "passes/pipeline.hpp"
#include "support/version.hpp"

namespace lbist {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Graceful-shutdown self-pipe shared with the signal handler.  Only one
// server installs handlers at a time (the CLI's); the handler does nothing
// but one async-signal-safe write().
std::atomic<int> g_signal_fd{-1};

void on_signal(int) {
  const int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

bool blank_or_comment(const std::string& line) {
  const std::size_t first = line.find_first_not_of(" \t\r");
  return first == std::string::npos || line[first] == '#';
}

}  // namespace

/// One accepted connection: its socket, a write lock serializing response
/// lines from workers and the connection thread, and the reader thread.
/// The connection thread waits for every in-flight request before setting
/// `done`, so workers never touch a dead Conn; the accept loop joins and
/// frees `done` connections.
struct Server::Conn {
  std::uint64_t id = 0;
  net::Socket sock;
  std::mutex write_mu;
  std::thread thread;
  std::atomic<bool> done{false};
};

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      events_(&metrics_, opts_.keep_events),
      cache_(opts_.cache_capacity) {
  if (opts_.max_queue == 0) opts_.max_queue = 1;
}

Server::~Server() {
  if (started_ && !finished_) stop();
}

void Server::start() {
  LBIST_CHECK(!started_, "Server::start called twice");
  if (::pipe(stop_pipe_) != 0) throw Error("pipe: self-pipe setup failed");
  ::fcntl(stop_pipe_[0], F_SETFL, O_NONBLOCK);
  if (opts_.handle_signals) {
    g_signal_fd.store(stop_pipe_[1], std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    signals_installed_ = true;
  }
  listener_ = std::make_unique<net::Listener>(opts_.port);
  port_ = listener_->port();
  pool_ = std::make_unique<ThreadPool>(ThreadPool::resolve_jobs(opts_.jobs));
  started_ = true;
  log_event(Json::object()
                .set("event", Json::string("listening"))
                .set("port", Json::number(static_cast<int>(port_)))
                .set("workers", Json::number(pool_->size()))
                .set("max_queue", Json::number(opts_.max_queue)));
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::request_stop() {
  if (stop_pipe_[1] >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

void Server::stop() {
  request_stop();
  wait();
}

void Server::wait() {
  LBIST_CHECK(started_, "Server::wait before start");
  if (accept_thread_.joinable()) accept_thread_.join();
  if (finished_) return;
  finished_ = true;
  pool_.reset();  // drains any queued tasks (connections already waited)
  if (signals_installed_) {
    g_signal_fd.store(-1, std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = SIG_DFL;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    signals_installed_ = false;
  }
  for (int& fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  log_event(Json::object()
                .set("event", Json::string("shutdown"))
                .set("metrics", metrics_json()));
}

void Server::accept_loop() {
  while (true) {
    char drain[16];
    if (::read(stop_pipe_[0], drain, sizeof drain) > 0) break;
    reap_connections(false);
    net::Socket sock = listener_->accept(200, stop_pipe_[0]);
    if (!sock.valid()) continue;
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->sock = std::move(sock);
    Conn* raw = conn.get();
    metrics_.counter("connections").inc();
    log_event(Json::object()
                  .set("event", Json::string("conn_open"))
                  .set("conn", Json::number(raw->id)));
    conn->thread = std::thread([this, raw] {
      serve_connection(raw);
      raw->done.store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
  // Graceful shutdown: no new connections, no new requests, drain what was
  // admitted, then let wait() flush the pool and final metrics.
  listener_.reset();
  draining_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& c : conns_) c->sock.shutdown_read();
  }
  reap_connections(true);
}

void Server::reap_connections(bool join_all) {
  std::vector<std::unique_ptr<Conn>> dead;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (join_all || (*it)->done.load(std::memory_order_acquire)) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& c : dead) {
    if (c->thread.joinable()) c->thread.join();
    log_event(Json::object()
                  .set("event", Json::string("conn_close"))
                  .set("conn", Json::number(c->id)));
  }
}

void Server::serve_connection(Conn* conn) {
  net::LineReader reader(conn->sock.fd());
  std::vector<std::future<void>> inflight;
  std::string line;
  int line_no = 0;
  std::size_t next_job = 0;
  try {
    while (!draining_.load(std::memory_order_relaxed) &&
           reader.read_line(&line)) {
      ++line_no;
      // Settled futures at the front are finished requests; trim them so a
      // long-lived connection does not accumulate one future per request.
      while (!inflight.empty() &&
             inflight.front().wait_for(std::chrono::seconds(0)) ==
                 std::future_status::ready) {
        inflight.front().get();
        inflight.erase(inflight.begin());
      }
      if (blank_or_comment(line)) continue;
      if (handle_control(conn, line)) continue;
      submit_job(conn, decode_manifest_line(line_no, line), next_job++,
                 &inflight);
    }
  } catch (const Error& e) {
    // Framing/transport failure (oversized line, recv error): answer with a
    // bare protocol error and drop the connection.
    write_line(conn, Json::object().set("error", Json::string(e.what())));
    log_event(Json::object()
                  .set("event", Json::string("conn_error"))
                  .set("conn", Json::number(conn->id))
                  .set("error", Json::string(e.what())));
  }
  // Drain this connection's in-flight requests so every admitted request
  // is answered before the socket closes (both on client EOF and on
  // server shutdown).
  for (auto& f : inflight) f.get();
}

bool Server::handle_control(Conn* conn, const std::string& line) {
  std::string type;
  Json doc;
  try {
    doc = Json::parse(line);
    const Json* t = doc.find("type");
    if (t == nullptr || !t->is_string()) return false;
    type = t->as_string();
  } catch (const std::exception&) {
    return false;  // not even JSON; let the manifest decoder report it
  }
  metrics_.counter("requests_control").inc();
  Json reply = Json::object().set("type", Json::string(type));
  if (type == "health") {
    reply.set("status", Json::string("ok"))
        .set("in_flight", Json::number(static_cast<double>(
                              in_flight_.load(std::memory_order_relaxed))))
        .set("max_queue", Json::number(opts_.max_queue))
        .set("workers", Json::number(pool_->size()))
        .set("build", build_info_json());
  } else if (type == "pass") {
    // Remote single-pass execution: restore the posted IR snapshot, run
    // exactly the named pass, reply with the advanced snapshot.  Served
    // inline on the connection thread (one pass is far cheaper than a full
    // job) with its own LRU entry keyed on the writer-independent snapshot.
    try {
      const Json* name = doc.find("pass");
      LBIST_CHECK(name != nullptr && name->is_string(),
                  "pass request needs a \"pass\" name");
      const Json* snap = doc.find("snapshot");
      LBIST_CHECK(snap != nullptr && snap->is_object(),
                  "pass request needs a \"snapshot\" object");
      const PassPipeline& pipeline = PassPipeline::standard();
      const std::size_t index = pipeline.index_of(name->as_string());
      const std::string key = pass_cache_key(name->as_string(), *snap);
      Json out;
      if (auto cached = cache_.get(key)) {
        out = std::move(*cached);
      } else {
        SynthState state = pipeline.restore(*snap);
        LBIST_CHECK(
            state.completed == index,
            "snapshot stage \"" +
                (state.completed == 0
                     ? std::string("none")
                     : std::string(
                           pipeline.passes()[state.completed - 1]->name())) +
                "\" is not the predecessor of pass \"" + name->as_string() +
                "\"");
        state.options().trace = opts_.trace;
        state.options().events = &events_;
        pipeline.run(state, index + 1);
        out = pipeline.snapshot(state);
        cache_.put(key, out);
      }
      reply.set("status", Json::string("ok"))
          .set("pass", Json::string(name->as_string()))
          .set("snapshot", std::move(out));
    } catch (const Error& e) {
      reply.set("status", Json::string("error"))
          .set("error", Json::string(e.what()));
    }
  } else if (type == "hybrid") {
    // Hybrid-BIST evaluation of a posted IR snapshot: restore, run every
    // remaining pass, grade the allocated plan under the posted (or
    // default) configuration.  Cached like {"type":"pass"} — the key drops
    // the snapshot's writer record and canonicalizes the config, so
    // clients on different builds share entries.
    try {
      const Json* snap = doc.find("snapshot");
      LBIST_CHECK(snap != nullptr && snap->is_object(),
                  "hybrid request needs a \"snapshot\" object");
      const Json* cfg_json = doc.find("config");
      const HybridConfig config = cfg_json != nullptr
                                      ? hybrid_config_from_json(*cfg_json)
                                      : HybridConfig{};
      const std::string key = pass_cache_key(
          "hybrid#" + hybrid_config_to_json(config).dump_compact(), *snap);
      Json out;
      if (auto cached = cache_.get(key)) {
        out = std::move(*cached);
      } else {
        SynthState state = PassPipeline::standard().restore(*snap);
        state.options().trace = opts_.trace;
        state.options().events = &events_;
        out = evaluate_hybrid(state, config);
        cache_.put(key, out);
      }
      metrics_.counter("requests_hybrid").inc();
      reply.set("status", Json::string("ok"))
          .set("hybrid", std::move(out));
    } catch (const Error& e) {
      reply.set("status", Json::string("error"))
          .set("error", Json::string(e.what()));
    }
  } else if (type == "metrics") {
    reply.set("status", Json::string("ok")).set("metrics", metrics_json());
  } else if (type == "prometheus") {
    // Text exposition of the registry; cache statistics are mirrored into
    // gauges first so one scrape carries everything.
    const SynthesisCache::Stats cs = cache_.stats();
    metrics_.gauge("cache.hits").set(static_cast<double>(cs.hits));
    metrics_.gauge("cache.misses").set(static_cast<double>(cs.misses));
    metrics_.gauge("cache.evictions").set(static_cast<double>(cs.evictions));
    metrics_.gauge("cache.size").set(static_cast<double>(cs.size));
    metrics_.gauge("cache.capacity").set(static_cast<double>(cs.capacity));
    reply.set("status", Json::string("ok"))
        .set("body", Json::string(prometheus_exposition(metrics_)));
  } else {
    reply.set("status", Json::string("error"))
        .set("error", Json::string("unknown request type: " + type));
  }
  write_line(conn, reply);
  return true;
}

void Server::submit_job(Conn* conn, ManifestEntry entry, std::size_t index,
                        std::vector<std::future<void>>* inflight) {
  metrics_.counter("requests_total").inc();
  // Admission control: the increment reserves a slot; over the bound the
  // request is answered immediately instead of buffering without bound.
  if (in_flight_.fetch_add(1, std::memory_order_relaxed) >=
      static_cast<std::int64_t>(opts_.max_queue)) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    metrics_.counter("requests_rejected").inc();
    Json reject = Json::object()
                      .set("job", Json::number(index))
                      .set("name", Json::string(display_name(entry, index)))
                      .set("status", Json::string("error"))
                      .set("error", Json::string("overloaded"));
    write_line(conn, reject);
    log_event(Json::object()
                  .set("event", Json::string("request"))
                  .set("conn", Json::number(conn->id))
                  .set("job", Json::number(index))
                  .set("status", Json::string("overloaded")));
    return;
  }
  metrics_.gauge("queue_depth")
      .set(static_cast<double>(in_flight_.load(std::memory_order_relaxed)));
  const Clock::time_point admitted = Clock::now();
  inflight->push_back(pool_->submit(
      [this, conn, entry = std::move(entry), index, admitted]() mutable {
        const double waited_ms = ms_since(admitted);
        metrics_.histogram("queue_ms").record(waited_ms);
        Json response;
        std::string status;
        if (opts_.deadline_ms > 0 &&
            waited_ms > static_cast<double>(opts_.deadline_ms)) {
          // Stale request: answer without executing so the worker moves
          // straight on to work someone is still waiting for.
          metrics_.counter("requests_deadline").inc();
          response = Json::object()
                         .set("job", Json::number(index))
                         .set("name",
                              Json::string(display_name(entry, index)))
                         .set("status", Json::string("error"))
                         .set("error", Json::string("deadline exceeded"));
          status = "deadline";
        } else {
          if (opts_.test_hold) opts_.test_hold();
          auto span = trace_span(opts_.trace, "request");
          JobOutcome outcome =
              run_entry(entry, index, cache_, metrics_, opts_.trace, &events_);
          metrics_.counter(outcome.ok ? "requests_ok" : "requests_error")
              .inc();
          status = outcome.ok ? "ok" : "error";
          response = std::move(outcome.line);
          if (span.active()) {
            span.arg("name", display_name(entry, index));
            span.arg("conn", static_cast<std::uint64_t>(conn->id));
            span.arg("status", status);
          }
        }
        write_line(conn, response);
        in_flight_.fetch_sub(1, std::memory_order_relaxed);
        metrics_.histogram("request_ms").record(ms_since(admitted));
        log_event(Json::object()
                      .set("event", Json::string("request"))
                      .set("conn", Json::number(conn->id))
                      .set("job", Json::number(index))
                      .set("name", Json::string(display_name(entry, index)))
                      .set("status", Json::string(status))
                      .set("ms", Json::number(ms_since(admitted))));
      }));
}

void Server::write_line(Conn* conn, const Json& line) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  try {
    net::send_all(conn->sock.fd(), line.dump_compact() + "\n");
  } catch (const Error&) {
    // Peer went away; the response is dropped, the reader loop will see
    // EOF and retire the connection.
  }
}

void Server::log_event(const Json& line) {
  if (opts_.log == nullptr) return;
  std::lock_guard<std::mutex> lock(log_mu_);
  *opts_.log << line.dump_compact() << "\n";
}

Json Server::metrics_json() const {
  const SynthesisCache::Stats cs = cache_.stats();
  const double lookups = static_cast<double>(cs.hits + cs.misses);
  return Json::object()
      .set("registry", metrics_.to_json())
      .set("cache",
           Json::object()
               .set("hits", Json::number(cs.hits))
               .set("misses", Json::number(cs.misses))
               .set("evictions", Json::number(cs.evictions))
               .set("size", Json::number(cs.size))
               .set("capacity", Json::number(cs.capacity))
               .set("hit_rate", Json::number(lookups == 0.0
                                                 ? 0.0
                                                 : static_cast<double>(
                                                       cs.hits) /
                                                       lookups)));
}

}  // namespace lbist
