#include "server/server.hpp"

#include <csignal>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <fstream>
#include <ostream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "hybrid/eval.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/listener.hpp"
#include "net/socket.hpp"
#include "obs/profiler.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"
#include "passes/pipeline.hpp"
#include "service/diskcache/diskcache.hpp"
#include "support/version.hpp"

namespace lbist {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kListenerTag = 0;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Graceful-shutdown self-pipe shared with the signal handler.  Only one
// server installs handlers at a time (the CLI's); the handler does nothing
// but one async-signal-safe write().
std::atomic<int> g_signal_fd{-1};

void on_signal(int) {
  const int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

bool blank_or_comment(const std::string& line) {
  const std::size_t first = line.find_first_not_of(" \t\r");
  return first == std::string::npos || line[first] == '#';
}

}  // namespace

/// One accepted connection.  The owning shard loop is the only thread that
/// reads, flushes or closes it; workers only queue response lines under
/// `out_mu` and then nudge the loop through the shard's dirty list.  The
/// connection table holds shared_ptrs and every worker lambda captures
/// one, so a connection torn down mid-request (slow reader, peer reset)
/// stays a valid — if inert — object until the last worker drops it.
struct Server::Conn {
  explicit Conn(std::size_t max_outbound) : outbound(max_outbound) {}

  std::uint64_t id = 0;  ///< epoll tag and log identity
  int shard = 0;         ///< owning shard index
  net::Socket sock;
  net::LineFramer framer;

  // Loop-thread-only state.
  bool read_open = true;
  std::uint32_t interest = 0;  ///< currently registered epoll interest
  int line_no = 0;
  std::size_t next_job = 0;

  // Shared with workers, guarded by out_mu.
  std::mutex out_mu;
  net::OutboundBuffer outbound;
  bool closed = false;    ///< socket retired; late responses are dropped
  bool overflow = false;  ///< outbound bound hit; disconnect as slow reader

  /// Admitted-but-unanswered jobs on this connection.  The worker's
  /// release-decrement pairs with the loop's acquire-load: observing zero
  /// proves every response line is already in `outbound`.
  std::atomic<int> jobs_in_flight{0};
};

/// One event-loop shard: its SO_REUSEPORT listener, epoll loop, thread and
/// private connection table.  `dirty` is the only cross-thread door:
/// workers push connection ids there (plus an eventfd wakeup) after
/// queueing a response.
struct Server::Shard {
  int index = 0;
  net::EventLoop loop;
  std::unique_ptr<net::ReuseportListener> listener;
  std::thread thread;
  std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> conns;

  std::mutex dirty_mu;
  std::vector<std::uint64_t> dirty;

  std::atomic<bool> drain{false};
  bool drain_handled = false;

  // Per-shard instrument names, pre-encoded with the shard label (see
  // labeled_metric) so the hot paths do no string building.
  std::string m_conns;
  std::string m_queue_depth;
  std::string m_loop_iter_ms;
  std::string m_outbound_hwm;
  std::string m_dirty_wakeups;
  std::string m_requests;

  /// Jobs admitted through this shard's connections, still unanswered.
  std::atomic<int> in_flight{0};
  /// Largest pending outbound-buffer size seen at flush (loop thread only).
  std::size_t outbound_hwm = 0;
};

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      events_(&metrics_, opts_.keep_events),
      cache_(opts_.cache_capacity) {
  if (opts_.max_queue == 0) opts_.max_queue = 1;
  if (opts_.shards < 1) opts_.shards = 1;
  if (opts_.max_outbound < 4096) opts_.max_outbound = 4096;
}

Server::~Server() {
  if (started_ && !finished_) stop();
}

void Server::start() {
  LBIST_CHECK(!started_, "Server::start called twice");
  if (::pipe(stop_pipe_) != 0) throw Error("pipe: self-pipe setup failed");
  if (opts_.handle_signals) {
    g_signal_fd.store(stop_pipe_[1], std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    signals_installed_ = true;
  }
  if (!opts_.cache_dir.empty()) {
    DiskCacheOptions dopts;
    dopts.dir = opts_.cache_dir;
    dopts.budget_bytes = opts_.cache_budget_bytes;
    disk_ = std::make_unique<DiskCache>(dopts);
    cache_.attach_disk(disk_.get());
  }
  // Workers register with the sampling profiler as they start, so a
  // {"type":"profile"} control request can arm them live.
  ThreadPool::set_thread_start_hook(
      [] { obs::Profiler::attach_current_thread(); });
  pool_ = std::make_unique<ThreadPool>(ThreadPool::resolve_jobs(opts_.jobs));
  shards_.reserve(static_cast<std::size_t>(opts_.shards));
  for (int i = 0; i < opts_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    // Shard 0 resolves an ephemeral port request; the rest join it.
    shard->listener = std::make_unique<net::ReuseportListener>(
        i == 0 ? opts_.port : port_);
    if (i == 0) port_ = shard->listener->port();
    shard->loop.add(shard->listener->fd(), net::EventLoop::kRead,
                    kListenerTag);
    const PromLabels shard_label = {{"shard", std::to_string(i)}};
    shard->m_conns = labeled_metric("shard.conns", shard_label);
    shard->m_queue_depth = labeled_metric("shard.queue_depth", shard_label);
    shard->m_loop_iter_ms = labeled_metric("shard.loop_iter_ms", shard_label);
    shard->m_outbound_hwm =
        labeled_metric("shard.outbound_hwm_bytes", shard_label);
    shard->m_dirty_wakeups =
        labeled_metric("shard.dirty_wakeups", shard_label);
    shard->m_requests = labeled_metric("shard.requests", shard_label);
    // Materialize every per-shard series up front so a scrape sees all
    // shards, including ones that never took traffic.
    metrics_.gauge(shard->m_conns).set(0.0);
    metrics_.gauge(shard->m_queue_depth).set(0.0);
    metrics_.gauge(shard->m_outbound_hwm).set(0.0);
    metrics_.counter(shard->m_dirty_wakeups);
    metrics_.counter(shard->m_requests);
    shards_.push_back(std::move(shard));
  }
  started_ = true;
  log_event(Json::object()
                .set("event", Json::string("listening"))
                .set("port", Json::number(static_cast<int>(port_)))
                .set("workers", Json::number(pool_->size()))
                .set("shards", Json::number(opts_.shards))
                .set("max_queue", Json::number(opts_.max_queue)));
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->thread = std::thread([this, raw] { shard_loop(*raw); });
  }
}

void Server::request_stop() {
  if (stop_pipe_[1] >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

void Server::stop() {
  request_stop();
  wait();
}

void Server::wait() {
  LBIST_CHECK(started_, "Server::wait before start");
  if (finished_) return;
  // Block until request_stop() or a handled signal writes the self-pipe.
  char drain[16];
  while (true) {
    const ssize_t n = ::read(stop_pipe_[0], drain, sizeof drain);
    if (n > 0) break;
    if (n < 0 && errno == EINTR) continue;
    break;  // pipe gone; treat as stop
  }
  for (auto& shard : shards_) {
    shard->drain.store(true, std::memory_order_release);
    shard->loop.wakeup();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  finished_ = true;
  pool_.reset();  // workers already idle: every admitted job was answered
  if (signals_installed_) {
    g_signal_fd.store(-1, std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = SIG_DFL;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    signals_installed_ = false;
  }
  for (int& fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  // Export the trace as part of the graceful drain: every worker has
  // finished (pool joined above), so the recorder is quiescent and a
  // SIGTERM'd server still leaves a complete trace behind.
  if (opts_.trace != nullptr && !opts_.trace_path.empty()) {
    std::ofstream trace_out(opts_.trace_path);
    if (trace_out) {
      opts_.trace->write_chrome(trace_out);
      log_event(Json::object()
                    .set("event", Json::string("trace_exported"))
                    .set("path", Json::string(opts_.trace_path))
                    .set("spans", Json::number(opts_.trace->event_count())));
    } else {
      log_event(Json::object()
                    .set("event", Json::string("trace_export_failed"))
                    .set("path", Json::string(opts_.trace_path)));
    }
  }
  log_event(Json::object()
                .set("event", Json::string("shutdown"))
                .set("metrics", metrics_json()));
}

void Server::shard_loop(Shard& shard) {
  obs::Profiler::attach_current_thread();
  Histogram& iter_ms = metrics_.histogram(shard.m_loop_iter_ms);
  shard.loop.set_iteration_hook([&iter_ms](std::uint64_t busy_ns) {
    iter_ms.record(static_cast<double>(busy_ns) / 1e6);
  });
  std::vector<net::EventLoop::Ready> ready;
  std::vector<std::uint64_t> dirty;
  while (true) {
    bool woken = false;
    shard.loop.wait(&ready, -1, &woken);
    if (woken) {
      dirty.clear();
      {
        std::lock_guard<std::mutex> lock(shard.dirty_mu);
        dirty.swap(shard.dirty);
      }
      for (const std::uint64_t id : dirty) {
        auto it = shard.conns.find(id);
        if (it != shard.conns.end()) flush_and_update(shard, it->second);
      }
    }
    if (shard.drain.load(std::memory_order_acquire) && !shard.drain_handled) {
      start_drain(shard);
    }
    for (const net::EventLoop::Ready& ev : ready) {
      if (ev.tag == kListenerTag) {
        if (shard.listener != nullptr && ev.readable) accept_burst(shard);
        continue;
      }
      auto it = shard.conns.find(ev.tag);
      if (it == shard.conns.end()) continue;  // closed earlier this batch
      if (ev.hangup) {
        // Both directions are gone (RST or full close while we still held
        // the fd); any unflushed responses are undeliverable.
        close_conn(shard, ev.tag);
        continue;
      }
      if (ev.readable) on_readable(shard, it->second);
      it = shard.conns.find(ev.tag);
      if (it != shard.conns.end() && ev.writable) {
        flush_and_update(shard, it->second);
      }
    }
    if (shard.drain_handled && shard.conns.empty()) break;
  }
}

void Server::accept_burst(Shard& shard) {
  while (shard.listener != nullptr) {
    net::Socket sock;
    const net::ReuseportListener::AcceptStatus status =
        shard.listener->accept_one(&sock);
    if (status == net::ReuseportListener::AcceptStatus::WouldBlock) break;
    if (status == net::ReuseportListener::AcceptStatus::Retry) continue;
    if (status == net::ReuseportListener::AcceptStatus::FdExhausted) {
      // One pending connection was shed against the reserve descriptor;
      // count it and let the level-triggered loop retry on the next event
      // instead of spinning here.
      metrics_.counter("accept_fd_exhausted").inc();
      log_event(Json::object()
                    .set("event", Json::string("accept_fd_exhausted"))
                    .set("shard", Json::number(shard.index)));
      break;
    }
    auto conn = std::make_shared<Conn>(opts_.max_outbound);
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn->shard = shard.index;
    conn->sock = std::move(sock);
    conn->interest = net::EventLoop::kRead;
    shard.loop.add(conn->sock.fd(), conn->interest, conn->id);
    metrics_.counter("connections").inc();
    log_event(Json::object()
                  .set("event", Json::string("conn_open"))
                  .set("conn", Json::number(conn->id))
                  .set("shard", Json::number(shard.index)));
    shard.conns.emplace(conn->id, std::move(conn));
    metrics_.gauge(shard.m_conns)
        .set(static_cast<double>(shard.conns.size()));
  }
}

void Server::on_readable(Shard& shard, const std::shared_ptr<Conn>& conn) {
  char chunk[16384];
  bool peer_gone = false;
  try {
    while (conn->read_open) {
      const ssize_t n = ::recv(conn->sock.fd(), chunk, sizeof chunk, 0);
      if (n > 0) {
        conn->framer.feed(chunk, static_cast<std::size_t>(n));
        process_pending_lines(conn);
        continue;
      }
      if (n == 0) {
        // Clean end-of-requests (possibly a half-close: the peer still
        // reads responses).  Deliver a final unterminated line, then stop
        // reading; in-flight responses keep flowing until drained.
        std::string line;
        if (conn->framer.finish(&line)) {
          ++conn->line_no;
          if (!blank_or_comment(line) && !handle_control(conn.get(), line)) {
            submit_job(conn, decode_manifest_line(conn->line_no, line),
                       conn->next_job++);
          }
        }
        conn->read_open = false;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      peer_gone = true;  // ECONNRESET and friends
      break;
    }
  } catch (const Error& e) {
    // Framing/manifest failure (oversized line, bad JSON): answer with a
    // bare protocol error and stop reading; already-admitted responses
    // still drain before the socket closes.
    append_response(conn.get(), Json::object().set(
                                    "error", Json::string(e.what())));
    log_event(Json::object()
                  .set("event", Json::string("conn_error"))
                  .set("conn", Json::number(conn->id))
                  .set("error", Json::string(e.what())));
    conn->read_open = false;
  }
  if (peer_gone) {
    close_conn(shard, conn->id);
    return;
  }
  flush_and_update(shard, conn);
}

void Server::process_pending_lines(const std::shared_ptr<Conn>& conn) {
  std::string line;
  while (conn->read_open && conn->framer.next(&line)) {
    ++conn->line_no;
    if (blank_or_comment(line)) continue;
    if (handle_control(conn.get(), line)) continue;
    submit_job(conn, decode_manifest_line(conn->line_no, line),
               conn->next_job++);
  }
}

bool Server::handle_control(Conn* conn, const std::string& line) {
  std::string type;
  Json doc;
  try {
    doc = Json::parse(line);
    const Json* t = doc.find("type");
    if (t == nullptr || !t->is_string()) return false;
    type = t->as_string();
  } catch (const std::exception&) {
    return false;  // not even JSON; let the manifest decoder report it
  }
  metrics_.counter("requests_control").inc();
  Json reply = Json::object().set("type", Json::string(type));
  if (type == "health") {
    reply.set("status", Json::string("ok"))
        .set("in_flight", Json::number(static_cast<double>(
                              in_flight_.load(std::memory_order_relaxed))))
        .set("max_queue", Json::number(opts_.max_queue))
        .set("workers", Json::number(pool_->size()))
        .set("build", build_info_json());
  } else if (type == "pass") {
    // Remote single-pass execution: restore the posted IR snapshot, run
    // exactly the named pass, reply with the advanced snapshot.  Served
    // inline on the shard loop (one pass is far cheaper than a full job)
    // with its own LRU entry keyed on the writer-independent snapshot.
    try {
      const Json* name = doc.find("pass");
      LBIST_CHECK(name != nullptr && name->is_string(),
                  "pass request needs a \"pass\" name");
      const Json* snap = doc.find("snapshot");
      LBIST_CHECK(snap != nullptr && snap->is_object(),
                  "pass request needs a \"snapshot\" object");
      const PassPipeline& pipeline = PassPipeline::standard();
      const std::size_t index = pipeline.index_of(name->as_string());
      const std::string key = pass_cache_key(name->as_string(), *snap);
      Json out;
      if (auto cached = cache_.get(key)) {
        out = std::move(*cached);
      } else {
        SynthState state = pipeline.restore(*snap);
        LBIST_CHECK(
            state.completed == index,
            "snapshot stage \"" +
                (state.completed == 0
                     ? std::string("none")
                     : std::string(
                           pipeline.passes()[state.completed - 1]->name())) +
                "\" is not the predecessor of pass \"" + name->as_string() +
                "\"");
        state.options().trace = opts_.trace;
        state.options().events = &events_;
        pipeline.run(state, index + 1);
        out = pipeline.snapshot(state);
        cache_.put(key, out);
      }
      reply.set("status", Json::string("ok"))
          .set("pass", Json::string(name->as_string()))
          .set("snapshot", std::move(out));
    } catch (const Error& e) {
      reply.set("status", Json::string("error"))
          .set("error", Json::string(e.what()));
    }
  } else if (type == "hybrid") {
    // Hybrid-BIST evaluation of a posted IR snapshot: restore, run every
    // remaining pass, grade the allocated plan under the posted (or
    // default) configuration.  Cached like {"type":"pass"} — the key drops
    // the snapshot's writer record and canonicalizes the config, so
    // clients on different builds share entries.
    try {
      const Json* snap = doc.find("snapshot");
      LBIST_CHECK(snap != nullptr && snap->is_object(),
                  "hybrid request needs a \"snapshot\" object");
      const Json* cfg_json = doc.find("config");
      const HybridConfig config = cfg_json != nullptr
                                      ? hybrid_config_from_json(*cfg_json)
                                      : HybridConfig{};
      const std::string key = pass_cache_key(
          "hybrid#" + hybrid_config_to_json(config).dump_compact(), *snap);
      Json out;
      if (auto cached = cache_.get(key)) {
        out = std::move(*cached);
      } else {
        SynthState state = PassPipeline::standard().restore(*snap);
        state.options().trace = opts_.trace;
        state.options().events = &events_;
        out = evaluate_hybrid(state, config);
        cache_.put(key, out);
      }
      metrics_.counter("requests_hybrid").inc();
      reply.set("status", Json::string("ok"))
          .set("hybrid", std::move(out));
    } catch (const Error& e) {
      reply.set("status", Json::string("error"))
          .set("error", Json::string(e.what()));
    }
  } else if (type == "profile") {
    // Live profile capture, answered inline on the shard loop like
    // health/metrics: start arms every registered thread (shards +
    // workers), dump drains and symbolizes without stopping, stop disarms.
    metrics_.counter("requests_profile").inc();
    const Json* a = doc.find("action");
    const std::string action =
        (a != nullptr && a->is_string()) ? a->as_string() : "";
    try {
      obs::Profiler& prof = obs::Profiler::instance();
      if (action == "start") {
        obs::ProfilerOptions popts;
        if (const Json* hz = doc.find("hz");
            hz != nullptr && hz->is_number()) {
          popts.hz = static_cast<int>(hz->as_number());
        }
        prof.start(popts);
        metrics_.gauge("profiler.running").set(1.0);
        reply.set("status", Json::string("ok"))
            .set("running", Json::boolean(true))
            .set("hz", Json::number(popts.hz));
      } else if (action == "stop") {
        prof.stop();
        metrics_.gauge("profiler.running").set(0.0);
        reply.set("status", Json::string("ok"))
            .set("running", Json::boolean(false));
      } else if (action == "dump") {
        obs::ProfileReport rep = prof.collect();
        // Cap embedded stacks so one dump line stays scrape-sized; span
        // shares are always complete.
        reply.set("status", Json::string("ok"))
            .set("running", Json::boolean(prof.running()))
            .set("profile", rep.to_json(/*max_stacks=*/200));
      } else {
        reply.set("status", Json::string("error"))
            .set("error", Json::string(
                     "profile action must be start|stop|dump"));
      }
    } catch (const Error& e) {
      reply.set("status", Json::string("error"))
          .set("error", Json::string(e.what()));
    }
  } else if (type == "metrics") {
    reply.set("status", Json::string("ok")).set("metrics", metrics_json());
  } else if (type == "prometheus") {
    // Text exposition of the registry; cache statistics are mirrored into
    // gauges first so one scrape carries everything.
    const SynthesisCache::Stats cs = cache_.stats();
    metrics_.gauge("cache.hits").set(static_cast<double>(cs.hits));
    metrics_.gauge("cache.misses").set(static_cast<double>(cs.misses));
    metrics_.gauge("cache.evictions").set(static_cast<double>(cs.evictions));
    metrics_.gauge("cache.size").set(static_cast<double>(cs.size));
    metrics_.gauge("cache.capacity").set(static_cast<double>(cs.capacity));
    if (disk_ != nullptr) {
      const DiskCache::Stats ds = disk_->stats();
      metrics_.gauge("cache.persistent_hits")
          .set(static_cast<double>(cache_.persistent_hits()));
      metrics_.gauge("diskcache.hits").set(static_cast<double>(ds.hits));
      metrics_.gauge("diskcache.misses").set(static_cast<double>(ds.misses));
      metrics_.gauge("diskcache.puts").set(static_cast<double>(ds.puts));
      metrics_.gauge("diskcache.evictions")
          .set(static_cast<double>(ds.evictions));
      metrics_.gauge("diskcache.entries")
          .set(static_cast<double>(ds.entries));
      metrics_.gauge("diskcache.file_bytes")
          .set(static_cast<double>(ds.file_bytes));
      metrics_.gauge("diskcache.live_bytes")
          .set(static_cast<double>(ds.live_bytes));
      metrics_.gauge("diskcache.budget_bytes")
          .set(static_cast<double>(ds.budget_bytes));
      metrics_.gauge("diskcache.compactions")
          .set(static_cast<double>(ds.compactions));
      metrics_.gauge("diskcache.dropped")
          .set(static_cast<double>(ds.dropped));
      metrics_.gauge("diskcache.recovered")
          .set(static_cast<double>(ds.recovered));
    }
    {
      obs::Profiler& prof = obs::Profiler::instance();
      metrics_.gauge("profiler.running").set(prof.running() ? 1.0 : 0.0);
      metrics_.gauge("profiler.dropped_samples")
          .set(static_cast<double>(prof.dropped_samples()));
    }
    reply.set("status", Json::string("ok"))
        .set("body", Json::string(prometheus_exposition(metrics_)));
  } else {
    reply.set("status", Json::string("error"))
        .set("error", Json::string("unknown request type: " + type));
  }
  append_response(conn, reply);
  return true;
}

void Server::submit_job(const std::shared_ptr<Conn>& conn,
                        ManifestEntry entry, std::size_t index) {
  Shard& shard = *shards_[static_cast<std::size_t>(conn->shard)];
  metrics_.counter("requests_total").inc();
  metrics_.counter(shard.m_requests).inc();
  // Admission control: the increment reserves a slot; over the bound the
  // request is answered immediately instead of buffering without bound.
  if (in_flight_.fetch_add(1, std::memory_order_relaxed) >=
      static_cast<std::int64_t>(opts_.max_queue)) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    metrics_.counter("requests_rejected").inc();
    Json reject = Json::object()
                      .set("job", Json::number(index))
                      .set("name", Json::string(display_name(entry, index)))
                      .set("status", Json::string("error"))
                      .set("error", Json::string("overloaded"));
    append_response(conn.get(), reject);
    log_event(Json::object()
                  .set("event", Json::string("request"))
                  .set("conn", Json::number(conn->id))
                  .set("job", Json::number(index))
                  .set("status", Json::string("overloaded")));
    return;
  }
  metrics_.gauge("queue_depth")
      .set(static_cast<double>(in_flight_.load(std::memory_order_relaxed)));
  metrics_.gauge(shard.m_queue_depth)
      .set(static_cast<double>(
          shard.in_flight.fetch_add(1, std::memory_order_relaxed) + 1));
  conn->jobs_in_flight.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t span_id =
      next_span_id_.fetch_add(1, std::memory_order_relaxed);
  const Clock::time_point admitted = Clock::now();
  pool_->submit([this, conn, entry = std::move(entry), index, span_id,
                 admitted]() mutable {
    const double waited_ms = ms_since(admitted);
    metrics_.histogram("queue_ms").record(waited_ms);
    Json response;
    std::string status;
    if (opts_.deadline_ms > 0 &&
        waited_ms > static_cast<double>(opts_.deadline_ms)) {
      // Stale request: answer without executing so the worker moves
      // straight on to work someone is still waiting for.
      metrics_.counter("requests_deadline").inc();
      response = Json::object()
                     .set("job", Json::number(index))
                     .set("name", Json::string(display_name(entry, index)))
                     .set("status", Json::string("error"))
                     .set("error", Json::string("deadline exceeded"));
      status = "deadline";
    } else {
      if (opts_.test_hold) opts_.test_hold();
      auto span = trace_span(opts_.trace, "request");
      JobOutcome outcome =
          run_entry(entry, index, cache_, metrics_, opts_.trace, &events_);
      metrics_.counter(outcome.ok ? "requests_ok" : "requests_error").inc();
      status = outcome.ok ? "ok" : "error";
      response = std::move(outcome.line);
      if (span.active()) {
        span.arg("name", display_name(entry, index));
        span.arg("conn", static_cast<std::uint64_t>(conn->id));
        span.arg("span_id", span_id);
        span.arg("status", status);
      }
    }
    append_response(conn.get(), response);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    Shard& home = *shards_[static_cast<std::size_t>(conn->shard)];
    metrics_.gauge(home.m_queue_depth)
        .set(static_cast<double>(
            home.in_flight.fetch_sub(1, std::memory_order_relaxed) - 1));
    const double total_ms = ms_since(admitted);
    metrics_.histogram("request_ms").record(total_ms);
    if (opts_.slow_request_ms > 0 &&
        total_ms > static_cast<double>(opts_.slow_request_ms)) {
      metrics_.counter("requests_slow").inc();
      log_event(Json::object()
                    .set("event", Json::string("slow_request"))
                    .set("conn", Json::number(conn->id))
                    .set("shard", Json::number(conn->shard))
                    .set("job", Json::number(index))
                    .set("name", Json::string(display_name(entry, index)))
                    .set("span_id", Json::number(span_id))
                    .set("threshold_ms", Json::number(opts_.slow_request_ms))
                    .set("ms", Json::number(total_ms)));
    }
    log_event(Json::object()
                  .set("event", Json::string("request"))
                  .set("conn", Json::number(conn->id))
                  .set("job", Json::number(index))
                  .set("name", Json::string(display_name(entry, index)))
                  .set("status", Json::string(status))
                  .set("span_id", Json::number(span_id))
                  .set("ms", Json::number(total_ms)));
    // Release-decrement after the append: a loop that observes zero knows
    // the response bytes are already queued.  The dirty nudge makes the
    // shard flush (and possibly retire) the connection.
    conn->jobs_in_flight.fetch_sub(1, std::memory_order_release);
    notify_dirty(conn->shard, conn->id);
  });
}

void Server::append_response(Conn* conn, const Json& line) {
  const std::string text = line.dump_compact() + "\n";
  std::lock_guard<std::mutex> lock(conn->out_mu);
  if (conn->closed) return;  // peer already gone; the response is dropped
  if (!conn->outbound.append(text)) conn->overflow = true;
}

void Server::flush_and_update(Shard& shard,
                              const std::shared_ptr<Conn>& conn) {
  // Read jobs_in_flight BEFORE flushing: observing zero (acquire, paired
  // with the worker's release-decrement) proves every response was
  // appended before this flush, so "drained and empty" below really means
  // the connection is finished.
  const bool no_jobs =
      conn->jobs_in_flight.load(std::memory_order_acquire) == 0;
  bool overflow = false;
  bool empty = true;
  std::size_t pending_before = 0;
  auto status = net::OutboundBuffer::Flush::Drained;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) return;
    overflow = conn->overflow;
    pending_before = conn->outbound.pending();
    if (!overflow) {
      status = conn->outbound.flush(conn->sock.fd());
      empty = conn->outbound.empty();
    }
  }
  // High-water mark of pending response bytes (loop thread only): how
  // close this shard's slowest reader gets to the disconnect bound.
  if (pending_before > shard.outbound_hwm) {
    shard.outbound_hwm = pending_before;
    metrics_.gauge(shard.m_outbound_hwm)
        .set(static_cast<double>(pending_before));
  }
  if (overflow) {
    metrics_.counter("slow_reader_disconnects").inc();
    log_event(Json::object()
                  .set("event", Json::string("conn_error"))
                  .set("conn", Json::number(conn->id))
                  .set("error", Json::string(
                           "outbound buffer overflow (slow reader)")));
    close_conn(shard, conn->id);
    return;
  }
  if (status == net::OutboundBuffer::Flush::PeerGone) {
    close_conn(shard, conn->id);
    return;
  }
  if (!conn->read_open && empty && no_jobs) {
    close_conn(shard, conn->id);
    return;
  }
  const std::uint32_t want =
      (conn->read_open ? net::EventLoop::kRead : 0u) |
      (status == net::OutboundBuffer::Flush::Partial ? net::EventLoop::kWrite
                                                     : 0u);
  if (want != conn->interest) {
    shard.loop.mod(conn->sock.fd(), want, conn->id);
    conn->interest = want;
  }
}

void Server::close_conn(Shard& shard, std::uint64_t id) {
  auto it = shard.conns.find(id);
  if (it == shard.conns.end()) return;
  const std::shared_ptr<Conn> conn = it->second;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->closed = true;
  }
  shard.loop.del(conn->sock.fd());
  conn->sock.close();
  shard.conns.erase(it);
  metrics_.gauge(shard.m_conns).set(static_cast<double>(shard.conns.size()));
  log_event(Json::object()
                .set("event", Json::string("conn_close"))
                .set("conn", Json::number(conn->id)));
}

void Server::notify_dirty(int shard_index, std::uint64_t conn_id) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  {
    std::lock_guard<std::mutex> lock(shard.dirty_mu);
    shard.dirty.push_back(conn_id);
  }
  metrics_.counter(shard.m_dirty_wakeups).inc();
  shard.loop.wakeup();
}

void Server::start_drain(Shard& shard) {
  shard.drain_handled = true;
  if (shard.listener != nullptr) {
    shard.loop.del(shard.listener->fd());
    shard.listener.reset();
  }
  // Stop reading everywhere; buffered-but-unprocessed lines are dropped.
  // Connections stay up until their admitted responses have flushed.
  std::vector<std::uint64_t> ids;
  ids.reserve(shard.conns.size());
  for (const auto& [id, conn] : shard.conns) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    auto it = shard.conns.find(id);
    if (it == shard.conns.end()) continue;
    it->second->read_open = false;
    flush_and_update(shard, it->second);
  }
}

void Server::log_event(const Json& line) {
  if (opts_.log == nullptr) return;
  std::lock_guard<std::mutex> lock(log_mu_);
  *opts_.log << line.dump_compact() << "\n";
}

Json Server::metrics_json() const {
  const SynthesisCache::Stats cs = cache_.stats();
  const double lookups = static_cast<double>(cs.hits + cs.misses);
  Json out = Json::object()
      .set("registry", metrics_.to_json())
      .set("cache",
           Json::object()
               .set("hits", Json::number(cs.hits))
               .set("misses", Json::number(cs.misses))
               .set("evictions", Json::number(cs.evictions))
               .set("size", Json::number(cs.size))
               .set("capacity", Json::number(cs.capacity))
               .set("persistent_hits",
                    Json::number(cache_.persistent_hits()))
               .set("hit_rate", Json::number(lookups == 0.0
                                                 ? 0.0
                                                 : static_cast<double>(
                                                       cs.hits) /
                                                       lookups)));
  if (disk_ != nullptr) {
    const DiskCache::Stats ds = disk_->stats();
    out.set("diskcache",
            Json::object()
                .set("hits", Json::number(ds.hits))
                .set("misses", Json::number(ds.misses))
                .set("puts", Json::number(ds.puts))
                .set("evictions", Json::number(ds.evictions))
                .set("compactions", Json::number(ds.compactions))
                .set("dropped", Json::number(ds.dropped))
                .set("recovered", Json::number(ds.recovered))
                .set("entries", Json::number(ds.entries))
                .set("file_bytes", Json::number(ds.file_bytes))
                .set("live_bytes", Json::number(ds.live_bytes))
                .set("budget_bytes", Json::number(ds.budget_bytes)));
  }
  return out;
}

}  // namespace lbist
