#pragma once
// Minimal POSIX TCP wrappers for the synthesis server: an RAII socket, a
// loopback listener with poll-based accept, a blocking connector, and a
// buffered newline-delimited line reader.  Everything throws lbist::Error
// on I/O failure; sends use MSG_NOSIGNAL so a vanished peer surfaces as an
// error instead of SIGPIPE.

#include <cstdint>
#include <string>
#include <string_view>

#include "net/socket.hpp"
#include "support/check.hpp"

namespace lbist::net {

/// TCP listener bound to 127.0.0.1 (`port` 0 picks an ephemeral port).
class Listener {
 public:
  explicit Listener(std::uint16_t port);

  /// The actually bound port (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Accepts one connection, waiting up to `timeout_ms` (-1 = forever,
  /// optionally also waking when `extra_fd` becomes readable).  Returns an
  /// invalid socket on timeout or extra_fd wakeup.
  [[nodiscard]] Socket accept(int timeout_ms, int extra_fd = -1);

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Blocking connect to host:port (host is a dotted-quad or "localhost").
[[nodiscard]] Socket connect_to(const std::string& host, std::uint16_t port);

/// Writes the whole buffer (MSG_NOSIGNAL); throws Error on failure.
void send_all(int fd, std::string_view data);

/// Buffered reader splitting a socket stream into '\n'-terminated lines.
class LineReader {
 public:
  /// `max_line` bounds buffered bytes per line so one hostile client
  /// cannot balloon server memory; an oversized line throws Error.
  explicit LineReader(int fd, std::size_t max_line = 1 << 20)
      : fd_(fd), max_line_(max_line) {}

  /// Reads one line (newline stripped, trailing '\r' too).  Returns false
  /// on clean end-of-stream; a final unterminated line is still delivered.
  [[nodiscard]] bool read_line(std::string* out);

 private:
  int fd_;
  std::size_t max_line_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace lbist::net
