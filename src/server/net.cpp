#include "server/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lbist::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

Listener::Listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  sock_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    fail_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, SOMAXCONN) != 0) fail_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    fail_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

Socket Listener::accept(int timeout_ms, int extra_fd) {
  pollfd fds[2];
  fds[0].fd = sock_.fd();
  fds[0].events = POLLIN;
  nfds_t nfds = 1;
  if (extra_fd >= 0) {
    fds[1].fd = extra_fd;
    fds[1].events = POLLIN;
    nfds = 2;
  }
  const int rc = ::poll(fds, nfds, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return Socket();
    fail_errno("poll");
  }
  if (rc == 0 || (fds[0].revents & POLLIN) == 0) return Socket();
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return Socket();
    fail_errno("accept");
  }
  return Socket(fd);
}

Socket connect_to(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string node = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    throw Error("invalid host address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  Socket sock(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    fail_errno("connect " + host + ":" + std::to_string(port));
  }
  return sock;
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool LineReader::read_line(std::string* out) {
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      if (!out->empty() && out->back() == '\r') out->pop_back();
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      *out = std::move(buffer_);  // final unterminated line
      buffer_.clear();
      if (!out->empty() && out->back() == '\r') out->pop_back();
      return true;
    }
    if (buffer_.size() > max_line_) {
      throw Error("request line exceeds " + std::to_string(max_line_) +
                  " bytes");
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("recv");
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace lbist::net
