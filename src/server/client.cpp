#include "server/client.hpp"

#include <ostream>
#include <thread>

#include "server/net.hpp"
#include "support/json.hpp"

namespace lbist {

ClientSummary run_client(const std::string& host, std::uint16_t port,
                         std::string_view manifest, std::ostream& out) {
  net::Socket sock = net::connect_to(host, port);
  ClientSummary summary;

  // Receive concurrently with sending: with both directions streaming, a
  // manifest larger than the socket buffers would otherwise deadlock
  // (server blocked writing responses nobody reads, client blocked
  // sending lines nobody accepts).
  std::thread receiver([&] {
    try {
      net::LineReader reader(sock.fd());
      std::string line;
      while (reader.read_line(&line)) {
        out << line << "\n";
        ++summary.responses;
        try {
          const Json j = Json::parse(line);
          if (const Json* s = j.find("status");
              s != nullptr && s->is_string()) {
            if (s->as_string() == "ok") {
              ++summary.ok;
            } else {
              ++summary.errors;
            }
          }
        } catch (const std::exception&) {
          ++summary.errors;  // unparseable response line
        }
      }
    } catch (const Error&) {
      // Connection dropped mid-read; report what was received.
    }
  });

  net::send_all(sock.fd(), manifest);
  if (manifest.empty() || manifest.back() != '\n') {
    net::send_all(sock.fd(), "\n");
  }
  // End-of-requests: the server drains our in-flight jobs, answers them,
  // and closes — which ends the receiver loop.
  sock.shutdown_write();
  receiver.join();
  return summary;
}

void parse_host_port(const std::string& spec, std::string* host,
                     std::uint16_t* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    throw Error("expected host:port, got: " + spec);
  }
  *host = spec.substr(0, colon);
  const std::string p = spec.substr(colon + 1);
  int value = 0;
  try {
    std::size_t used = 0;
    value = std::stoi(p, &used);
    if (used != p.size()) throw Error("bad port");
  } catch (const std::exception&) {
    throw Error("invalid port in " + spec);
  }
  if (value < 1 || value > 65535) throw Error("port out of range in " + spec);
  *port = static_cast<std::uint16_t>(value);
}

}  // namespace lbist
