#include "obs/prom.hpp"

#include <cstdio>

namespace lbist {

namespace {

bool name_char_ok(char c, bool first) {
  const bool alpha =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  if (first) return alpha;
  return alpha || (c >= '0' && c <= '9');
}

std::string fmt_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// `name{labels}` (or bare name), with an optional extra label appended
/// (used for quantile series).
std::string series(const std::string& name, const PromLabels& labels,
                   const char* extra_key = nullptr,
                   const char* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += prom_metric_name(k) + "=\"" + prom_escape_label_value(v) + "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += std::string(extra_key) + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

void emit_header(std::string& out, const std::string& name,
                 const std::string& raw, const char* type) {
  out += "# HELP " + name + " lowbist registry instrument " + raw + "\n";
  out += "# TYPE " + name + " " + type + "\n";
}

}  // namespace

std::string prom_metric_name(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    out += name_char_ok(raw[i], i == 0) ? raw[i] : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string prom_escape_label_value(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_exposition(const Json& registry_dump,
                                  const std::string& ns,
                                  const PromLabels& labels) {
  const std::string prefix = ns.empty() ? "" : prom_metric_name(ns) + "_";
  std::string out;

  if (const Json* ts = registry_dump.find("snapshot_unix_ms");
      ts != nullptr && ts->is_number()) {
    const std::string name = prefix + "snapshot_unix_ms";
    emit_header(out, name, "snapshot_unix_ms", "gauge");
    out += series(name, labels) + " " + fmt_value(ts->as_number()) + "\n";
  }

  if (const Json* counters = registry_dump.find("counters");
      counters != nullptr && counters->is_object()) {
    for (const std::string& raw : counters->keys()) {
      const std::string name = prefix + prom_metric_name(raw);
      emit_header(out, name, raw, "counter");
      out += series(name, labels) + " " +
             fmt_value(counters->at(raw).as_number()) + "\n";
    }
  }

  if (const Json* gauges = registry_dump.find("gauges");
      gauges != nullptr && gauges->is_object()) {
    for (const std::string& raw : gauges->keys()) {
      const std::string name = prefix + prom_metric_name(raw);
      emit_header(out, name, raw, "gauge");
      out += series(name, labels) + " " +
             fmt_value(gauges->at(raw).as_number()) + "\n";
    }
  }

  if (const Json* hists = registry_dump.find("histograms");
      hists != nullptr && hists->is_object()) {
    for (const std::string& raw : hists->keys()) {
      const Json& h = hists->at(raw);
      const std::string name = prefix + prom_metric_name(raw);
      const double count = h.at("count").as_number();
      const double mean = h.at("mean").as_number();
      emit_header(out, name, raw, "summary");
      out += series(name, labels, "quantile", "0.5") + " " +
             fmt_value(h.at("p50").as_number()) + "\n";
      out += series(name, labels, "quantile", "0.95") + " " +
             fmt_value(h.at("p95").as_number()) + "\n";
      out += series(name, labels, "quantile", "0.99") + " " +
             fmt_value(h.at("p99").as_number()) + "\n";
      out += series(name + "_sum", labels) + " " + fmt_value(mean * count) +
             "\n";
      out += series(name + "_count", labels) + " " + fmt_value(count) + "\n";
      for (const char* bound : {"min", "max"}) {
        const std::string gname = name + "_" + bound;
        emit_header(out, gname, raw + " " + bound, "gauge");
        out += series(gname, labels) + " " +
               fmt_value(h.at(bound).as_number()) + "\n";
      }
    }
  }
  return out;
}

std::string prometheus_exposition(const MetricsRegistry& reg,
                                  const std::string& ns,
                                  const PromLabels& labels) {
  return prometheus_exposition(reg.to_json(), ns, labels);
}

}  // namespace lbist
