#include "obs/prom.hpp"

#include <cstdio>
#include <map>

namespace lbist {

namespace {

bool name_char_ok(char c, bool first) {
  const bool alpha =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  if (first) return alpha;
  return alpha || (c >= '0' && c <= '9');
}

std::string fmt_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// Splits a `base|k=v|k2=v2` instrument name (see labeled_metric) into the
/// base name and its embedded label pairs.
struct ParsedName {
  std::string base;
  PromLabels labels;
};

ParsedName parse_instrument(const std::string& raw) {
  ParsedName out;
  std::size_t bar = raw.find('|');
  out.base = raw.substr(0, bar);
  while (bar != std::string::npos) {
    const std::size_t start = bar + 1;
    bar = raw.find('|', start);
    const std::string field = raw.substr(
        start, bar == std::string::npos ? std::string::npos : bar - start);
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos || eq == 0) continue;  // malformed; drop
    out.labels.emplace_back(field.substr(0, eq), field.substr(eq + 1));
  }
  return out;
}

/// `name{labels}` (or bare name), with an optional extra label appended
/// (used for quantile series).
std::string series(const std::string& name, const PromLabels& labels,
                   const char* extra_key = nullptr,
                   const char* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += prom_metric_name(k) + "=\"" + prom_escape_label_value(v) + "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += std::string(extra_key) + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

void emit_header(std::string& out, const std::string& name,
                 const std::string& raw, const char* type) {
  out += "# HELP " + name + " lowbist registry instrument " + raw + "\n";
  out += "# TYPE " + name + " " + type + "\n";
}

/// One series of a family: the merged label set plus the instrument's
/// value (scalar) or summary object (histograms).
struct Series {
  PromLabels labels;
  const Json* value = nullptr;
};

/// Groups a registry section's instruments by base name, so families whose
/// members differ only in embedded labels share one TYPE/HELP header even
/// though the registry stores them under distinct names.
std::map<std::string, std::vector<Series>> group_families(
    const Json& section, const PromLabels& global_labels) {
  std::map<std::string, std::vector<Series>> families;
  for (const std::string& raw : section.keys()) {
    ParsedName parsed = parse_instrument(raw);
    Series s;
    s.labels = global_labels;
    s.labels.insert(s.labels.end(), parsed.labels.begin(),
                    parsed.labels.end());
    s.value = &section.at(raw);
    families[parsed.base].push_back(std::move(s));
  }
  return families;
}

}  // namespace

std::string prom_metric_name(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    out += name_char_ok(raw[i], i == 0) ? raw[i] : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string prom_escape_label_value(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string labeled_metric(std::string_view base, const PromLabels& labels) {
  std::string out(base);
  auto sanitized = [](std::string_view s) {
    std::string v(s);
    for (char& c : v) {
      if (c == '|' || c == '=') c = '_';
    }
    return v;
  };
  for (const auto& [k, v] : labels) {
    out += '|';
    out += sanitized(k);
    out += '=';
    out += sanitized(v);
  }
  return out;
}

std::string prometheus_exposition(const Json& registry_dump,
                                  const std::string& ns,
                                  const PromLabels& labels) {
  const std::string prefix = ns.empty() ? "" : prom_metric_name(ns) + "_";
  std::string out;

  if (const Json* ts = registry_dump.find("snapshot_unix_ms");
      ts != nullptr && ts->is_number()) {
    const std::string name = prefix + "snapshot_unix_ms";
    emit_header(out, name, "snapshot_unix_ms", "gauge");
    out += series(name, labels) + " " + fmt_value(ts->as_number()) + "\n";
  }

  for (const auto& [section_key, prom_type] :
       {std::pair<const char*, const char*>{"counters", "counter"},
        std::pair<const char*, const char*>{"gauges", "gauge"}}) {
    const Json* section = registry_dump.find(section_key);
    if (section == nullptr || !section->is_object()) continue;
    for (const auto& [base, members] : group_families(*section, labels)) {
      const std::string name = prefix + prom_metric_name(base);
      emit_header(out, name, base, prom_type);
      for (const Series& s : members) {
        out += series(name, s.labels) + " " + fmt_value(s.value->as_number()) +
               "\n";
      }
    }
  }

  if (const Json* hists = registry_dump.find("histograms");
      hists != nullptr && hists->is_object()) {
    for (const auto& [base, members] : group_families(*hists, labels)) {
      const std::string name = prefix + prom_metric_name(base);
      emit_header(out, name, base, "summary");
      for (const Series& s : members) {
        const Json& h = *s.value;
        const double count = h.at("count").as_number();
        const double mean = h.at("mean").as_number();
        out += series(name, s.labels, "quantile", "0.5") + " " +
               fmt_value(h.at("p50").as_number()) + "\n";
        out += series(name, s.labels, "quantile", "0.95") + " " +
               fmt_value(h.at("p95").as_number()) + "\n";
        out += series(name, s.labels, "quantile", "0.99") + " " +
               fmt_value(h.at("p99").as_number()) + "\n";
        out += series(name + "_sum", s.labels) + " " +
               fmt_value(mean * count) + "\n";
        out += series(name + "_count", s.labels) + " " + fmt_value(count) +
               "\n";
      }
      for (const char* bound : {"min", "max"}) {
        const std::string gname = name + "_" + bound;
        emit_header(out, gname, base + " " + bound, "gauge");
        for (const Series& s : members) {
          out += series(gname, s.labels) + " " +
                 fmt_value(s.value->at(bound).as_number()) + "\n";
        }
      }
    }
  }
  return out;
}

std::string prometheus_exposition(const MetricsRegistry& reg,
                                  const std::string& ns,
                                  const PromLabels& labels) {
  return prometheus_exposition(reg.to_json(), ns, labels);
}

}  // namespace lbist
