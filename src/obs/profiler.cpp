#include "obs/profiler.hpp"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <ostream>

#include "obs/trace.hpp"
#include "support/check.hpp"

// glibc spells the SIGEV_THREAD_ID target through a union member; older
// headers do not provide the POSIX-next accessor macro.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace lbist::obs {

namespace detail {

/// Everything the signal handler may touch for one thread.  Owned by the
/// profiler's registry (shared_ptr) so rings survive thread exit and a
/// late collect() still sees their samples.
struct ProfilerThreadState {
  std::atomic<SampleRing*> ring{nullptr};  ///< handler reads via acquire
  std::unique_ptr<SampleRing> ring_owner;
  pid_t tid = 0;
  pthread_t handle{};
  timer_t timer{};
  bool armed = false;
  bool alive = true;
  bool contributed = false;  ///< drained >= 1 sample since last start()
  std::atomic<bool> in_handler{false};  ///< re-entrancy guard
};

}  // namespace detail

using detail::ProfilerThreadState;

namespace {

std::atomic<std::uint64_t> g_reentries{0};

/// The handler's view of "this thread"; null when unattached or detached.
thread_local ProfilerThreadState* t_state = nullptr;

/// Captures one sample into the thread's ring.  Async-signal-safe: fixed
/// buffers, lock-free ring, no allocation (backtrace's lazy libgcc load is
/// warmed from start()).  noinline so the frame-skip count stays stable.
__attribute__((noinline)) void take_sample(ProfilerThreadState* ts) {
  SampleRing* ring = ts->ring.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  RawSample* s = ring->begin_push();
  if (s == nullptr) return;  // full; begin_push counted the drop

  // frames[0..2] are take_sample / the handler / the kernel's signal
  // trampoline — skip them so the sample starts at the interrupted pc.
  constexpr int kSkip = 3;
  void* raw[RawSample::kMaxFrames + kSkip];
  int n = ::backtrace(raw, RawSample::kMaxFrames + kSkip);
  int skip = kSkip;
  if (skip >= n) skip = n > 0 ? n - 1 : 0;
  const int kept = n - skip;
  for (int i = 0; i < kept; ++i) s->frames[i] = raw[skip + i];
  s->num_frames = static_cast<std::uint16_t>(kept);
  s->num_spans = static_cast<std::uint16_t>(
      spanmark::snapshot(s->spans, RawSample::kMaxSpans));
  ring->commit_push();
}

void sigprof_handler(int /*sig*/, siginfo_t* /*info*/, void* /*ctx*/) {
  const int saved_errno = errno;
  ProfilerThreadState* ts = t_state;
  if (ts != nullptr) {
    if (!ts->in_handler.exchange(true, std::memory_order_relaxed)) {
      take_sample(ts);
      ts->in_handler.store(false, std::memory_order_relaxed);
    } else {
      g_reentries.fetch_add(1, std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}

/// Demangles and sanitizes one pc into a folded-stack-safe frame name.
/// Return addresses point one past the call, so probe pc-1 to land inside
/// the calling function.
std::string resolve_pc(void* pc) {
  void* probe = static_cast<char*>(pc) - 1;
  Dl_info info{};
  if (::dladdr(probe, &info) != 0 && info.dli_sname != nullptr) {
    int status = -1;
    char* dem = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string out = (status == 0 && dem != nullptr) ? dem : info.dli_sname;
    std::free(dem);
    for (char& c : out) {
      if (c == ';' || c == '\n' || c == '\r') c = ':';
    }
    return out;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "[%p]", pc);
  return buf;
}

struct SpanAgg {
  std::uint64_t self = 0;
  std::uint64_t total = 0;
};

}  // namespace

namespace detail {

/// Thread-exit guard: disarms the timer and unpublishes t_state before the
/// thread's TLS is torn down, so no late signal touches freed state.
struct ProfilerThreadGuard {
  bool armed = false;
  ~ProfilerThreadGuard() {
    if (armed) Profiler::detach_current_thread();
  }
};

}  // namespace detail

namespace {
thread_local detail::ProfilerThreadGuard t_guard;
}  // namespace

// ---------------------------------------------------------------- SampleRing

SampleRing::SampleRing(std::size_t slots)
    : slots_(std::max<std::size_t>(1, slots)) {}

RawSample* SampleRing::begin_push() {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  return &slots_[static_cast<std::size_t>(head % slots_.size())];
}

void SampleRing::commit_push() {
  head_.store(head_.load(std::memory_order_relaxed) + 1,
              std::memory_order_release);
}

bool SampleRing::pop(RawSample* out) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (tail == head) return false;
  *out = slots_[static_cast<std::size_t>(tail % slots_.size())];
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

std::size_t SampleRing::size() const {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  return static_cast<std::size_t>(head - tail);
}

// ------------------------------------------------------------ ProfileReport

void ProfileReport::write_folded(std::ostream& os) const {
  for (const Stack& s : stacks) {
    os << s.frames << ' ' << s.count << '\n';
  }
}

Json ProfileReport::to_json(std::size_t max_stacks) const {
  Json out = Json::object();
  out.set("format", Json::string("lowbist-profile-v1"));
  out.set("hz", Json::number(hz));
  out.set("samples", Json::number(samples));
  out.set("dropped", Json::number(dropped));
  out.set("handler_reentries", Json::number(handler_reentries));
  out.set("threads", Json::number(threads));

  Json span_arr = Json::array();
  const double denom = samples == 0 ? 1.0 : static_cast<double>(samples);
  for (const SpanShare& s : spans) {
    Json o = Json::object();
    o.set("name", Json::string(s.name));
    o.set("self_samples", Json::number(s.self_samples));
    o.set("total_samples", Json::number(s.total_samples));
    o.set("self_share", Json::number(static_cast<double>(s.self_samples) /
                                     denom));
    o.set("total_share", Json::number(static_cast<double>(s.total_samples) /
                                      denom));
    span_arr.push_back(std::move(o));
  }
  out.set("spans", std::move(span_arr));

  Json stack_arr = Json::array();
  std::size_t limit = stacks.size();
  if (max_stacks != 0 && max_stacks < limit) limit = max_stacks;
  for (std::size_t i = 0; i < limit; ++i) {
    Json o = Json::object();
    o.set("stack", Json::string(stacks[i].frames));
    o.set("count", Json::number(stacks[i].count));
    stack_arr.push_back(std::move(o));
  }
  out.set("top_stacks", std::move(stack_arr));
  out.set("stacks_total", Json::number(stacks.size()));
  return out;
}

// ----------------------------------------------------------------- Profiler

Profiler& Profiler::instance() {
  static Profiler p;
  return p;
}

void Profiler::attach_current_thread() {
  if (t_state != nullptr) return;
  Profiler& p = instance();
  auto ts = std::make_shared<ProfilerThreadState>();
  ts->tid = static_cast<pid_t>(::syscall(SYS_gettid));
  ts->handle = ::pthread_self();
  std::lock_guard<std::mutex> lock(p.mu_);
  p.threads_.push_back(ts);
  t_state = ts.get();
  t_guard.armed = true;
  if (p.running_.load(std::memory_order_relaxed)) p.arm_locked(*ts);
}

void Profiler::detach_current_thread() {
  ProfilerThreadState* ts = t_state;
  if (ts == nullptr) return;
  Profiler& p = instance();
  std::lock_guard<std::mutex> lock(p.mu_);
  // Unpublish before timer_delete: a signal in the window sees null and
  // bails; after timer_delete no further signals target this thread.
  t_state = nullptr;
  disarm_locked(*ts);
  ts->alive = false;  // registry keeps the ring for a later collect()
}

void Profiler::arm_locked(ProfilerThreadState& ts) {
  if (ts.armed || !ts.alive) return;
  if (ts.ring.load(std::memory_order_relaxed) == nullptr) {
    // Ring capacity is fixed at first arm for the thread's lifetime: the
    // handler may hold a stale pointer across a stop/start, so the ring is
    // never reallocated.
    ts.ring_owner = std::make_unique<SampleRing>(opts_.ring_slots);
    ts.ring.store(ts.ring_owner.get(), std::memory_order_release);
  }
  clockid_t clock{};
  if (::pthread_getcpuclockid(ts.handle, &clock) != 0) return;  // exiting
  struct sigevent sev{};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = ts.tid;
  if (::timer_create(clock, &sev, &ts.timer) != 0) {
    throw Error(std::string("profiler: timer_create: ") +
                std::strerror(errno));
  }
  const long period_ns = 1000000000L / opts_.hz;
  itimerspec its{};
  its.it_interval.tv_sec = 0;
  its.it_interval.tv_nsec = period_ns;
  its.it_value = its.it_interval;
  if (::timer_settime(ts.timer, 0, &its, nullptr) != 0) {
    const int err = errno;
    ::timer_delete(ts.timer);
    throw Error(std::string("profiler: timer_settime: ") +
                std::strerror(err));
  }
  ts.armed = true;
}

void Profiler::disarm_locked(ProfilerThreadState& ts) {
  if (!ts.armed) return;
  ::timer_delete(ts.timer);
  ts.armed = false;
}

void Profiler::start(const ProfilerOptions& opts) {
  LBIST_CHECK(opts.hz >= 1 && opts.hz <= 10000,
              "profiler hz must be in [1, 10000]");
  attach_current_thread();
  Profiler& p = instance();
  std::lock_guard<std::mutex> lock(p.mu_);
  if (p.running_.load(std::memory_order_relaxed)) {
    throw Error("profiler already running");
  }
  p.opts_ = opts;
  if (!p.handler_installed_) {
    struct sigaction sa{};
    sa.sa_sigaction = &sigprof_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (::sigaction(SIGPROF, &sa, nullptr) != 0) {
      throw Error(std::string("profiler: sigaction: ") +
                  std::strerror(errno));
    }
    p.handler_installed_ = true;
  }
  // backtrace()'s first call dlopens libgcc (allocates); warm it here so
  // the signal handler never does.
  void* warm[4];
  ::backtrace(warm, 4);
  p.agg_.clear();  // a start() begins a fresh profile
  for (auto& ts : p.threads_) ts->contributed = false;
  spanmark::set_enabled(true);
  p.running_.store(true, std::memory_order_relaxed);
  for (auto& ts : p.threads_) p.arm_locked(*ts);
  // Spawned last so a throw above never leaks a running drainer.
  p.drain_stop_ = false;
  p.drainer_ = std::thread([&p] { p.drainer_loop(); });
}

void Profiler::stop() {
  Profiler& p = instance();
  std::thread drainer;
  {
    std::lock_guard<std::mutex> lock(p.mu_);
    if (!p.running_.load(std::memory_order_relaxed)) return;
    for (auto& ts : p.threads_) disarm_locked(*ts);
    spanmark::set_enabled(false);
    p.running_.store(false, std::memory_order_relaxed);
    p.drain_stop_ = true;
    drainer = std::move(p.drainer_);
  }
  p.drain_cv_.notify_all();
  if (drainer.joinable()) drainer.join();
}

Profiler::~Profiler() {
  // A profiler left running at process exit (e.g. a killed serve) must
  // still join its drainer or ~thread() terminates.  Timers die with the
  // process; only the thread needs shutdown.
  std::thread drainer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drain_stop_ = true;
    drainer = std::move(drainer_);
  }
  drain_cv_.notify_all();
  if (drainer.joinable()) drainer.join();
}

/// Folds every ring's pending samples into the cumulative aggregation.
/// Key = raw frame addresses + span-name pointers (span names are string
/// literals, so pointer identity is name identity) — no symbolization, so
/// this is cheap enough for the 500 ms drain cadence.
void Profiler::drain_rings_locked() {
  RawSample s;
  std::string key;
  for (auto& ts : threads_) {
    SampleRing* ring = ts->ring.load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    while (ring->pop(&s)) {
      ts->contributed = true;
      key.assign(reinterpret_cast<const char*>(&s.frames[0]),
                 sizeof(void*) * s.num_frames);
      key.append(reinterpret_cast<const char*>(&s.spans[0]),
                 sizeof(const char*) * s.num_spans);
      key.push_back(static_cast<char>(s.num_frames));
      Agg& agg = agg_[key];
      if (agg.count == 0) agg.sample = s;
      ++agg.count;
    }
  }
}

void Profiler::drainer_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!drain_stop_) {
    drain_cv_.wait_for(lock, std::chrono::milliseconds(500),
                       [this] { return drain_stop_; });
    drain_rings_locked();
  }
}

int Profiler::hz() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opts_.hz;
}

std::uint64_t Profiler::dropped_samples() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ts : threads_) {
    const SampleRing* ring = ts->ring.load(std::memory_order_acquire);
    if (ring != nullptr) total += ring->dropped();
  }
  return total;
}

std::uint64_t Profiler::handler_reentries() {
  return g_reentries.load(std::memory_order_relaxed);
}

ProfileReport Profiler::collect() {
  ProfileReport rep;
  std::vector<Agg> buckets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drain_rings_locked();  // fold anything the drainer has not seen yet
    rep.hz = opts_.hz;
    buckets.reserve(agg_.size());
    for (const auto& [key, agg] : agg_) buckets.push_back(agg);
    for (const auto& ts : threads_) {
      if (ts->contributed) ++rep.threads;
      const SampleRing* ring = ts->ring.load(std::memory_order_acquire);
      if (ring != nullptr) rep.dropped += ring->dropped();
    }
  }

  std::map<void*, std::string> symbols;
  auto symbolize = [&symbols](void* pc) -> const std::string& {
    auto it = symbols.find(pc);
    if (it == symbols.end()) {
      it = symbols.emplace(pc, resolve_pc(pc)).first;
    }
    return it->second;
  };

  std::map<std::string, std::uint64_t> folded;
  std::map<std::string, SpanAgg> spans;
  for (const Agg& bucket : buckets) {
    const RawSample& s = bucket.sample;
    const std::uint64_t n = bucket.count;
    rep.samples += n;
    const char* innermost =
        s.num_spans > 0 ? s.spans[s.num_spans - 1] : nullptr;
    if (innermost != nullptr) spans[innermost].self += n;
    for (int i = 0; i < s.num_spans; ++i) {
      bool repeated = false;  // count a recursive span once per sample
      for (int j = 0; j < i; ++j) {
        if (std::strcmp(s.spans[j], s.spans[i]) == 0) {
          repeated = true;
          break;
        }
      }
      if (!repeated) spans[s.spans[i]].total += n;
    }
    std::string line = innermost != nullptr ? innermost : "(no span)";
    for (char& c : line) {
      if (c == ';' || c == ' ' || c == '\n') c = '_';
    }
    for (int i = s.num_frames - 1; i >= 0; --i) {
      line += ';';
      line += symbolize(s.frames[i]);
    }
    folded[line] += n;
  }
  rep.handler_reentries = g_reentries.load(std::memory_order_relaxed);

  rep.stacks.reserve(folded.size());
  for (auto& [frames, count] : folded) {
    rep.stacks.push_back(ProfileReport::Stack{frames, count});
  }
  std::sort(rep.stacks.begin(), rep.stacks.end(),
            [](const ProfileReport::Stack& a, const ProfileReport::Stack& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.frames < b.frames;
            });

  rep.spans.reserve(spans.size());
  for (auto& [name, agg] : spans) {
    rep.spans.push_back(ProfileReport::SpanShare{name, agg.self, agg.total});
  }
  std::sort(rep.spans.begin(), rep.spans.end(),
            [](const ProfileReport::SpanShare& a,
               const ProfileReport::SpanShare& b) {
              if (a.self_samples != b.self_samples) {
                return a.self_samples > b.self_samples;
              }
              return a.name < b.name;
            });
  return rep;
}

bool Profiler::test_enter_guard() {
  attach_current_thread();
  ProfilerThreadState* ts = t_state;
  if (ts->in_handler.exchange(true, std::memory_order_relaxed)) {
    g_reentries.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void Profiler::test_leave_guard() {
  ProfilerThreadState* ts = t_state;
  if (ts != nullptr) ts->in_handler.store(false, std::memory_order_relaxed);
}

void Profiler::sample_now_for_testing() {
  attach_current_thread();
  ProfilerThreadState* ts = t_state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ts->ring.load(std::memory_order_relaxed) == nullptr) {
      ts->ring_owner = std::make_unique<SampleRing>(opts_.ring_slots);
      ts->ring.store(ts->ring_owner.get(), std::memory_order_release);
    }
  }
  void* warm[4];
  ::backtrace(warm, 4);  // same warm-up start() does
  take_sample(ts);
}

}  // namespace lbist::obs
