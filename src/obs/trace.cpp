#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <utility>

namespace lbist {

namespace {

std::atomic<std::uint64_t> g_next_recorder_id{1};

/// JSON string escaping for names / string args.
void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

/// Microseconds with nanosecond precision, as Chrome's `ts`/`dur` expect.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

namespace spanmark {

namespace {

/// Constant-initialized so the thread_local needs no guard: the SIGPROF
/// handler may read it on a thread that never pushed a span.
struct Stack {
  const char* names[kMaxDepth];
  std::atomic<int> depth;
};
thread_local constinit Stack t_stack{{}, {0}};

}  // namespace

void push(const char* name) {
  Stack& s = t_stack;
  const int d = s.depth.load(std::memory_order_relaxed);
  if (d < kMaxDepth) s.names[d] = name;
  // Order the name store before the depth bump for a same-thread signal
  // handler; no cross-thread ordering is needed (handlers run on the
  // owning thread).
  std::atomic_signal_fence(std::memory_order_release);
  s.depth.store(d + 1, std::memory_order_relaxed);
}

void pop() {
  Stack& s = t_stack;
  const int d = s.depth.load(std::memory_order_relaxed);
  if (d > 0) s.depth.store(d - 1, std::memory_order_relaxed);
}

int snapshot(const char** out, int max) {
  const Stack& s = t_stack;
  int d = s.depth.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);
  if (d > kMaxDepth) d = kMaxDepth;  // entries past kMaxDepth were not stored
  const int first = d > max ? d - max : 0;  // keep the innermost `max`
  const int n = d - first;
  for (int i = 0; i < n; ++i) out[i] = s.names[first + i];
  return n;
}

int depth() { return t_stack.depth.load(std::memory_order_relaxed); }

}  // namespace spanmark

/// Per-thread event buffer.  Shared ownership: the owning thread's TLS slot
/// and the recorder both hold a reference, so neither thread exit nor
/// recorder export can race on a freed buffer.
struct TraceRecorder::ThreadBuf {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

TraceRecorder::TraceRecorder()
    : recorder_id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

std::uint64_t TraceRecorder::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRecorder::ThreadBuf* TraceRecorder::local_buf() {
  // Cache keyed by recorder id, not address: a dead recorder's id is never
  // reused, so a recycled allocation cannot alias a stale cache entry.
  struct TlsSlot {
    std::uint64_t recorder_id;
    std::shared_ptr<ThreadBuf> buf;
  };
  thread_local std::vector<TlsSlot> slots;
  for (const TlsSlot& s : slots) {
    if (s.recorder_id == recorder_id_) return s.buf.get();
  }
  auto buf = std::make_shared<ThreadBuf>();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buf->tid = next_tid_++;
    bufs_.push_back(buf);
  }
  slots.push_back(TlsSlot{recorder_id_, buf});
  return buf.get();
}

void TraceRecorder::record(std::string name, std::string args,
                           std::uint64_t start_ns, std::uint64_t dur_ns) {
  ThreadBuf* buf = local_buf();
  TraceEvent ev;
  ev.name = std::move(name);
  ev.args_json = std::move(args);
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.tid = buf->tid;
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->events.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bufs = bufs_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    events.insert(events.end(), buf->events.begin(), buf->events.end());
  }
  // Deterministic merge: by start time, enclosing (longer) spans first on
  // ties so parents precede children, then thread and name.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.name < b.name;
            });
  return events;
}

std::size_t TraceRecorder::event_count() const {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bufs = bufs_;
  }
  std::size_t n = 0;
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void TraceRecorder::clear() {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bufs = bufs_;
  }
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->events.clear();
  }
}

void TraceRecorder::write_jsonl(std::ostream& os) const {
  for (const TraceEvent& ev : snapshot()) {
    std::string line = "{\"name\":";
    append_escaped(line, ev.name);
    line += ",\"tid\":";
    append_number(line, ev.tid);
    line += ",\"ts_us\":";
    append_us(line, ev.start_ns);
    line += ",\"dur_us\":";
    append_us(line, ev.dur_ns);
    if (!ev.args_json.empty()) {
      line += ",\"args\":{" + ev.args_json + "}";
    }
    line += "}";
    os << line << "\n";
  }
}

void TraceRecorder::write_chrome(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : snapshot()) {
    std::string line = first ? "\n" : ",\n";
    first = false;
    line += "{\"name\":";
    append_escaped(line, ev.name);
    line += ",\"cat\":\"lowbist\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    append_number(line, ev.tid);
    line += ",\"ts\":";
    append_us(line, ev.start_ns);
    line += ",\"dur\":";
    append_us(line, ev.dur_ns);
    line += ",\"args\":{" + ev.args_json + "}}";
    os << line;
  }
  os << "\n]}\n";
}

TraceRecorder::Span::Span(TraceRecorder* rec, const char* name, bool mark) {
  if (mark) {
    spanmark::push(name);
    mark_ = name;
  }
  if (rec != nullptr) {
    rec_ = rec;
    name_ = name;
    start_ns_ = rec->now_ns();
  }
}

void TraceRecorder::Span::arg(std::string_view key, std::string_view value) {
  if (rec_ == nullptr) return;
  if (!args_.empty()) args_ += ',';
  append_escaped(args_, key);
  args_ += ':';
  append_escaped(args_, value);
}

void TraceRecorder::Span::arg(std::string_view key, double value) {
  if (rec_ == nullptr) return;
  if (!args_.empty()) args_ += ',';
  append_escaped(args_, key);
  args_ += ':';
  append_number(args_, value);
}

void TraceRecorder::Span::arg(std::string_view key, std::uint64_t value) {
  arg(key, static_cast<double>(value));
}

void TraceRecorder::Span::arg_bool(std::string_view key, bool value) {
  if (rec_ == nullptr) return;
  if (!args_.empty()) args_ += ',';
  append_escaped(args_, key);
  args_ += value ? ":true" : ":false";
}

void TraceRecorder::Span::finish() {
  if (mark_ != nullptr) {
    // Pops on the finishing thread: spans must finish on the thread that
    // opened them for profiler attribution to stay coherent (true for
    // every RAII use in this codebase).
    spanmark::pop();
    mark_ = nullptr;
  }
  if (rec_ == nullptr) return;
  TraceRecorder* rec = rec_;
  rec_ = nullptr;
  const std::uint64_t end_ns = rec->now_ns();
  rec->record(std::move(name_), std::move(args_), start_ns_,
              end_ns - start_ns_);
}

}  // namespace lbist
