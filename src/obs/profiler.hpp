#pragma once
// Span-attributed in-process sampling profiler.
//
// Each registered thread gets a POSIX per-thread CPU-time timer
// (timer_create on the thread's cpuclock, SIGEV_THREAD_ID) that delivers
// SIGPROF at `hz` (default 199 — prime, so sampling does not beat against
// 100 Hz/1 kHz periodic work).  The async-signal-safe handler captures a
// backtrace plus the calling thread's active span-name stack
// (lbist::spanmark, maintained by TraceRecorder::Span) into a lock-free
// SPSC ring; a full ring drops the sample and counts it, it never blocks.
// While running, a background drainer folds the rings into a compact
// cumulative aggregation (keyed by raw frame addresses, no symbolization)
// every 500 ms, so arbitrarily long runs never saturate a ring — the ring
// only has to absorb half a second of samples, not the whole run.
// Symbolization (dladdr + demangle) is lazy, at collect() time, far away
// from any signal context.
//
// Because samples carry the span stack, a report can be sliced by pipeline
// pass (sched/conflict_graph/binding/interconnect/bist) or by server
// request without any symbol-level knowledge — the key feature over a
// plain `perf record`.  Exporters: Brendan-Gregg folded stacks (feed
// directly to flamegraph.pl / speedscope) and a JSON report with per-span
// self/total sample shares.
//
// Contracts (tested in tests/obs_test.cpp):
//  * Not running: instrumented code paths allocate nothing and pay two
//    relaxed atomic loads per trace_span.
//  * CPU-time clocks: idle threads (epoll wait, cv wait) take no samples
//    and cost nothing while blocked.
//  * The handler is re-entrancy-guarded; nested deliveries are counted,
//    never recursed into.
//
// Threads register via attach_current_thread() (the CLI attaches main,
// ThreadPool's thread-start hook attaches workers, server shards attach in
// shard_loop).  start()/stop() arm and disarm every registered thread;
// threads attached while running are armed immediately.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/json.hpp"

namespace lbist::obs {

namespace detail {
struct ProfilerThreadState;  // per-thread timer + ring, see profiler.cpp
struct ProfilerThreadGuard;  // TLS guard that detaches on thread exit
}  // namespace detail

struct ProfilerOptions {
  int hz = 199;                   ///< per-thread CPU-time sampling rate
  std::size_t ring_slots = 8192;  ///< per-thread ring capacity (samples)
};

/// One raw sample, exactly as written by the signal handler.
struct RawSample {
  static constexpr int kMaxFrames = 48;
  static constexpr int kMaxSpans = 8;
  void* frames[kMaxFrames];       ///< innermost first
  const char* spans[kMaxSpans];   ///< outermost first (spanmark snapshot)
  std::uint16_t num_frames = 0;
  std::uint16_t num_spans = 0;
};

/// Lock-free single-producer (the owning thread's signal handler) /
/// single-consumer (the collecting thread) ring of RawSamples.  A full
/// ring rejects the push and bumps dropped() — the handler never waits.
class SampleRing {
 public:
  explicit SampleRing(std::size_t slots);

  /// Writer side, async-signal-safe: returns the slot to fill, or nullptr
  /// when full (the drop is counted).  commit_push() publishes the slot.
  [[nodiscard]] RawSample* begin_push();
  void commit_push();

  /// Reader side: pops the oldest sample.  False when empty.
  [[nodiscard]] bool pop(RawSample* out);

  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t size() const;

 private:
  std::vector<RawSample> slots_;
  std::atomic<std::uint64_t> head_{0};  ///< writer position
  std::atomic<std::uint64_t> tail_{0};  ///< reader position
  std::atomic<std::uint64_t> dropped_{0};
};

/// Aggregated, symbolized profile.
struct ProfileReport {
  struct Stack {
    std::string frames;  ///< folded "span_root;outer;...;inner"
    std::uint64_t count = 0;
  };
  struct SpanShare {
    std::string name;
    std::uint64_t self_samples = 0;   ///< innermost active span == name
    std::uint64_t total_samples = 0;  ///< name anywhere on the span stack
  };

  int hz = 0;
  std::uint64_t samples = 0;  ///< samples in this report
  std::uint64_t dropped = 0;  ///< ring overflows since profiler creation
  std::uint64_t handler_reentries = 0;
  int threads = 0;  ///< threads that contributed >= 1 sample
  std::vector<Stack> stacks;     ///< count desc, then frames asc
  std::vector<SpanShare> spans;  ///< self desc, then name asc

  /// Brendan-Gregg folded stacks: one "frames count" line per stack.
  void write_folded(std::ostream& os) const;

  /// JSON report; `max_stacks` caps the embedded stack list (0 = all).
  [[nodiscard]] Json to_json(std::size_t max_stacks = 0) const;
};

/// Process-wide sampling profiler.  All methods are thread-safe.
class Profiler {
 public:
  static Profiler& instance();

  /// Registers the calling thread for sampling.  Idempotent and cheap;
  /// armed immediately when the profiler is running.  Threads that never
  /// attach simply are not sampled.
  static void attach_current_thread();

  /// Arms every registered thread and begins a fresh profile (the
  /// cumulative aggregation from any previous start() is discarded).
  /// Throws Error when already running or on unusable options.  Marks
  /// spans (lbist::spanmark) for attribution.
  void start(const ProfilerOptions& opts = {});

  /// Disarms all timers and stops span marking.  No-op when not running.
  /// Captured samples stay aggregated for a later collect().
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int hz() const;

  /// Drains every thread's ring and symbolizes into an aggregated report
  /// covering everything since the last start() — collect() is cumulative,
  /// so a mid-run dump never steals samples from a later export.  Callable
  /// while running.
  [[nodiscard]] ProfileReport collect();

  /// Ring overflows across all threads since process start.
  [[nodiscard]] std::uint64_t dropped_samples() const;

  /// Nested SIGPROF deliveries suppressed by the re-entrancy guard.
  [[nodiscard]] static std::uint64_t handler_reentries();

  // Test hooks: exercise the handler's re-entrancy guard and sampling path
  // synchronously, without timers or signals (sanitizer-friendly).
  [[nodiscard]] static bool test_enter_guard();
  static void test_leave_guard();
  void sample_now_for_testing();

 private:
  Profiler() = default;
  ~Profiler();

  /// One aggregated (stack, span-stack) bucket: an exemplar RawSample for
  /// lazy symbolization plus how many times it was observed.
  struct Agg {
    RawSample sample;
    std::uint64_t count = 0;
  };

  void arm_locked(detail::ProfilerThreadState& ts);
  static void disarm_locked(detail::ProfilerThreadState& ts);
  static void detach_current_thread();
  void drain_rings_locked();
  void drainer_loop();

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<detail::ProfilerThreadState>> threads_;
  ProfilerOptions opts_;
  std::atomic<bool> running_{false};
  bool handler_installed_ = false;
  std::map<std::string, Agg> agg_;  ///< cumulative since last start()
  std::thread drainer_;
  std::condition_variable drain_cv_;
  bool drain_stop_ = false;

  friend struct detail::ProfilerThreadState;
  friend struct detail::ProfilerThreadGuard;
};

}  // namespace lbist::obs
