#include "obs/events.hpp"

#include <ostream>

namespace lbist {

AlgorithmEvents::AlgorithmEvents(MetricsRegistry* metrics, bool keep_events)
    : metrics_(metrics), keep_events_(keep_events) {}

void AlgorithmEvents::push(const char* kind, const char* counter,
                           Json detail) {
  if (metrics_ != nullptr) metrics_->counter(counter).inc();
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[kind];
  if (keep_events_) {
    events_.push_back(AlgorithmEvent{kind, std::move(detail)});
  }
}

void AlgorithmEvents::pves_rank(std::string_view var, int sd, std::size_t mcs,
                                std::size_t rank) {
  Json detail;
  if (keep_events_) {
    detail = Json::object()
                 .set("var", Json::string(std::string(var)))
                 .set("sd", Json::number(sd))
                 .set("mcs", Json::number(mcs))
                 .set("rank", Json::number(rank));
  }
  push("pves_rank", "binding.pves_vars", std::move(detail));
}

void AlgorithmEvents::assign(std::string_view var, std::size_t reg,
                             int delta_sd, bool new_register,
                             const std::vector<SdCandidate>& candidates) {
  Json detail;
  if (keep_events_) {
    Json cands = Json::array();
    for (const SdCandidate& c : candidates) {
      cands.push_back(Json::object()
                          .set("reg", Json::number(c.reg))
                          .set("delta_sd", Json::number(c.delta_sd)));
    }
    detail = Json::object()
                 .set("var", Json::string(std::string(var)))
                 .set("reg", Json::number(reg))
                 .set("delta_sd", Json::number(delta_sd))
                 .set("new_register", Json::boolean(new_register))
                 .set("candidates", std::move(cands));
  }
  push("assign", "binding.assignments", std::move(detail));
  if (new_register && metrics_ != nullptr) {
    metrics_->counter("binding.new_registers").inc();
  }
}

void AlgorithmEvents::case_override(int case_no, std::string_view var,
                                    std::size_t from_reg,
                                    std::size_t to_reg) {
  Json detail;
  if (keep_events_) {
    detail = Json::object()
                 .set("case", Json::number(case_no))
                 .set("var", Json::string(std::string(var)))
                 .set("from_reg", Json::number(from_reg))
                 .set("to_reg", Json::number(to_reg));
  }
  push("case_override",
       case_no == 1 ? "binding.case1_overrides" : "binding.case2_overrides",
       std::move(detail));
}

void AlgorithmEvents::cbilbo_checked(std::string_view var, std::size_t reg,
                                     bool would_force) {
  Json detail;
  if (keep_events_) {
    detail = Json::object()
                 .set("var", Json::string(std::string(var)))
                 .set("reg", Json::number(reg))
                 .set("would_force", Json::boolean(would_force));
  }
  push("cbilbo_checked", "cbilbo.checked", std::move(detail));
}

void AlgorithmEvents::cbilbo_avoided(std::string_view var,
                                     std::size_t from_reg,
                                     std::size_t to_reg) {
  Json detail;
  if (keep_events_) {
    detail = Json::object()
                 .set("var", Json::string(std::string(var)))
                 .set("from_reg", Json::number(from_reg))
                 .set("to_reg", Json::number(to_reg));
  }
  push("cbilbo_avoided", "cbilbo.avoided", std::move(detail));
}

void AlgorithmEvents::cbilbo_forced(std::size_t reg, std::size_t module,
                                    int lemma_case) {
  Json detail;
  if (keep_events_) {
    detail = Json::object()
                 .set("reg", Json::number(reg))
                 .set("module", Json::number(module))
                 .set("lemma_case", Json::number(lemma_case));
  }
  push("cbilbo_forced", "cbilbo.forced", std::move(detail));
}

void AlgorithmEvents::mux_input(std::string_view module, std::size_t reg,
                                char side, bool merged) {
  Json detail;
  if (keep_events_) {
    detail = Json::object()
                 .set("module", Json::string(std::string(module)))
                 .set("reg", Json::number(reg))
                 .set("side", Json::string(std::string(1, side)))
                 .set("merged", Json::boolean(merged));
  }
  push(merged ? "mux_merge" : "mux_input",
       merged ? "interconnect.mux_merges" : "interconnect.mux_inputs",
       std::move(detail));
}

void AlgorithmEvents::port_flip(std::string_view module) {
  Json detail;
  if (keep_events_) {
    detail =
        Json::object().set("module", Json::string(std::string(module)));
  }
  push("port_flip", "interconnect.port_flips", std::move(detail));
}

void AlgorithmEvents::bist_role(std::size_t reg, std::string_view role) {
  Json detail;
  if (keep_events_) {
    detail = Json::object()
                 .set("reg", Json::number(reg))
                 .set("role", Json::string(std::string(role)));
  }
  const char* counter = "bist.roles_other";
  if (role == "TPG") counter = "bist.roles_tpg";
  else if (role == "SA") counter = "bist.roles_sa";
  else if (role == "BILBO" || role == "TPG/SA") counter = "bist.roles_bilbo";
  else if (role == "CBILBO") counter = "bist.roles_cbilbo";
  push("bist_role", counter, std::move(detail));
}

void AlgorithmEvents::bist_greedy_fallback() {
  push("bist_greedy_fallback", "bist.greedy_fallbacks");
}

std::vector<AlgorithmEvent> AlgorithmEvents::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::uint64_t AlgorithmEvents::count(std::string_view kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counts_.find(kind);
  return it == counts_.end() ? 0 : it->second;
}

void AlgorithmEvents::write_jsonl(std::ostream& os) const {
  for (const AlgorithmEvent& ev : snapshot()) {
    Json line = Json::object().set("kind", Json::string(ev.kind));
    if (ev.detail.is_object()) {
      for (const std::string& key : ev.detail.keys()) {
        Json copy = ev.detail.at(key);  // Json is value-copyable
        line.set(key, std::move(copy));
      }
    }
    os << line.dump_compact() << "\n";
  }
}

}  // namespace lbist
