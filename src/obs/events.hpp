#pragma once
// Typed algorithm-event sink: records the paper-level decisions the
// synthesis pipeline makes, so "why did this binding win?" is answerable
// from data instead of a debugger.
//
// Event taxonomy (mapped to the paper's sections; docs/observability.md
// has the full field reference):
//
//   pves_rank       III.A.1  PVES elimination order with its (SD, MCS) key
//   assign          III.A.2  per-variable ΔSD candidate set + chosen register
//   case_override   III.A.2  a Case 1 / Case 2 override fired
//   cbilbo_checked  III.B    Lemma-2 conditions evaluated for a candidate
//   cbilbo_avoided  III.B    assignment moved to dodge a forced CBILBO
//   cbilbo_forced   III.B    Lemma-1/2 conditions hold on the final binding
//   mux_input       IV       a register became a new mux input of a module
//   mux_merge       IV       an interconnect endpoint was reused (merged)
//   port_flip       IV       a commutative module's L/R split was flipped
//   bist_role       —        final TPG/SA/BILBO/CBILBO role of a register
//   bist_greedy_fallback  —  exact BIST DP overflowed; greedy solver used
//
// Every record also increments a MetricsRegistry counter (when a registry
// is attached), e.g. `binding.case1_overrides`, `cbilbo.forced`,
// `bist.roles_cbilbo` — so long-running services get cheap aggregate
// visibility without retaining event objects (`keep_events = false`).
//
// The sink is thread-safe; a null sink pointer at an instrumentation site
// costs one branch.  Event detail strings are only built when the sink
// keeps events, so counters-only mode stays cheap in inner loops (call
// sites may additionally guard expensive detail construction with
// recording()).

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "service/metrics.hpp"
#include "support/json.hpp"

namespace lbist {

/// One recorded decision: a kind tag plus its typed fields as JSON.
struct AlgorithmEvent {
  std::string kind;
  Json detail;
};

/// A ΔSD candidate considered for one variable (see assign()).
struct SdCandidate {
  std::size_t reg = 0;  ///< 0-based register index
  int delta_sd = 0;
};

class AlgorithmEvents {
 public:
  /// `metrics` (optional) receives one counter increment per record;
  /// `keep_events` off turns the sink into a counters-only mirror that
  /// never grows (what `lowbist serve` uses).
  explicit AlgorithmEvents(MetricsRegistry* metrics = nullptr,
                           bool keep_events = true);

  AlgorithmEvents(const AlgorithmEvents&) = delete;
  AlgorithmEvents& operator=(const AlgorithmEvents&) = delete;

  /// True when event objects are retained (snapshot() will see them).
  [[nodiscard]] bool recording() const { return keep_events_; }

  // ---- binding (Section III.A) ------------------------------------------
  void pves_rank(std::string_view var, int sd, std::size_t mcs,
                 std::size_t rank);
  void assign(std::string_view var, std::size_t reg, int delta_sd,
              bool new_register, const std::vector<SdCandidate>& candidates);
  void case_override(int case_no, std::string_view var, std::size_t from_reg,
                     std::size_t to_reg);

  // ---- CBILBO avoidance (Section III.B) ---------------------------------
  void cbilbo_checked(std::string_view var, std::size_t reg,
                      bool would_force);
  void cbilbo_avoided(std::string_view var, std::size_t from_reg,
                      std::size_t to_reg);
  void cbilbo_forced(std::size_t reg, std::size_t module, int lemma_case);

  // ---- interconnect (Section IV) ----------------------------------------
  void mux_input(std::string_view module, std::size_t reg, char side,
                 bool merged);
  void port_flip(std::string_view module);

  // ---- BIST allocation --------------------------------------------------
  void bist_role(std::size_t reg, std::string_view role);
  void bist_greedy_fallback();

  /// Copy of the retained events, in record order.
  [[nodiscard]] std::vector<AlgorithmEvent> snapshot() const;

  /// Total records of one kind (maintained even with keep_events off).
  [[nodiscard]] std::uint64_t count(std::string_view kind) const;

  /// One JSON object per line: {"kind": ..., <detail fields>}.
  void write_jsonl(std::ostream& os) const;

 private:
  void push(const char* kind, const char* counter, Json detail);
  void push(const char* kind, const char* counter) {
    push(kind, counter, Json::null());
  }

  MetricsRegistry* metrics_;
  const bool keep_events_;
  mutable std::mutex mutex_;
  std::vector<AlgorithmEvent> events_;
  std::map<std::string, std::uint64_t, std::less<>> counts_;
};

}  // namespace lbist
