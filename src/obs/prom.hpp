#pragma once
// Prometheus text-format exposition (version 0.0.4: `# HELP`/`# TYPE`
// lines) generated from a MetricsRegistry — either live, or from the JSON
// dump `MetricsRegistry::to_json()` writes (so `lowbist metrics --prom`
// can convert an offline dump and the server can serve a live scrape via
// the {"type":"prometheus"} control request).
//
// Mapping:
//   counters    -> `counter`  (name sanitized, e.g. binding.case1_overrides
//                  becomes lowbist_binding_case1_overrides)
//   gauges      -> `gauge`
//   histograms  -> `summary` with quantile="0.5|0.95|0.99" series plus
//                  _sum/_count, and _min/_max emitted as gauges
//   snapshot_unix_ms -> lowbist_snapshot_unix_ms gauge (scrape alignment)
//
// `labels` are attached to every series; values are escaped per the
// exposition format (backslash, double quote, newline).

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "service/metrics.hpp"
#include "support/json.hpp"

namespace lbist {

/// Label set applied to every emitted series, in order.
using PromLabels = std::vector<std::pair<std::string, std::string>>;

/// Sanitizes a registry instrument name into a Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, with every other character mapped to '_'.
[[nodiscard]] std::string prom_metric_name(std::string_view raw);

/// Escapes a label value: \ -> \\, " -> \", newline -> \n.
[[nodiscard]] std::string prom_escape_label_value(std::string_view raw);

/// Encodes per-series labels into a registry instrument name:
/// `labeled_metric("shard.conns", {{"shard", "0"}})` -> "shard.conns|shard=0".
/// The exposition renderer splits the encoding back into real Prometheus
/// labels and groups all series of one base name under a single
/// `# TYPE`/`# HELP` header, so per-shard instruments registered with
/// distinct names become one labeled metric family.  '|' and '=' inside
/// keys/values are replaced with '_' (they are the encoding's delimiters);
/// everything else round-trips through the exposition escaping.
[[nodiscard]] std::string labeled_metric(std::string_view base,
                                         const PromLabels& labels);

/// Renders a `MetricsRegistry::to_json()` dump.  `ns` prefixes every
/// metric name ("lowbist" -> lowbist_jobs_ok).
[[nodiscard]] std::string prometheus_exposition(const Json& registry_dump,
                                                const std::string& ns = "lowbist",
                                                const PromLabels& labels = {});

/// Live-registry convenience overload (snapshots, then renders).
[[nodiscard]] std::string prometheus_exposition(const MetricsRegistry& reg,
                                                const std::string& ns = "lowbist",
                                                const PromLabels& labels = {});

}  // namespace lbist
