#pragma once
// Low-overhead pipeline tracing: a thread-safe TraceRecorder with RAII
// Span scopes, exportable as JSONL or as Chrome `trace_event` JSON that
// chrome://tracing and Perfetto load directly (flamegraphs for free).
//
// Design constraints (see docs/observability.md):
//
//  * The disabled path costs one branch and zero allocations: trace_span()
//    checks the recorder pointer / enabled flag before constructing
//    anything, and a default-constructed Span is inert.  Instrumentation
//    can therefore stay compiled in everywhere, always.
//  * Spans record on the calling thread into a per-thread buffer (one
//    uncontended mutex each); buffers are merged and deterministically
//    sorted only at export time, so concurrent workers never serialize on
//    a shared event log.
//  * Timestamps come from std::chrono::steady_clock, as nanoseconds since
//    the recorder's construction, so traces are monotone and immune to
//    wall-clock steps.
//
// Typical use:
//
//   TraceRecorder rec;
//   rec.set_enabled(true);
//   {
//     auto s = trace_span(&rec, "binding");
//     if (s.active()) s.arg("binder", "bist");
//     ...
//   }
//   std::ofstream out("t.json");
//   rec.write_chrome(out);

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lbist {

/// Async-signal-safe per-thread stack of active span *names* — the bridge
/// between the tracer and the sampling profiler (src/obs/profiler.hpp).
/// When marking is enabled (profiler running), every Span pushes its name
/// (a `const char*` that must outlive the span — in practice a string
/// literal) onto the calling thread's stack and pops it on finish, without
/// allocating.  The SIGPROF handler snapshots the stack to attribute each
/// sample to the innermost active span.  The stack is fixed-size; nesting
/// past kMaxDepth only bumps the depth counter, so deep recursion is safe
/// (the deepest kMaxDepth names stay addressable).
namespace spanmark {

inline constexpr int kMaxDepth = 32;

/// Global switch, flipped by the profiler.  Relaxed loads keep the
/// disabled instrumentation path one predictable branch.
inline std::atomic<bool> g_marking{false};

[[nodiscard]] inline bool enabled() {
  return g_marking.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  g_marking.store(on, std::memory_order_relaxed);
}

/// Pushes/pops a span name on the calling thread's stack.  Allocation-free
/// and async-signal-tolerant (a handler between the two stores sees a
/// consistent prefix).
void push(const char* name);
void pop();

/// Copies up to `max` names of the calling thread's stack into `out`,
/// outermost first, preferring the innermost entries when the stack is
/// deeper than `max`.  Returns the number copied.  Async-signal-safe.
int snapshot(const char** out, int max);

/// Current nesting depth on this thread (may exceed kMaxDepth).
[[nodiscard]] int depth();

}  // namespace spanmark

/// One completed span, in recorder-relative time.
struct TraceEvent {
  std::string name;
  std::string args_json;   ///< "" or the members of a JSON object (no {})
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< recorder-assigned thread ordinal
};

/// Thread-safe span recorder.  References stay valid for the recorder's
/// lifetime; per-thread buffers outlive their threads (shared ownership),
/// so export after a worker pool retired is safe.
class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Runtime switch.  Spans opened while disabled record nothing even if
  /// the recorder is enabled before they close.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// RAII scope: records one TraceEvent on destruction (or finish()).
  /// Default-constructed / disabled spans are inert and allocation-free.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        finish();
        rec_ = other.rec_;
        mark_ = other.mark_;
        name_ = std::move(other.name_);
        args_ = std::move(other.args_);
        start_ns_ = other.start_ns_;
        other.rec_ = nullptr;
        other.mark_ = nullptr;
      }
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { finish(); }

    /// True when this span will record (recorder enabled at open).  Use to
    /// guard argument construction that would itself allocate.
    [[nodiscard]] bool active() const { return rec_ != nullptr; }

    /// Attaches "key":"value" / "key":number to the span's args object.
    /// No-ops (and does not allocate) when inactive.
    void arg(std::string_view key, std::string_view value);
    void arg(std::string_view key, double value);
    void arg(std::string_view key, std::uint64_t value);
    void arg_bool(std::string_view key, bool value);

    /// Records the event now; subsequent finish()/destruction is a no-op.
    void finish();

   private:
    friend class TraceRecorder;
    Span(TraceRecorder* rec, const char* name, bool mark);

    TraceRecorder* rec_ = nullptr;
    const char* mark_ = nullptr;  ///< non-null: pop spanmark on finish
    std::string name_;
    std::string args_;
    std::uint64_t start_ns_ = 0;
  };

  /// Opens a span.  When the recorder is disabled this returns an inert
  /// span without allocating (it still marks the spanmark stack when the
  /// profiler has marking enabled — also allocation-free).
  [[nodiscard]] Span span(const char* name) {
    if (!enabled()) {
      if (!spanmark::enabled()) return Span{};
      return Span{nullptr, name, true};
    }
    return Span{this, name, spanmark::enabled()};
  }

  /// Mark-only span: maintains the profiler's span stack without any
  /// recorder.  Allocation-free.
  [[nodiscard]] static Span mark_span(const char* name) {
    return Span{nullptr, name, true};
  }

  /// All recorded events, merged across threads and sorted by
  /// (start, -duration, tid, name) — parents before their children, and
  /// deterministic for a given set of events.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Number of recorded events (cheaper than snapshot().size()).
  [[nodiscard]] std::size_t event_count() const;

  /// Discards every recorded event (buffers stay registered).
  void clear();

  /// One JSON object per line: {"name","tid","ts_us","dur_us"[,"args"]}.
  void write_jsonl(std::ostream& os) const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}) with complete ("X")
  /// events; loads in chrome://tracing and ui.perfetto.dev.
  void write_chrome(std::ostream& os) const;

 private:
  struct ThreadBuf;

  [[nodiscard]] std::uint64_t now_ns() const;
  ThreadBuf* local_buf();
  void record(std::string name, std::string args, std::uint64_t start_ns,
              std::uint64_t dur_ns);

  std::atomic<bool> enabled_{false};
  const std::uint64_t recorder_id_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;  // guards bufs_ registration/enumeration
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;
  std::uint32_t next_tid_ = 0;
};

/// The instrumentation entry point: with tracing off and the profiler not
/// marking, this costs two relaxed loads and no work at all.  `name` must
/// outlive the span (string literals in practice) so the profiler can
/// reference it from samples.
[[nodiscard]] inline TraceRecorder::Span trace_span(TraceRecorder* rec,
                                                    const char* name) {
  if (rec != nullptr && rec->enabled()) return rec->span(name);
  if (!spanmark::enabled()) return TraceRecorder::Span{};
  return TraceRecorder::mark_span(name);
}

}  // namespace lbist
