#pragma once
// Low-overhead pipeline tracing: a thread-safe TraceRecorder with RAII
// Span scopes, exportable as JSONL or as Chrome `trace_event` JSON that
// chrome://tracing and Perfetto load directly (flamegraphs for free).
//
// Design constraints (see docs/observability.md):
//
//  * The disabled path costs one branch and zero allocations: trace_span()
//    checks the recorder pointer / enabled flag before constructing
//    anything, and a default-constructed Span is inert.  Instrumentation
//    can therefore stay compiled in everywhere, always.
//  * Spans record on the calling thread into a per-thread buffer (one
//    uncontended mutex each); buffers are merged and deterministically
//    sorted only at export time, so concurrent workers never serialize on
//    a shared event log.
//  * Timestamps come from std::chrono::steady_clock, as nanoseconds since
//    the recorder's construction, so traces are monotone and immune to
//    wall-clock steps.
//
// Typical use:
//
//   TraceRecorder rec;
//   rec.set_enabled(true);
//   {
//     auto s = trace_span(&rec, "binding");
//     if (s.active()) s.arg("binder", "bist");
//     ...
//   }
//   std::ofstream out("t.json");
//   rec.write_chrome(out);

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lbist {

/// One completed span, in recorder-relative time.
struct TraceEvent {
  std::string name;
  std::string args_json;   ///< "" or the members of a JSON object (no {})
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< recorder-assigned thread ordinal
};

/// Thread-safe span recorder.  References stay valid for the recorder's
/// lifetime; per-thread buffers outlive their threads (shared ownership),
/// so export after a worker pool retired is safe.
class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Runtime switch.  Spans opened while disabled record nothing even if
  /// the recorder is enabled before they close.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// RAII scope: records one TraceEvent on destruction (or finish()).
  /// Default-constructed / disabled spans are inert and allocation-free.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        finish();
        rec_ = other.rec_;
        name_ = std::move(other.name_);
        args_ = std::move(other.args_);
        start_ns_ = other.start_ns_;
        other.rec_ = nullptr;
      }
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { finish(); }

    /// True when this span will record (recorder enabled at open).  Use to
    /// guard argument construction that would itself allocate.
    [[nodiscard]] bool active() const { return rec_ != nullptr; }

    /// Attaches "key":"value" / "key":number to the span's args object.
    /// No-ops (and does not allocate) when inactive.
    void arg(std::string_view key, std::string_view value);
    void arg(std::string_view key, double value);
    void arg(std::string_view key, std::uint64_t value);
    void arg_bool(std::string_view key, bool value);

    /// Records the event now; subsequent finish()/destruction is a no-op.
    void finish();

   private:
    friend class TraceRecorder;
    Span(TraceRecorder* rec, const char* name);

    TraceRecorder* rec_ = nullptr;
    std::string name_;
    std::string args_;
    std::uint64_t start_ns_ = 0;
  };

  /// Opens a span.  When the recorder is disabled this returns an inert
  /// span without allocating.
  [[nodiscard]] Span span(const char* name) {
    if (!enabled()) return Span{};
    return Span{this, name};
  }

  /// All recorded events, merged across threads and sorted by
  /// (start, -duration, tid, name) — parents before their children, and
  /// deterministic for a given set of events.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Number of recorded events (cheaper than snapshot().size()).
  [[nodiscard]] std::size_t event_count() const;

  /// Discards every recorded event (buffers stay registered).
  void clear();

  /// One JSON object per line: {"name","tid","ts_us","dur_us"[,"args"]}.
  void write_jsonl(std::ostream& os) const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}) with complete ("X")
  /// events; loads in chrome://tracing and ui.perfetto.dev.
  void write_chrome(std::ostream& os) const;

 private:
  struct ThreadBuf;

  [[nodiscard]] std::uint64_t now_ns() const;
  ThreadBuf* local_buf();
  void record(std::string name, std::string args, std::uint64_t start_ns,
              std::uint64_t dur_ns);

  std::atomic<bool> enabled_{false};
  const std::uint64_t recorder_id_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;  // guards bufs_ registration/enumeration
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;
  std::uint32_t next_tid_ = 0;
};

/// The single-branch instrumentation entry point: null or disabled
/// recorders cost one predictable branch and no work at all.
[[nodiscard]] inline TraceRecorder::Span trace_span(TraceRecorder* rec,
                                                    const char* name) {
  if (rec == nullptr || !rec->enabled()) return TraceRecorder::Span{};
  return rec->span(name);
}

}  // namespace lbist
