#pragma once
// On-disk record format of the persistent synthesis cache (docs/
// diskcache.md).  The store is one append-only file, `cache.dat`:
//
//   [8-byte file magic "LBDC0001"]
//   record*:
//     u32  marker   0xB157CAFE        (resync / sanity)
//     u32  crc32    IEEE CRC-32 over key bytes + value bytes
//     u64  key_hash fnv1a64(key)      (fast index probe; informational)
//     u32  key_len
//     u32  value_len
//     key bytes, value bytes          (length-prefixed, no terminators)
//
// All integers little-endian.  A key appears once per write; updates
// append a fresh record and the in-memory index points at the latest one.
// Recovery scans from the header and keeps the longest valid prefix: the
// first truncated or crc-mismatching record — a crash mid-append — drops
// that record and everything after it (see DiskCache::Stats::dropped).

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lbist::diskcache {

inline constexpr char kFileMagic[8] = {'L', 'B', 'D', 'C', '0', '0', '0',
                                       '1'};
inline constexpr std::uint32_t kRecordMarker = 0xB157CAFEu;
/// marker + crc + key_hash + key_len + value_len
inline constexpr std::size_t kRecordHeaderBytes = 4 + 4 + 8 + 4 + 4;
/// Hard sanity bound on one record's key/value sizes: recovery treats
/// anything larger as corruption rather than attempting a huge read.
inline constexpr std::uint32_t kMaxFieldBytes = 1u << 28;

/// IEEE CRC-32 (the zlib/PNG polynomial), table-driven.
[[nodiscard]] std::uint32_t crc32(std::string_view data);
/// Incremental form: feed `crc` = 0 initially, chain the return value.
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc,
                                         std::string_view data);

}  // namespace lbist::diskcache
