#include "service/diskcache/format.hpp"

#include <array>

namespace lbist::diskcache {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? kPoly ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, std::string_view data) {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  const auto& t = table();
  for (const char ch : data) {
    c = t[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::string_view data) { return crc32_update(0, data); }

}  // namespace lbist::diskcache
