#pragma once
// Persistent content-addressed synthesis cache (L2).
//
// The in-memory LRU (service/cache.hpp) dies with the process; this store
// survives restarts.  It is keyed by the same canonical request strings,
// holds the compact-JSON result lines as values, and is designed for the
// sharded server: one DiskCache instance is shared by every shard (and
// every pool worker) in the process — reads take a shared lock and are
// served from a read-only mmap of the record file; appends and compaction
// take the write lock.  A second process opening the same directory for
// writing is refused via an advisory flock, so the single-writer
// append-only invariant holds across restarts.
//
// Size budget: when the record file grows past `budget_bytes`, compaction
// rewrites the live records (latest version of each key) into a fresh
// file and atomically renames it into place; if the live set alone still
// exceeds the budget, the oldest-inserted entries are evicted until it
// fits.  With `background_compaction` a housekeeping thread runs
// compaction off the request path; tests use compact_now() for
// determinism.  See docs/diskcache.md for format and crash-recovery
// guarantees.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>

namespace lbist {

struct DiskCacheOptions {
  std::string dir;  ///< created if missing; holds cache.dat (+ lock)
  std::uint64_t budget_bytes = 256ull << 20;  ///< compaction/eviction bound
  bool background_compaction = true;  ///< off: compaction only when asked
};

class DiskCache {
 public:
  /// Opens (creating if needed) `opts.dir/cache.dat`, recovers the valid
  /// record prefix and builds the key index.  Throws Error when the
  /// directory cannot be created, the lock is held by another process, or
  /// I/O fails.
  explicit DiskCache(DiskCacheOptions opts);
  ~DiskCache();

  DiskCache(const DiskCache&) = delete;
  DiskCache& operator=(const DiskCache&) = delete;

  /// Returns the latest value stored for `key`, or nullopt.
  [[nodiscard]] std::optional<std::string> get(std::string_view key);

  /// Appends (or supersedes) `key` -> `value`.  May wake the background
  /// compactor when the file outgrows the budget.
  void put(std::string_view key, std::string_view value);

  /// Synchronous compaction + eviction down to the size budget.
  void compact_now();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t puts = 0;
    std::uint64_t evictions = 0;    ///< live entries dropped for the budget
    std::uint64_t compactions = 0;
    std::uint64_t dropped = 0;      ///< records lost to recovery (crc/truncation)
    std::uint64_t recovered = 0;    ///< live entries loaded at open
    std::uint64_t entries = 0;      ///< current live keys
    std::uint64_t file_bytes = 0;   ///< record file size
    std::uint64_t live_bytes = 0;   ///< bytes a compaction would keep
    std::uint64_t budget_bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Absolute path of the record file (for tests and logs).
  [[nodiscard]] const std::string& path() const { return data_path_; }

 private:
  struct Entry {
    std::uint64_t record_off = 0;  ///< start of the record (marker)
    std::uint64_t value_off = 0;   ///< start of the value bytes
    std::uint32_t key_len = 0;
    std::uint32_t value_len = 0;
    [[nodiscard]] std::uint64_t record_bytes() const;
  };

  void open_and_recover();
  void remap_locked(std::uint64_t size);      // requires exclusive mu_
  void append_locked(std::string_view key, std::string_view value);
  void compact_locked();                      // requires exclusive mu_
  [[nodiscard]] std::string read_value_locked(const Entry& e);
  void compactor_loop();

  DiskCacheOptions opts_;
  std::string data_path_;

  mutable std::shared_mutex mu_;  // index + file + mapping
  int fd_ = -1;
  int lock_fd_ = -1;
  const char* map_ = nullptr;
  std::uint64_t map_len_ = 0;
  std::uint64_t file_bytes_ = 0;
  std::uint64_t live_bytes_ = 0;
  std::unordered_map<std::string, Entry> index_;

  // Counters kept atomic-free under mu_ except the read-path pair.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::uint64_t puts_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t recovered_ = 0;

  // Background compactor.
  std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  bool compact_wanted_ = false;
  bool stopping_ = false;
  std::thread compactor_;
};

}  // namespace lbist
