#include "service/diskcache/diskcache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <algorithm>
#include <vector>

#include "service/diskcache/format.hpp"
#include "support/hash.hpp"
#include "support/check.hpp"

namespace lbist {

namespace {

using diskcache::kFileMagic;
using diskcache::kMaxFieldBytes;
using diskcache::kRecordHeaderBytes;
using diskcache::kRecordMarker;

[[noreturn]] void fail_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

void write_all(int fd, std::string_view data, const std::string& what) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno(what);
    }
    done += static_cast<std::size_t>(n);
  }
}

std::string encode_record(std::string_view key, std::string_view value) {
  std::string rec;
  rec.reserve(kRecordHeaderBytes + key.size() + value.size());
  put_u32(&rec, kRecordMarker);
  std::uint32_t crc = diskcache::crc32_update(0, key);
  crc = diskcache::crc32_update(crc, value);
  put_u32(&rec, crc);
  put_u64(&rec, fnv1a64(key));
  put_u32(&rec, static_cast<std::uint32_t>(key.size()));
  put_u32(&rec, static_cast<std::uint32_t>(value.size()));
  rec.append(key);
  rec.append(value);
  return rec;
}

}  // namespace

std::uint64_t DiskCache::Entry::record_bytes() const {
  return kRecordHeaderBytes + static_cast<std::uint64_t>(key_len) +
         value_len;
}

DiskCache::DiskCache(DiskCacheOptions opts) : opts_(std::move(opts)) {
  LBIST_CHECK(!opts_.dir.empty(), "DiskCache needs a directory");
  if (::mkdir(opts_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    fail_errno("mkdir " + opts_.dir);
  }
  data_path_ = opts_.dir + "/cache.dat";

  // Advisory single-writer lock: a second process (or a second DiskCache
  // in this process) opening the same directory is an error, not silent
  // interleaved appends.
  const std::string lock_path = opts_.dir + "/cache.lock";
  lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) fail_errno("open " + lock_path);
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw Error("cache dir already in use (flock): " + opts_.dir);
  }

  try {
    open_and_recover();
  } catch (...) {
    if (fd_ >= 0) ::close(fd_);
    ::close(lock_fd_);
    throw;
  }

  if (opts_.background_compaction) {
    compactor_ = std::thread([this] { compactor_loop(); });
  }
}

DiskCache::~DiskCache() {
  {
    std::lock_guard<std::mutex> lock(compact_mu_);
    stopping_ = true;
  }
  compact_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (map_ != nullptr) ::munmap(const_cast<char*>(map_), map_len_);
  if (fd_ >= 0) ::close(fd_);
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

void DiskCache::open_and_recover() {
  fd_ = ::open(data_path_.c_str(), O_CREAT | O_RDWR | O_APPEND | O_CLOEXEC,
               0644);
  if (fd_ < 0) fail_errno("open " + data_path_);

  struct stat st{};
  if (::fstat(fd_, &st) != 0) fail_errno("fstat " + data_path_);
  std::uint64_t size = static_cast<std::uint64_t>(st.st_size);

  if (size < sizeof kFileMagic) {
    // Fresh (or hopelessly short) file: start over with a clean header.
    if (size != 0) ++dropped_;
    if (::ftruncate(fd_, 0) != 0) fail_errno("ftruncate " + data_path_);
    write_all(fd_, std::string_view(kFileMagic, sizeof kFileMagic),
              "write header " + data_path_);
    file_bytes_ = sizeof kFileMagic;
    live_bytes_ = 0;
    return;
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  remap_locked(size);
  if (std::memcmp(map_, kFileMagic, sizeof kFileMagic) != 0) {
    // Unrecognized header: refuse to guess at the contents.
    throw Error("not a lowbist disk cache (bad magic): " + data_path_);
  }

  // Scan the record sequence, keeping the longest valid prefix.  The
  // first truncated or corrupt record ends recovery: everything from its
  // offset on is discarded (append-only WAL prefix semantics).
  std::uint64_t off = sizeof kFileMagic;
  while (off + kRecordHeaderBytes <= size) {
    const char* p = map_ + off;
    if (get_u32(p) != kRecordMarker) break;
    const std::uint32_t want_crc = get_u32(p + 4);
    const std::uint32_t key_len = get_u32(p + 16);
    const std::uint32_t value_len = get_u32(p + 20);
    if (key_len == 0 || key_len > kMaxFieldBytes ||
        value_len > kMaxFieldBytes) {
      break;
    }
    const std::uint64_t total =
        kRecordHeaderBytes + static_cast<std::uint64_t>(key_len) + value_len;
    if (off + total > size) break;  // truncated tail record
    const std::string_view key(p + kRecordHeaderBytes, key_len);
    const std::string_view value(p + kRecordHeaderBytes + key_len,
                                 value_len);
    std::uint32_t crc = diskcache::crc32_update(0, key);
    crc = diskcache::crc32_update(crc, value);
    if (crc != want_crc) break;

    Entry e;
    e.record_off = off;
    e.value_off = off + kRecordHeaderBytes + key_len;
    e.key_len = key_len;
    e.value_len = value_len;
    auto it = index_.find(std::string(key));
    if (it != index_.end()) {
      live_bytes_ -= it->second.record_bytes();
      it->second = e;
    } else {
      index_.emplace(std::string(key), e);
    }
    live_bytes_ += e.record_bytes();
    off += total;
  }
  if (off < size) {
    // Drop the invalid suffix so future appends extend a valid prefix.
    ++dropped_;
    if (::ftruncate(fd_, static_cast<off_t>(off)) != 0) {
      fail_errno("ftruncate " + data_path_);
    }
  }
  file_bytes_ = off;
  recovered_ = index_.size();
}

void DiskCache::remap_locked(std::uint64_t size) {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), map_len_);
    map_ = nullptr;
    map_len_ = 0;
  }
  if (size == 0) return;
  void* m = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd_, 0);
  if (m == MAP_FAILED) fail_errno("mmap " + data_path_);
  map_ = static_cast<const char*>(m);
  map_len_ = size;
}

std::string DiskCache::read_value_locked(const Entry& e) {
  return std::string(map_ + e.value_off, e.value_len);
}

std::optional<std::string> DiskCache::get(std::string_view key) {
  const std::string k(key);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(k);
    if (it == index_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    const Entry& e = it->second;
    if (e.value_off + e.value_len <= map_len_) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return read_value_locked(e);
    }
  }
  // The record sits past the current mapping (appended since the last
  // remap): retake the lock exclusively, extend the mapping, re-read.
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(k);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it->second.value_off + it->second.value_len > map_len_) {
    remap_locked(file_bytes_);
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return read_value_locked(it->second);
}

void DiskCache::append_locked(std::string_view key, std::string_view value) {
  const std::string rec = encode_record(key, value);
  write_all(fd_, rec, "append " + data_path_);
  Entry e;
  e.record_off = file_bytes_;
  e.value_off = file_bytes_ + kRecordHeaderBytes + key.size();
  e.key_len = static_cast<std::uint32_t>(key.size());
  e.value_len = static_cast<std::uint32_t>(value.size());
  auto it = index_.find(std::string(key));
  if (it != index_.end()) {
    live_bytes_ -= it->second.record_bytes();
    it->second = e;
  } else {
    index_.emplace(std::string(key), e);
  }
  live_bytes_ += e.record_bytes();
  file_bytes_ += rec.size();
  ++puts_;
}

void DiskCache::put(std::string_view key, std::string_view value) {
  if (key.empty() || key.size() > kMaxFieldBytes ||
      value.size() > kMaxFieldBytes) {
    return;  // unstorable; the L1 cache still holds it for this process
  }
  bool want_compaction = false;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    append_locked(key, value);
    want_compaction = file_bytes_ > opts_.budget_bytes;
  }
  if (want_compaction && opts_.background_compaction) {
    {
      std::lock_guard<std::mutex> lock(compact_mu_);
      compact_wanted_ = true;
    }
    compact_cv_.notify_one();
  }
}

void DiskCache::compact_locked() {
  // Live records, oldest append first, so eviction (when even the live
  // set exceeds the budget) drops the oldest-inserted entries.
  std::vector<std::pair<std::string, Entry>> live(index_.begin(),
                                                  index_.end());
  std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
    return a.second.record_off < b.second.record_off;
  });
  remap_locked(file_bytes_);  // ensure every live record is readable

  std::size_t first = 0;
  std::uint64_t kept = live_bytes_;
  while (first < live.size() &&
         kept + sizeof kFileMagic > opts_.budget_bytes) {
    kept -= live[first].second.record_bytes();
    ++evictions_;
    ++first;
  }

  const std::string tmp_path = data_path_ + ".compact";
  const int tmp_fd =
      ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
             0644);
  if (tmp_fd < 0) fail_errno("open " + tmp_path);
  try {
    write_all(tmp_fd, std::string_view(kFileMagic, sizeof kFileMagic),
              "write header " + tmp_path);
    for (std::size_t i = first; i < live.size(); ++i) {
      const Entry& e = live[i].second;
      const std::string_view value(map_ + e.value_off, e.value_len);
      write_all(tmp_fd, encode_record(live[i].first, value),
                "append " + tmp_path);
    }
    if (::fsync(tmp_fd) != 0) fail_errno("fsync " + tmp_path);
  } catch (...) {
    ::close(tmp_fd);
    ::unlink(tmp_path.c_str());
    throw;
  }
  ::close(tmp_fd);
  if (::rename(tmp_path.c_str(), data_path_.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    fail_errno("rename " + tmp_path);
  }

  // Swap in the compacted file and rebuild state against it.
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), map_len_);
    map_ = nullptr;
    map_len_ = 0;
  }
  ::close(fd_);
  fd_ = ::open(data_path_.c_str(), O_RDWR | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) fail_errno("reopen " + data_path_);

  index_.clear();
  std::uint64_t off = sizeof kFileMagic;
  live_bytes_ = 0;
  for (std::size_t i = first; i < live.size(); ++i) {
    Entry e = live[i].second;
    e.record_off = off;
    e.value_off = off + kRecordHeaderBytes + e.key_len;
    index_.emplace(live[i].first, e);
    live_bytes_ += e.record_bytes();
    off += e.record_bytes();
  }
  file_bytes_ = off;
  remap_locked(file_bytes_);
  ++compactions_;
}

void DiskCache::compact_now() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  compact_locked();
}

void DiskCache::compactor_loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(compact_mu_);
      compact_cv_.wait(lock,
                       [this] { return compact_wanted_ || stopping_; });
      if (stopping_) return;
      compact_wanted_ = false;
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (file_bytes_ > opts_.budget_bytes) compact_locked();
  }
}

DiskCache::Stats DiskCache::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.puts = puts_;
  s.evictions = evictions_;
  s.compactions = compactions_;
  s.dropped = dropped_;
  s.recovered = recovered_;
  s.entries = index_.size();
  s.file_bytes = file_bytes_;
  s.live_bytes = live_bytes_;
  s.budget_bytes = opts_.budget_bytes;
  return s;
}

}  // namespace lbist
