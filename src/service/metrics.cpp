#include "service/metrics.hpp"

#include <chrono>

namespace lbist {

namespace {

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// splitmix64: tiny, stateless-per-step PRNG; good enough for reservoir
// slot selection and fully deterministic for a given record() sequence.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Histogram::record(double sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(sample);
  } else {
    // Algorithm R: replace a uniformly random slot with probability
    // capacity/count, keeping the reservoir a uniform sample of the stream.
    const std::uint64_t slot = splitmix64(rng_state_) % count_;
    if (slot < capacity_) reservoir_[slot] = sample;
  }
}

Histogram::Summary Histogram::summarize() const {
  Summary s;
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.count = count_;
    if (count_ == 0) return s;
    s.min = min_;
    s.max = max_;
    s.mean = sum_ / static_cast<double>(count_);
    samples = reservoir_;
  }
  std::sort(samples.begin(), samples.end());
  s.p50 = percentile(samples, 0.50);
  s.p95 = percentile(samples, 0.95);
  s.p99 = percentile(samples, 0.99);
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Json MetricsRegistry::to_json() const {
  // Collect every instrument's value in one tight pass under the registry
  // lock before any JSON is built, so a dump never mixes a counter read at
  // time T with a histogram summarized milliseconds later (writers kept
  // mutating between the per-section loops of the old implementation).
  std::vector<std::pair<std::string, std::uint64_t>> counter_vals;
  std::vector<std::pair<std::string, double>> gauge_vals;
  std::vector<std::pair<std::string, Histogram::Summary>> hist_vals;
  double snapshot_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counter_vals.reserve(counters_.size());
    gauge_vals.reserve(gauges_.size());
    hist_vals.reserve(histograms_.size());
    snapshot_ms = static_cast<double>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    for (const auto& [name, c] : counters_) {
      counter_vals.emplace_back(name, c->value());
    }
    for (const auto& [name, g] : gauges_) {
      gauge_vals.emplace_back(name, g->value());
    }
    for (const auto& [name, h] : histograms_) {
      hist_vals.emplace_back(name, h->summarize());
    }
  }

  Json counters = Json::object();
  for (const auto& [name, v] : counter_vals) {
    counters.set(name, Json::number(static_cast<double>(v)));
  }
  Json gauges = Json::object();
  for (const auto& [name, v] : gauge_vals) {
    gauges.set(name, Json::number(v));
  }
  Json histograms = Json::object();
  for (const auto& [name, s] : hist_vals) {
    histograms.set(name,
                   Json::object()
                       .set("count", Json::number(static_cast<double>(s.count)))
                       .set("min", Json::number(s.min))
                       .set("max", Json::number(s.max))
                       .set("mean", Json::number(s.mean))
                       .set("p50", Json::number(s.p50))
                       .set("p95", Json::number(s.p95))
                       .set("p99", Json::number(s.p99)));
  }
  return Json::object()
      .set("snapshot_unix_ms", Json::number(snapshot_ms))
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("histograms", std::move(histograms));
}

}  // namespace lbist
