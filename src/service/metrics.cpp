#include "service/metrics.hpp"

namespace lbist {

namespace {

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

Histogram::Summary Histogram::summarize() const {
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    samples = samples_;
  }
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = percentile(samples, 0.50);
  s.p95 = percentile(samples, 0.95);
  s.p99 = percentile(samples, 0.99);
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) {
    counters.set(name, Json::number(static_cast<double>(c->value())));
  }
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) {
    gauges.set(name, Json::number(g->value()));
  }
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Summary s = h->summarize();
    histograms.set(name,
                   Json::object()
                       .set("count", Json::number(static_cast<double>(s.count)))
                       .set("min", Json::number(s.min))
                       .set("max", Json::number(s.max))
                       .set("mean", Json::number(s.mean))
                       .set("p50", Json::number(s.p50))
                       .set("p95", Json::number(s.p95))
                       .set("p99", Json::number(s.p99)));
  }
  return Json::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("histograms", std::move(histograms));
}

}  // namespace lbist
