#pragma once
// Service metrics: named counters, gauges and latency histograms, all
// thread-safe, dumpable as one JSON object.  The batch runner records synth
// wall time, cache hit/miss counts and queue depth here; bench_service and
// the CLI's --metrics flag dump the registry for offline analysis.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace lbist {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. current queue depth).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Sample distribution with p50/p95/p99/max summaries.
///
/// Memory is bounded: the histogram keeps a fixed-size reservoir
/// (kDefaultReservoir samples, Vitter's Algorithm R with a deterministic
/// splitmix64 stream so runs are reproducible).  count/min/max/mean stay
/// exact regardless of volume — they are maintained as running aggregates.
/// Percentiles are exact until the reservoir fills; past that point they
/// are unbiased estimates over a uniform sample of the stream.  Long-lived
/// deployments (the synthesis server) previously grew without bound here;
/// the reservoir caps a histogram at ~32 KiB forever.
class Histogram {
 public:
  static constexpr std::size_t kDefaultReservoir = 4096;

  explicit Histogram(std::size_t reservoir_capacity = kDefaultReservoir)
      : capacity_(std::max<std::size_t>(1, reservoir_capacity)) {}

  void record(double sample);

  struct Summary {
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  [[nodiscard]] Summary summarize() const;

  /// Number of samples currently held (== min(count, capacity)).
  [[nodiscard]] std::size_t reservoir_size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reservoir_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<double> reservoir_;
  std::uint64_t count_ = 0;  // total samples ever recorded
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ULL;  // deterministic stream
};

/// Owns named metrics; references returned by counter()/gauge()/histogram()
/// stay valid for the registry's lifetime (instruments are never removed).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"snapshot_unix_ms": ..., "counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, min, max, mean, p50, p95, p99}}} — keys
  /// sorted for stable output.  All instruments are read in one pass under
  /// the registry lock so the dump is a single consistent snapshot
  /// (instrument values cannot move between the counters section and the
  /// histograms section of the same dump), and snapshot_unix_ms records
  /// when that pass happened.
  [[nodiscard]] Json to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace lbist
