#pragma once
// Service metrics: named counters, gauges and latency histograms, all
// thread-safe, dumpable as one JSON object.  The batch runner records synth
// wall time, cache hit/miss counts and queue depth here; bench_service and
// the CLI's --metrics flag dump the registry for offline analysis.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace lbist {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. current queue depth).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Sample distribution with p50/p95/p99/max summaries (exact — samples are
/// retained; service batches are at most thousands of jobs, so the memory
/// cost is trivial next to one synthesis run).
class Histogram {
 public:
  void record(double sample) {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(sample);
  }

  struct Summary {
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  [[nodiscard]] Summary summarize() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
};

/// Owns named metrics; references returned by counter()/gauge()/histogram()
/// stay valid for the registry's lifetime (instruments are never removed).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, min,
  /// max, mean, p50, p95, p99}}} — keys sorted for stable output.
  [[nodiscard]] Json to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace lbist
