#include "service/thread_pool.hpp"

namespace lbist {

namespace {

std::mutex& hook_mutex() {
  static std::mutex mu;
  return mu;
}

std::function<void()>& hook_slot() {
  static std::function<void()> hook;
  return hook;
}

}  // namespace

void ThreadPool::set_thread_start_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hook_mutex());
  hook_slot() = std::move(hook);
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::function<void()> on_start;
  {
    std::lock_guard<std::mutex> lock(hook_mutex());
    on_start = hook_slot();
  }
  if (on_start) on_start();
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

int ThreadPool::resolve_jobs(int jobs) {
  if (jobs >= 1) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace lbist
