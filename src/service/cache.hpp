#pragma once
// Synthesis result cache: a thread-safe bounded LRU keyed by a stable
// canonical rendering of the synthesis request (DFG + schedule + module
// spec + options).  Batch manifests over the design space repeat points —
// the same benchmark under the same spec and binder — and related datapath
// work (graph-isomorphism synthesis reuse) shows recognizing repeated
// structure pays; the cache turns those repeats into O(1) lookups.
//
// Keys are the exact canonical strings (no collision risk); fnv1a64() gives
// a short stable fingerprint of a key for logs and reports.

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/hash.hpp"
#include "support/json.hpp"

namespace lbist {

class Dfg;
class DiskCache;  // service/diskcache/diskcache.hpp
class Schedule;
struct ModuleProto;
struct SynthesisOptions;

/// Canonical cache key of one synthesis request: the printed scheduled DFG,
/// the module spec, every SynthesisOptions knob (binder, BIST-binder flags,
/// interconnect, lifetime, full area model) and the BIST pattern budget.
/// Two requests get equal keys iff the pipeline would produce identical
/// results for them.
[[nodiscard]] std::string synthesis_cache_key(
    const Dfg& dfg, const Schedule& sched,
    const std::vector<ModuleProto>& protos, const SynthesisOptions& opts,
    int patterns);

/// Canonical cache key of one remote pass execution (the server's
/// {"type":"pass"} request): the pass name plus the posted IR snapshot
/// re-rendered compactly with the informational "writer" record dropped —
/// clients on different builds posting the same IR must share an entry.
[[nodiscard]] std::string pass_cache_key(const std::string& pass_name,
                                         const Json& snapshot);

/// Thread-safe bounded LRU map with hit/miss/eviction accounting.
template <class Value>
class LruCache {
 public:
  /// `capacity` = max retained entries (0 is clamped to 1).
  explicit LruCache(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Returns the cached value and marks it most-recently-used.
  [[nodiscard]] std::optional<Value> get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or refreshes; evicts the least-recently-used entry when full.
  void put(const std::string& key, Value v) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(v);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(v));
    index_[key] = order_.begin();
    if (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };
  [[nodiscard]] Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return Stats{hits_, misses_, evictions_, order_.size(), capacity_};
  }

 private:
  mutable std::mutex mutex_;
  std::list<std::pair<std::string, Value>> order_;  // front = most recent
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, Value>>::iterator>
      index_;
  std::size_t capacity_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// The batch service and server cache the deterministic per-job result
/// object in a bounded in-memory LRU (L1).  Optionally a persistent
/// content-addressed DiskCache (L2, shared across server shards and
/// surviving restarts — see docs/diskcache.md) sits behind it: an L1 miss
/// falls through to disk, and the recovered value is promoted back into
/// L1.  Values cross the L2 boundary as compact JSON text, so entries are
/// writer-independent and replayable across builds.
class SynthesisCache : public LruCache<Json> {
 public:
  explicit SynthesisCache(std::size_t capacity, DiskCache* disk = nullptr)
      : LruCache<Json>(capacity), disk_(disk) {}

  /// Attaches (or detaches, with nullptr) the persistent L2.  Borrowed;
  /// must outlive the cache's last get/put.
  void attach_disk(DiskCache* disk) { disk_ = disk; }
  [[nodiscard]] DiskCache* disk() const { return disk_; }

  /// L1 lookup, falling through to the persistent L2 on miss.
  [[nodiscard]] std::optional<Json> get(const std::string& key);

  /// Inserts into L1 and appends to the persistent L2 (when attached).
  void put(const std::string& key, Json v);

  /// Lookups answered by the persistent layer (subset of L1 misses).
  [[nodiscard]] std::uint64_t persistent_hits() const {
    return persistent_hits_.load(std::memory_order_relaxed);
  }

 private:
  DiskCache* disk_ = nullptr;
  std::atomic<std::uint64_t> persistent_hits_{0};
};

}  // namespace lbist
