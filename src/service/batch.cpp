#include "service/batch.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>

#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/parse.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"
#include "sched/list_sched.hpp"
#include "service/thread_pool.hpp"

namespace lbist {

namespace {

BinderKind binder_from_name(const std::string& name) {
  if (name == "trad") return BinderKind::Traditional;
  if (name == "bist") return BinderKind::BistAware;
  if (name == "ralloc") return BinderKind::Ralloc;
  if (name == "syntest") return BinderKind::Syntest;
  if (name == "clique") return BinderKind::CliquePartition;
  if (name == "loop") return BinderKind::LoopAware;
  throw Error("unknown binder: " + name);
}

Benchmark builtin_benchmark(const std::string& name) {
  if (name == "ex1") return make_ex1();
  if (name == "ex2") return make_ex2();
  if (name == "tseng" || name == "tseng1") return make_tseng1();
  if (name == "tseng2") return make_tseng2();
  if (name == "paulin") return make_paulin();
  if (name == "paulin-loop") return make_paulin_loop();
  throw Error("unknown built-in benchmark: " + name);
}

/// Loads the job's design; fills `spec_hint` with the benchmark's pinned
/// module spec when the job names a built-in.
ParsedDfg load_job_design(const BatchJob& job, std::string* spec_hint) {
  if (!job.bench.empty()) {
    Benchmark b = builtin_benchmark(job.bench);
    *spec_hint = b.module_spec;
    return std::move(b.design);
  }
  if (!job.design_path.empty()) {
    std::ifstream in(job.design_path);
    if (!in) throw Error("cannot open file: " + job.design_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_dfg(buf.str());
  }
  return parse_dfg(job.design_text);
}

std::string hex64(std::uint64_t h) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Synthesizes one job (through the cache) and returns the deterministic
/// result object.  Throws on any failure.  `*cache_hit` reports whether the
/// cache served the request (a hit runs no synthesis, so no phase spans or
/// decision events are produced for it).
Json synthesize_job(const BatchJob& job, SynthesisCache& cache,
                    MetricsRegistry& metrics, TraceRecorder* trace,
                    AlgorithmEvents* events, bool* cache_hit) {
  std::string spec_hint;
  ParsedDfg design = load_job_design(job, &spec_hint);
  const Schedule sched = design.schedule.has_value()
                             ? *design.schedule
                             : list_schedule(design.dfg, ResourceLimits{});
  const std::string spec = !job.modules.empty() ? job.modules : spec_hint;
  const auto protos = spec.empty() ? minimal_module_spec(design.dfg, sched)
                                   : parse_module_spec(spec);

  SynthesisOptions opts;
  opts.binder = binder_from_name(job.binder);
  opts.area.bit_width = job.width;
  opts.trace = trace;
  opts.events = events;

  const std::string key =
      synthesis_cache_key(design.dfg, sched, protos, opts, job.patterns);
  if (auto cached = cache.get(key)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return *cached;
  }
  if (cache_hit != nullptr) *cache_hit = false;

  const auto t0 = std::chrono::steady_clock::now();
  SynthesisResult r = Synthesizer(opts).run(design.dfg, sched, protos);
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  metrics.histogram("synth_ms").record(ms);

  std::string spec_label;
  for (const ModuleProto& p : protos) {
    if (!spec_label.empty()) spec_label += ',';
    spec_label += p.label();
  }
  Json result = Json::object()
                    .set("binder", Json::string(job.binder))
                    .set("modules", Json::string(spec_label))
                    .set("latency", Json::number(sched.num_steps()))
                    .set("registers", Json::number(r.num_registers()))
                    .set("muxes", Json::number(r.num_mux()))
                    .set("functional_area", Json::number(r.functional_area))
                    .set("bist_extra", Json::number(r.bist.extra_area))
                    .set("overhead_percent", Json::number(r.overhead_percent))
                    .set("bist", Json::string(r.bist.counts().to_string()))
                    .set("width", Json::number(job.width))
                    .set("patterns", Json::number(job.patterns))
                    .set("key", Json::string(hex64(fnv1a64(key))));
  cache.put(key, result);
  return result;
}

}  // namespace

std::string display_name(const ManifestEntry& entry, std::size_t index) {
  if (!entry.job.name.empty()) return entry.job.name;
  if (!entry.job.bench.empty()) return entry.job.bench;
  if (!entry.job.design_path.empty()) return entry.job.design_path;
  return "job" + std::to_string(index);
}

ManifestEntry decode_manifest_line(int line_no, const std::string& line) {
  ManifestEntry entry;
  entry.line = line_no;
  Json doc;
  try {
    doc = Json::parse(line);
    if (!doc.is_object()) throw Error("manifest line is not a JSON object");
    for (const std::string& k : doc.keys()) {
      const Json& v = doc.at(k);
      if (k == "name") {
        entry.job.name = v.as_string();
      } else if (k == "design") {
        entry.job.design_path = v.as_string();
      } else if (k == "bench") {
        entry.job.bench = v.as_string();
      } else if (k == "text") {
        entry.job.design_text = v.as_string();
      } else if (k == "modules") {
        entry.job.modules = v.as_string();
      } else if (k == "binder") {
        entry.job.binder = v.as_string();
      } else if (k == "width") {
        entry.job.width = v.as_int();
      } else if (k == "patterns") {
        entry.job.patterns = v.as_int();
      } else {
        throw Error("unknown manifest field \"" + k + "\"");
      }
    }
    const int sources = (entry.job.design_path.empty() ? 0 : 1) +
                        (entry.job.bench.empty() ? 0 : 1) +
                        (entry.job.design_text.empty() ? 0 : 1);
    if (sources != 1) {
      throw Error(
          "job needs exactly one design source (\"design\", \"bench\" or "
          "\"text\")");
    }
    if (entry.job.width < 1) throw Error("\"width\" must be >= 1");
    if (entry.job.patterns < 1) throw Error("\"patterns\" must be >= 1");
  } catch (const std::exception& e) {
    entry.error = "manifest line " + std::to_string(line_no) + ": " + e.what();
  }
  return entry;
}

JobOutcome run_entry(const ManifestEntry& entry, std::size_t index,
                     SynthesisCache& cache, MetricsRegistry& metrics,
                     TraceRecorder* trace, AlgorithmEvents* events) {
  const auto t0 = std::chrono::steady_clock::now();
  auto span = trace_span(trace, "job");
  JobOutcome outcome;
  outcome.line = Json::object()
                     .set("job", Json::number(index))
                     .set("name", Json::string(display_name(entry, index)));
  outcome.ok = true;
  bool cache_hit = false;
  if (!entry.ok()) {
    outcome.line.set("status", Json::string("error"))
        .set("error", Json::string(entry.error));
    outcome.ok = false;
  } else {
    try {
      Json result =
          synthesize_job(entry.job, cache, metrics, trace, events, &cache_hit);
      outcome.line.set("status", Json::string("ok"))
          .set("result", std::move(result));
    } catch (const std::exception& e) {
      outcome.line.set("status", Json::string("error"))
          .set("error", Json::string(e.what()));
      outcome.ok = false;
    }
  }
  if (span.active()) {
    span.arg("name", display_name(entry, index));
    span.arg("job", static_cast<std::uint64_t>(index));
    span.arg_bool("cache_hit", cache_hit);
    span.arg_bool("ok", outcome.ok);
  }
  metrics.histogram("job_ms").record(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count());
  metrics.counter(outcome.ok ? "jobs_ok" : "jobs_error").inc();
  return outcome;
}

std::vector<ManifestEntry> parse_manifest(std::string_view text) {
  std::vector<ManifestEntry> entries;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string line(
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos));
    ++line_no;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    entries.push_back(decode_manifest_line(line_no, line));
  }
  return entries;
}

BatchSummary run_batch(const std::vector<ManifestEntry>& entries,
                       const BatchOptions& opts, std::ostream& out) {
  MetricsRegistry local_metrics;
  MetricsRegistry& metrics =
      opts.metrics != nullptr ? *opts.metrics : local_metrics;
  SynthesisCache local_cache(opts.cache_capacity);
  SynthesisCache& cache = opts.cache != nullptr ? *opts.cache : local_cache;
  const SynthesisCache::Stats base = cache.stats();

  ThreadPool pool(ThreadPool::resolve_jobs(opts.jobs));
  std::mutex out_mutex;
  std::vector<std::future<bool>> futures;
  futures.reserve(entries.size());

  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ManifestEntry& entry = entries[i];
    futures.push_back(pool.submit([&, i]() -> bool {
      metrics.gauge("queue_depth")
          .set(static_cast<double>(pool.queue_depth()));
      JobOutcome outcome =
          run_entry(entry, i, cache, metrics, opts.trace, opts.events);
      {
        std::lock_guard<std::mutex> lock(out_mutex);
        out << outcome.line.dump_compact() << "\n";
      }
      return outcome.ok;
    }));
  }

  BatchSummary summary;
  summary.total = static_cast<int>(entries.size());
  for (auto& f : futures) {
    if (f.get()) {
      ++summary.ok;
    } else {
      ++summary.errors;
    }
  }

  const SynthesisCache::Stats cs = cache.stats();
  summary.cache_hits = cs.hits - base.hits;
  summary.cache_misses = cs.misses - base.misses;
  metrics.counter("cache_hits").inc(summary.cache_hits);
  metrics.counter("cache_misses").inc(summary.cache_misses);
  metrics.gauge("cache_size").set(static_cast<double>(cs.size));
  return summary;
}

}  // namespace lbist
