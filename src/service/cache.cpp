#include "service/cache.hpp"

#include <cstdio>
#include <sstream>

#include "core/synthesizer.hpp"
#include "dfg/parse.hpp"
#include "service/diskcache/diskcache.hpp"

namespace lbist {

namespace {

void append_double(std::string& out, double d) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
  out += ';';
}

}  // namespace

std::string synthesis_cache_key(const Dfg& dfg, const Schedule& sched,
                                const std::vector<ModuleProto>& protos,
                                const SynthesisOptions& opts, int patterns) {
  std::string key = print_dfg(dfg, &sched);
  key += "|spec=";
  for (const ModuleProto& p : protos) {
    key += p.label();
    key += ';';
  }
  key += "|binder=" + std::to_string(static_cast<int>(opts.binder));
  key += "|bb=";
  key += opts.bist_binder.sd_ordered_pves ? '1' : '0';
  key += opts.bist_binder.delta_sd_rule ? '1' : '0';
  key += opts.bist_binder.case_overrides ? '1' : '0';
  key += opts.bist_binder.avoid_cbilbo ? '1' : '0';
  key += "|ic=";
  key += opts.interconnect.weight_by_sd ? '1' : '0';
  key += "|lt=";
  key += opts.lifetime.hold_outputs_to_end ? '1' : '0';
  key += "|area=";
  key += std::to_string(opts.area.bit_width) + ";";
  append_double(key, opts.area.reg_gates_per_bit);
  append_double(key, opts.area.mux_gates_per_bit);
  append_double(key, opts.area.tpg_extra_per_bit);
  append_double(key, opts.area.sa_extra_per_bit);
  append_double(key, opts.area.bilbo_extra_per_bit);
  append_double(key, opts.area.cbilbo_extra_per_bit);
  append_double(key, opts.area.add_gates_per_bit);
  append_double(key, opts.area.sub_gates_per_bit);
  append_double(key, opts.area.logic_gates_per_bit);
  append_double(key, opts.area.cmp_gates_per_bit);
  append_double(key, opts.area.mul_gates_per_bit2);
  append_double(key, opts.area.div_gates_per_bit2);
  append_double(key, opts.area.alu_extra_kind_factor);
  key += "|patterns=" + std::to_string(patterns);
  // opts.trace / opts.events are deliberately NOT part of the key: they
  // change what gets recorded about a run, never what is synthesized, so a
  // traced request may be served from a cache entry produced without
  // tracing (and vice versa).
  return key;
}

std::optional<Json> SynthesisCache::get(const std::string& key) {
  if (auto hit = LruCache<Json>::get(key)) return hit;
  if (disk_ == nullptr) return std::nullopt;
  auto stored = disk_->get(key);
  if (!stored.has_value()) return std::nullopt;
  Json value;
  try {
    value = Json::parse(*stored);
  } catch (const std::exception&) {
    // A record that stopped parsing (format drift across versions) is a
    // miss, not an error; the fresh result will overwrite it.
    return std::nullopt;
  }
  persistent_hits_.fetch_add(1, std::memory_order_relaxed);
  LruCache<Json>::put(key, value);
  return value;
}

void SynthesisCache::put(const std::string& key, Json v) {
  if (disk_ != nullptr) disk_->put(key, v.dump_compact());
  LruCache<Json>::put(key, std::move(v));
}

std::string pass_cache_key(const std::string& pass_name,
                           const Json& snapshot) {
  Json canonical = Json::object();
  for (const std::string& key : snapshot.keys()) {
    if (key == "writer") continue;
    canonical.set(key, snapshot.at(key));
  }
  return "pass:" + pass_name + ":" + canonical.dump_compact();
}

}  // namespace lbist
