#pragma once
// Concurrent batch-synthesis runner.
//
// Input is a JSONL job manifest: one JSON object per line describing one
// synthesis job.  Fields (all but the design source optional):
//
//   {"design": "path/to.dfg"}            file with the textual DFG format
//   {"bench": "paulin"}                  built-in benchmark by name
//   {"text": "dfg x\ninput a b\n..."}    inline DFG text
//   "name"     display name  (default: design path / bench / "job<N>")
//   "modules"  module spec, e.g. "1+,2*"  (default: minimal for schedule)
//   "binder"   trad|bist|ralloc|syntest|clique|loop  (default "bist")
//   "width"    datapath bit width for the area model  (default 4)
//   "patterns" BIST pattern budget recorded with the job  (default 250)
//
// Unscheduled designs are list-scheduled with unlimited resources.  Jobs
// fan out over a ThreadPool; one JSON result line per job streams to the
// output in completion order, tagged with the job index so consumers can
// reorder.  A failing job yields a status:"error" line and never kills the
// batch.  Identical jobs (same canonical synthesis request) are served from
// the LRU synthesis cache.  Per-job result content is deterministic: wall
// times and cache behaviour go to the MetricsRegistry, not the result
// lines, so `-j N` output equals `-j 1` output job-for-job.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "service/cache.hpp"
#include "service/metrics.hpp"

namespace lbist {

class TraceRecorder;   // obs/trace.hpp
class AlgorithmEvents;  // obs/events.hpp

/// One synthesis job, decoded from a manifest line.
struct BatchJob {
  std::string name;
  std::string design_path;  ///< file containing DFG text, or
  std::string bench;        ///< built-in benchmark name, or
  std::string design_text;  ///< inline DFG text (exactly one of the three)
  std::string modules;      ///< module spec; empty = minimal for schedule
  std::string binder = "bist";
  int width = 4;
  int patterns = 250;
};

/// A manifest line: either a decoded job or a parse/validation error
/// (carrying the 1-based manifest line number).
struct ManifestEntry {
  int line = 0;
  BatchJob job;
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Decodes a JSONL manifest.  Blank lines and lines starting with '#' are
/// skipped.  Malformed lines become error entries (they will produce
/// status:"error" result lines), so one bad line never kills the batch.
[[nodiscard]] std::vector<ManifestEntry> parse_manifest(std::string_view text);

/// Decodes one manifest line into an entry (never throws; malformed input
/// becomes an error entry carrying `line_no`).  The server decodes request
/// lines through this so live connections and `lowbist batch` agree
/// byte-for-byte on every error message.
[[nodiscard]] ManifestEntry decode_manifest_line(int line_no,
                                                 const std::string& line);

/// The "name" field a result line carries for `entry` at manifest position
/// `index`: the job's explicit name, else its bench / design path, else
/// "job<index>".
[[nodiscard]] std::string display_name(const ManifestEntry& entry,
                                       std::size_t index);

/// Batch execution knobs.
struct BatchOptions {
  int jobs = 1;                     ///< worker threads; < 1 = hardware count
  std::size_t cache_capacity = 256; ///< LRU entries (when no external cache)
  MetricsRegistry* metrics = nullptr;  ///< optional external registry
  SynthesisCache* cache = nullptr;     ///< optional external (pre-warmed) cache
  TraceRecorder* trace = nullptr;      ///< per-job + per-phase spans
  AlgorithmEvents* events = nullptr;   ///< paper-level decision events
};

/// One executed request: the complete result line plus its verdict.
struct JobOutcome {
  Json line;        ///< {"job": index, "name": ..., "status": ..., ...}
  bool ok = false;  ///< status == "ok"
};

/// Executes one entry as job `index` — synthesis through the cache, with
/// `job_ms` and `jobs_ok`/`jobs_error` recorded in `metrics`.  Never
/// throws: failures become deterministic status:"error" lines.  Both the
/// batch runner and the server route every request through here, so their
/// result lines are identical for identical requests.
/// Optional tracing: a non-null `trace` wraps the request in a "job" span
/// (annotated with the display name and whether the cache served it) with
/// the pipeline's phase spans nested inside; `events` receives the binder /
/// interconnect / BIST decision stream of cache-miss synthesis runs.
[[nodiscard]] JobOutcome run_entry(const ManifestEntry& entry,
                                   std::size_t index, SynthesisCache& cache,
                                   MetricsRegistry& metrics,
                                   TraceRecorder* trace = nullptr,
                                   AlgorithmEvents* events = nullptr);

/// Batch outcome tallies (cache numbers also land in the metrics registry).
struct BatchSummary {
  int total = 0;
  int ok = 0;
  int errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// Runs every entry over the pool, streaming one compact JSON line per job
/// to `out` in completion order.
BatchSummary run_batch(const std::vector<ManifestEntry>& entries,
                       const BatchOptions& opts, std::ostream& out);

}  // namespace lbist
