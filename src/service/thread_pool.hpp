#pragma once
// Fixed-size thread pool with a shared work queue and future-based results.
//
// The batch-synthesis service and the parallel explorer both fan work out
// over this pool: submit() enqueues a task and returns a std::future for
// its result; exceptions thrown by the task propagate through the future.
// Workers pull from one shared queue, so the pool load-balances uneven job
// sizes (synthesis time varies widely across designs) for free.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace lbist {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (values < 1 are clamped to 1; use
  /// resolve_jobs() to map a user-facing `-j 0` to the hardware count).
  explicit ThreadPool(int num_threads);

  /// Drains nothing: outstanding tasks are finished, queued tasks are
  /// still executed, then the workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a nullary callable; the returned future yields its result
  /// (or rethrows its exception).
  template <class F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Number of worker threads.
  [[nodiscard]] int size() const {
    return static_cast<int>(workers_.size());
  }

  /// Tasks enqueued but not yet picked up by a worker.
  [[nodiscard]] std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// Maps a user-facing jobs knob to a worker count: values < 1 mean "use
  /// the hardware concurrency" (at least 1).
  [[nodiscard]] static int resolve_jobs(int jobs);

  /// Process-wide hook every worker runs once as it starts, before taking
  /// work.  The CLI and server use it to register workers with the
  /// sampling profiler (src/obs/profiler.hpp) — injected as a callback so
  /// this base library keeps zero obs dependency.  Set it before
  /// constructing pools; pass nullptr to clear.
  static void set_thread_start_hook(std::function<void()> hook);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace lbist
