#pragma once
// RALLOC-style baseline (Avra, ISCAS'91): register allocation that
// minimizes the number of *self-adjacent* registers, under the assumption
// that every self-adjacent register must become a CBILBO and every other
// register touching a module becomes a BILBO.
//
// Avra's tool is not available; this reimplements the published *style*
// (see DESIGN.md §2): reverse-PVES coloring where each vertex prefers a
// feasible register that creates no new self-adjacency, opening a fresh
// register (register count may exceed the minimum, as in Avra's published
// HAL result) when every feasible merge would create one.

#include "binding/module_binding.hpp"
#include "binding/register_binding.hpp"
#include "bist/allocator.hpp"
#include "dfg/dfg.hpp"
#include "graph/conflict.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

/// RALLOC-style register binding (self-adjacency-minimizing).
[[nodiscard]] RegisterBinding bind_registers_ralloc(
    const Dfg& dfg, const VarConflictGraph& cg, const ModuleBinding& mb);

/// RALLOC-style BIST labelling of a data path: every register that is a
/// source or destination of some module becomes a BILBO; self-adjacent
/// registers become CBILBOs.  (No embedding search — that is the point of
/// the baseline.)
[[nodiscard]] BistSolution ralloc_bist_labelling(const Datapath& dp,
                                                 const AreaModel& model);

}  // namespace lbist
