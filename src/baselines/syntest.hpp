#pragma once
// SYNTEST-style baseline (Papachristou/Chiu/Harmanani DAC'91, Harmanani &
// Papachristou ICCAD'93): synthesis constrained to a *self-testable
// template* — no register may be both an input register and an output
// register of the same module (no self-loops), so every test register can
// stay a dedicated single-mode TPG or SA and no CBILBO is ever needed.
//
// SYNTEST itself is not available; this reimplements the published style
// (see DESIGN.md §2): reverse-PVES coloring that opens a fresh register
// rather than accept a merge creating (a) a self-loop or (b) a register
// that would need both TPG and SA capability, followed by a direct
// template labelling: input registers become TPGs, output registers SAs.

#include "binding/module_binding.hpp"
#include "binding/register_binding.hpp"
#include "bist/allocator.hpp"
#include "dfg/dfg.hpp"
#include "graph/conflict.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

/// SYNTEST-style register binding (template-constrained).
[[nodiscard]] RegisterBinding bind_registers_syntest(
    const Dfg& dfg, const VarConflictGraph& cg, const ModuleBinding& mb);

/// SYNTEST-style BIST labelling: TPG for registers feeding modules, SA for
/// registers fed by modules; a register doing both (template violation that
/// could not be avoided) becomes a BILBO.
[[nodiscard]] BistSolution syntest_bist_labelling(const Datapath& dp,
                                                  const AreaModel& model);

}  // namespace lbist
