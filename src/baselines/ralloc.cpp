#include "baselines/ralloc.hpp"

#include <algorithm>

#include "graph/chordal.hpp"
#include "support/check.hpp"

namespace lbist {

RegisterBinding bind_registers_ralloc(const Dfg& dfg,
                                      const VarConflictGraph& cg,
                                      const ModuleBinding& mb) {
  auto peo = perfect_elimination_order(cg.graph);
  LBIST_CHECK(peo.has_value(), "conflict graph is not chordal");
  std::vector<std::size_t> order(peo->rbegin(), peo->rend());

  const std::size_t n = cg.graph.num_vertices();
  const std::size_t m = mb.num_modules();

  // Per-register masks over modules: which modules the register feeds
  // (inputs) and is fed by (outputs).
  struct RegState {
    std::vector<std::size_t> members;
    DynBitset member_vertices;
    DynBitset feeds;   // modules this register supplies operands to
    DynBitset fed_by;  // modules writing results into this register
  };
  std::vector<RegState> regs;

  auto var_feeds = [&](VarId v) {
    DynBitset out(m);
    for (std::size_t j = 0; j < m; ++j) {
      if (mb.input_vars(ModuleId{static_cast<ModuleId::value_type>(j)})
              .test(v.index())) {
        out.set(j);
      }
    }
    return out;
  };
  auto var_fed_by = [&](VarId v) {
    DynBitset out(m);
    for (std::size_t j = 0; j < m; ++j) {
      if (mb.output_vars(ModuleId{static_cast<ModuleId::value_type>(j)})
              .test(v.index())) {
        out.set(j);
      }
    }
    return out;
  };

  auto self_adjacent = [&](const DynBitset& feeds, const DynBitset& fed_by) {
    return feeds.intersects(fed_by);
  };

  for (std::size_t v : order) {
    const VarId var = cg.vars[v];
    const DynBitset vf = var_feeds(var);
    const DynBitset vb = var_fed_by(var);

    std::size_t chosen = regs.size();  // default: fresh register
    // Prefer a feasible register where the merge does not create a *new*
    // self-adjacency.
    for (std::size_t r = 0; r < regs.size(); ++r) {
      if (cg.graph.row(v).intersects(regs[r].member_vertices)) continue;
      DynBitset feeds = regs[r].feeds;
      feeds |= vf;
      DynBitset fed_by = regs[r].fed_by;
      fed_by |= vb;
      const bool was = self_adjacent(regs[r].feeds, regs[r].fed_by);
      const bool now = self_adjacent(feeds, fed_by);
      if (!now || was) {
        chosen = r;
        break;
      }
    }
    // A fresh register trades area for testability — Avra's tradeoff.  If
    // the vertex conflicts with everything anyway the fresh register is
    // mandatory; otherwise it is opened only to dodge a new self-adjacency.
    if (chosen == regs.size()) {
      regs.push_back(RegState{{}, DynBitset(n), DynBitset(m), DynBitset(m)});
    }
    RegState& reg = regs[chosen];
    reg.members.push_back(v);
    reg.member_vertices.set(v);
    reg.feeds |= vf;
    reg.fed_by |= vb;
  }

  RegisterBinding rb;
  rb.reg_of.assign(dfg.num_vars(), RegId::invalid());
  rb.regs.resize(regs.size());
  for (std::size_t r = 0; r < regs.size(); ++r) {
    for (std::size_t v : regs[r].members) {
      rb.regs[r].push_back(cg.vars[v]);
      rb.reg_of[cg.vars[v]] = RegId{static_cast<RegId::value_type>(r)};
    }
  }
  return rb;
}

BistSolution ralloc_bist_labelling(const Datapath& dp,
                                   const AreaModel& model) {
  BistSolution sol;
  sol.roles.assign(dp.registers.size(), BistRole::None);
  sol.embeddings.assign(dp.modules.size(), std::nullopt);

  std::vector<bool> self_adj(dp.registers.size(), false);
  for (std::size_t r : dp.self_adjacent_registers()) self_adj[r] = true;

  for (std::size_t r = 0; r < dp.registers.size(); ++r) {
    bool touches = false;
    for (const auto& mod : dp.modules) {
      if (mod.left_sources.count(r) > 0 || mod.right_sources.count(r) > 0 ||
          mod.dest_registers.count(r) > 0) {
        touches = true;
        break;
      }
    }
    if (!touches) continue;
    sol.roles[r] = self_adj[r] ? BistRole::Cbilbo : BistRole::TpgSa;
    sol.extra_area += model.role_extra(sol.roles[r]);
  }
  return sol;
}

}  // namespace lbist
