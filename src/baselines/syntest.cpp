#include "baselines/syntest.hpp"

#include "graph/chordal.hpp"
#include "support/check.hpp"

namespace lbist {

RegisterBinding bind_registers_syntest(const Dfg& dfg,
                                       const VarConflictGraph& cg,
                                       const ModuleBinding& mb) {
  auto peo = perfect_elimination_order(cg.graph);
  LBIST_CHECK(peo.has_value(), "conflict graph is not chordal");
  std::vector<std::size_t> order(peo->rbegin(), peo->rend());

  const std::size_t n = cg.graph.num_vertices();
  const std::size_t m = mb.num_modules();

  struct RegState {
    std::vector<std::size_t> members;
    DynBitset member_vertices;
    DynBitset feeds;   // modules supplied with operands
    DynBitset fed_by;  // modules writing into this register
  };
  std::vector<RegState> regs;

  auto var_feeds = [&](VarId v) {
    DynBitset out(m);
    for (std::size_t j = 0; j < m; ++j) {
      if (mb.input_vars(ModuleId{static_cast<ModuleId::value_type>(j)})
              .test(v.index())) {
        out.set(j);
      }
    }
    return out;
  };
  auto var_fed_by = [&](VarId v) {
    DynBitset out(m);
    for (std::size_t j = 0; j < m; ++j) {
      if (mb.output_vars(ModuleId{static_cast<ModuleId::value_type>(j)})
              .test(v.index())) {
        out.set(j);
      }
    }
    return out;
  };

  for (std::size_t v : order) {
    const VarId var = cg.vars[v];
    const DynBitset vf = var_feeds(var);
    const DynBitset vb = var_fed_by(var);

    std::size_t chosen = regs.size();
    for (std::size_t r = 0; r < regs.size(); ++r) {
      if (cg.graph.row(v).intersects(regs[r].member_vertices)) continue;
      DynBitset feeds = regs[r].feeds;
      feeds |= vf;
      DynBitset fed_by = regs[r].fed_by;
      fed_by |= vb;
      // Template: (a) no self-loop (module both fed by and feeding the
      // register), (b) register stays single-role (TPG xor SA).
      const bool self_loop = feeds.intersects(fed_by);
      const bool dual_role = feeds.any() && fed_by.any();
      const bool was_dual =
          regs[r].feeds.any() && regs[r].fed_by.any();
      if (!self_loop && (!dual_role || was_dual)) {
        chosen = r;
        break;
      }
    }
    if (chosen == regs.size()) {
      regs.push_back(RegState{{}, DynBitset(n), DynBitset(m), DynBitset(m)});
    }
    RegState& reg = regs[chosen];
    reg.members.push_back(v);
    reg.member_vertices.set(v);
    reg.feeds |= vf;
    reg.fed_by |= vb;
  }

  RegisterBinding rb;
  rb.reg_of.assign(dfg.num_vars(), RegId::invalid());
  rb.regs.resize(regs.size());
  for (std::size_t r = 0; r < regs.size(); ++r) {
    for (std::size_t v : regs[r].members) {
      rb.regs[r].push_back(cg.vars[v]);
      rb.reg_of[cg.vars[v]] = RegId{static_cast<RegId::value_type>(r)};
    }
  }
  return rb;
}

BistSolution syntest_bist_labelling(const Datapath& dp,
                                    const AreaModel& model) {
  BistSolution sol;
  sol.roles.assign(dp.registers.size(), BistRole::None);
  sol.embeddings.assign(dp.modules.size(), std::nullopt);

  for (std::size_t r = 0; r < dp.registers.size(); ++r) {
    bool feeds = false;
    bool fed = false;
    for (const auto& mod : dp.modules) {
      if (mod.left_sources.count(r) > 0 || mod.right_sources.count(r) > 0) {
        feeds = true;
      }
      if (mod.dest_registers.count(r) > 0) fed = true;
    }
    if (feeds && fed) {
      sol.roles[r] = BistRole::TpgSa;  // template violation fallback
    } else if (feeds) {
      sol.roles[r] = BistRole::Tpg;
    } else if (fed) {
      sol.roles[r] = BistRole::Sa;
    }
    sol.extra_area += model.role_extra(sol.roles[r]);
  }
  return sol;
}

}  // namespace lbist
