#pragma once
// Partial-scan baseline (the DFT alternative the paper's introduction
// contrasts BIST against — Lee/Jha/Wolf DAC'93, Dey/Potkonjak VTS'94).
//
// Partial scan breaks the sequential cycles of the data path so ATPG can
// treat it (nearly) combinationally: registers are selected for the scan
// chain until the *S-graph* — registers as vertices, an edge r1 -> r2 when
// some module reads r1 and writes r2 in one clock — has no cycle through
// unscanned registers.  The classic objective is a minimum feedback vertex
// set (MFVS) of the S-graph.
//
// Scan cost model: each scanned register gains a scan mux (one 2:1 slice
// per bit) plus chain routing — far cheaper per register than a BILBO, but
// scan needs external pattern application while BIST is autonomous; the
// comparison lives in bench_scan.

#include <vector>

#include "bist/area_model.hpp"
#include "rtl/datapath.hpp"

namespace lbist {

/// The register-level sequential dependency graph.
struct SGraph {
  /// adjacency[r] = registers written by modules that read r.
  std::vector<std::vector<std::size_t>> adjacency;

  [[nodiscard]] std::size_t num_registers() const {
    return adjacency.size();
  }
};

/// Builds the S-graph of a data path (self-loops included — a self-adjacent
/// register is a 1-cycle and always needs scanning).
[[nodiscard]] SGraph build_sgraph(const Datapath& dp);

/// True if the subgraph induced by removing `removed` is acyclic.
[[nodiscard]] bool is_acyclic_without(const SGraph& g,
                                      const std::vector<bool>& removed);

/// Minimum feedback vertex set: exact branch-and-bound for small graphs
/// (<= `exact_limit` vertices), greedy (highest cycle-degree first)
/// otherwise.  Returns the register indices to scan, sorted.
[[nodiscard]] std::vector<std::size_t> minimum_feedback_vertex_set(
    const SGraph& g, std::size_t exact_limit = 20);

/// A partial-scan plan for a data path.
struct PartialScanPlan {
  std::vector<std::size_t> scanned;  ///< registers on the scan chain
  double extra_area = 0.0;           ///< scan muxes, gate equivalents

  [[nodiscard]] double overhead_percent(const Datapath& dp,
                                        const AreaModel& model) const {
    return 100.0 * extra_area / model.functional_area(dp);
  }
};

/// Selects the MFVS of the data path's S-graph and prices the scan chain
/// (one 2:1 mux slice per bit per scanned register).
[[nodiscard]] PartialScanPlan plan_partial_scan(const Datapath& dp,
                                                const AreaModel& model);

}  // namespace lbist
