#include "baselines/partial_scan.hpp"

#include <algorithm>
#include <functional>

#include "support/check.hpp"

namespace lbist {

SGraph build_sgraph(const Datapath& dp) {
  SGraph g;
  g.adjacency.resize(dp.registers.size());
  for (const auto& mod : dp.modules) {
    for (std::size_t dst : mod.dest_registers) {
      for (const auto* port : {&mod.left_sources, &mod.right_sources}) {
        for (std::size_t src : *port) {
          auto& adj = g.adjacency[src];
          if (std::find(adj.begin(), adj.end(), dst) == adj.end()) {
            adj.push_back(dst);
          }
        }
      }
    }
  }
  for (auto& adj : g.adjacency) std::sort(adj.begin(), adj.end());
  return g;
}

bool is_acyclic_without(const SGraph& g, const std::vector<bool>& removed) {
  const std::size_t n = g.num_registers();
  // Iterative three-color DFS.
  std::vector<int> color(n, 0);  // 0 white, 1 gray, 2 black
  for (std::size_t start = 0; start < n; ++start) {
    if (removed[start] || color[start] != 0) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{start, 0}};
    color[start] = 1;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < g.adjacency[v].size()) {
        const std::size_t w = g.adjacency[v][next++];
        if (removed[w]) continue;
        if (color[w] == 1) return false;  // back edge: cycle
        if (color[w] == 0) {
          color[w] = 1;
          stack.emplace_back(w, 0);
        }
      } else {
        color[v] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

namespace {

/// Exact MFVS by iterative deepening over subset size (n <= ~20).
std::vector<std::size_t> exact_mfvs(const SGraph& g) {
  const std::size_t n = g.num_registers();
  std::vector<bool> removed(n, false);
  if (is_acyclic_without(g, removed)) return {};

  // Self-loop registers must be in every feedback vertex set.
  std::vector<std::size_t> forced;
  for (std::size_t v = 0; v < n; ++v) {
    const auto& adj = g.adjacency[v];
    if (std::find(adj.begin(), adj.end(), v) != adj.end()) {
      forced.push_back(v);
      removed[v] = true;
    }
  }
  if (is_acyclic_without(g, removed)) return forced;

  std::vector<std::size_t> candidates;
  for (std::size_t v = 0; v < n; ++v) {
    if (!removed[v]) candidates.push_back(v);
  }
  for (std::size_t k = 1; k <= candidates.size(); ++k) {
    std::vector<std::size_t> chosen;
    std::function<bool(std::size_t)> pick = [&](std::size_t from) {
      if (chosen.size() == k) {
        return is_acyclic_without(g, removed);
      }
      for (std::size_t i = from; i < candidates.size(); ++i) {
        removed[candidates[i]] = true;
        chosen.push_back(candidates[i]);
        if (pick(i + 1)) return true;
        chosen.pop_back();
        removed[candidates[i]] = false;
      }
      return false;
    };
    if (pick(0)) {
      forced.insert(forced.end(), chosen.begin(), chosen.end());
      std::sort(forced.begin(), forced.end());
      return forced;
    }
  }
  LBIST_CHECK(false, "MFVS search failed to terminate");
  return {};
}

/// Greedy: repeatedly remove the highest-degree vertex until acyclic.
std::vector<std::size_t> greedy_mfvs(const SGraph& g) {
  const std::size_t n = g.num_registers();
  std::vector<bool> removed(n, false);
  std::vector<std::size_t> result;
  while (!is_acyclic_without(g, removed)) {
    std::size_t best = n;
    std::size_t best_degree = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (removed[v]) continue;
      std::size_t degree = g.adjacency[v].size();
      for (std::size_t u = 0; u < n; ++u) {
        if (removed[u]) continue;
        const auto& adj = g.adjacency[u];
        if (std::find(adj.begin(), adj.end(), v) != adj.end()) ++degree;
      }
      if (best == n || degree > best_degree) {
        best = v;
        best_degree = degree;
      }
    }
    removed[best] = true;
    result.push_back(best);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace

std::vector<std::size_t> minimum_feedback_vertex_set(
    const SGraph& g, std::size_t exact_limit) {
  return g.num_registers() <= exact_limit ? exact_mfvs(g) : greedy_mfvs(g);
}

PartialScanPlan plan_partial_scan(const Datapath& dp,
                                  const AreaModel& model) {
  PartialScanPlan plan;
  plan.scanned = minimum_feedback_vertex_set(build_sgraph(dp));
  // One 2:1 scan mux slice per bit per scanned register.
  plan.extra_area = static_cast<double>(plan.scanned.size()) *
                    model.mux_gates_per_bit * model.bit_width;
  return plan;
}

}  // namespace lbist
