// Test-time study (ours): the area-minimal BIST solution is not unique —
// among equal-area solutions, session counts (total test time) differ.
// This harness compares the default allocator against the
// minimize-sessions tie-break and against the transparency-extended space,
// reporting area, sessions, and total test clocks per benchmark.
//
// Timing benchmark: allocation with session tie-breaking.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bist/allocator.hpp"
#include "bist/sessions.hpp"
#include "bist/test_plan.hpp"
#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"
#include "support/table.hpp"

namespace {

using namespace lbist;

void print_sessions_table() {
  TextTable t({"DFG", "extra", "sessions (area-only)",
               "sessions (tie-break)", "clocks saved",
               "sessions (+transp.)"});
  t.set_title(
      "Test time: session counts of area-minimal BIST solutions "
      "(250-pattern sessions)");
  for (const auto& row : compare_paper_benchmarks()) {
    const Datapath& dp = row.testable.datapath;
    BistAllocator plain{AreaModel{}};
    BistAllocator tuned{AreaModel{}};
    tuned.minimize_sessions = true;
    BistAllocator transp{AreaModel{}};
    transp.use_transparent_paths = true;
    transp.minimize_sessions = true;

    auto a = plain.solve(dp);
    auto b = tuned.solve(dp);
    auto c = transp.solve(dp);
    const int sa = schedule_test_sessions(dp, a).num_sessions;
    const int sb = schedule_test_sessions(dp, b).num_sessions;
    const int sc = schedule_test_sessions(dp, c).num_sessions;
    t.add_row({row.name, fmt_double(a.extra_area, 0), std::to_string(sa),
               std::to_string(sb), std::to_string((sa - sb) * 250),
               std::to_string(sc)});
  }
  std::cout << t << std::endl;
}

void BM_AllocWithSessionTieBreak(benchmark::State& state) {
  auto row = compare_benchmark(make_tseng1());
  BistAllocator alloc{AreaModel{}};
  alloc.minimize_sessions = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.solve(row.testable.datapath).extra_area);
  }
}
BENCHMARK(BM_AllocWithSessionTieBreak);

}  // namespace

int main(int argc, char** argv) {
  print_sessions_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
