#pragma once
// Machine-readable benchmark artifacts (shared by the bench binaries).
//
// A bench binary collects one row per scenario and writes
// `BENCH_<name>.json` into the working directory when it exits, alongside
// the human-readable tables it already prints.  Each row carries the
// scenario name + configuration label, the sample count, and the
// p50/p95/p99 of its timing samples; extra keys (coverage, throughput,
// test length, ...) ride along verbatim.  Every file is stamped with the
// writing build (support/version.hpp) so archived results stay
// attributable:
//
//   {"bench": "server", "build": {...}, "results": [
//     {"name": "loopback", "config": "4 conn, warm", "samples": 128,
//      "p50_ms": 0.41, "p95_ms": 0.93, "p99_ms": 1.72,
//      "req_per_sec": 2140.3}, ...]}

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "support/json.hpp"
#include "support/version.hpp"

namespace lbist::benchjson {

/// Linear-interpolation percentile of an ascending-sorted sample vector.
inline double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Collects scenario rows for one bench binary and writes the artifact.
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  /// Adds one row.  `samples_ms` need not be sorted; pass an empty vector
  /// for rows that are pure measurements (coverage tables) — the
  /// percentile keys are then omitted.  `extra` keys are merged into the
  /// row as-is.
  void add(const std::string& name, const std::string& config,
           std::vector<double> samples_ms, Json extra = Json::object()) {
    Json row = Json::object()
                   .set("name", Json::string(name))
                   .set("config", Json::string(config));
    if (!samples_ms.empty()) {
      std::sort(samples_ms.begin(), samples_ms.end());
      row.set("samples",
              Json::number(static_cast<std::int64_t>(samples_ms.size())))
          .set("p50_ms", Json::number(percentile(samples_ms, 0.50)))
          .set("p95_ms", Json::number(percentile(samples_ms, 0.95)))
          .set("p99_ms", Json::number(percentile(samples_ms, 0.99)));
    }
    for (const std::string& key : extra.keys()) row.set(key, extra.at(key));
    results_.push_back(std::move(row));
  }

  /// Writes `BENCH_<bench>.json` (working directory) and reports the path
  /// on stdout; a row-less collector still writes a valid artifact.
  void write() const {
    const std::string path = "BENCH_" + bench_ + ".json";
    Json results = Json::array();
    for (const Json& row : results_) results.push_back(row);
    const Json doc = Json::object()
                         .set("bench", Json::string(bench_))
                         .set("build", build_info_json())
                         .set("results", std::move(results));
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    out << doc.dump() << "\n";
    std::printf("wrote %s (%zu rows)\n", path.c_str(), results_.size());
  }

 private:
  std::string bench_;
  std::vector<Json> results_;
};

}  // namespace lbist::benchjson
