// Loops vs the paper's straight-line model (ours): the diff-eq solver is a
// loop; the paper allocates its body as straight-line code with the loop
// state in architectural registers.  This harness synthesizes both views —
// the paper's (4 registers + 6 dedicated inputs) and the loop-carried one
// (x1 written back into x's register) — and measures what loops cost:
// more allocated registers, self-adjacent loop registers, and BIST area.
//
// Timing benchmark: loop-aware binding.

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "support/table.hpp"

namespace {

using namespace lbist;

void print_loop_table() {
  TextTable t({"view", "#Reg", "dedicated", "#Mux", "self-adjacent",
               "BIST resources", "extra", "% BIST area"});
  t.set_title("Straight-line (paper) vs loop-carried diff-eq");

  auto add_row = [&](const char* label, const Benchmark& bench,
                     BinderKind binder) {
    SynthesisOptions opts;
    opts.binder = binder;
    auto r = Synthesizer(opts).run(bench.design.dfg, *bench.design.schedule,
                                   parse_module_spec(bench.module_spec));
    t.add_row({label, std::to_string(r.num_registers()),
               std::to_string(r.datapath.registers.size() -
                              r.datapath.num_allocated),
               std::to_string(r.num_mux()),
               std::to_string(r.datapath.self_adjacent_registers().size()),
               r.bist.counts().to_string(),
               fmt_double(r.bist.extra_area, 0),
               fmt_double(r.overhead_percent)});
  };
  add_row("straight-line, BIST-aware", make_paulin(), BinderKind::BistAware);
  add_row("loop-carried, loop binder", make_paulin_loop(),
          BinderKind::LoopAware);
  std::cout << t;
  std::cout << "(loop registers are read and written by the same modules — "
               "the self-adjacency the paper's\n straight-line model keeps "
               "out of the allocation problem)\n"
            << std::endl;
}

void BM_LoopAwareSynthesis(benchmark::State& state) {
  auto bench = make_paulin_loop();
  const auto protos = parse_module_spec(bench.module_spec);
  SynthesisOptions opts;
  opts.binder = BinderKind::LoopAware;
  Synthesizer synth(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth.run(bench.design.dfg, *bench.design.schedule, protos)
            .overhead_percent);
  }
}
BENCHMARK(BM_LoopAwareSynthesis);

}  // namespace

int main(int argc, char** argv) {
  print_loop_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
