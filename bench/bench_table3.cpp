// Reproduces Table III of the paper: the Paulin differential-equation data
// path synthesized with RALLOC-style, SYNTEST-style and the paper's
// (BIST-aware) allocation, comparing total registers and BIST register
// composition.  RALLOC and SYNTEST are unreleased academic tools; the rows
// labelled "sim" are our reimplementations of their published styles, and
// the rows labelled "paper" quote the published Table III.
//
// Timing benchmark: each binder style on the Paulin DFG.

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "support/table.hpp"

namespace {

void print_table3() {
  using namespace lbist;
  Benchmark bench = make_paulin();
  const auto protos = parse_module_spec(bench.module_spec);

  TextTable t({"HLS system", "# Reg", "# TPG", "# SA", "# BILBO",
               "# CBILBO"});
  t.set_title("TABLE III — design comparison for the Paulin example");

  auto run = [&](const char* label, BinderKind kind) {
    SynthesisOptions opts;
    opts.binder = kind;
    auto result = Synthesizer(opts).run(bench.design.dfg,
                                        *bench.design.schedule, protos);
    auto c = result.bist.counts();
    t.add_row({label, std::to_string(result.num_registers()),
               std::to_string(c.tpg), std::to_string(c.sa),
               std::to_string(c.tpg_sa), std::to_string(c.cbilbo)});
  };
  run("RALLOC (sim)", BinderKind::Ralloc);
  run("SYNTEST (sim)", BinderKind::Syntest);
  run("Ours", BinderKind::BistAware);
  t.add_row({"RALLOC (paper)", "5", "0", "0", "4", "1"});
  t.add_row({"SYNTEST (paper)", "5", "4", "1", "0", "0"});
  t.add_row({"Ours (paper)", "4", "2", "1", "0", "1"});
  std::cout << t << std::endl;
}

void BM_BinderStyle(benchmark::State& state) {
  using namespace lbist;
  Benchmark bench = make_paulin();
  const auto protos = parse_module_spec(bench.module_spec);
  const BinderKind kinds[] = {BinderKind::Traditional, BinderKind::BistAware,
                              BinderKind::Ralloc, BinderKind::Syntest};
  const char* labels[] = {"traditional", "bist-aware", "ralloc", "syntest"};
  SynthesisOptions opts;
  opts.binder = kinds[state.range(0)];
  Synthesizer synth(opts);
  for (auto _ : state) {
    auto result =
        synth.run(bench.design.dfg, *bench.design.schedule, protos);
    benchmark::DoNotOptimize(result.overhead_percent);
  }
  state.SetLabel(labels[state.range(0)]);
}

BENCHMARK(BM_BinderStyle)->DenseRange(0, 3);

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
