// Load generator for the synthesis server (ISSUE 3): spins up an
// in-process Server, drives it over real loopback sockets with 1, 4 and 8
// concurrent client connections, and reports throughput and per-request
// round-trip p50/p95/p99 — cold cache vs warm cache.  A sustained-load
// section (ISSUE 8) pushes 64-256 concurrent connections at a sharded
// server and compares a cold persistent cache against a restart that
// rewarms from disk.
//
// This is a plain main() (not google-benchmark): each scenario is one
// timed run over a fixed request mix, which maps better onto "N
// connections, M requests each" than benchmark's auto-scaled iteration
// model.
//
//   ./bench/bench_server [requests-per-connection]   (default 32)

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "obs/trace.hpp"
#include "server/net.hpp"
#include "server/server.hpp"
#include "service/diskcache/diskcache.hpp"
#include "support/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// The request mix: a small rotation of distinct jobs so a cold run
/// exercises real synthesis and a warm run hits the cache.
const char* kJobs[] = {
    "{\"bench\": \"ex1\"}",
    "{\"bench\": \"ex2\"}",
    "{\"bench\": \"paulin\"}",
    "{\"bench\": \"tseng\"}",
    "{\"bench\": \"paulin\", \"binder\": \"trad\"}",
    "{\"bench\": \"ex1\", \"width\": 8}",
    "{\"bench\": \"ex2\", \"width\": 16}",
    "{\"bench\": \"paulin\", \"width\": 8, \"binder\": \"clique\"}",
};
constexpr int kJobCount = static_cast<int>(sizeof(kJobs) / sizeof(kJobs[0]));

struct RunStats {
  double seconds = 0.0;
  std::vector<double> latencies_ms;  // one per request, all connections
};

/// One client connection issuing `requests` jobs in closed loop (send one
/// line, wait for its response line, repeat) and timing each round trip.
void run_connection(std::uint16_t port, int requests, int seed,
                    std::vector<double>* latencies) {
  lbist::net::Socket sock = lbist::net::connect_to("127.0.0.1", port);
  lbist::net::LineReader reader(sock.fd());
  std::string line;
  latencies->reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    const std::string request =
        std::string(kJobs[(seed + i) % kJobCount]) + "\n";
    const Clock::time_point t0 = Clock::now();
    lbist::net::send_all(sock.fd(), request);
    if (!reader.read_line(&line)) break;  // server went away
    latencies->push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count());
  }
  sock.shutdown_write();
}

RunStats run_scenario(lbist::Server& server, int connections,
                      int requests_per_conn) {
  std::vector<std::vector<double>> per_conn(
      static_cast<std::size_t>(connections));
  std::vector<std::thread> threads;
  const Clock::time_point t0 = Clock::now();
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back(run_connection, server.port(), requests_per_conn,
                         c, &per_conn[static_cast<std::size_t>(c)]);
  }
  for (auto& t : threads) t.join();
  RunStats stats;
  stats.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  for (auto& v : per_conn) {
    stats.latencies_ms.insert(stats.latencies_ms.end(), v.begin(), v.end());
  }
  std::sort(stats.latencies_ms.begin(), stats.latencies_ms.end());
  return stats;
}

/// One connection issuing `requests` lines drawn from `mix` in closed
/// loop (used by the sustained-load section, where the rotation is wider
/// than kJobs so the persistent tier has real work to absorb).
void run_connection_mix(std::uint16_t port, int requests, int seed,
                        const std::vector<std::string>* mix,
                        std::vector<double>* latencies) {
  lbist::net::Socket sock = lbist::net::connect_to("127.0.0.1", port);
  lbist::net::LineReader reader(sock.fd());
  std::string line;
  latencies->reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    const std::string& request =
        (*mix)[static_cast<std::size_t>(seed + i) % mix->size()];
    const Clock::time_point t0 = Clock::now();
    lbist::net::send_all(sock.fd(), request);
    if (!reader.read_line(&line)) break;
    latencies->push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count());
  }
  sock.shutdown_write();
}

RunStats run_scenario_mix(lbist::Server& server, int connections,
                          int requests_per_conn,
                          const std::vector<std::string>& mix) {
  std::vector<std::vector<double>> per_conn(
      static_cast<std::size_t>(connections));
  std::vector<std::thread> threads;
  const Clock::time_point t0 = Clock::now();
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back(run_connection_mix, server.port(),
                         requests_per_conn, c, &mix,
                         &per_conn[static_cast<std::size_t>(c)]);
  }
  for (auto& t : threads) t.join();
  RunStats stats;
  stats.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  for (auto& v : per_conn) {
    stats.latencies_ms.insert(stats.latencies_ms.end(), v.begin(), v.end());
  }
  std::sort(stats.latencies_ms.begin(), stats.latencies_ms.end());
  return stats;
}

/// A wide rotation (4 benches x 6 widths = 24 distinct syntheses) so the
/// cold arm pays for real synthesis work that the persistent-warm arm
/// recovers from disk instead.
std::vector<std::string> sustained_mix() {
  std::vector<std::string> mix;
  for (const char* bench : {"ex1", "ex2", "paulin", "tseng"}) {
    for (const int width : {8, 12, 16, 20, 24, 32}) {
      mix.push_back("{\"bench\": \"" + std::string(bench) +
                    "\", \"width\": " + std::to_string(width) + "}\n");
    }
  }
  return mix;
}

std::string make_cache_dir() {
  char tmpl[] = "/tmp/lowbist-bench-cache-XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed; persistent arm disabled\n");
    return std::string();
  }
  return tmpl;
}

void remove_cache_dir(const std::string& dir) {
  if (dir.empty()) return;
  for (const char* name : {"cache.dat", "cache.lock", "cache.dat.compact"}) {
    std::remove((dir + "/" + name).c_str());
  }
  ::rmdir(dir.c_str());
}

using lbist::benchjson::percentile;

}  // namespace

int main(int argc, char** argv) {
  int requests_per_conn = 32;
  if (argc > 1) requests_per_conn = std::atoi(argv[1]);
  if (requests_per_conn < 1) requests_per_conn = 1;

  lbist::TextTable table({"connections", "cache", "requests", "seconds",
                          "req/s", "p50 ms", "p95 ms", "p99 ms"});
  table.set_title("lowbist serve loopback load (closed loop per connection)");
  lbist::benchjson::BenchJson artifact("server");

  for (int connections : {1, 4, 8}) {
    // A fresh server per connection count: "cold" means an empty cache,
    // "warm" repeats the identical mix against the now-populated cache.
    lbist::ServerOptions opts;
    opts.jobs = 0;  // hardware concurrency
    opts.max_queue = 256;
    lbist::Server server(std::move(opts));
    server.start();
    for (const char* label : {"cold", "warm"}) {
      const RunStats stats =
          run_scenario(server, connections, requests_per_conn);
      const auto n = static_cast<double>(stats.latencies_ms.size());
      artifact.add("loopback",
                   std::to_string(connections) + " conn, " + label,
                   stats.latencies_ms,
                   lbist::Json::object().set(
                       "req_per_sec", lbist::Json::number(n / stats.seconds)));
      table.add_row({std::to_string(connections), label,
                     std::to_string(stats.latencies_ms.size()),
                     lbist::fmt_double(stats.seconds, 3),
                     lbist::fmt_double(n / stats.seconds, 1),
                     lbist::fmt_double(percentile(stats.latencies_ms, 0.50), 3),
                     lbist::fmt_double(percentile(stats.latencies_ms, 0.95), 3),
                     lbist::fmt_double(percentile(stats.latencies_ms, 0.99), 3)});
    }
    const auto cache = server.cache().stats();
    server.stop();
    std::printf("connections=%d: cache hits=%llu misses=%llu\n", connections,
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses));
  }
  std::printf("%s\n", table.str().c_str());

  // Tracing overhead at 4 connections, cold cache each time: a recorder
  // that is attached but disabled must cost nothing measurable; enabled,
  // every request records a span tree (docs/observability.md).
  lbist::TextTable trace_table({"tracing", "requests", "seconds", "req/s",
                                "p50 ms", "p95 ms", "p99 ms", "spans"});
  trace_table.set_title("tracing overhead (4 connections, cold cache)");
  for (const bool enabled : {false, true}) {
    lbist::TraceRecorder rec;
    rec.set_enabled(enabled);
    lbist::ServerOptions opts;
    opts.jobs = 0;
    opts.max_queue = 256;
    opts.trace = &rec;
    lbist::Server server(std::move(opts));
    server.start();
    const RunStats stats = run_scenario(server, 4, requests_per_conn);
    server.stop();
    const auto n = static_cast<double>(stats.latencies_ms.size());
    artifact.add("tracing", enabled ? "enabled" : "disabled",
                 stats.latencies_ms,
                 lbist::Json::object()
                     .set("req_per_sec", lbist::Json::number(n / stats.seconds))
                     .set("spans", lbist::Json::number(static_cast<std::int64_t>(
                                       rec.event_count()))));
    trace_table.add_row(
        {enabled ? "enabled" : "disabled",
         std::to_string(stats.latencies_ms.size()),
         lbist::fmt_double(stats.seconds, 3),
         lbist::fmt_double(n / stats.seconds, 1),
         lbist::fmt_double(percentile(stats.latencies_ms, 0.50), 3),
         lbist::fmt_double(percentile(stats.latencies_ms, 0.95), 3),
         lbist::fmt_double(percentile(stats.latencies_ms, 0.99), 3),
         std::to_string(rec.event_count())});
  }
  std::printf("%s\n", trace_table.str().c_str());

  // Sustained load against the sharded server: 64-256 concurrent
  // connections in closed loop over a 24-job rotation.  "cold" starts
  // with an empty persistent cache and pays for every distinct synthesis;
  // "warm-persistent" is a *restarted* server (empty in-memory LRU)
  // pointed at the cache directory the cold run populated, so repeated
  // work is answered from disk.
  lbist::TextTable sustained_table({"connections", "cache", "requests",
                                    "seconds", "req/s", "p50 ms", "p95 ms",
                                    "p99 ms"});
  sustained_table.set_title(
      "sustained sharded load (4 shards, persistent cache restart-rewarm)");
  const std::vector<std::string> mix = sustained_mix();
  for (const int connections : {64, 128, 256}) {
    const std::string cache_dir = make_cache_dir();
    for (const char* label : {"cold", "warm-persistent"}) {
      // A fresh server per arm: the warm arm rewarms from disk alone.
      lbist::ServerOptions opts;
      opts.jobs = 0;
      opts.shards = 4;
      opts.max_queue = 1024;
      opts.cache_dir = cache_dir;
      lbist::Server server(std::move(opts));
      server.start();
      const RunStats stats =
          run_scenario_mix(server, connections, requests_per_conn, mix);
      const auto n = static_cast<double>(stats.latencies_ms.size());
      lbist::Json extra = lbist::Json::object()
                              .set("req_per_sec",
                                   lbist::Json::number(n / stats.seconds))
                              .set("shards", lbist::Json::number(4));
      if (server.disk() != nullptr) {
        const lbist::DiskCache::Stats disk = server.disk()->stats();
        extra
            .set("disk_hits", lbist::Json::number(
                                  static_cast<std::int64_t>(disk.hits)))
            .set("disk_entries", lbist::Json::number(static_cast<std::int64_t>(
                                     disk.entries)))
            .set("persistent_hits",
                 lbist::Json::number(static_cast<std::int64_t>(
                     server.cache().persistent_hits())));
      }
      server.stop();
      artifact.add("sustained",
                   std::to_string(connections) + " conn, " + label,
                   stats.latencies_ms, std::move(extra));
      sustained_table.add_row(
          {std::to_string(connections), label,
           std::to_string(stats.latencies_ms.size()),
           lbist::fmt_double(stats.seconds, 3),
           lbist::fmt_double(n / stats.seconds, 1),
           lbist::fmt_double(percentile(stats.latencies_ms, 0.50), 3),
           lbist::fmt_double(percentile(stats.latencies_ms, 0.95), 3),
           lbist::fmt_double(percentile(stats.latencies_ms, 0.99), 3)});
    }
    remove_cache_dir(cache_dir);
  }
  std::printf("%s\n", sustained_table.str().c_str());

  artifact.write();
  return 0;
}
