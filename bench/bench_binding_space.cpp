// The binding solution space, measured exhaustively (the paper's Section
// III observation: "There are 108 distinct assignments of the variables in
// E to three registers.  With respect to register and functional unit area
// these 108 assignments are equivalent.  Only a subset of these result in
// more testable data paths").
//
// For each small benchmark this harness enumerates EVERY minimum-register
// binding, prices each with the exact BIST allocator (+ mux area), and
// reports the distribution — then places the paper's heuristic, the
// traditional left-edge binder and the simulated annealer inside it.
//
// Timing benchmark: full-space sweep of ex1 and one annealer run.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "binding/bist_aware_binder.hpp"
#include "binding/enumerate.hpp"
#include "binding/traditional_binder.hpp"
#include "core/annealed_binder.hpp"
#include "dfg/benchmarks.hpp"
#include "graph/coloring.hpp"
#include "graph/conflict.hpp"
#include "support/table.hpp"

namespace {

using namespace lbist;

void print_space_study() {
  TextTable t({"DFG", "#bindings (min regs)", "best", "worst", "median",
               "heuristic", "left-edge", "annealed"});
  t.set_title(
      "Exhaustive binding space — BIST extra + mux gates per binding");
  AreaModel model;

  for (const auto& bench : {make_ex1(), make_ex2()}) {
    const Dfg& dfg = bench.design.dfg;
    auto lt = compute_lifetimes(dfg, *bench.design.schedule);
    auto cg = build_conflict_graph(dfg, lt);
    auto mb = ModuleBinding::bind(dfg, *bench.design.schedule,
                                  parse_module_spec(bench.module_spec));
    const std::size_t min_regs = chordal_clique_number(cg.graph);

    std::vector<double> costs;
    (void)enumerate_bindings(dfg, cg, min_regs,
                             [&](const RegisterBinding& rb) {
                               if (rb.num_regs() == min_regs) {
                                 costs.push_back(
                                     binding_cost(dfg, mb, rb, model));
                               }
                               return costs.size() < 250000;  // safety cap
                             });
    std::sort(costs.begin(), costs.end());

    const double heuristic = binding_cost(
        dfg, mb, bind_registers_bist_aware(dfg, cg, mb), model);
    const double left_edge = binding_cost(
        dfg, mb, bind_registers_traditional(dfg, cg, lt), model);
    AnnealOptions aopts;
    aopts.iterations = 1500;
    const double annealed = binding_cost(
        dfg, mb, bind_registers_annealed(dfg, cg, mb, model, aopts), model);

    t.add_row({bench.name, std::to_string(costs.size()),
               fmt_double(costs.front(), 0), fmt_double(costs.back(), 0),
               fmt_double(costs[costs.size() / 2], 0),
               fmt_double(heuristic, 0), fmt_double(left_edge, 0),
               fmt_double(annealed, 0)});
  }
  std::cout << t;

  // Distribution detail for ex1 (the paper's own example).
  {
    auto bench = make_ex1();
    const Dfg& dfg = bench.design.dfg;
    auto lt = compute_lifetimes(dfg, *bench.design.schedule);
    auto cg = build_conflict_graph(dfg, lt);
    auto mb = ModuleBinding::bind(dfg, *bench.design.schedule,
                                  parse_module_spec(bench.module_spec));
    std::vector<double> costs;
    (void)enumerate_bindings(dfg, cg, 3, [&](const RegisterBinding& rb) {
      if (rb.num_regs() == 3) {
        costs.push_back(binding_cost(dfg, mb, rb, AreaModel{}));
      }
      return true;
    });
    std::sort(costs.begin(), costs.end());
    std::cout << "\nex1: " << costs.size()
              << " minimum-register bindings (paper's DFG: 108); cost "
                 "histogram:\n";
    double bucket = costs.front();
    std::size_t count = 0;
    for (double c : costs) {
      if (c != bucket) {
        std::cout << "  " << bucket << " gates: " << std::string(count, '#')
                  << " (" << count << ")\n";
        bucket = c;
        count = 0;
      }
      ++count;
    }
    std::cout << "  " << bucket << " gates: " << std::string(count, '#')
              << " (" << count << ")\n";
  }
}

void BM_EnumerateEx1Space(benchmark::State& state) {
  auto bench = make_ex1();
  auto lt = compute_lifetimes(bench.design.dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(bench.design.dfg, lt);
  for (auto _ : state) {
    auto n = count_bindings_exact(bench.design.dfg, cg, 3);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_EnumerateEx1Space);

void BM_AnnealEx1(benchmark::State& state) {
  auto bench = make_ex1();
  auto lt = compute_lifetimes(bench.design.dfg, *bench.design.schedule);
  auto cg = build_conflict_graph(bench.design.dfg, lt);
  auto mb = ModuleBinding::bind(bench.design.dfg, *bench.design.schedule,
                                parse_module_spec(bench.module_spec));
  AnnealOptions opts;
  opts.iterations = 500;
  for (auto _ : state) {
    auto rb = bind_registers_annealed(bench.design.dfg, cg, mb, AreaModel{},
                                      opts);
    benchmark::DoNotOptimize(rb.num_regs());
  }
}
BENCHMARK(BM_AnnealEx1);

}  // namespace

int main(int argc, char** argv) {
  print_space_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
