// Reproduces Table II of the paper: the composition of the minimal-area
// BIST solution (how many CBILBOs, BILBOs (TPG/SA), TPGs and SAs) for the
// traditional-HLS and testable-HLS data paths of each benchmark.  The
// published compositions are printed alongside.
//
// Timing benchmark: the exact (DP) BIST allocator on each testable design.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bist/allocator.hpp"
#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"
#include "support/table.hpp"

namespace {

constexpr const char* kPaperTrad[] = {
    "2 CBILBO, 1 TPG", "2 CBILBO, 1 TPG/SA, 2 TPG", "2 CBILBO, 3 TPG/SA",
    "2 CBILBO, 1 TPG/SA, 1 TPG", "3 CBILBO, 1 TPG/SA"};
constexpr const char* kPaperOurs[] = {
    "1 CBILBO, 1 TPG", "1 CBILBO, 2 TPG/SA, 1 TPG",
    "1 CBILBO, 3 TPG/SA, 1 TPG", "2 TPG/SA, 1 TPG", "1 CBILBO, 2 TPG, 1 SA"};

void print_table2() {
  using namespace lbist;
  auto rows = compare_paper_benchmarks();
  TextTable t({"DFG", "Traditional HLS (ours)", "Testable HLS (ours)",
               "paper: Traditional", "paper: Testable"});
  t.set_title("TABLE II — minimal-area BIST solutions");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    t.add_row({r.name, r.traditional.bist.counts().to_string(),
               r.testable.bist.counts().to_string(), kPaperTrad[i],
               kPaperOurs[i]});
  }
  std::cout << t << std::endl;
}

void BM_ExactBistAllocator(benchmark::State& state) {
  using namespace lbist;
  auto rows = compare_paper_benchmarks();
  const auto& r = rows[static_cast<std::size_t>(state.range(0))];
  BistAllocator alloc{AreaModel{}};
  for (auto _ : state) {
    auto sol = alloc.solve(r.testable.datapath);
    benchmark::DoNotOptimize(sol.extra_area);
  }
  state.SetLabel(r.name);
}

void BM_GreedyBistAllocator(benchmark::State& state) {
  using namespace lbist;
  auto rows = compare_paper_benchmarks();
  const auto& r = rows[static_cast<std::size_t>(state.range(0))];
  BistAllocator alloc{AreaModel{}};
  for (auto _ : state) {
    auto sol = alloc.solve_greedy(r.testable.datapath);
    benchmark::DoNotOptimize(sol.extra_area);
  }
  state.SetLabel(r.name);
}

BENCHMARK(BM_ExactBistAllocator)->DenseRange(0, 4);
BENCHMARK(BM_GreedyBistAllocator)->DenseRange(0, 4);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
