// Reproduces Fig. 6 of the paper: the five typical situations when two
// variables are merged into one register, and the effect of each merge on
// multiplexer count and on BIST resources.  For every case we build the
// data path twice — with the pair merged and with the pair split into
// separate registers — and report the deltas.
//
//   case 1: different source modules, different destination modules
//   case 2: source module of one is the destination module of the other
//   case 3: one common destination module, different sources
//   case 4: one common source module, different destinations
//   case 5: common source module and common destination module
//
// Timing benchmark: datapath construction on the case designs.

#include <benchmark/benchmark.h>

#include <iostream>

#include "binding/module_binding.hpp"
#include "bist/allocator.hpp"
#include "dfg/lifetime.hpp"
#include "dfg/parse.hpp"
#include "graph/conflict.hpp"
#include "interconnect/build_datapath.hpp"
#include "support/table.hpp"

namespace {

using namespace lbist;

struct Case {
  const char* label;
  const char* dfg_text;
  const char* spec;
  const char* u;
  const char* v;
};

const Case kCases[] = {
    {"1: diff src, diff dst",
     R"(dfg case1
input a b c d e
op add1 + a b -> u @1
op mul1 * u c -> w @2
op mul2 * w d -> v @3
op and1 & v e -> z @4
output z
)",
     "1+,2*,1&", "u", "v"},
    {"2: src of one = dst of other",
     R"(dfg case2
input a b c d e
op add1 + a b -> u @1
op mul1 * u c -> w @2
op mul2 * w d -> v @3
op and1 & v e -> z @4
output z
)",
     "1+,1*,1&", "u", "v"},
    {"3: common dst, diff src",
     R"(dfg case3
input a b c d e f
op add1 + a b -> u @1
op mul1 * u c -> w @2
op sub1 - d e -> v @2
op mul2 * v f -> z @3
output w z
)",
     "1+,1*,1-", "u", "v"},
    {"4: common src, diff dst",
     R"(dfg case4
input a b c d
op add1 + a b -> u @1
op mul1 * u c -> w @2
op add2 + w d -> v @3
op sub1 - v d -> z @4
output z
)",
     "1+,1*,1-", "u", "v"},
    {"5: common src and dst",
     R"(dfg case5
input a b c d
op add1 + a b -> u @1
op mul1 * u c -> w @2
op add2 + w d -> v @3
op mul2 * v d -> z @4
output z
)",
     "1+,1*", "u", "v"},
};

/// First-fit binding with the pair (u, v) pre-seeded either merged into one
/// register or split across two.
RegisterBinding bind_with_pair(const Dfg& dfg,
                               const IdMap<VarId, LiveInterval>& lt,
                               VarId u, VarId v, bool merged) {
  RegisterBinding rb;
  rb.reg_of.assign(dfg.num_vars(), RegId::invalid());
  rb.regs.push_back({u});
  rb.reg_of[u] = RegId{0};
  if (merged) {
    rb.regs[0].push_back(v);
    rb.reg_of[v] = RegId{0};
  } else {
    rb.regs.push_back({v});
    rb.reg_of[v] = RegId{1};
  }
  for (const auto& var : dfg.vars()) {
    if (!var.allocatable() || rb.reg_of[var.id].valid()) continue;
    std::size_t r = 0;
    for (; r < rb.regs.size(); ++r) {
      bool ok = true;
      for (VarId member : rb.regs[r]) {
        if (lt[member].overlaps(lt[var.id])) {
          ok = false;
          break;
        }
      }
      if (ok) break;
    }
    if (r == rb.regs.size()) rb.regs.emplace_back();
    rb.regs[r].push_back(var.id);
    rb.reg_of[var.id] = RegId{static_cast<RegId::value_type>(r)};
  }
  return rb;
}

void print_fig6() {
  TextTable t({"merge case", "#Mux split", "#Mux merged", "dMux",
               "BIST extra split", "BIST extra merged", "dBIST"});
  t.set_title(
      "Fig. 6 — effect of merging two variables on muxes and BIST "
      "resources");
  AreaModel model;
  BistAllocator alloc(model);

  for (const Case& c : kCases) {
    auto parsed = parse_dfg(c.dfg_text);
    const Dfg& dfg = parsed.dfg;
    auto lt = compute_lifetimes(dfg, *parsed.schedule);
    auto mb = ModuleBinding::bind(dfg, *parsed.schedule,
                                  parse_module_spec(c.spec));
    const VarId u = *dfg.find_var(c.u);
    const VarId v = *dfg.find_var(c.v);

    auto rb_split = bind_with_pair(dfg, lt, u, v, /*merged=*/false);
    auto rb_merged = bind_with_pair(dfg, lt, u, v, /*merged=*/true);
    rb_split.validate(dfg, lt);
    rb_merged.validate(dfg, lt);

    auto dp_split = build_datapath(dfg, mb, rb_split);
    auto dp_merged = build_datapath(dfg, mb, rb_merged);
    auto bist_split = alloc.solve(dp_split);
    auto bist_merged = alloc.solve(dp_merged);

    t.add_row({c.label, std::to_string(dp_split.mux_count()),
               std::to_string(dp_merged.mux_count()),
               std::to_string(dp_merged.mux_count() - dp_split.mux_count()),
               fmt_double(bist_split.extra_area, 0),
               fmt_double(bist_merged.extra_area, 0),
               fmt_double(bist_merged.extra_area - bist_split.extra_area,
                          0)});
  }
  std::cout << t << std::endl;
}

void BM_BuildCaseDatapath(benchmark::State& state) {
  const Case& c = kCases[static_cast<std::size_t>(state.range(0))];
  auto parsed = parse_dfg(c.dfg_text);
  auto lt = compute_lifetimes(parsed.dfg, *parsed.schedule);
  auto mb = ModuleBinding::bind(parsed.dfg, *parsed.schedule,
                                parse_module_spec(c.spec));
  const VarId u = *parsed.dfg.find_var(c.u);
  const VarId v = *parsed.dfg.find_var(c.v);
  auto rb = bind_with_pair(parsed.dfg, lt, u, v, true);
  for (auto _ : state) {
    auto dp = build_datapath(parsed.dfg, mb, rb);
    benchmark::DoNotOptimize(dp.mux_count());
  }
  state.SetLabel(c.label);
}
BENCHMARK(BM_BuildCaseDatapath)->DenseRange(0, 4);

}  // namespace

int main(int argc, char** argv) {
  print_fig6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
