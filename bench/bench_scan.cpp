// BIST vs partial scan study (ours; the DFT alternative the paper's
// introduction cites): for each benchmark's testable data path, the area
// of the minimal BIST solution vs a minimum-feedback-vertex-set scan
// chain, plus the S-graph statistics.  Scan is cheaper in silicon but
// needs an external tester; BIST is autonomous — the numbers quantify the
// gap the paper's approach narrows.
//
// Timing benchmark: exact MFVS on the benchmark S-graphs.

#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/partial_scan.hpp"
#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"
#include "support/table.hpp"

namespace {

using namespace lbist;

void print_scan_table() {
  TextTable t({"DFG", "#regs", "S-graph edges", "self-adjacent",
               "scan FFs", "scan extra", "scan %", "BIST extra",
               "BIST %"});
  t.set_title("Partial scan (MFVS) vs BIST on the testable data paths");
  AreaModel model;
  for (const auto& row : compare_paper_benchmarks()) {
    const auto& dp = row.testable.datapath;
    SGraph g = build_sgraph(dp);
    std::size_t edges = 0;
    for (const auto& adj : g.adjacency) edges += adj.size();
    auto plan = plan_partial_scan(dp, model);
    t.add_row({row.name, std::to_string(dp.registers.size()),
               std::to_string(edges),
               std::to_string(dp.self_adjacent_registers().size()),
               std::to_string(plan.scanned.size()),
               fmt_double(plan.extra_area, 0),
               fmt_double(plan.overhead_percent(dp, model)),
               fmt_double(row.testable.bist.extra_area, 0),
               fmt_double(row.testable.overhead_percent)});
  }
  std::cout << t;
  std::cout << "(scan assumes an external tester; BIST is autonomous — "
               "the area gap is the price of self-test)\n"
            << std::endl;
}

void BM_ExactMfvs(benchmark::State& state) {
  auto rows = compare_paper_benchmarks();
  const auto& dp =
      rows[static_cast<std::size_t>(state.range(0))].testable.datapath;
  SGraph g = build_sgraph(dp);
  for (auto _ : state) {
    auto fvs = minimum_feedback_vertex_set(g);
    benchmark::DoNotOptimize(fvs.size());
  }
  state.SetLabel(rows[static_cast<std::size_t>(state.range(0))].name);
}
BENCHMARK(BM_ExactMfvs)->DenseRange(0, 4);

}  // namespace

int main(int argc, char** argv) {
  print_scan_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
