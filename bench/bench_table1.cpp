// Reproduces Table I of the paper: per benchmark, the register count, mux
// count and % BIST area overhead of the traditional-HLS and testable-HLS
// data paths, plus the percentage reduction in BIST area.  The paper's
// published numbers are printed alongside for comparison (absolute
// percentages depend on the BITS register library we do not have; the
// comparison *shape* is the reproduction target — see EXPERIMENTS.md).
//
// Also registers google-benchmark timings of the two synthesis pipelines.

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"
#include "support/table.hpp"

namespace {

struct PaperRow {
  const char* name;
  int regs, trad_mux;
  double trad_area;
  int test_mux;
  double test_area, reduction;
};
// The published Table I.
constexpr PaperRow kPaper[] = {
    {"ex1", 3, 3, 18.14, 3, 10.67, 30.00},
    {"ex2", 5, 5, 11.17, 4, 7.56, 32.31},
    {"Tseng1", 5, 9, 17.65, 7, 11.34, 35.75},
    {"Tseng2", 5, 7, 10.04, 10, 5.66, 46.62},
    {"Paulin", 4, 6, 16.34, 6, 9.34, 42.84},
};

void print_table1() {
  using namespace lbist;
  auto rows = compare_paper_benchmarks();

  TextTable t({"DFG", "Module assignment", "#Reg", "#Mux(T)", "%BIST(T)",
               "#Mux(ours)", "%BIST(ours)", "%Reduction",
               "paper %red."});
  t.set_title(
      "TABLE I — design comparisons with BIST area overhead "
      "(T = traditional HLS)");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    t.add_row({r.name, r.module_spec,
               std::to_string(r.testable.num_registers()),
               std::to_string(r.traditional.num_mux()),
               fmt_double(r.traditional.overhead_percent),
               std::to_string(r.testable.num_mux()),
               fmt_double(r.testable.overhead_percent),
               fmt_double(r.reduction_percent()),
               fmt_double(kPaper[i].reduction)});
  }
  std::cout << t << std::endl;
}

void BM_SynthesizeTraditional(benchmark::State& state) {
  using namespace lbist;
  auto benches = paper_benchmarks();
  const auto& bench = benches[static_cast<std::size_t>(state.range(0))];
  const auto protos = parse_module_spec(bench.module_spec);
  SynthesisOptions opts;
  opts.binder = BinderKind::Traditional;
  Synthesizer synth(opts);
  for (auto _ : state) {
    auto result =
        synth.run(bench.design.dfg, *bench.design.schedule, protos);
    benchmark::DoNotOptimize(result.overhead_percent);
  }
  state.SetLabel(bench.name);
}

void BM_SynthesizeTestable(benchmark::State& state) {
  using namespace lbist;
  auto benches = paper_benchmarks();
  const auto& bench = benches[static_cast<std::size_t>(state.range(0))];
  const auto protos = parse_module_spec(bench.module_spec);
  SynthesisOptions opts;
  opts.binder = BinderKind::BistAware;
  Synthesizer synth(opts);
  for (auto _ : state) {
    auto result =
        synth.run(bench.design.dfg, *bench.design.schedule, protos);
    benchmark::DoNotOptimize(result.overhead_percent);
  }
  state.SetLabel(bench.name);
}

BENCHMARK(BM_SynthesizeTraditional)->DenseRange(0, 4);
BENCHMARK(BM_SynthesizeTestable)->DenseRange(0, 4);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
