// Fault-coverage study (ours; backs the paper's Section II premises):
//   * coverage vs pattern count for each functional-unit type under the
//     allocated BIST configuration (maximal-length LFSR TPGs + MISR SA),
//   * the independent-vs-correlated TPG experiment — the quantitative
//     reason an embedding needs two *distinct* TPG registers,
//   * the full test plan (sessions, clocks, coverage) for every paper
//     benchmark's testable data path.
//
// Timing benchmark: fault simulation cost per module type.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bist/fault_sim.hpp"
#include "bist/test_plan.hpp"
#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"
#include "support/table.hpp"

namespace {

using namespace lbist;

constexpr int kWidth = 8;

void print_coverage_curves() {
  TextTable t({"module", "8 pat", "32 pat", "128 pat", "512 pat",
               "512 pat, 1 TPG"});
  t.set_title("Fault coverage (%) vs pattern count — stuck-at port faults");
  const std::pair<const char*, ModuleProto> units[] = {
      {"adder", ModuleProto{{OpKind::Add}}},
      {"subtractor", ModuleProto{{OpKind::Sub}}},
      {"multiplier", ModuleProto{{OpKind::Mul}}},
      {"divider", ModuleProto{{OpKind::Div}}},
      {"comparator", ModuleProto{{OpKind::Lt}}},
      {"ALU [-*/&|]", ModuleProto{{OpKind::Sub, OpKind::Mul, OpKind::Div,
                                   OpKind::And, OpKind::Or}}},
  };
  for (const auto& [label, proto] : units) {
    std::vector<std::string> row{label};
    for (int patterns : {8, 32, 128, 512}) {
      row.push_back(fmt_double(
          100.0 * simulate_module_bist(proto, kWidth, patterns).coverage(),
          1));
    }
    row.push_back(fmt_double(
        100.0 *
            simulate_module_bist(proto, kWidth, 512, /*independent=*/false)
                .coverage(),
        1));
    t.add_row(std::move(row));
  }
  std::cout << t << std::endl;
}

void print_test_plans() {
  TextTable t({"DFG", "sessions", "clocks", "min coverage %",
               "avg coverage %"});
  t.set_title("Test plans for the testable (BIST-aware) data paths");
  for (const auto& row : compare_paper_benchmarks()) {
    TestPlan plan =
        build_test_plan(row.testable.datapath, row.testable.bist, 250,
                        kWidth);
    t.add_row({row.name, std::to_string(plan.num_sessions),
               std::to_string(plan.total_clocks),
               fmt_double(100.0 * plan.min_coverage, 1),
               fmt_double(100.0 * plan.avg_coverage, 1)});
  }
  std::cout << t << std::endl;
}

void BM_FaultSimulateModule(benchmark::State& state) {
  const ModuleProto protos[] = {
      ModuleProto{{OpKind::Add}}, ModuleProto{{OpKind::Mul}},
      ModuleProto{{OpKind::Div}},
      ModuleProto{{OpKind::Add, OpKind::Sub, OpKind::And}}};
  const char* labels[] = {"add", "mul", "div", "alu3"};
  const auto& proto = protos[state.range(0)];
  for (auto _ : state) {
    auto result = simulate_module_bist(proto, kWidth, 250);
    benchmark::DoNotOptimize(result.detected);
  }
  state.SetLabel(labels[state.range(0)]);
}
BENCHMARK(BM_FaultSimulateModule)->DenseRange(0, 3);

void BM_BuildTestPlan(benchmark::State& state) {
  auto row = compare_benchmark(make_paulin());
  for (auto _ : state) {
    auto plan = build_test_plan(row.testable.datapath, row.testable.bist,
                                250, kWidth);
    benchmark::DoNotOptimize(plan.avg_coverage);
  }
}
BENCHMARK(BM_BuildTestPlan);

}  // namespace

int main(int argc, char** argv) {
  print_coverage_curves();
  print_test_plans();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
