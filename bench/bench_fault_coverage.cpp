// Fault-coverage study (ours; backs the paper's Section II premises):
//   * coverage vs pattern count for each functional-unit type under the
//     allocated BIST configuration (maximal-length LFSR TPGs + MISR SA),
//   * the independent-vs-correlated TPG experiment — the quantitative
//     reason an embedding needs two *distinct* TPG registers,
//   * the full test plan (sessions, clocks, coverage) for every paper
//     benchmark's testable data path,
//   * the hybrid test-session comparison (src/hybrid): pure pseudo-random
//     vs reseed/top-up vs the evolved-seed baseline on every paper
//     benchmark's testable data path at the gate level.
//
// Timing benchmark: fault simulation cost per module type.  The tables
// are also written as BENCH_fault_coverage.json (bench_json.hpp).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_json.hpp"
#include "bist/fault_sim.hpp"
#include "bist/test_plan.hpp"
#include "core/compare.hpp"
#include "dfg/benchmarks.hpp"
#include "hybrid/session.hpp"
#include "support/table.hpp"

namespace {

using namespace lbist;

constexpr int kWidth = 8;

void print_coverage_curves(benchjson::BenchJson& artifact) {
  TextTable t({"module", "8 pat", "32 pat", "128 pat", "512 pat",
               "512 pat, 1 TPG"});
  t.set_title("Fault coverage (%) vs pattern count — stuck-at port faults");
  const std::pair<const char*, ModuleProto> units[] = {
      {"adder", ModuleProto{{OpKind::Add}}},
      {"subtractor", ModuleProto{{OpKind::Sub}}},
      {"multiplier", ModuleProto{{OpKind::Mul}}},
      {"divider", ModuleProto{{OpKind::Div}}},
      {"comparator", ModuleProto{{OpKind::Lt}}},
      {"ALU [-*/&|]", ModuleProto{{OpKind::Sub, OpKind::Mul, OpKind::Div,
                                   OpKind::And, OpKind::Or}}},
  };
  for (const auto& [label, proto] : units) {
    std::vector<std::string> row{label};
    for (int patterns : {8, 32, 128, 512}) {
      const double coverage =
          simulate_module_bist(proto, kWidth, patterns).coverage();
      artifact.add("port_coverage",
                   std::string(label) + " @" + std::to_string(patterns), {},
                   Json::object().set("coverage", Json::number(coverage)));
      row.push_back(fmt_double(100.0 * coverage, 1));
    }
    row.push_back(fmt_double(
        100.0 *
            simulate_module_bist(proto, kWidth, 512, /*independent=*/false)
                .coverage(),
        1));
    t.add_row(std::move(row));
  }
  std::cout << t << std::endl;
}

void print_test_plans(benchjson::BenchJson& artifact) {
  TextTable t({"DFG", "sessions", "clocks", "min coverage %",
               "avg coverage %"});
  t.set_title("Test plans for the testable (BIST-aware) data paths");
  for (const auto& row : compare_paper_benchmarks()) {
    TestPlan plan =
        build_test_plan(row.testable.datapath, row.testable.bist, 250,
                        kWidth);
    artifact.add("test_plan", row.name, {},
                 Json::object()
                     .set("sessions", Json::number(plan.num_sessions))
                     .set("clocks", Json::number(plan.total_clocks))
                     .set("min_coverage", Json::number(plan.min_coverage))
                     .set("avg_coverage", Json::number(plan.avg_coverage)));
    t.add_row({row.name, std::to_string(plan.num_sessions),
               std::to_string(plan.total_clocks),
               fmt_double(100.0 * plan.min_coverage, 1),
               fmt_double(100.0 * plan.avg_coverage, 1)});
  }
  std::cout << t << std::endl;
}

/// The hybrid comparison: every paper benchmark's testable data path
/// graded under the default configuration ladder at the gate level.  The
/// interesting contrast is "pr" (the chip-seed pseudo-random session the
/// paper's plan implies) against "hybrid+topup" (same area, reseeding
/// recovers the hard faults at a fraction of the clocks).
void print_hybrid_comparison(benchjson::BenchJson& artifact) {
  TextTable t({"DFG", "config", "coverage %", "test clocks", "hard",
               "reseeds", "topups"});
  t.set_title("Hybrid test sessions on the testable data paths (width " +
              std::to_string(kWidth) + ")");
  for (const auto& row : compare_paper_benchmarks()) {
    for (const HybridConfig& config : default_hybrid_configs(250)) {
      const HybridSessionResult r = run_hybrid_session(
          row.testable.datapath, row.testable.bist, config, kWidth);
      artifact.add(
          "hybrid_session", row.name + " " + config.name, {},
          Json::object()
              .set("coverage", Json::number(r.coverage()))
              .set("test_length",
                   Json::number(static_cast<std::int64_t>(r.test_clocks)))
              .set("hard_faults", Json::number(r.hard_faults))
              .set("reseeds", Json::number(r.reseeds_used))
              .set("topups", Json::number(r.topups_used)));
      t.add_row({row.name, config.name,
                 fmt_double(100.0 * r.coverage(), 2),
                 std::to_string(r.test_clocks),
                 std::to_string(r.hard_faults),
                 std::to_string(r.reseeds_used),
                 std::to_string(r.topups_used)});
    }
  }
  std::cout << t << std::endl;
}

void BM_FaultSimulateModule(benchmark::State& state) {
  const ModuleProto protos[] = {
      ModuleProto{{OpKind::Add}}, ModuleProto{{OpKind::Mul}},
      ModuleProto{{OpKind::Div}},
      ModuleProto{{OpKind::Add, OpKind::Sub, OpKind::And}}};
  const char* labels[] = {"add", "mul", "div", "alu3"};
  const auto& proto = protos[state.range(0)];
  for (auto _ : state) {
    auto result = simulate_module_bist(proto, kWidth, 250);
    benchmark::DoNotOptimize(result.detected);
  }
  state.SetLabel(labels[state.range(0)]);
}
BENCHMARK(BM_FaultSimulateModule)->DenseRange(0, 3);

void BM_BuildTestPlan(benchmark::State& state) {
  auto row = compare_benchmark(make_paulin());
  for (auto _ : state) {
    auto plan = build_test_plan(row.testable.datapath, row.testable.bist,
                                250, kWidth);
    benchmark::DoNotOptimize(plan.avg_coverage);
  }
}
BENCHMARK(BM_BuildTestPlan);

}  // namespace

int main(int argc, char** argv) {
  lbist::benchjson::BenchJson artifact("fault_coverage");
  print_coverage_curves(artifact);
  print_test_plans(artifact);
  print_hybrid_comparison(artifact);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  artifact.write();
  return 0;
}
