// Ablation study (ours; the paper reports only the full heuristic): the
// contribution of each ingredient of the BIST-aware binder —
//   (a) SD/MCS-structured PVES selection        (Section III.A.1)
//   (b) the ΔSD register-choice rule            (Section III.A.2)
//   (c) the Case 1 / Case 2 overrides           (Section III.A.2)
//   (d) Lemma-2 CBILBO avoidance                (Section III.B)
//   (e) SD weighting of IR^LR promotion          (Section IV)
// measured on the five paper benchmarks and on a pool of random DFGs.
//
// Timing benchmark: the full binder vs the stripped binder.

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random_dfg.hpp"
#include "support/table.hpp"

namespace {

using namespace lbist;

struct Variant {
  const char* label;
  SynthesisOptions opts;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  auto base = [] {
    SynthesisOptions o;
    o.binder = BinderKind::BistAware;
    return o;
  };
  {
    Variant v{"full heuristic", base()};
    out.push_back(v);
  }
  {
    Variant v{"- SD-ordered PVES", base()};
    v.opts.bist_binder.sd_ordered_pves = false;
    out.push_back(v);
  }
  {
    Variant v{"- dSD rule", base()};
    v.opts.bist_binder.delta_sd_rule = false;
    out.push_back(v);
  }
  {
    Variant v{"- case overrides", base()};
    v.opts.bist_binder.case_overrides = false;
    out.push_back(v);
  }
  {
    Variant v{"- CBILBO avoidance", base()};
    v.opts.bist_binder.avoid_cbilbo = false;
    out.push_back(v);
  }
  {
    Variant v{"- SD mux weighting", base()};
    v.opts.interconnect.weight_by_sd = false;
    out.push_back(v);
  }
  {
    Variant v{"clique-partition binder", base()};
    v.opts.binder = BinderKind::CliquePartition;
    out.push_back(v);
  }
  {
    Variant v{"everything off", base()};
    v.opts.bist_binder = BistBinderOptions{false, false, false, false};
    v.opts.interconnect.weight_by_sd = false;
    out.push_back(v);
  }
  return out;
}

void print_ablation() {
  auto benches = paper_benchmarks();
  TextTable t({"variant", "ex1", "ex2", "Tseng1", "Tseng2", "Paulin",
               "random x20", "CBILBOs(paper5)"});
  t.set_title("Ablation — % BIST area overhead per binder variant");

  for (const Variant& v : variants()) {
    std::vector<std::string> row{v.label};
    int cbilbos = 0;
    for (const auto& bench : benches) {
      auto result = Synthesizer(v.opts).run(
          bench.design.dfg, *bench.design.schedule,
          parse_module_spec(bench.module_spec));
      row.push_back(fmt_double(result.overhead_percent));
      cbilbos += result.bist.counts().cbilbo;
    }
    double random_total = 0.0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      RandomDfgOptions ropts;
      ropts.seed = seed;
      ropts.kinds = {OpKind::Add, OpKind::Mul, OpKind::And};
      auto rd = make_random_dfg(ropts);
      auto result = Synthesizer(v.opts).run(
          rd.dfg, rd.schedule, minimal_module_spec(rd.dfg, rd.schedule));
      random_total += result.overhead_percent;
    }
    row.push_back(fmt_double(random_total / 20.0));
    row.push_back(std::to_string(cbilbos));
    t.add_row(std::move(row));
  }
  std::cout << t << std::endl;
}

void BM_FullBinder(benchmark::State& state) {
  auto bench = make_tseng1();
  const auto protos = parse_module_spec(bench.module_spec);
  SynthesisOptions opts;
  opts.binder = BinderKind::BistAware;
  Synthesizer synth(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth.run(bench.design.dfg, *bench.design.schedule, protos)
            .overhead_percent);
  }
}
BENCHMARK(BM_FullBinder);

void BM_StrippedBinder(benchmark::State& state) {
  auto bench = make_tseng1();
  const auto protos = parse_module_spec(bench.module_spec);
  SynthesisOptions opts;
  opts.binder = BinderKind::BistAware;
  opts.bist_binder = BistBinderOptions{false, false, false, false};
  Synthesizer synth(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth.run(bench.design.dfg, *bench.design.schedule, protos)
            .overhead_percent);
  }
}
BENCHMARK(BM_StrippedBinder);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
