// Observability overhead: one full BIST-aware synthesis of paulin (the
// largest built-in benchmark) with the instrumentation in every state it
// can be in.  The contract under test (docs/observability.md): the
// disabled path — a null recorder/sink pointer, which is what every
// un-instrumented run uses — must be indistinguishable from the baseline
// (<2% median latency), because it costs one predictable branch per site.
//
//   BM_SynthBaseline        opts.trace/events left null (the default)
//   BM_SynthTraceDisabled   recorder attached but not enabled
//   BM_SynthTraceEnabled    spans recorded (the price of a flamegraph)
//   BM_SynthEventsCounters  counters-only event sink (what `serve` runs)
//   BM_SynthEventsKept      full event retention (--trace-events)

#include <benchmark/benchmark.h>

#include "core/synthesizer.hpp"
#include "dfg/benchmarks.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"
#include "service/metrics.hpp"

namespace {

using namespace lbist;

void run_once(benchmark::State& state, TraceRecorder* trace,
              AlgorithmEvents* events) {
  auto bench = make_paulin();
  const auto protos = parse_module_spec(bench.module_spec);
  SynthesisOptions opts;
  opts.binder = BinderKind::BistAware;
  opts.trace = trace;
  opts.events = events;
  for (auto _ : state) {
    auto result = Synthesizer(opts).run(bench.design.dfg,
                                        *bench.design.schedule, protos);
    benchmark::DoNotOptimize(result.bist.extra_area);
  }
}

void BM_SynthBaseline(benchmark::State& state) {
  run_once(state, nullptr, nullptr);
}
BENCHMARK(BM_SynthBaseline)->Unit(benchmark::kMicrosecond);

void BM_SynthTraceDisabled(benchmark::State& state) {
  TraceRecorder rec;  // attached but disabled: the always-compiled-in path
  run_once(state, &rec, nullptr);
}
BENCHMARK(BM_SynthTraceDisabled)->Unit(benchmark::kMicrosecond);

void BM_SynthTraceEnabled(benchmark::State& state) {
  TraceRecorder rec;
  rec.set_enabled(true);
  run_once(state, &rec, nullptr);
  state.counters["spans"] = static_cast<double>(rec.event_count());
}
BENCHMARK(BM_SynthTraceEnabled)->Unit(benchmark::kMicrosecond);

void BM_SynthEventsCounters(benchmark::State& state) {
  MetricsRegistry metrics;
  AlgorithmEvents events(&metrics, /*keep_events=*/false);
  run_once(state, nullptr, &events);
}
BENCHMARK(BM_SynthEventsCounters)->Unit(benchmark::kMicrosecond);

void BM_SynthEventsKept(benchmark::State& state) {
  AlgorithmEvents events(nullptr, /*keep_events=*/true);
  run_once(state, nullptr, &events);
}
BENCHMARK(BM_SynthEventsKept)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
